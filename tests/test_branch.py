"""Unit tests for the branch prediction hardware."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.uarch.branch import (
    BranchTargetBuffer,
    FrontEnd,
    GsharePredictor,
    ReturnAddressStack,
)
from repro.uarch.params import baseline_config


class TestGshare:
    def test_learns_always_taken_branch(self):
        pred = GsharePredictor()
        for _ in range(50):
            pred.update(0x4000, True)
        assert pred.predict(0x4000)
        # Steady state: near-zero mispredicts on a monomorphic branch.
        before = pred.mispredicts
        for _ in range(100):
            pred.update(0x4000, True)
        assert pred.mispredicts == before

    def test_learns_biased_branch_well(self):
        rng = np.random.default_rng(0)
        pred = GsharePredictor()
        outcomes = rng.uniform(size=2000) < 0.95
        for t in outcomes:
            pred.update(0x1234, bool(t))
        assert pred.mispredict_rate < 0.15

    def test_random_branch_mispredicts_half(self):
        rng = np.random.default_rng(1)
        pred = GsharePredictor()
        for t in rng.uniform(size=4000) < 0.5:
            pred.update(0x5678, bool(t))
        assert 0.35 < pred.mispredict_rate < 0.65

    def test_learns_alternating_pattern_via_history(self):
        """T,NT,T,NT is perfectly predictable with global history."""
        pred = GsharePredictor()
        for i in range(400):
            pred.update(0x9000, i % 2 == 0)
        before = pred.mispredicts
        for i in range(400, 600):
            pred.update(0x9000, i % 2 == 0)
        late_rate = (pred.mispredicts - before) / 200
        assert late_rate < 0.05

    def test_invalid_geometry(self):
        with pytest.raises(ConfigurationError):
            GsharePredictor(entries=1000)     # not a power of two
        with pytest.raises(ConfigurationError):
            GsharePredictor(history_bits=0)


class TestBTB:
    def test_hit_after_allocation(self):
        btb = BranchTargetBuffer()
        assert not btb.access(0x4000)
        assert btb.access(0x4000)

    def test_lru_within_set(self):
        btb = BranchTargetBuffer(entries=8, assoc=2)  # 4 sets
        set_stride = 4 * 4                            # pc >> 2 % 4
        a, b, c = 0x0, set_stride << 2, (2 * set_stride) << 2
        btb.access(a)
        btb.access(b)
        btb.access(a)
        btb.access(c)   # evicts b
        assert btb.access(a)
        assert not btb.access(b)

    def test_invalid_geometry(self):
        with pytest.raises(ConfigurationError):
            BranchTargetBuffer(entries=10, assoc=4)


class TestRAS:
    def test_matched_call_return(self):
        ras = ReturnAddressStack(entries=4)
        ras.push(0x1004)
        assert ras.pop(0x1004)
        assert ras.mispops == 0

    def test_underflow_counts_mispop(self):
        ras = ReturnAddressStack(entries=4)
        assert not ras.pop(0x2000)
        assert ras.mispops == 1

    def test_overflow_wraps(self):
        ras = ReturnAddressStack(entries=2)
        for pc in (0x10, 0x20, 0x30):
            ras.push(pc)
        assert ras.pop(0x30)
        assert ras.pop(0x20)
        assert not ras.pop(0x10)   # overwritten by the wrap

    def test_invalid_entries(self):
        with pytest.raises(ConfigurationError):
            ReturnAddressStack(entries=0)


class TestFrontEnd:
    def test_bundle_uses_table1_geometry(self):
        fe = FrontEnd(baseline_config())
        assert fe.gshare.entries == 2048
        assert fe.gshare.history_bits == 10
        assert fe.btb.n_sets * fe.btb.assoc == 2048
        assert fe.ras.entries == 32

    def test_resolve_branch_trains(self):
        fe = FrontEnd(baseline_config())
        # The 10-bit global history walks ~10 distinct counters before
        # saturating, so train well past the cold phase.
        for _ in range(400):
            fe.resolve_branch(0x4000, True)
        assert fe.gshare.mispredict_rate < 0.05
