"""Unit and property tests for repro.workloads.phases."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads.phases import (
    FINE_RESOLUTION,
    SCALAR_ATTRIBUTES,
    NoiseModel,
    PhaseProfile,
    WorkloadModel,
    block_schedule,
    overlay_bursts,
    overlay_drift,
    overlay_periodic,
)


def _two_phase_model(name="toy"):
    phases = (
        PhaseProfile("a", ilp_limit=4.0),
        PhaseProfile("b", ilp_limit=2.0, f_load=0.4),
    )
    sched = block_schedule([(0, 0.5), (1, 0.5)])
    return WorkloadModel(name, phases, sched)


class TestPhaseProfile:
    def test_defaults_valid(self):
        p = PhaseProfile("x")
        assert 0 <= p.f_mem <= 1

    @pytest.mark.parametrize("kwargs", [
        {"f_load": 1.2},
        {"branch_mispredict": -0.1},
        {"ace_fraction": 2.0},
        {"ilp_limit": 0.0},
        {"mlp": 0.5},
        {"f_load": 0.5, "f_store": 0.4, "f_branch": 0.2},
        {"data_footprints": ((4.0, 0.8), (8.0, 0.4))},
    ])
    def test_invalid_profiles_rejected(self, kwargs):
        with pytest.raises(WorkloadError):
            PhaseProfile("bad", **kwargs)


class TestScheduleBuilders:
    def test_block_schedule_lengths(self):
        sched = block_schedule([(0, 0.25), (1, 0.75)])
        assert sched.size == FINE_RESOLUTION
        assert np.sum(sched == 0) == FINE_RESOLUTION // 4

    def test_block_schedule_normalizes_fractions(self):
        a = block_schedule([(0, 1.0), (1, 3.0)])
        b = block_schedule([(0, 0.25), (1, 0.75)])
        assert np.array_equal(a, b)

    def test_empty_blocks_rejected(self):
        with pytest.raises(WorkloadError):
            block_schedule([])

    def test_overlay_periodic_duty(self):
        sched = np.zeros(FINE_RESOLUTION, dtype=int)
        out = overlay_periodic(sched, 1, period=128, duty=0.25)
        assert np.mean(out == 1) == pytest.approx(0.25, abs=0.01)
        assert np.all(sched == 0)  # original untouched

    def test_overlay_periodic_validation(self):
        sched = np.zeros(FINE_RESOLUTION, dtype=int)
        with pytest.raises(WorkloadError):
            overlay_periodic(sched, 1, period=1)
        with pytest.raises(WorkloadError):
            overlay_periodic(sched, 1, period=64, duty=1.5)

    def test_overlay_bursts_positions(self):
        sched = np.zeros(FINE_RESOLUTION, dtype=int)
        out = overlay_bursts(sched, 2, positions=(0.5,), width=0.04)
        hits = np.nonzero(out == 2)[0]
        assert hits.size > 0
        center = FINE_RESOLUTION // 2
        assert abs(hits.mean() - center) < FINE_RESOLUTION * 0.05

    def test_overlay_bursts_validation(self):
        sched = np.zeros(FINE_RESOLUTION, dtype=int)
        with pytest.raises(WorkloadError):
            overlay_bursts(sched, 1, positions=(1.2,), width=0.05)
        with pytest.raises(WorkloadError):
            overlay_bursts(sched, 1, positions=(0.5,), width=0.0)

    def test_overlay_drift_monotone_density(self):
        sched = np.zeros(FINE_RESOLUTION, dtype=int)
        out = overlay_drift(sched, 0, 1)
        first_half = np.mean(out[:FINE_RESOLUTION // 2] == 1)
        second_half = np.mean(out[FINE_RESOLUTION // 2:] == 1)
        assert second_half > first_half


class TestWorkloadModel:
    def test_schedule_validation(self):
        phases = (PhaseProfile("a"),)
        with pytest.raises(WorkloadError):
            WorkloadModel("bad", phases, np.zeros(10, dtype=int))
        with pytest.raises(WorkloadError):
            WorkloadModel("bad", phases,
                          np.ones(FINE_RESOLUTION, dtype=int))  # index 1 of 1

    @given(st.sampled_from([4, 8, 16, 32, 64, 128, 256, 512, 1024]))
    @settings(max_examples=12, deadline=None)
    def test_phase_weights_rows_sum_to_one(self, n_samples):
        model = _two_phase_model()
        weights = model.phase_weights(n_samples)
        assert weights.shape == (n_samples, 2)
        assert np.allclose(weights.sum(axis=1), 1.0)
        assert np.all(weights >= 0.0)

    def test_bad_n_samples_rejected(self):
        model = _two_phase_model()
        with pytest.raises(WorkloadError):
            model.phase_weights(100)   # not a power of two
        with pytest.raises(WorkloadError):
            model.phase_weights(2048)  # beyond fine resolution

    def test_attribute_trace_mixes_phases(self):
        model = _two_phase_model()
        trace = model.attribute_trace("ilp_limit", 8)
        # First half phase a (4.0), second half phase b (2.0), with a
        # smoothed transition in between.
        assert trace[0] == pytest.approx(4.0, abs=0.01)
        assert trace[-1] == pytest.approx(2.0, abs=0.01)

    def test_unknown_attribute_rejected(self):
        with pytest.raises(WorkloadError):
            _two_phase_model().attribute_trace("cache_misses", 8)

    def test_attributes_returns_all(self):
        attrs = _two_phase_model().attributes(16)
        assert set(attrs) == set(SCALAR_ATTRIBUTES)

    def test_smoothing_preserves_mean(self):
        model = _two_phase_model()
        smooth = model.phase_weights(64, smooth=True)
        raw = model.phase_weights(64, smooth=False)
        assert np.allclose(smooth.mean(axis=0), raw.mean(axis=0), atol=0.01)

    def test_footprint_components_padded(self):
        phases = (
            PhaseProfile("a", data_footprints=((4.0, 0.1),)),
            PhaseProfile("b", data_footprints=((5.0, 0.1), (9.0, 0.2))),
        )
        model = WorkloadModel("toy2", phases,
                              block_schedule([(0, 0.5), (1, 0.5)]))
        log2kb, weight = model.footprint_components()
        assert log2kb.shape == (2, 2)
        assert weight[0, 1] == 0.0  # padding


class TestNoiseModel:
    def test_domain_lookup(self):
        noise = NoiseModel(cpi=0.1, power=0.2, avf=0.05)
        assert noise.level("cpi") == 0.1
        assert noise.level("power") == 0.2
        assert noise.level("iq_avf") == 0.05

    def test_unknown_domain_rejected(self):
        with pytest.raises(WorkloadError):
            NoiseModel().level("temperature")
