"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main


def _run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestListing:
    def test_list_benchmarks(self):
        code, text = _run(["list-benchmarks"])
        assert code == 0
        for name in ("bzip2", "mcf", "vpr"):
            assert name in text

    def test_list_experiments(self):
        code, text = _run(["list-experiments"])
        assert code == 0
        assert "fig8" in text
        assert "Figure 8" in text


class TestSimulate:
    def test_simulate_default(self):
        code, text = _run(["simulate", "gcc", "--samples", "64"])
        assert code == 0
        assert "cpi" in text and "power" in text
        assert "fetch_width = 8" in text

    def test_simulate_with_overrides(self):
        code, text = _run([
            "simulate", "mcf", "--samples", "64",
            "--fetch-width", "2", "--l2-size-kb", "256",
        ])
        assert code == 0
        assert "fetch_width = 2" in text
        assert "l2_size_kb = 256" in text

    def test_simulate_with_dvm(self):
        code, text = _run(["simulate", "gcc", "--samples", "64", "--dvm",
                           "--dvm-threshold", "0.4"])
        assert code == 0
        assert "dvm = enabled" in text

    def test_unknown_benchmark_raises(self):
        from repro.errors import WorkloadError
        with pytest.raises(WorkloadError):
            _run(["simulate", "nonexistent"])


class TestOtherCommands:
    def test_simpoint(self):
        code, text = _run(["simpoint", "gcc", "--intervals", "32"])
        assert code == 0
        assert "representative interval" in text

    def test_run_experiment_table(self):
        code, text = _run(["run-experiment", "table2", "--scale", "quick"])
        assert code == 0
        assert "fetch_width" in text

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
