"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main


def _run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestListing:
    def test_list_benchmarks(self):
        code, text = _run(["list-benchmarks"])
        assert code == 0
        for name in ("bzip2", "mcf", "vpr"):
            assert name in text

    def test_list_experiments(self):
        code, text = _run(["list-experiments"])
        assert code == 0
        assert "fig8" in text
        assert "Figure 8" in text


class TestSimulate:
    def test_simulate_default(self):
        code, text = _run(["simulate", "gcc", "--samples", "64"])
        assert code == 0
        assert "cpi" in text and "power" in text
        assert "fetch_width = 8" in text

    def test_simulate_with_overrides(self):
        code, text = _run([
            "simulate", "mcf", "--samples", "64",
            "--fetch-width", "2", "--l2-size-kb", "256",
        ])
        assert code == 0
        assert "fetch_width = 2" in text
        assert "l2_size_kb = 256" in text

    def test_simulate_with_dvm(self):
        code, text = _run(["simulate", "gcc", "--samples", "64", "--dvm",
                           "--dvm-threshold", "0.4"])
        assert code == 0
        assert "dvm = enabled" in text

    def test_unknown_benchmark_raises(self):
        from repro.errors import WorkloadError
        with pytest.raises(WorkloadError):
            _run(["simulate", "nonexistent"])


class TestDse:
    def test_active_search(self):
        code, text = _run([
            "dse", "gcc", "--active", "--samples", "32",
            "--budget", "22", "--batch-size", "6", "--n-init", "16",
            "--constraint", "power:max<=80", "--seed", "1",
        ])
        assert code == 0
        assert "init" in text and "ei" in text
        assert "22 simulations" in text
        assert "best feasible score" in text
        assert "fetch_width" in text

    def test_active_multi_objective(self):
        code, text = _run([
            "dse", "gcc", "--active", "--samples", "32",
            "--budget", "24", "--batch-size", "8", "--n-init", "16",
            "--objective", "cpi:mean", "--objective", "power:p99",
        ])
        assert code == 0
        assert "Pareto front" in text

    def test_predictive_search_without_active(self):
        code, text = _run([
            "dse", "gcc", "--samples", "32", "--n-train", "40",
            "--limit", "200", "--constraint", "power:max<=80",
        ])
        assert code == 0
        assert "trained on 40 simulations" in text
        assert "best predicted" in text

    def test_mode_mismatched_flags_rejected(self):
        from repro.errors import ModelError
        with pytest.raises(ModelError, match="--budget"):
            _run(["dse", "gcc", "--budget", "20"])  # forgot --active
        with pytest.raises(ModelError, match="--n-train"):
            _run(["dse", "gcc", "--active", "--n-train", "500"])

    def test_multi_objective_requires_active(self):
        from repro.errors import ModelError
        with pytest.raises(ModelError, match="--active"):
            _run(["dse", "gcc", "--objective", "cpi:mean",
                  "--objective", "power:p99"])

    def test_bad_specs_rejected(self):
        from repro.errors import ModelError
        with pytest.raises(ModelError):
            _run(["dse", "gcc", "--active", "--constraint", "power<100"])
        with pytest.raises(ModelError):
            _run(["dse", "gcc", "--constraint", "power:max<=high"])
        with pytest.raises(ModelError):
            _run(["dse", "gcc", "--objective", "cpi:mean:min"])


class TestOtherCommands:
    def test_simpoint(self):
        code, text = _run(["simpoint", "gcc", "--intervals", "32"])
        assert code == 0
        assert "representative interval" in text

    def test_run_experiment_table(self):
        code, text = _run(["run-experiment", "table2", "--scale", "quick"])
        assert code == 0
        assert "fetch_width" in text

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestEngineFlags:
    def test_no_shm_sweep(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        code, text = _run(["sweep", "gcc", "--n-train", "2", "--n-test", "1",
                           "--samples", "64", "--no-shm"])
        assert code == 0
        assert "3 simulations" in text

    def test_shm_parallel_sweep(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        code, text = _run(["sweep", "gcc", "--n-train", "4", "--n-test", "2",
                           "--samples", "64", "--jobs", "2", "--shm"])
        assert code == 0
        assert "2 worker(s)" in text

    def test_checkpoint_flag_threads_through_engine_not_env(
            self, monkeypatch, tmp_path):
        import argparse
        import os

        from repro.cli import _make_engine
        from repro.engine import SimJob
        from repro.uarch.params import baseline_config

        monkeypatch.delenv("REPRO_CHECKPOINT_EVERY", raising=False)
        monkeypatch.delenv("REPRO_CHECKPOINT_DIR", raising=False)
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        before = dict(os.environ)
        args = argparse.Namespace(
            jobs=None, cache_dir=str(tmp_path / "cache"),
            cache_max_bytes=None, progress=False, shm=None,
            checkpoint_every=5, hosts=None,
        )
        engine = _make_engine(args)
        # The settings live on the engine and are stamped onto detailed
        # jobs (pickled to any worker, local or remote) — never exported.
        assert os.environ == before
        assert engine.checkpoint_every == 5
        assert engine.checkpoint_dir == str(
            tmp_path / "cache" / "checkpoints")
        job = engine._configure_job(
            SimJob("gcc", baseline_config(), backend="detailed",
                   n_samples=8, instructions_per_sample=40))
        assert job.checkpoint_every == 5
        assert job.checkpoint_dir == engine.checkpoint_dir
        # The key ignores checkpoint plumbing: one cache entry either way.
        assert job.key() == SimJob(
            "gcc", baseline_config(), backend="detailed",
            n_samples=8, instructions_per_sample=40).key()

    def test_no_repro_env_mutation_after_main(self, monkeypatch, tmp_path):
        import os

        monkeypatch.delenv("REPRO_CHECKPOINT_EVERY", raising=False)
        monkeypatch.delenv("REPRO_CHECKPOINT_DIR", raising=False)
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        before = dict(os.environ)
        code, _ = _run(["sweep", "gcc", "--n-train", "2", "--n-test", "1",
                        "--samples", "64", "--checkpoint-every", "5",
                        "--cache-dir", str(tmp_path / "cache")])
        assert code == 0
        assert os.environ == before
        code, _ = _run(["run-experiment", "table2", "--scale", "quick"])
        assert code == 0
        assert os.environ == before  # notably: no REPRO_SCALE leak

    def test_env_driven_checkpointing_follows_cache_dir_flag(
            self, monkeypatch, tmp_path):
        import argparse
        import os

        from repro.cli import _make_engine

        monkeypatch.setenv("REPRO_CHECKPOINT_EVERY", "8")  # env, not flag
        monkeypatch.delenv("REPRO_CHECKPOINT_DIR", raising=False)
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        before = dict(os.environ)
        args = argparse.Namespace(
            jobs=None, cache_dir=str(tmp_path / "cache"),
            cache_max_bytes=None, progress=False, shm=None,
            checkpoint_every=None, hosts=None,
        )
        engine = _make_engine(args)
        assert os.environ == before
        assert engine.checkpoint_dir == str(
            tmp_path / "cache" / "checkpoints")
        # Env-driven settings are resolved into explicit engine config
        # so they ride inside the jobs to remote hosts whose own
        # environment lacks them.
        assert engine.checkpoint_every == 8

    def test_checkpoint_every_zero_flag_overrides_env(self, monkeypatch,
                                                      tmp_path):
        import argparse

        from repro.cli import _make_engine
        from repro.engine import SimJob
        from repro.uarch.params import baseline_config

        monkeypatch.setenv("REPRO_CHECKPOINT_EVERY", "8")
        monkeypatch.delenv("REPRO_CHECKPOINT_DIR", raising=False)
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        args = argparse.Namespace(
            jobs=None, cache_dir=str(tmp_path / "cache"),
            cache_max_bytes=None, progress=False, shm=None,
            checkpoint_every=0, hosts=None,  # flag: explicitly disable
        )
        engine = _make_engine(args)
        assert engine.checkpoint_every == 0
        job = engine._configure_job(
            SimJob("gcc", baseline_config(), backend="detailed",
                   n_samples=8, instructions_per_sample=40))
        assert job.checkpoint_every == 0  # 0 wins over the environment
        from repro.uarch.detailed import resolve_checkpoint_settings

        assert resolve_checkpoint_settings(0, None) == (0, None)
