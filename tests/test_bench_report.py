"""Tests for tools/bench_report.py (BENCH_*.json collation + gating)."""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "tools"))

import bench_report


def _write(directory, name, record):
    (directory / name).write_text(json.dumps(record))


def test_passing_records_produce_zero_failures(tmp_path):
    _write(tmp_path, "BENCH_kernel.json",
           {"speedup": 12.0, "min_speedup": 10.0, "rows_bit_identical": True,
            "jit_available": False})
    _write(tmp_path, "BENCH_shm_transport.json",
           {"bench": "shm_transport", "transport_speedup": 2.5,
            "bit_identical": True})
    summary = bench_report.build_summary(tmp_path)
    assert summary["failures"] == 0
    assert summary["checks_run"] == 4
    missing = {s["file"] for s in summary["skipped"]}
    assert "BENCH_remote_executor.json" in missing


def test_regressed_speedup_fails(tmp_path):
    _write(tmp_path, "BENCH_kernel.json",
           {"speedup": 6.0, "min_speedup": 10.0, "rows_bit_identical": True})
    summary = bench_report.build_summary(tmp_path)
    assert summary["failures"] == 1
    assert summary["failed_checks"][0]["check"] == "kernel.speedup"


def test_batched_floor_gated_on_enforcement_flag(tmp_path):
    record = {
        "bench": "detailed_kernel", "bit_identical_fresh": True,
        "bit_identical_resumed": True, "min_speedup_enforced": None,
        "batched": {"bit_identical": True, "speedup": 0.9,
                    "resumed_speedup": 0.8, "min_speedup_enforced": None},
    }
    _write(tmp_path, "BENCH_detailed_kernel.json", record)
    assert bench_report.build_summary(tmp_path)["failures"] == 0

    record["batched"]["min_speedup_enforced"] = 3.0
    _write(tmp_path, "BENCH_detailed_kernel.json", record)
    summary = bench_report.build_summary(tmp_path)
    failed = {c["check"] for c in summary["failed_checks"]}
    assert failed == {"detailed_kernel.batched.speedup",
                      "detailed_kernel.batched.resumed_speedup"}


def test_corrupt_file_is_a_failure(tmp_path):
    (tmp_path / "BENCH_kernel.json").write_text("{not json")
    summary = bench_report.build_summary(tmp_path)
    assert summary["failures"] == 1


def test_main_writes_summary_and_sets_exit_code(tmp_path):
    _write(tmp_path, "BENCH_active_dse.json",
           {"bench": "active_dse", "active_budget_fraction": 0.4})
    out = tmp_path / "BENCH_SUMMARY.json"
    assert bench_report.main(["--dir", str(tmp_path), "--out", str(out)]) == 0
    assert json.loads(out.read_text())["report"] == "bench_summary"

    _write(tmp_path, "BENCH_active_dse.json",
           {"bench": "active_dse", "active_budget_fraction": 0.9})
    assert bench_report.main(["--dir", str(tmp_path), "--out", str(out)]) == 1


def test_repo_records_pass_as_committed():
    repo_root = Path(__file__).resolve().parents[1]
    if not list(repo_root.glob("BENCH_*.json")):
        pytest.skip("no benchmark records present")
    assert bench_report.build_summary(repo_root)["failures"] == 0
