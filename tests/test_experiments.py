"""Tests for the experiment registry and the light experiment drivers.

The heavy figure experiments are exercised by the benchmark harness at
full scale; here we run them at a deliberately tiny scale to check
wiring, table structure and headline invariants quickly.
"""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    ExperimentResult,
    get_experiment,
    list_experiments,
    run_experiment,
)
from repro.experiments.context import ExperimentContext, Scale
from repro.experiments.registry import ExperimentTable


@pytest.fixture(scope="module")
def tiny_ctx():
    scale = Scale(
        name="tiny", n_train=60, n_test=12, n_samples=64,
        benchmarks=("gcc", "mcf", "swim"),
        fig9_benchmarks=("gcc",), fig10_benchmarks=("gcc",),
    )
    return ExperimentContext(scale)


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        ids = list_experiments()
        for required in ("table1", "table2", "fig1", "fig4", "fig7", "fig8",
                         "fig9", "fig10", "fig11", "fig13", "fig14", "fig17",
                         "fig18", "fig19"):
            assert required in ids

    def test_ablations_registered(self):
        ids = list_experiments()
        for required in ("abl-selection", "abl-baselines", "abl-wavelet",
                         "val-backend"):
            assert required in ids

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ExperimentError):
            get_experiment("fig99")

    def test_result_table_lookup(self):
        result = ExperimentResult("x", "t", "ref", tables=[
            ExperimentTable("Alpha Beta", ("a",), [[1]]),
        ])
        assert result.table("alpha").rows == [[1]]
        with pytest.raises(ExperimentError):
            result.table("gamma")


class TestLightExperiments:
    def test_table1(self, tiny_ctx):
        result = run_experiment("table1", tiny_ctx)
        assert len(result.table("Baseline").rows) == 15

    def test_table2(self, tiny_ctx):
        result = run_experiment("table2", tiny_ctx)
        assert len(result.table("Design space").rows) == 9

    def test_fig4_monotone(self, tiny_ctx):
        result = run_experiment("fig4", tiny_ctx)
        errors = [r[1] for r in result.table("reconstruction").rows]
        assert all(a >= b - 1e-9 for a, b in zip(errors, errors[1:]))

    def test_fig1_structure(self, tiny_ctx):
        result = run_experiment("fig1", tiny_ctx)
        assert len(result.table("Trace ranges").rows) == 9

    def test_render_includes_tables(self, tiny_ctx):
        text = run_experiment("table2", tiny_ctx).render()
        assert "fetch_width" in text
        assert "Table 2" in text


class TestPipelineExperiments:
    def test_fig8_tiny(self, tiny_ctx):
        result = run_experiment("fig8", tiny_ctx)
        overall = {r[0]: r[1] for r in result.table("Overall").rows}
        assert set(overall) == {"cpi", "power", "avf"}
        for median in overall.values():
            assert 0.0 < median < 50.0

    def test_fig7_stability(self, tiny_ctx):
        result = run_experiment("fig7", tiny_ctx)
        rows = result.table("stability").rows
        assert all(0.0 <= r[1] <= 1.0 for r in rows)

    def test_fig13_bounds(self, tiny_ctx):
        result = run_experiment("fig13", tiny_ctx)
        for domain in ("CPI", "POWER", "AVF"):
            for row in result.table(f"{domain} directional").rows:
                assert all(0.0 <= v <= 100.0 for v in row[1:])

    def test_fig14_traces(self, tiny_ctx):
        result = run_experiment("fig14", tiny_ctx)
        assert len(result.table("Representative").rows) == 3

    def test_fig11_scores(self, tiny_ctx):
        result = run_experiment("fig11", tiny_ctx)
        rows = result.table("frequency").rows
        assert len(rows) == 9  # 3 benchmarks x 3 domains


class TestContext:
    def test_dataset_cached(self, tiny_ctx):
        a = tiny_ctx.dataset("gcc")
        b = tiny_ctx.dataset("gcc")
        assert a is b

    def test_model_cached(self, tiny_ctx):
        a = tiny_ctx.model("gcc", "cpi")
        b = tiny_ctx.model("gcc", "cpi")
        assert a is b

    def test_dvm_dataset_contains_dvm_configs(self, tiny_ctx):
        train, test = tiny_ctx.dataset("gcc", dvm=True)
        assert any(c.dvm_enabled for c in train.configs)
        assert any(not c.dvm_enabled for c in train.configs)

    def test_scale_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "quick")
        assert Scale.from_env().name == "quick"
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert Scale.from_env().name == "paper"
        monkeypatch.setenv("REPRO_SCALE", "huge")
        with pytest.raises(ExperimentError):
            Scale.from_env()
