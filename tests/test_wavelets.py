"""Unit and property tests for repro.core.wavelets."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.wavelets import (
    CONVENTIONS,
    DecompositionLevel,
    MultiresolutionAnalysis,
    coefficient_levels,
    dwt,
    energy,
    haar_dwt,
    haar_idwt,
    idwt,
    pad_to_power_of_two,
)
from repro.errors import TransformError

PAPER_DATA = [3, 4, 20, 25, 15, 5, 20, 3]
PAPER_COEFFS = [11.875, 1.125, -9.5, -0.75, -0.5, -2.5, 5.0, 8.5]


def _series(min_log=1, max_log=6):
    """Hypothesis strategy: power-of-two float series."""
    return st.integers(min_log, max_log).flatmap(
        lambda k: st.lists(
            st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
            min_size=2 ** k, max_size=2 ** k,
        )
    )


class TestPaperExample:
    """The worked example of the paper's Figure 2."""

    def test_forward_transform_matches_figure_2(self):
        assert haar_dwt(PAPER_DATA).tolist() == PAPER_COEFFS

    def test_first_coefficient_is_overall_average(self):
        assert haar_dwt(PAPER_DATA)[0] == pytest.approx(np.mean(PAPER_DATA))

    def test_scale_2_approximations(self):
        mra = MultiresolutionAnalysis(PAPER_DATA)
        assert mra.approximation_at(2).tolist() == [3.5, 22.5, 10.0, 11.5]

    def test_scale_2_details(self):
        mra = MultiresolutionAnalysis(PAPER_DATA)
        assert mra.detail_at(1).tolist() == [-0.5, -2.5, 5.0, 8.5]

    def test_reconstruction_identity_from_figure_2(self):
        # {13, 10.75} = {11.875 + 1.125, 11.875 - 1.125}
        mra = MultiresolutionAnalysis(PAPER_DATA)
        assert mra.approximation_at(3).tolist() == [13.0, 10.75]


class TestRoundTrip:
    @given(_series())
    @settings(max_examples=60, deadline=None)
    def test_haar_paper_roundtrip(self, data):
        rec = haar_idwt(haar_dwt(data))
        assert np.allclose(rec, data, rtol=1e-9, atol=1e-6)

    @given(_series())
    @settings(max_examples=60, deadline=None)
    def test_haar_orthonormal_roundtrip(self, data):
        rec = haar_idwt(haar_dwt(data, "orthonormal"), "orthonormal")
        assert np.allclose(rec, data, rtol=1e-9, atol=1e-6)

    @given(_series(min_log=2, max_log=6))
    @settings(max_examples=40, deadline=None)
    def test_db4_roundtrip(self, data):
        rec = idwt(dwt(data, wavelet="db4"), wavelet="db4")
        assert np.allclose(rec, data, rtol=1e-8, atol=1e-5)

    @given(_series())
    @settings(max_examples=40, deadline=None)
    def test_orthonormal_preserves_energy(self, data):
        coeffs = haar_dwt(data, "orthonormal")
        assert energy(coeffs) == pytest.approx(energy(np.asarray(data, float)),
                                               rel=1e-6, abs=1e-3)

    @given(_series(), st.floats(-100, 100), st.floats(0.1, 10))
    @settings(max_examples=30, deadline=None)
    def test_linearity_of_transform(self, data, shift, scale):
        arr = np.asarray(data, float)
        base = haar_dwt(arr)
        scaled = haar_dwt(arr * scale)
        assert np.allclose(scaled, base * scale, rtol=1e-7, atol=1e-4)
        shifted = haar_dwt(arr + shift)
        # Shifting only changes the overall-average coefficient.
        assert shifted[0] == pytest.approx(base[0] + shift, abs=1e-6)
        assert np.allclose(shifted[1:], base[1:], atol=1e-6)


class TestConstantAndStructure:
    def test_constant_series_has_single_nonzero_coefficient(self):
        coeffs = haar_dwt(np.full(64, 7.5))
        assert coeffs[0] == pytest.approx(7.5)
        assert np.allclose(coeffs[1:], 0.0)

    def test_step_series_concentrates_in_coarse_detail(self):
        data = np.concatenate([np.zeros(32), np.ones(32)])
        coeffs = haar_dwt(data)
        # Mean 0.5, coarsest detail -0.5, everything else ~0.
        assert coeffs[0] == pytest.approx(0.5)
        assert coeffs[1] == pytest.approx(-0.5)
        assert np.allclose(coeffs[2:], 0.0)

    def test_coefficient_levels_layout(self):
        levels = coefficient_levels(8)
        assert levels.tolist() == [0, 1, 2, 2, 3, 3, 3, 3]

    def test_coefficient_levels_count_per_level(self):
        levels = coefficient_levels(128)
        for lvl in range(2, 8):
            assert int(np.sum(levels == lvl)) == 2 ** (lvl - 1)


class TestValidation:
    @pytest.mark.parametrize("bad", [[1, 2, 3], [1] * 6, [1] * 100])
    def test_non_power_of_two_rejected(self, bad):
        with pytest.raises(TransformError):
            haar_dwt(bad)

    def test_empty_rejected(self):
        with pytest.raises(TransformError):
            haar_dwt([])

    def test_nan_rejected(self):
        with pytest.raises(TransformError):
            haar_dwt([1.0, float("nan"), 2.0, 3.0])

    def test_unknown_convention_rejected(self):
        with pytest.raises(TransformError):
            haar_dwt([1, 2], convention="bogus")

    def test_unknown_wavelet_rejected(self):
        with pytest.raises(TransformError):
            dwt([1, 2], wavelet="sym9")

    def test_2d_rejected(self):
        with pytest.raises(TransformError):
            haar_dwt(np.ones((4, 4)))


class TestPadding:
    def test_pad_leaves_power_of_two_alone(self):
        out = pad_to_power_of_two([1.0, 2.0, 3.0, 4.0])
        assert out.tolist() == [1.0, 2.0, 3.0, 4.0]

    def test_pad_extends_to_next_power(self):
        out = pad_to_power_of_two([1.0, 2.0, 3.0])
        assert out.size == 4
        assert out.tolist() == [1.0, 2.0, 3.0, 3.0]  # edge mode

    def test_pad_returns_copy(self):
        src = np.array([1.0, 2.0])
        out = pad_to_power_of_two(src)
        out[0] = 99.0
        assert src[0] == 1.0


class TestMultiresolutionAnalysis:
    def test_full_reconstruction_exact(self):
        rng = np.random.default_rng(3)
        data = rng.normal(size=64)
        mra = MultiresolutionAnalysis(data)
        assert np.allclose(mra.reconstruct(), data)

    def test_partial_reconstruction_error_decreases_with_more_coefficients(self):
        rng = np.random.default_rng(4)
        t = np.linspace(0, 1, 64)
        data = np.sin(2 * np.pi * 3 * t) + 0.2 * rng.normal(size=64)
        mra = MultiresolutionAnalysis(data)
        errors = [mra.reconstruction_error(range(k)) for k in (1, 2, 4, 8, 16, 64)]
        assert all(a >= b - 1e-12 for a, b in zip(errors, errors[1:]))
        assert errors[-1] == pytest.approx(0.0, abs=1e-18)

    def test_keep_all_indices_equals_full_reconstruction(self):
        data = np.arange(16.0)
        mra = MultiresolutionAnalysis(data)
        assert np.allclose(mra.reconstruct(range(16)), data)

    def test_keep_out_of_range_rejected(self):
        mra = MultiresolutionAnalysis(np.arange(8.0))
        with pytest.raises(TransformError):
            mra.reconstruct([9])

    def test_scale_bounds_checked(self):
        mra = MultiresolutionAnalysis(np.arange(8.0))
        with pytest.raises(TransformError):
            mra.approximation_at(0)
        with pytest.raises(TransformError):
            mra.approximation_at(5)
        with pytest.raises(TransformError):
            mra.detail_at(4)

    def test_n_levels(self):
        assert MultiresolutionAnalysis(np.arange(128.0)).n_levels == 7

    def test_data_property_is_copy(self):
        data = np.arange(8.0)
        mra = MultiresolutionAnalysis(data)
        mra.data[0] = 99
        assert mra.data[0] == 0.0

    def test_levels_are_dataclasses(self):
        mra = MultiresolutionAnalysis(np.arange(8.0))
        assert isinstance(mra._levels[0], DecompositionLevel)

    @pytest.mark.parametrize("convention", CONVENTIONS)
    def test_coefficients_match_flat_transform(self, convention):
        rng = np.random.default_rng(5)
        data = rng.normal(size=32)
        mra = MultiresolutionAnalysis(data, convention)
        assert np.allclose(mra.coefficients, haar_dwt(data, convention))
