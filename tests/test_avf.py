"""Unit tests for the AVF (ACE analysis) model."""

import numpy as np
import pytest

from repro.reliability.avf import (
    REGFILE_ENTRIES,
    STRUCTURE_BITS,
    AVFModel,
    structure_capacity_bits,
)
from repro.uarch.params import baseline_config


def _traces(n=8, stall=0.3, ace=0.6, waiting=0.4):
    ones = np.ones(n)
    return dict(
        ipc=2.0 * ones,
        mem_stall_frac=stall * ones,
        ace_fraction=ace * ones,
        f_mem=0.35 * ones,
        window=96.0 * ones,
        waiting_frac=waiting * ones,
    )


class TestCapacity:
    def test_capacity_tracks_config(self):
        small = structure_capacity_bits(baseline_config(iq_size=32))
        large = structure_capacity_bits(baseline_config(iq_size=128))
        assert large["iq"] == 4 * small["iq"]
        assert large["rob"] == small["rob"]

    def test_regfile_fixed(self):
        bits = structure_capacity_bits(baseline_config())
        assert bits["regfile"] == STRUCTURE_BITS["regfile"] * REGFILE_ENTRIES


class TestOccupancyModel:
    def test_occupancies_bounded(self):
        model = AVFModel(baseline_config())
        occ = model.occupancy_traces(**_traces())
        for arr in occ.values():
            assert np.all(arr >= 0.0) and np.all(arr <= 1.0)

    def test_stall_raises_every_occupancy(self):
        model = AVFModel(baseline_config())
        idle = model.occupancy_traces(**_traces(stall=0.05))
        stalled = model.occupancy_traces(**_traces(stall=0.8))
        for s in ("iq", "rob", "lsq", "regfile"):
            assert np.all(stalled[s] >= idle[s])

    def test_waiting_pressure_fills_iq(self):
        model = AVFModel(baseline_config())
        relaxed = model.occupancy_traces(**_traces(waiting=0.0))
        pressed = model.occupancy_traces(**_traces(waiting=0.9))
        assert np.all(pressed["iq"] > relaxed["iq"])

    def test_small_lsq_fuller(self):
        big = AVFModel(baseline_config(lsq_size=64)).occupancy_traces(**_traces())
        small = AVFModel(baseline_config(lsq_size=16)).occupancy_traces(**_traces())
        assert np.all(small["lsq"] >= big["lsq"])


class TestAVFTraces:
    def test_all_structures_plus_processor(self):
        model = AVFModel(baseline_config())
        avf = model.avf_traces(**_traces())
        assert set(avf) == {"iq", "rob", "lsq", "regfile", "processor"}
        for arr in avf.values():
            assert np.all(arr >= 0.0) and np.all(arr <= 1.0)

    def test_processor_is_bit_weighted_mean(self):
        model = AVFModel(baseline_config())
        avf = model.avf_traces(**_traces())
        bits = structure_capacity_bits(baseline_config())
        expected = sum(avf[s] * bits[s] for s in bits) / sum(bits.values())
        assert np.allclose(avf["processor"], expected)

    def test_higher_ace_higher_avf(self):
        model = AVFModel(baseline_config())
        lo = model.avf_traces(**_traces(ace=0.4))
        hi = model.avf_traces(**_traces(ace=0.8))
        assert np.all(hi["processor"] > lo["processor"])

    def test_ace_enrichment_superlinear(self):
        model = AVFModel(baseline_config())
        lo = model.avf_traces(**_traces(ace=0.4))["iq"]
        hi = model.avf_traces(**_traces(ace=0.8))["iq"]
        # Doubling ACE more than doubles queue AVF (residency enrichment).
        assert np.all(hi > 2.0 * lo)


class TestCounterBackend:
    def test_exact_division(self):
        cfg = baseline_config()
        model = AVFModel(cfg)
        bits = structure_capacity_bits(cfg)
        cycles = 500.0
        ace_cycles = {s: 0.25 * bits[s] * cycles for s in bits}
        avf = model.avf_from_counters(ace_cycles, cycles)
        for s in bits:
            assert avf[s] == pytest.approx(0.25)
        assert avf["processor"] == pytest.approx(0.25)

    def test_zero_cycles(self):
        model = AVFModel(baseline_config())
        avf = model.avf_from_counters({}, 0)
        assert all(v == 0.0 for v in avf.values())

    def test_clipped_to_unit(self):
        cfg = baseline_config()
        model = AVFModel(cfg)
        bits = structure_capacity_bits(cfg)
        avf = model.avf_from_counters({"iq": 10 * bits["iq"]}, 1.0)
        assert avf["iq"] == 1.0
