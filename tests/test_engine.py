"""Tests for the batched/parallel/cached execution engine."""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.dse.runner import SweepPlan, SweepRunner
from repro.dse.space import paper_design_space
from repro.engine import (
    ExecutionEngine,
    LocalExecutor,
    ParallelExecutor,
    ResultCache,
    SimJob,
    create_engine,
    make_jobs,
)
from repro.errors import EngineError
from repro.uarch.params import baseline_config
from repro.uarch.simulator import SimulationResult, Simulator


@pytest.fixture(scope="module")
def configs():
    return paper_design_space().sample_random(6, split="train", seed=11)


@pytest.fixture(scope="module")
def jobs(configs):
    return [SimJob("gcc", c, n_samples=64) for c in configs]


class TestSimJob:
    def test_key_is_content_hash(self, configs):
        a = SimJob("gcc", configs[0], n_samples=64)
        b = SimJob("gcc", configs[0], n_samples=64)
        assert a.key() == b.key()
        assert a.key() != SimJob("mcf", configs[0], n_samples=64).key()
        assert a.key() != SimJob("gcc", configs[1], n_samples=64).key()
        assert a.key() != SimJob("gcc", configs[0], n_samples=128).key()
        assert a.key() != SimJob("gcc", configs[0], n_samples=64,
                                 noise=False).key()

    def test_key_ignores_irrelevant_options(self, configs):
        # The interval backend never reads instructions_per_sample, so it
        # must not fragment the cache.
        a = SimJob("gcc", configs[0], instructions_per_sample=100)
        b = SimJob("gcc", configs[0], instructions_per_sample=9999)
        assert a.key() == b.key()
        da = SimJob("gcc", configs[0], backend="detailed",
                    instructions_per_sample=100)
        db = SimJob("gcc", configs[0], backend="detailed",
                    instructions_per_sample=9999)
        assert da.key() != db.key()

    def test_key_stable_across_processes(self, configs):
        job = SimJob("gcc", baseline_config(), n_samples=64)
        src_root = Path(repro.__file__).resolve().parent.parent
        code = (
            "from repro.engine import SimJob\n"
            "from repro.uarch.params import baseline_config\n"
            "print(SimJob('gcc', baseline_config(), n_samples=64).key())\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src_root) + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run([sys.executable, "-c", code], env=env,
                             capture_output=True, text=True, check=True)
        assert out.stdout.strip() == job.key()

    def test_run_matches_simulator(self, jobs):
        direct = Simulator().run("gcc", jobs[0].config, 64)
        via_job = jobs[0].run()
        assert np.array_equal(direct.trace("cpi"), via_job.trace("cpi"))

    def test_validation(self, configs):
        with pytest.raises(EngineError):
            SimJob("gcc", configs[0], backend="quantum")
        with pytest.raises(EngineError):
            SimJob("", configs[0])
        with pytest.raises(EngineError):
            SimJob("gcc", configs[0], n_samples=0)

    def test_workload_mismatch_rejected(self, configs):
        from repro.workloads.spec2000 import get_benchmark

        with pytest.raises(EngineError):
            SimJob("gcc", configs[0], workload=get_benchmark("mcf"))

    def test_make_jobs(self, configs):
        batch = make_jobs("swim", configs, n_samples=32)
        assert len(batch) == len(configs)
        assert all(j.benchmark == "swim" and j.n_samples == 32 for j in batch)


class TestExecutors:
    def test_parallel_matches_sequential_bit_identical(self, jobs):
        seq = LocalExecutor().run_batch(jobs)
        par = ParallelExecutor(max_workers=2, chunk_size=2).run_batch(jobs)
        assert len(seq) == len(par) == len(jobs)
        for a, b in zip(seq, par):
            assert a.benchmark == b.benchmark
            assert a.config == b.config
            for domain in ("cpi", "power", "avf", "iq_avf"):
                assert np.array_equal(a.trace(domain), b.trace(domain))

    def test_result_order_matches_job_order(self, jobs):
        par = ParallelExecutor(max_workers=2, chunk_size=1).run_batch(jobs)
        assert [r.config for r in par] == [j.config for j in jobs]

    def test_empty_batch(self):
        assert ParallelExecutor(max_workers=2).run_batch([]) == []
        assert LocalExecutor().run_batch([]) == []

    def test_worker_exception_propagates(self, configs):
        bad = SimJob("gcc", configs[0], n_samples=64)
        object.__setattr__(bad, "benchmark", "no_such_benchmark")
        with pytest.raises(Exception):
            ParallelExecutor(max_workers=2, chunk_size=1).run_batch([bad])

    def test_invalid_parameters_rejected(self):
        with pytest.raises(EngineError):
            ParallelExecutor(max_workers=0)
        with pytest.raises(EngineError):
            ParallelExecutor(chunk_size=0)
        with pytest.raises(EngineError):
            create_engine(jobs=0)


class TestResultCache:
    def test_miss_then_hit(self, tmp_path, jobs):
        cache = ResultCache(tmp_path)
        assert cache.get(jobs[0]) is None
        result = jobs[0].run()
        cache.put(jobs[0], result)
        hit = cache.get(jobs[0])
        assert hit is not None
        for domain in ("cpi", "power", "avf", "iq_avf"):
            assert np.array_equal(hit.trace(domain), result.trace(domain))
        assert hit.config == result.config
        assert cache.stats.misses == 1
        assert cache.stats.memory_hits == 1

    def test_disk_tier_survives_new_instance(self, tmp_path, jobs):
        result = jobs[0].run()
        ResultCache(tmp_path).put(jobs[0], result)
        fresh = ResultCache(tmp_path)  # cold in-memory tier
        hit = fresh.get(jobs[0])
        assert hit is not None
        assert fresh.stats.disk_hits == 1
        assert np.array_equal(hit.trace("cpi"), result.trace("cpi"))

    def test_memory_lru_eviction_falls_back_to_disk(self, tmp_path, jobs):
        cache = ResultCache(tmp_path, memory_items=1)
        cache.put(jobs[0], jobs[0].run())
        cache.put(jobs[1], jobs[1].run())  # evicts jobs[0] from memory
        assert cache.get(jobs[1]) is not None
        assert cache.stats.memory_hits == 1
        assert cache.get(jobs[0]) is not None
        assert cache.stats.disk_hits == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path, jobs):
        cache = ResultCache(tmp_path)
        cache.put(jobs[0], jobs[0].run())
        [path] = list(Path(tmp_path).glob("*.npz"))
        path.write_bytes(b"not an npz")
        cache.clear_memory()
        assert cache.get(jobs[0]) is None

    def test_memory_only_cache(self, jobs):
        cache = ResultCache(cache_dir=None, memory_items=4)
        assert cache.get(jobs[0]) is None
        cache.put(jobs[0], jobs[0].run())
        assert cache.get(jobs[0]) is not None
        assert len(cache) == 1


class TestExecutionEngine:
    def test_cache_hits_skip_execution(self, tmp_path, jobs):
        class CountingExecutor(LocalExecutor):
            calls = 0

            def run_batch(self, batch):
                CountingExecutor.calls += len(batch)
                return super().run_batch(batch)

        engine = ExecutionEngine(executor=CountingExecutor(),
                                 cache=ResultCache(tmp_path))
        engine.run(jobs)
        assert CountingExecutor.calls == len(jobs)
        engine.run(jobs)  # fully cached
        assert CountingExecutor.calls == len(jobs)

    def test_duplicate_jobs_deduplicated(self, jobs):
        class CountingExecutor(LocalExecutor):
            calls = 0

            def run_batch(self, batch):
                CountingExecutor.calls += len(batch)
                return super().run_batch(batch)

        engine = ExecutionEngine(executor=CountingExecutor(), cache=None)
        results = engine.run([jobs[0], jobs[1], jobs[0], jobs[0]])
        assert CountingExecutor.calls == 2
        assert np.array_equal(results[0].trace("cpi"), results[2].trace("cpi"))
        assert results[1].config == jobs[1].config

    def test_run_one(self, jobs):
        result = ExecutionEngine().run_one(jobs[0])
        assert isinstance(result, SimulationResult)
        assert result.n_samples == 64


class TestSweepRunnerIntegration:
    def test_parallel_dataset_bit_identical(self, configs):
        seq = SweepRunner(n_samples=64).run_configs("gcc", configs)
        par = SweepRunner(
            n_samples=64,
            engine=ExecutionEngine(ParallelExecutor(max_workers=2,
                                                    chunk_size=2)),
        ).run_configs("gcc", configs)
        for domain in seq.domains:
            assert np.array_equal(seq.domain(domain), par.domain(domain))

    def test_parallel_train_test_bit_identical(self):
        plan = SweepPlan(space=paper_design_space(), n_train=10, n_test=4,
                         n_lhs_matrices=2, seed=7)
        seq_train, seq_test = SweepRunner(n_samples=64).run_train_test(
            "mcf", plan)
        par_runner = SweepRunner(
            n_samples=64,
            engine=ExecutionEngine(ParallelExecutor(max_workers=2)),
        )
        par_train, par_test = par_runner.run_train_test("mcf", plan)
        for seq, par in ((seq_train, par_train), (seq_test, par_test)):
            assert [c.key() for c in seq.configs] == [c.key() for c in par.configs]
            for domain in seq.domains:
                assert np.array_equal(seq.domain(domain), par.domain(domain))

    def test_cached_rerun_equivalent(self, tmp_path, configs):
        engine = create_engine(cache_dir=tmp_path)
        runner = SweepRunner(n_samples=64, engine=engine)
        first = runner.run_configs("twolf", configs)
        engine.cache.clear_memory()
        second = runner.run_configs("twolf", configs)
        assert engine.cache.stats.disk_hits == len(configs)
        for domain in first.domains:
            assert np.array_equal(first.domain(domain), second.domain(domain))

    def test_run_many_single_batch(self, configs):
        runner = SweepRunner(n_samples=64)
        groups = [configs[:4], configs[4:]]
        many = runner.run_many("vpr", groups)
        assert [ds.n_configs for ds in many] == [4, 2]
        direct = runner.run_configs("vpr", configs[4:])
        assert np.array_equal(many[1].domain("cpi"), direct.domain("cpi"))


class TestSimulationResultIpc:
    def test_ipc_guards_zero_cpi(self):
        cpi = np.array([0.5, 0.0, 2.0])
        result = SimulationResult(
            benchmark="gcc", config=baseline_config(), n_samples=3,
            backend="interval", traces={"cpi": cpi},
        )
        ipc = result.trace("ipc")
        assert np.all(np.isfinite(ipc))
        assert ipc == pytest.approx([2.0, 0.0, 0.5])

    def test_ipc_normal_path(self):
        result = Simulator().run("gcc", baseline_config(), 64)
        assert np.allclose(result.trace("ipc"),
                           1.0 / result.trace("cpi"))


class TestReviewRegressions:
    def test_alias_benchmark_canonicalized(self, configs):
        # "bzip" (registry alias) must label datasets and key cache
        # entries exactly like "bzip2".
        jobs_alias = make_jobs("bzip", configs[:2], n_samples=64)
        jobs_canon = make_jobs("bzip2", configs[:2], n_samples=64)
        assert [j.benchmark for j in jobs_alias] == ["bzip2", "bzip2"]
        assert [j.key() for j in jobs_alias] == [j.key() for j in jobs_canon]
        ds = SweepRunner(n_samples=64).run_configs("bzip", configs[:2])
        assert ds.benchmark == "bzip2"

    def test_unknown_benchmark_fails_before_execution(self, configs):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            make_jobs("no_such_benchmark", configs[:1])

    def test_run_many_with_empty_group(self, configs):
        runner = SweepRunner(n_samples=64)
        many = runner.run_many("gcc", [configs[:2], []])
        assert [ds.n_configs for ds in many] == [2, 0]
        assert many[1].domain("cpi").shape == (0, 64)

    def test_cli_engine_honours_env_fallback(self, monkeypatch, tmp_path):
        import io

        from repro.cli import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        out = io.StringIO()
        code = main(["sweep", "gcc", "--n-train", "2", "--n-test", "1",
                     "--samples", "64"], out=out)
        assert code == 0
        assert "cache:" in out.getvalue()          # env-enabled cache used
        assert (tmp_path / "envcache").exists()

    def test_register_reducer_accepts_positive_only_reducers(self):
        # Harmonic mean is undefined at 0 but valid on real traces; the
        # registration probe must not reject it.
        from repro.dse.explorer import register_reducer, unregister_reducer

        register_reducer(
            "hmean",
            lambda t, axis=-1: t.shape[-1] / np.sum(1.0 / t, axis=axis),
        )
        unregister_reducer("hmean")

    def test_simulator_run_batch_restamps_jobs(self, configs):
        # run_batch honours the simulator it is called on, not whatever
        # backend/noise the jobs were built with.
        noisy_jobs = [SimJob("gcc", configs[0], n_samples=64, noise=True)]
        quiet = Simulator(noise=False)
        batch = quiet.run_batch(noisy_jobs)
        direct = quiet.run("gcc", configs[0], 64)
        assert np.array_equal(batch[0].trace("cpi"), direct.trace("cpi"))
        noisy = Simulator(noise=True).run("gcc", configs[0], 64)
        assert not np.array_equal(batch[0].trace("cpi"), noisy.trace("cpi"))

    def test_parallel_executor_reuses_pool(self, jobs):
        ex = ParallelExecutor(max_workers=2, chunk_size=3)
        try:
            ex.run_batch(jobs[:2])
            pool = ex._pool
            assert pool is not None
            ex.run_batch(jobs[2:4])
            assert ex._pool is pool
        finally:
            ex.close()
        assert ex._pool is None

    def test_search_top_k_zero_still_reports_best(self, configs):
        # Fit a tiny model and ask for counts only (top_k=0): best_config
        # must still be the feasible optimum, not None.
        train = SweepRunner(n_samples=64).run_configs("gcc", configs)
        model = repro.WaveletNeuralPredictor(n_coefficients=8).fit(
            train.design_matrix(), train.domain("cpi"))
        explorer = repro.PredictiveExplorer(train.space, {"cpi": model})
        res = explorer.search(repro.Objective("cpi"), limit=50, top_k=0,
                              seed=1)
        assert res.best_config is not None
        assert res.ranked == []
        full = explorer.search(repro.Objective("cpi"), limit=50, top_k=5,
                               seed=1)
        assert res.best_config.key() == full.best_config.key()
        assert res.best_score == full.best_score

    def test_builtin_reducers_protected(self):
        from repro.dse.explorer import unregister_reducer
        from repro.errors import ModelError

        with pytest.raises(ModelError):
            unregister_reducer("p99")
