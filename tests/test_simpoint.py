"""Unit tests for the SimPoint-style interval selection."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.simpoint import (
    SimPointResult,
    bayesian_information_criterion,
    kmeans,
    pick_simpoint,
)
from repro.workloads.spec2000 import get_benchmark


class TestKMeans:
    def test_separates_obvious_clusters(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0.0, 0.05, size=(30, 2))
        b = rng.normal(5.0, 0.05, size=(30, 2))
        X = np.vstack([a, b])
        labels, centroids, inertia = kmeans(X, 2, seed=1)
        assert len(set(labels[:30])) == 1
        assert len(set(labels[30:])) == 1
        assert labels[0] != labels[-1]

    def test_k_equals_n(self):
        X = np.arange(8.0).reshape(4, 2)
        labels, centroids, inertia = kmeans(X, 4, seed=0)
        assert sorted(labels.tolist()) == [0, 1, 2, 3]
        assert inertia == pytest.approx(0.0, abs=1e-12)

    def test_k_one(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(20, 3))
        labels, centroids, _ = kmeans(X, 1, seed=0)
        assert np.all(labels == 0)
        assert np.allclose(centroids[0], X.mean(axis=0))

    def test_invalid_k(self):
        with pytest.raises(WorkloadError):
            kmeans(np.ones((3, 2)), 5)

    def test_more_clusters_lower_inertia(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(size=(40, 3))
        _, _, i2 = kmeans(X, 2, seed=0)
        _, _, i6 = kmeans(X, 6, seed=0)
        assert i6 <= i2


class TestBIC:
    def test_right_k_scores_best_on_separated_data(self):
        rng = np.random.default_rng(4)
        X = np.vstack([rng.normal(i * 10, 0.1, size=(20, 2))
                       for i in range(3)])
        scores = {}
        for k in (1, 2, 3, 4):
            labels, centroids, _ = kmeans(X, k, seed=0)
            scores[k] = bayesian_information_criterion(X, labels, centroids)
        assert max(scores, key=scores.get) in (3, 4)
        assert scores[3] > scores[1]


class TestPickSimpoint:
    def test_result_structure(self):
        result = pick_simpoint(get_benchmark("gcc"), n_intervals=64, seed=0)
        assert isinstance(result, SimPointResult)
        assert 0 <= result.representative_interval < 64
        assert result.labels.shape == (64,)
        assert result.cluster_weights.sum() == pytest.approx(1.0)

    def test_representative_in_dominant_cluster(self):
        result = pick_simpoint(get_benchmark("swim"), n_intervals=64, seed=0)
        rep_label = result.labels[result.representative_interval]
        assert rep_label == result.dominant_cluster

    def test_fixed_cluster_count(self):
        result = pick_simpoint(get_benchmark("gcc"), n_intervals=32,
                               n_clusters=3, seed=0)
        assert result.n_clusters == 3

    def test_phase_rich_benchmark_needs_multiple_clusters(self):
        result = pick_simpoint(get_benchmark("gcc"), n_intervals=64,
                               max_clusters=6, seed=0)
        assert result.n_clusters >= 2
