"""Unit tests for repro.dse.space (Table 2)."""

import numpy as np
import pytest

from repro.dse.space import (
    DVM_PARAMETER,
    DesignSpace,
    Parameter,
    paper_design_space,
    table2_rows,
)
from repro.errors import ConfigurationError, SamplingError


class TestTable2:
    def test_nine_parameters(self):
        space = paper_design_space()
        assert space.n_parameters == 9
        assert space.names == (
            "fetch_width", "rob_size", "iq_size", "lsq_size", "l2_size_kb",
            "l2_latency", "il1_size_kb", "dl1_size_kb", "dl1_latency",
        )

    def test_level_sets_match_paper(self):
        space = paper_design_space()
        assert space.parameter("fetch_width").train_levels == (2, 4, 8, 16)
        assert space.parameter("fetch_width").test_levels == (2, 8)
        assert space.parameter("rob_size").train_levels == (96, 128, 160)
        assert space.parameter("l2_latency").train_levels == (8, 12, 14, 16, 20)
        assert space.parameter("dl1_size_kb").test_levels == (16, 32, 64)

    def test_test_levels_subset_of_train(self):
        # Table 2's test levels are all drawn from the train levels.
        for p in paper_design_space().parameters:
            assert set(p.test_levels) <= set(p.train_levels)

    def test_grid_sizes(self):
        space = paper_design_space()
        assert space.size("train") == 4 * 3 * 4 * 4 * 4 * 5 * 4 * 4 * 4
        assert space.size("test") == 2 * 2 * 2 * 3 * 3 * 3 * 3 * 3 * 3

    def test_table2_rows_render(self):
        rows = table2_rows()
        assert len(rows) == 9
        assert rows[0][0] == "fetch_width"
        assert rows[0][3] == 4


class TestEncoding:
    def test_encode_in_unit_interval(self):
        space = paper_design_space()
        for split in ("train", "test"):
            for cfg in space.sample_random(10, split=split, seed=3):
                vec = space.encode(cfg)
                assert vec.shape == (9,)
                assert np.all(vec >= 0.0) and np.all(vec <= 1.0)

    def test_extremes_map_to_0_and_1(self):
        space = paper_design_space()
        lo = space.config_from_values({p.name: p.train_levels[0]
                                       for p in space.parameters})
        hi = space.config_from_values({p.name: p.train_levels[-1]
                                       for p in space.parameters})
        assert np.allclose(space.encode(lo), 0.0)
        assert np.allclose(space.encode(hi), 1.0)

    def test_log_scale_spacing(self):
        p = Parameter("x", (8, 16, 32, 64), (8, 64))
        # Log scale: each doubling is an equal step.
        vals = [p.encode(v) for v in (8, 16, 32, 64)]
        steps = np.diff(vals)
        assert np.allclose(steps, steps[0])

    def test_linear_scale(self):
        p = Parameter("x", (1, 2, 3, 4), (1, 4), log_scale=False)
        assert p.encode(2.5) == pytest.approx(0.5)

    def test_encode_many_shape(self):
        space = paper_design_space()
        cfgs = space.sample_random(5, seed=1)
        assert space.encode_many(cfgs).shape == (5, 9)


class TestConfigConstruction:
    def test_level_indices_roundtrip(self):
        space = paper_design_space()
        cfg = space.config_from_level_indices([0] * 9, "train")
        assert cfg.fetch_width == 2
        assert cfg.l2_latency == 8

    def test_bad_index_rejected(self):
        space = paper_design_space()
        with pytest.raises(ConfigurationError):
            space.config_from_level_indices([9] * 9, "train")

    def test_wrong_length_rejected(self):
        with pytest.raises(ConfigurationError):
            paper_design_space().config_from_level_indices([0] * 3)

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ConfigurationError):
            paper_design_space().config_from_values({"cache_ways": 4})

    def test_values_of_roundtrip(self):
        space = paper_design_space()
        cfg = space.sample_random(1, seed=5)[0]
        values = space.values_of(cfg)
        rebuilt = space.config_from_values(values)
        assert rebuilt.key() == cfg.key()


class TestDvmSpace:
    def test_with_dvm_adds_tenth_parameter(self):
        space = paper_design_space().with_dvm_parameter()
        assert space.n_parameters == 10
        assert space.names[-1] == "dvm"

    def test_with_dvm_idempotent(self):
        space = paper_design_space().with_dvm_parameter()
        assert space.with_dvm_parameter() is space

    def test_dvm_value_maps_to_flag(self):
        space = paper_design_space().with_dvm_parameter()
        values = {p.name: p.train_levels[0] for p in space.parameters}
        values["dvm"] = 1
        cfg = space.config_from_values(values)
        assert cfg.dvm_enabled

    def test_dvm_parameter_definition(self):
        assert DVM_PARAMETER.train_levels == (0, 1)
        assert not DVM_PARAMETER.log_scale


class TestSampling:
    def test_unique_sampling(self):
        space = paper_design_space()
        cfgs = space.sample_random(50, split="test", seed=0)
        keys = {c.key() for c in cfgs}
        assert len(keys) == 50

    def test_values_come_from_split_levels(self):
        space = paper_design_space()
        for cfg in space.sample_random(20, split="test", seed=2):
            for p in space.parameters:
                assert getattr(cfg, p.name) in p.test_levels

    def test_oversampling_rejected(self):
        space = DesignSpace((Parameter("fetch_width", (2, 4), (2, 4)),))
        with pytest.raises(SamplingError):
            space.sample_random(3, split="train", seed=0)

    def test_duplicate_parameter_names_rejected(self):
        p = Parameter("fetch_width", (2, 4), (2,))
        with pytest.raises(ConfigurationError):
            DesignSpace((p, p))

    def test_unsorted_levels_rejected(self):
        with pytest.raises(ConfigurationError):
            Parameter("x", (4, 2), (2,))
