"""Tests for the closed-loop active-learning DSE (`repro.dse.active`)."""

import math

import numpy as np
import pytest

import repro
from repro.core.predictor import PredictorSettings, WaveletPredictorEnsemble
from repro.dse.active import (
    ActiveSearch,
    ActiveSearchResult,
    ActiveSearchSettings,
    pareto_front,
    run_active_search,
)
from repro.dse.explorer import Constraint, Objective
from repro.dse.lhs import sample_candidate_pool
from repro.dse.space import DesignSpace, Parameter, paper_design_space
from repro.engine import create_engine
from repro.errors import ExperimentError, ModelError, NotFittedError

FAST = PredictorSettings(n_coefficients=8)


def _settings(**overrides):
    base = dict(budget=36, batch_size=6, n_init=16, candidate_pool=96,
                n_members=2, seed=7, patience=0, predictor=FAST)
    base.update(overrides)
    return ActiveSearchSettings(**base)


def _runner(jobs=1):
    return repro.SweepRunner(
        n_samples=32, engine=create_engine(jobs=jobs, memory_items=0))


@pytest.fixture(scope="module")
def result():
    runner = _runner()
    return runner.run_active(
        "gcc", Objective("cpi", "mean"),
        constraints=[Constraint("power", "max", "<=", 80.0)],
        settings=_settings())


class TestEnsemble:
    def test_predict_with_std_shapes(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(size=(24, 3))
        traces = rng.uniform(size=(24, 16)) + 1.0
        ens = WaveletPredictorEnsemble(
            n_members=3, n_coefficients=4, seed=1).fit(X, traces)
        mean, std = ens.predict_with_std(X[:5])
        assert mean.shape == std.shape == (5, 16)
        assert np.all(std >= 0.0)
        assert ens.member_predictions(X[:5]).shape == (3, 5, 16)

    def test_member_zero_sees_full_data(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(size=(20, 2))
        traces = rng.uniform(size=(20, 8)) + 1.0
        ens = WaveletPredictorEnsemble(
            n_members=2, n_coefficients=4, seed=0).fit(X, traces)
        solo = repro.WaveletNeuralPredictor(
            n_coefficients=4).fit(X, traces)
        assert np.allclose(ens.members_[0].predict(X), solo.predict(X))

    def test_fit_deterministic_given_seed(self):
        rng = np.random.default_rng(2)
        X = rng.uniform(size=(20, 2))
        traces = rng.uniform(size=(20, 8)) + 1.0
        a = WaveletPredictorEnsemble(
            n_members=3, n_coefficients=4, seed=5).fit(X, traces)
        b = WaveletPredictorEnsemble(
            n_members=3, n_coefficients=4, seed=5).fit(X, traces)
        assert np.array_equal(a.predict(X), b.predict(X))

    def test_validation(self):
        with pytest.raises(ModelError):
            WaveletPredictorEnsemble(n_members=1)
        with pytest.raises(ModelError):
            WaveletPredictorEnsemble(settings=FAST, n_coefficients=4)
        with pytest.raises(NotFittedError):
            WaveletPredictorEnsemble(n_members=2).predict(np.zeros((1, 2)))
        assert WaveletPredictorEnsemble(n_members=2).selected_indices_ is None


class TestParetoFront:
    def test_non_dominated_rows(self):
        scores = np.array([[1.0, 3.0], [2.0, 2.0], [3.0, 1.0],
                           [2.5, 2.5], [1.0, 3.0]])
        front = pareto_front(scores)
        # (2.5, 2.5) is dominated by (2, 2); duplicates both survive.
        assert list(front) == [0, 1, 2, 4]

    def test_single_objective_is_argmin(self):
        scores = np.array([[3.0], [1.0], [2.0]])
        assert list(pareto_front(scores)) == [1]

    def test_rejects_non_matrix(self):
        with pytest.raises(ModelError):
            pareto_front(np.zeros(4))


class TestSettingsValidation:
    @pytest.mark.parametrize("overrides", [
        dict(budget=0), dict(batch_size=0), dict(n_init=4),
        dict(strategy="random"), dict(kappa=0.0),
        dict(candidate_pool=4, batch_size=8),
        dict(fit_fraction=0.0), dict(fit_fraction=1.5),
        dict(patience=-1), dict(tol=-1.0),
    ])
    def test_bad_settings_rejected(self, overrides):
        with pytest.raises(ModelError):
            _settings(**overrides)

    def test_settings_or_kwargs_not_both(self):
        with pytest.raises(ModelError):
            ActiveSearch(_runner(), Objective("cpi"),
                         settings=_settings(), budget=10)

    def test_unknown_domain_rejected(self):
        with pytest.raises(ExperimentError):
            ActiveSearch(_runner(), Objective("temperature"),
                         settings=_settings())

    def test_coefficients_exceeding_samples_rejected(self):
        with pytest.raises(ModelError):
            ActiveSearch(
                _runner(), Objective("cpi"),
                settings=_settings(
                    predictor=PredictorSettings(n_coefficients=64)))

    def test_requires_an_objective(self):
        with pytest.raises(ModelError):
            ActiveSearch(_runner(), [], settings=_settings())


class TestSingleObjective:
    def test_budget_and_bookkeeping(self, result):
        assert isinstance(result, ActiveSearchResult)
        assert result.n_simulations == 36
        assert result.rounds[0].strategy == "init"
        assert result.rounds[0].n_new == 16
        assert all(r.strategy == "ei" for r in result.rounds[1:])
        assert [r.n_simulations for r in result.rounds] == \
            [16, 22, 28, 34, 36]
        assert result.reason == "budget"
        assert not result.converged

    def test_observed_dataset_assembled(self, result):
        ds = result.observed
        assert ds.n_configs == 36
        assert ds.n_samples == 32
        keys = [c.key() for c in ds.configs]
        assert len(set(keys)) == len(keys)  # no design simulated twice
        for domain in ("cpi", "power", "avf", "iq_avf"):
            assert ds.domain(domain).shape == (36, 32)

    def test_best_is_true_feasible_minimum(self, result):
        scores = np.array([Objective("cpi", "mean").score(row)
                           for row in result.observed.domain("cpi")])
        feasible = np.array(
            [Constraint("power", "max", "<=", 80.0).satisfied(row)
             for row in result.observed.domain("power")])
        assert result.best_score == pytest.approx(scores[feasible].min())
        best_index = int(np.flatnonzero(
            feasible & (scores == scores[feasible].min()))[0])
        assert result.best_config.key() == \
            result.observed.configs[best_index].key()

    def test_trajectory_is_executor_independent(self):
        kwargs = dict(
            constraints=[Constraint("power", "max", "<=", 80.0)],
            settings=_settings(budget=28))
        seq = _runner(jobs=1).run_active("gcc", Objective("cpi"), **kwargs)
        par = _runner(jobs=3).run_active("gcc", Objective("cpi"), **kwargs)
        assert [c.key() for c in seq.observed.configs] == \
            [c.key() for c in par.observed.configs]
        assert seq.best_score == par.best_score
        for domain in seq.observed.domains:
            assert np.array_equal(seq.observed.domain(domain),
                                  par.observed.domain(domain))

    @pytest.mark.parametrize("strategy", ["ucb", "max_variance"])
    def test_other_strategies_run(self, strategy):
        res = _runner().run_active(
            "gcc", Objective("cpi", "mean"),
            settings=_settings(budget=24, strategy=strategy))
        assert res.n_simulations == 24
        assert res.rounds[-1].strategy == strategy
        assert res.best_config is not None

    def test_infeasible_constraints_leave_no_incumbent(self):
        res = _runner().run_active(
            "gcc", Objective("cpi", "mean"),
            constraints=[Constraint("power", "max", "<=", 0.01)],
            settings=_settings(budget=22))
        assert res.best_config is None
        assert res.best_score == math.inf
        assert all(r.n_feasible == 0 for r in res.rounds)

    def test_init_configs_override(self):
        space = paper_design_space()
        init = space.sample_random(16, split="train", seed=123)
        res = _runner().run_active(
            "gcc", Objective("cpi", "mean"),
            settings=_settings(budget=22), init_configs=init)
        assert [c.key() for c in res.observed.configs[:16]] == \
            [c.key() for c in init]

    def test_patience_suspended_until_something_is_feasible(self):
        # While no feasible design exists the acquisition is still
        # hunting for feasibility; stagnation of the (infinite)
        # incumbent must not trip the patience rule.
        res = _runner().run_active(
            "gcc", Objective("cpi", "mean"),
            constraints=[Constraint("power", "max", "<=", 0.01)],
            settings=_settings(budget=34, patience=2))
        assert res.reason == "budget"
        assert res.n_simulations == 34

    def test_convergence_stops_early(self):
        res = _runner().run_active(
            "gcc", Objective("cpi", "mean"),
            settings=_settings(budget=120, patience=1, tol=100.0))
        # A tolerance no round can beat trips the patience rule at the
        # first acquisition round.
        assert res.converged
        assert res.reason == "converged"
        assert res.n_simulations < 120

    def test_run_active_search_function(self):
        res = run_active_search(
            _runner(), "gcc", Objective("cpi", "mean"),
            settings=_settings(budget=20))
        assert res.n_simulations == 20


class TestMultiObjective:
    def test_pareto_front_maintained(self):
        res = _runner().run_active(
            "gcc", [Objective("cpi", "mean"), Objective("power", "p99")],
            settings=_settings(budget=32, batch_size=8))
        assert res.pareto
        scores = np.array([p.scores for p in res.pareto])
        # Mutually non-dominated: the front of the front is everything.
        assert len(pareto_front(scores)) == len(scores)
        # Every front point is an observed design.
        observed = {c.key() for c in res.observed.configs}
        assert all(p.config.key() in observed for p in res.pareto)

    def test_single_objective_has_empty_front(self, result):
        assert result.pareto == []


class TestCandidatePool:
    def _space(self):
        return DesignSpace((
            Parameter("fetch_width", (2, 4), (2, 4)),
            Parameter("rob_size", (96, 128), (96, 128)),
        ))

    def test_excludes_simulated_designs(self):
        space = self._space()
        all_configs = space.sample_random(4, split="train", seed=0)
        exclude = {c.key() for c in all_configs[:3]}
        pool = sample_candidate_pool(space, 10, seed=1,
                                     exclude_keys=exclude)
        assert len(pool) == 1
        assert pool[0].key() not in exclude

    def test_off_grid_excluded_keys_do_not_mask_the_grid(self):
        # Excluded keys need not lie in the sampled split's grid (an
        # explicit init design may come from anywhere); they must not
        # make the pool think the grid is exhausted.
        space = DesignSpace((
            Parameter("fetch_width", (2, 4), (8, 16)),
            Parameter("rob_size", (96,), (128,)),
        ))
        off_grid = {c.key()
                    for c in space.sample_random(2, split="test", seed=0)}
        assert len(off_grid) >= space.size("train")
        pool = sample_candidate_pool(space, 10, seed=1,
                                     exclude_keys=off_grid)
        assert len(pool) == space.size("train")

    def test_exhausted_space_returns_empty(self):
        space = self._space()
        exclude = {c.key()
                   for c in space.sample_random(4, split="train", seed=0)}
        assert sample_candidate_pool(space, 10, seed=1,
                                     exclude_keys=exclude) == []

    def test_exhaustion_ends_the_loop(self):
        space = self._space()
        init = space.sample_random(4, split="train", seed=0)
        res = _runner().run_active(
            "gcc", Objective("cpi", "mean"),
            settings=_settings(budget=10), space=space, init_configs=init)
        assert res.reason == "exhausted"
        assert res.n_simulations == 4
