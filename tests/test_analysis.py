"""Tests for the analysis package (stats, clustering, rendering)."""

import numpy as np
import pytest

from repro.analysis.cluster import (
    Merge,
    agglomerative_cluster,
    dendrogram_text,
    leaf_order,
)
from repro.analysis.render import (
    render_boxplot_rows,
    render_heatmap,
    render_star,
    render_table,
    render_trace_pair,
    sparkline,
)
from repro.analysis.stats import benchmark_table, domain_summary, sweep_table
from repro.core.metrics import boxplot_stats
from repro.errors import ReproError


class TestClustering:
    def test_merge_count(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(size=(6, 4))
        merges = agglomerative_cluster(X)
        assert len(merges) == 5

    def test_nearest_pair_merges_first(self):
        X = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 5.0], [9.0, 9.0]])
        merges = agglomerative_cluster(X)
        assert {merges[0].left, merges[0].right} == {0, 1}

    def test_heights_nondecreasing_average_linkage(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(size=(8, 3))
        merges = agglomerative_cluster(X, "average")
        heights = [m.height for m in merges]
        assert all(a <= b + 1e-9 for a, b in zip(heights, heights[1:]))

    @pytest.mark.parametrize("linkage", ["average", "single", "complete"])
    def test_all_linkages_run(self, linkage):
        rng = np.random.default_rng(2)
        X = rng.uniform(size=(7, 2))
        merges = agglomerative_cluster(X, linkage)
        assert len(merges) == 6

    def test_leaf_order_is_permutation(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(size=(9, 4))
        merges = agglomerative_cluster(X)
        order = leaf_order(merges, 9)
        assert sorted(order) == list(range(9))

    def test_similar_leaves_adjacent(self):
        X = np.array([[0.0], [10.0], [0.1], [10.1]])
        merges = agglomerative_cluster(X)
        order = leaf_order(merges, 4)
        pos = {leaf: i for i, leaf in enumerate(order)}
        assert abs(pos[0] - pos[2]) == 1
        assert abs(pos[1] - pos[3]) == 1

    def test_single_object_rejected(self):
        with pytest.raises(ReproError):
            agglomerative_cluster(np.ones((1, 2)))

    def test_bad_linkage_rejected(self):
        with pytest.raises(ReproError):
            agglomerative_cluster(np.ones((3, 2)), "ward")

    def test_dendrogram_text(self):
        X = np.array([[0.0], [1.0], [5.0]])
        merges = agglomerative_cluster(X)
        text = dendrogram_text(merges, ["a", "b", "c"])
        assert "a" in text and "b" in text


class TestStats:
    def test_domain_summary(self):
        errors = {"gcc": [1.0, 2.0, 3.0], "mcf": [5.0, 6.0, 7.0]}
        summary = domain_summary("cpi", errors)
        assert summary.benchmark_median("gcc") == 2.0
        assert summary.best_benchmark == "gcc"
        assert summary.worst_benchmark == "mcf"
        assert summary.overall_median == pytest.approx(4.0)
        assert summary.overall_max == 7.0

    def test_unknown_benchmark_rejected(self):
        summary = domain_summary("cpi", {"gcc": [1.0, 2.0]})
        with pytest.raises(ReproError):
            summary.benchmark_median("vpr")

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            domain_summary("cpi", {})

    def test_benchmark_table_sorted(self):
        errors = {"vpr": [3.0], "gcc": [1.0]}
        rows = benchmark_table(domain_summary("cpi", errors))
        assert [r[0] for r in rows] == ["gcc", "vpr"]

    def test_sweep_table(self):
        rows = sweep_table([16, 32], {"cpi": [2.0, 1.5], "avf": [1.0, 0.8]})
        assert rows[0] == (16, 1.0, 2.0)   # domains sorted (avf, cpi)

    def test_sweep_table_length_mismatch(self):
        with pytest.raises(ReproError):
            sweep_table([16, 32], {"cpi": [2.0]})


class TestRendering:
    def test_render_table_alignment(self):
        out = render_table(("name", "value"), [["a", 1.5], ["bb", 2.25]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_render_table_row_width_checked(self):
        with pytest.raises(ReproError):
            render_table(("a", "b"), [["only-one"]])

    def test_sparkline_length(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_sparkline_constant(self):
        line = sparkline([5, 5, 5])
        assert len(set(line)) == 1

    def test_trace_pair_shares_scale(self):
        out = render_trace_pair([0, 1, 2], [2, 1, 0], "x")
        lines = out.splitlines()
        assert lines[0].count("|") == 2

    def test_boxplot_rows(self):
        stats = {"gcc": boxplot_stats([1.0, 2.0, 3.0, 4.0]),
                 "mcf": boxplot_stats([5.0, 6.0, 7.0, 20.0])}
        out = render_boxplot_rows(stats)
        assert "gcc" in out and "mcf" in out and "med" in out

    def test_heatmap_shape_checked(self):
        with pytest.raises(ReproError):
            render_heatmap(np.ones((2, 2)), ["a"], ["x", "y"])

    def test_heatmap_renders(self):
        out = render_heatmap(np.array([[0.0, 1.0], [0.5, 0.2]]),
                             ["r1", "r2"], ["c1", "c2"])
        assert "r1" in out

    def test_star_plot(self):
        out = render_star({"fetch": 1.0, "rob": 0.25})
        assert "fetch" in out
        assert out.splitlines()[0].count("*") > out.splitlines()[1].count("*")

    def test_empty_star_rejected(self):
        with pytest.raises(ReproError):
            render_star({})
