"""Unit and property tests for repro.core.regression_tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.regression_tree import RegressionTree, SplitRecord
from repro.errors import ModelError, NotFittedError


def _step_data(n=64, d=3, split_feature=1, threshold=0.5, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(size=(n, d))
    y = (X[:, split_feature] > threshold).astype(float) * 10.0
    return X, y


class TestFitting:
    def test_recovers_single_split(self):
        X, y = _step_data()
        tree = RegressionTree(max_depth=1, min_samples_leaf=2).fit(X, y)
        assert not tree.root.is_leaf
        assert tree.root.feature == 1
        assert tree.root.threshold == pytest.approx(0.5, abs=0.08)

    def test_predictions_are_leaf_means(self):
        X, y = _step_data()
        tree = RegressionTree(max_depth=1, min_samples_leaf=2).fit(X, y)
        pred = tree.predict(X)
        assert np.allclose(np.unique(np.round(pred, 6)),
                           np.unique(np.round([y[y < 5].mean(), y[y >= 5].mean()], 6)))

    def test_max_depth_zero_gives_stump(self):
        X, y = _step_data()
        tree = RegressionTree(max_depth=0).fit(X, y)
        assert tree.root.is_leaf
        assert tree.predict(X[:3]) == pytest.approx([y.mean()] * 3)

    def test_constant_target_never_splits(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(size=(50, 4))
        tree = RegressionTree().fit(X, np.full(50, 3.0))
        assert tree.root.is_leaf
        assert tree.n_nodes == 1

    def test_min_samples_leaf_respected(self):
        X, y = _step_data(n=40)
        tree = RegressionTree(max_depth=8, min_samples_leaf=7).fit(X, y)
        for leaf in tree.leaves():
            assert leaf.n_samples >= 7

    def test_deeper_tree_fits_better(self):
        rng = np.random.default_rng(2)
        X = rng.uniform(size=(200, 2))
        y = np.sin(5 * X[:, 0]) * np.cos(3 * X[:, 1])
        shallow = RegressionTree(max_depth=1, min_samples_leaf=2).fit(X, y)
        deep = RegressionTree(max_depth=6, min_samples_leaf=2).fit(X, y)
        err_shallow = np.mean((shallow.predict(X) - y) ** 2)
        err_deep = np.mean((deep.predict(X) - y) ** 2)
        assert err_deep < err_shallow

    def test_bad_hyperparameters_rejected(self):
        with pytest.raises(ModelError):
            RegressionTree(max_depth=-1)
        with pytest.raises(ModelError):
            RegressionTree(min_samples_leaf=0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ModelError):
            RegressionTree().fit(np.ones((4, 2)), np.ones(5))

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            RegressionTree().predict([[1.0]])

    def test_predict_wrong_width_rejected(self):
        X, y = _step_data(d=3)
        tree = RegressionTree().fit(X, y)
        with pytest.raises(ModelError):
            tree.predict(np.ones((2, 5)))


class TestStructure:
    def test_bounding_boxes_nested(self):
        X, y = _step_data(n=128, d=2, seed=3)
        tree = RegressionTree(max_depth=4, min_samples_leaf=4).fit(X, y)
        for node in tree.nodes():
            if not node.is_leaf:
                for child in (node.left, node.right):
                    assert np.all(child.lower >= node.lower - 1e-12)
                    assert np.all(child.upper <= node.upper + 1e-12)

    def test_children_partition_samples(self):
        X, y = _step_data(n=100, seed=4)
        tree = RegressionTree(max_depth=5, min_samples_leaf=3).fit(X, y)
        for node in tree.nodes():
            if not node.is_leaf:
                assert node.left.n_samples + node.right.n_samples == node.n_samples

    def test_leaf_count_bounds(self):
        X, y = _step_data(n=100, seed=5)
        tree = RegressionTree(max_depth=3, min_samples_leaf=5).fit(X, y)
        n_leaves = sum(1 for _ in tree.leaves())
        assert 1 <= n_leaves <= 2 ** 3

    def test_splits_are_records(self):
        X, y = _step_data()
        tree = RegressionTree(max_depth=2, min_samples_leaf=2).fit(X, y)
        assert all(isinstance(s, SplitRecord) for s in tree.splits)
        positions = [s.position for s in tree.splits]
        assert positions == sorted(positions)

    @given(st.integers(0, 5))
    @settings(max_examples=10, deadline=None)
    def test_depth_never_exceeds_max_depth(self, max_depth):
        X, y = _step_data(n=80, seed=6)
        tree = RegressionTree(max_depth=max_depth, min_samples_leaf=2).fit(X, y)
        assert tree.depth <= max_depth


class TestImportance:
    def test_split_counts_identify_informative_feature(self):
        X, y = _step_data(n=200, d=4, split_feature=2, seed=7)
        tree = RegressionTree(max_depth=4, min_samples_leaf=4).fit(X, y)
        counts = tree.split_counts()
        assert counts[2] == counts.max()

    def test_first_split_positions(self):
        X, y = _step_data(n=200, d=4, split_feature=2, seed=8)
        tree = RegressionTree(max_depth=4, min_samples_leaf=4).fit(X, y)
        pos = tree.first_split_positions()
        assert pos[2] == 0  # most informative feature splits first

    def test_split_order_scores_in_unit_interval(self):
        X, y = _step_data(n=150, d=3, seed=9)
        tree = RegressionTree(max_depth=5, min_samples_leaf=4).fit(X, y)
        scores = tree.split_order_scores()
        assert np.all(scores >= 0.0) and np.all(scores <= 1.0)
        assert scores[1] == scores.max()  # the informative feature

    def test_importance_by_improvement_sums_to_one(self):
        rng = np.random.default_rng(10)
        X = rng.uniform(size=(150, 3))
        y = 2 * X[:, 0] + np.sin(6 * X[:, 1])
        tree = RegressionTree(max_depth=5, min_samples_leaf=4).fit(X, y)
        imp = tree.importance_by_improvement()
        assert imp.sum() == pytest.approx(1.0)
        assert np.all(imp >= 0.0)
        assert imp[2] == pytest.approx(min(imp), abs=1e-9)  # noise feature least important

    def test_stump_importance_all_zero(self):
        X, y = _step_data()
        tree = RegressionTree(max_depth=0).fit(X, y)
        assert np.all(tree.split_order_scores() == 0.0)
        assert np.all(tree.split_counts() == 0)


class TestVectorizedPredict:
    """Batched node routing must agree with a per-row reference walk."""

    @staticmethod
    def _reference_predict(tree, X):
        out = np.empty(X.shape[0])
        for i, row in enumerate(X):
            node = tree.root
            while not node.is_leaf:
                node = (node.left if row[node.feature] <= node.threshold
                        else node.right)
            out[i] = node.value
        return out

    def test_matches_reference_walk(self):
        rng = np.random.default_rng(42)
        X = rng.uniform(size=(300, 5))
        y = (np.sin(5 * X[:, 0]) + 2 * (X[:, 1] > 0.4)
             + 0.3 * rng.normal(size=300))
        tree = RegressionTree(max_depth=7, min_samples_leaf=3).fit(X, y)
        probe = rng.uniform(-0.2, 1.2, size=(500, 5))
        assert np.array_equal(tree.predict(probe),
                              self._reference_predict(tree, probe))

    def test_threshold_boundary_routes_left(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]] * 4)
        y = (X[:, 0] > 1.5).astype(float)
        tree = RegressionTree(max_depth=1, min_samples_leaf=2).fit(X, y)
        threshold = tree.root.threshold
        assert tree.predict([[threshold]])[0] == tree.root.left.value

    def test_stump_predicts_mean(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(size=(50, 2))
        y = rng.normal(size=50)
        tree = RegressionTree(max_depth=0).fit(X, y)
        assert np.allclose(tree.predict(X), y.mean())
