"""Unit and property tests for repro.dse.lhs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dse.lhs import (
    best_lhs_matrix,
    l2_star_discrepancy,
    latin_hypercube,
    matrix_to_level_indices,
    sample_test_configs,
    sample_train_configs,
)
from repro.dse.space import paper_design_space
from repro.errors import SamplingError


class TestLatinHypercube:
    @given(st.integers(2, 40), st.integers(1, 8))
    @settings(max_examples=25, deadline=None)
    def test_stratification_property(self, n, d):
        """Each column has exactly one point per stratum — the defining
        LHS property."""
        matrix = latin_hypercube(n, d, seed=n * 31 + d)
        assert matrix.shape == (n, d)
        for j in range(d):
            strata = np.floor(matrix[:, j] * n).astype(int)
            assert sorted(strata.tolist()) == list(range(n))

    def test_values_in_unit_cube(self):
        m = latin_hypercube(100, 9, seed=0)
        assert np.all(m >= 0.0) and np.all(m < 1.0)

    def test_deterministic_given_seed(self):
        assert np.allclose(latin_hypercube(20, 3, seed=5),
                           latin_hypercube(20, 3, seed=5))

    def test_bad_sizes_rejected(self):
        with pytest.raises(SamplingError):
            latin_hypercube(0, 3)
        with pytest.raises(SamplingError):
            latin_hypercube(3, 0)


class TestDiscrepancy:
    def test_lhs_beats_clumped_points(self):
        rng = np.random.default_rng(0)
        lhs = latin_hypercube(64, 4, seed=1)
        clumped = 0.05 * rng.uniform(size=(64, 4))  # all near the origin
        assert l2_star_discrepancy(lhs) < l2_star_discrepancy(clumped)

    def test_best_lhs_beats_iid_uniform(self):
        """The paper's actual sampler (best-of-m LHS) should beat naive
        iid sampling essentially always."""
        wins = 0
        for seed in range(5):
            rng = np.random.default_rng(seed + 100)
            lhs = best_lhs_matrix(50, 5, n_matrices=10, seed=seed)
            iid = rng.uniform(size=(50, 5))
            wins += int(l2_star_discrepancy(lhs) < l2_star_discrepancy(iid))
        assert wins == 5

    def test_known_single_point(self):
        # For one point x in [0,1]^1, Warnock's formula is analytic:
        # D^2 = 1/3 - (1 - x^2) + (1 - x)
        x = 0.3
        expected = np.sqrt(1.0 / 3.0 - (1 - x * x) + (1 - x))
        assert l2_star_discrepancy([[x]]) == pytest.approx(expected)

    def test_out_of_cube_rejected(self):
        with pytest.raises(SamplingError):
            l2_star_discrepancy([[1.5, 0.0]])

    def test_best_of_many_at_least_as_good(self):
        single = l2_star_discrepancy(latin_hypercube(40, 6, seed=0))
        best = l2_star_discrepancy(best_lhs_matrix(40, 6, n_matrices=10, seed=0))
        assert best <= single + 1e-12


class TestLevelMapping:
    def test_indices_in_range(self):
        m = latin_hypercube(30, 3, seed=2)
        idx = matrix_to_level_indices(m, [4, 3, 5])
        assert idx.shape == (30, 3)
        assert idx[:, 0].max() < 4
        assert idx[:, 1].max() < 3
        assert idx[:, 2].max() < 5

    def test_levels_covered_evenly(self):
        m = latin_hypercube(40, 1, seed=3)
        idx = matrix_to_level_indices(m, [4])
        counts = np.bincount(idx[:, 0], minlength=4)
        assert np.all(counts == 10)  # stratification guarantees balance

    def test_mismatched_counts_rejected(self):
        with pytest.raises(SamplingError):
            matrix_to_level_indices(latin_hypercube(5, 2), [4])


class TestPaperSampling:
    def test_train_configs_distinct_and_from_train_levels(self):
        space = paper_design_space()
        configs = sample_train_configs(space, n=200, n_matrices=5, seed=0)
        assert len({c.key() for c in configs}) == 200
        for cfg in configs[:20]:
            for p in space.parameters:
                assert getattr(cfg, p.name) in p.train_levels

    def test_test_configs_from_test_levels(self):
        space = paper_design_space()
        configs = sample_test_configs(space, n=50, seed=1)
        assert len(configs) == 50
        for cfg in configs:
            for p in space.parameters:
                assert getattr(cfg, p.name) in p.test_levels

    def test_deterministic(self):
        space = paper_design_space()
        a = sample_train_configs(space, n=30, n_matrices=3, seed=7)
        b = sample_train_configs(space, n=30, n_matrices=3, seed=7)
        assert [c.key() for c in a] == [c.key() for c in b]
