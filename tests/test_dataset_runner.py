"""Tests for DynamicsDataset and SweepRunner."""

import numpy as np
import pytest

from repro.dse.dataset import DynamicsDataset
from repro.dse.runner import SweepPlan, SweepRunner
from repro.dse.space import paper_design_space
from repro.errors import ConfigurationError
from repro.uarch.simulator import Simulator


@pytest.fixture(scope="module")
def small_dataset():
    space = paper_design_space()
    configs = space.sample_random(8, split="train", seed=4)
    runner = SweepRunner(n_samples=64)
    return runner.run_configs("gcc", configs, space)


class TestSweepRunner:
    def test_dataset_shapes(self, small_dataset):
        ds = small_dataset
        assert ds.n_configs == 8
        assert ds.n_samples == 64
        assert set(ds.domains) == {"avf", "cpi", "iq_avf", "power"}
        assert ds.domain("cpi").shape == (8, 64)

    def test_design_matrix(self, small_dataset):
        X = small_dataset.design_matrix()
        assert X.shape == (8, 9)
        assert np.all((X >= 0) & (X <= 1))

    def test_traces_match_direct_simulation(self, small_dataset):
        sim = Simulator()
        direct = sim.run("gcc", small_dataset.configs[0], 64).trace("cpi")
        assert np.allclose(small_dataset.domain("cpi")[0], direct)

    def test_train_test_plan(self):
        plan = SweepPlan(space=paper_design_space(), n_train=12, n_test=5,
                         n_lhs_matrices=2, seed=3)
        train, test = SweepRunner(n_samples=64).run_train_test("eon", plan)
        assert train.n_configs == 12
        assert test.n_configs == 5

    def test_unknown_domain_rejected(self, small_dataset):
        with pytest.raises(ConfigurationError):
            small_dataset.domain("energy")


class TestDatasetManipulation:
    def test_subset(self, small_dataset):
        sub = small_dataset.subset([0, 3, 5])
        assert sub.n_configs == 3
        assert np.allclose(sub.domain("cpi")[1],
                           small_dataset.domain("cpi")[3])
        assert sub.configs[2].key() == small_dataset.configs[5].key()

    def test_row_count_mismatch_rejected(self):
        space = paper_design_space()
        configs = space.sample_random(2, seed=0)
        with pytest.raises(ConfigurationError):
            DynamicsDataset("x", space, configs,
                            {"cpi": np.ones((3, 16))})

    def test_empty_dataset_has_no_samples(self):
        space = paper_design_space()
        ds = DynamicsDataset("x", space, [], {})
        with pytest.raises(ConfigurationError):
            ds.n_samples


class TestPersistence:
    def test_save_load_roundtrip(self, small_dataset, tmp_path):
        path = tmp_path / "gcc.npz"
        small_dataset.save(path)
        loaded = DynamicsDataset.load(path)
        assert loaded.benchmark == "gcc"
        assert loaded.n_configs == small_dataset.n_configs
        for dom in small_dataset.domains:
            assert np.allclose(loaded.domain(dom), small_dataset.domain(dom))
        for a, b in zip(loaded.configs, small_dataset.configs):
            assert a.varied_values() == b.varied_values()

    def test_save_load_preserves_dvm_flags(self, tmp_path):
        space = paper_design_space()
        configs = [c.with_dvm(i % 2 == 0)
                   for i, c in enumerate(space.sample_random(4, seed=9))]
        ds = SweepRunner(n_samples=64).run_configs("eon", configs, space)
        path = tmp_path / "eon.npz"
        ds.save(path)
        loaded = DynamicsDataset.load(path)
        assert [c.dvm_enabled for c in loaded.configs] == \
            [c.dvm_enabled for c in configs]
