"""Batched detailed-pipeline kernel: bit-identity, raggedness, routing.

The batched stepper (:func:`repro.uarch.pipeline_kernel.step_interval_batch`
driven by :func:`repro.uarch.detailed.run_detailed_group`) stacks every
core of a detailed group behind a leading config axis and advances the
whole group per interval in one call.  This module pins, against the
PR 7 golden digests of ``test_detailed_kernel``:

* batch-of-one and heterogeneous batch-of-B runs, sliced back per core;
* thread-count invariance (``REPRO_JIT_THREADS`` ∈ {1, 2, max} —
  rows are independent, so the prange schedule must never show);
* ragged groups: members resuming from different checkpoints (or none)
  under one ``active`` mask, with mid-stream batched checkpoint saves
  whose per-core ``ckpt/v2`` slices round-trip through either engine;
* the engine plumbing: group routing in ``repro.engine.kernel``,
  group-aware chunk carving/planning in ``repro.engine.executor``, and
  the compile-memo / thread-knob / cache-dir helpers in
  ``repro.uarch.jit``.
"""

import dataclasses

import numpy as np
import pytest
from test_detailed_kernel import GOLDEN_DIGESTS, IPS, N_SAMPLES, _digest, \
    golden_cases

from repro.engine.executor import ChunkTuner, batch_group_run, carve_chunk
from repro.engine.jobs import SimJob
from repro.errors import SimulationError
from repro.uarch import detailed, jit
from repro.uarch.params import baseline_config
from repro.uarch.pipeline import OutOfOrderCore

BATCH_ON = "repro.engine.kernel.detailed_batch_enabled"


def _job(bench, config, **kwargs):
    return SimJob(bench, config, backend="detailed", n_samples=N_SAMPLES,
                  instructions_per_sample=IPS, **kwargs)


def _golden_jobs(bench):
    """All golden cases for one benchmark, as a runnable group."""
    cases = [c for c in golden_cases() if c[1] == bench]
    return [c[0] for c in cases], [_job(bench, c[2]) for c in cases]


# ----------------------------------------------------------------------
# Golden digests through the batched stepper
# ----------------------------------------------------------------------
@pytest.mark.parametrize("bench", ["gcc", "mcf", "swim"])
def test_batched_group_matches_goldens(bench):
    """Heterogeneous groups (DVM members included) and the swim
    batch-of-one, through the interpreter twin of the batch loop."""
    labels, jobs = _golden_jobs(bench)
    results = detailed.run_detailed_group(jobs, engine="batch-interp")
    for label, result in zip(labels, results):
        assert _digest(result) == GOLDEN_DIGESTS[label]


def test_batch_of_b_slices_per_core():
    """A widened batch (ragged widths: iq/rob/lsq all differ) yields the
    golden stream for the member that has one, and every member matches
    its own per-job run bit-for-bit."""
    base = baseline_config()
    configs = [base,
               dataclasses.replace(base, iq_size=16),
               dataclasses.replace(base, iq_size=24, rob_size=128),
               dataclasses.replace(base, lsq_size=24),
               base.with_dvm(True, 0.3)]
    jobs = [_job("gcc", c) for c in configs]
    results = detailed.run_detailed_group(jobs, engine="batch-interp")
    assert _digest(results[0]) == GOLDEN_DIGESTS["gcc-baseline"]
    for job, result in zip(jobs, results):
        scalar = job.run()
        for name in scalar.traces:
            assert np.array_equal(result.traces[name],
                                  scalar.traces[name]), name
        for name in scalar.components:
            assert np.array_equal(result.components[name],
                                  scalar.components[name]), name


@pytest.mark.skipif(not jit.jit_available(), reason="numba not installed")
def test_batched_group_compiled_matches_goldens():
    labels, jobs = _golden_jobs("gcc")
    results = detailed.run_detailed_group(jobs, engine="batch")
    for label, result in zip(labels, results):
        assert _digest(result) == GOLDEN_DIGESTS[label]


def test_thread_count_invariance():
    """{1, 2, max} threads produce byte-identical streams (compiled
    prange in the numba leg; the knob is still exercised without it)."""
    labels, jobs = _golden_jobs("gcc")
    counts = [1, 2, jit.apply_jit_threads() or 1, None]
    try:
        for count in counts:
            jit.set_jit_threads(count)
            results = detailed.run_detailed_group(jobs, engine="batch")
            for label, result in zip(labels, results):
                assert _digest(result) == GOLDEN_DIGESTS[label], \
                    (label, count)
    finally:
        jit.set_jit_threads(None)


def test_per_job_engine_and_bad_engine():
    _, jobs = _golden_jobs("swim")
    results = detailed.run_detailed_group(jobs, engine="per-job")
    assert _digest(results[0]) == GOLDEN_DIGESTS["swim-strong"]
    with pytest.raises(SimulationError, match="unknown detailed group"):
        detailed.run_detailed_group(jobs, engine="cuda")
    with pytest.raises(SimulationError, match="must share"):
        detailed.run_detailed_group(
            [_job("gcc", baseline_config()), _job("mcf", baseline_config())])


# ----------------------------------------------------------------------
# Ragged checkpoint resume through the batch
# ----------------------------------------------------------------------
class _Crash(Exception):
    pass


def _crash_at(monkeypatch, interval):
    """Make the group loop crash when synthesizing ``interval``."""
    original = detailed.synthesize_interval

    def failing(workload, i, n, ips, seed=None):
        if i == interval and seed is None:
            raise _Crash()
        if seed is None:
            return original(workload, i, n, ips)
        return original(workload, i, n, ips, seed=seed)

    monkeypatch.setattr(detailed, "synthesize_interval", failing)


def test_ragged_batched_checkpoint_resume(monkeypatch, tmp_path):
    """Crash a batched run mid-stream, orphan one member's snapshot, and
    resume: a ragged group (two members resuming, one fresh) must match
    the uncheckpointed per-job reference bit-for-bit and clean up."""
    base = baseline_config()
    configs = [base.with_dvm(True, 0.3),
               dataclasses.replace(base, iq_size=16),
               dataclasses.replace(base, rob_size=128)]
    jobs = [_job("gcc", c, checkpoint_every=3, checkpoint_dir=str(tmp_path))
            for c in configs]
    reference = [dataclasses.replace(job, checkpoint_every=0).run()
                 for job in jobs]

    _crash_at(monkeypatch, 5)
    with pytest.raises(_Crash):
        detailed.run_detailed_group(jobs, engine="batch-interp")
    monkeypatch.undo()

    snapshots = sorted(tmp_path.glob("*.ckpt.npz"))
    assert len(snapshots) == len(jobs)  # saved mid-stream at interval 3
    (tmp_path / f"{jobs[2].key()}.ckpt.npz").unlink()  # force one fresh

    resumed = detailed.run_detailed_group(jobs, engine="batch-interp")
    for result, scalar in zip(resumed, reference):
        assert _digest(result) == _digest(scalar)
    assert not list(tmp_path.glob("*.ckpt.npz"))  # completed: all removed


def test_batched_snapshot_resumes_under_scalar_engine(monkeypatch, tmp_path):
    """A snapshot written from stacked state is a plain per-core
    ``ckpt/v2`` file: a scalar ``job.run()`` resumes it bit-identically
    (cross-engine checkpoint compatibility)."""
    label, bench, config = golden_cases()[4]  # gcc-dvm
    job = _job(bench, config, checkpoint_every=3,
               checkpoint_dir=str(tmp_path))
    _crash_at(monkeypatch, 5)
    with pytest.raises(_Crash):
        detailed.run_detailed_group([job, _job(bench, baseline_config(),
                                               checkpoint_every=3,
                                               checkpoint_dir=str(tmp_path))],
                                    engine="batch-interp")
    monkeypatch.undo()
    assert (tmp_path / f"{job.key()}.ckpt.npz").exists()
    assert _digest(job.run()) == GOLDEN_DIGESTS[label]


def test_scalar_snapshot_resumes_under_batch(monkeypatch, tmp_path):
    """And the converse: a scalar-engine snapshot resumes through the
    batched stepper."""
    label, bench, config = golden_cases()[0]
    job = _job(bench, config, checkpoint_every=3,
               checkpoint_dir=str(tmp_path))
    calls = [0]
    original = OutOfOrderCore.run_interval

    def wrapper(self, trace, _original=original):
        calls[0] += 1
        if calls[0] > 5:
            raise _Crash()
        return _original(self, trace, engine="python")

    monkeypatch.setattr(OutOfOrderCore, "run_interval", wrapper)
    with pytest.raises(_Crash):
        job.run()
    monkeypatch.undo()
    assert (tmp_path / f"{job.key()}.ckpt.npz").exists()
    result, = detailed.run_detailed_group([job], engine="batch-interp")
    assert _digest(result) == GOLDEN_DIGESTS[label]


# ----------------------------------------------------------------------
# Engine routing
# ----------------------------------------------------------------------
def test_run_group_routes_groups_through_batch(monkeypatch):
    from repro.engine import kernel

    seen = []
    real = detailed.run_detailed_group

    def spy(jobs, engine=None):
        seen.append(len(jobs))
        return real(jobs, engine="batch-interp")

    monkeypatch.setattr("repro.uarch.detailed.run_detailed_group", spy)
    monkeypatch.setattr(BATCH_ON, lambda: True)
    labels, jobs = _golden_jobs("gcc")
    results = kernel.run_jobs(jobs)
    assert seen == [len(jobs)]
    for label, result in zip(labels, results):
        assert _digest(result) == GOLDEN_DIGESTS[label]


def test_run_group_per_job_when_batching_off(monkeypatch):
    from repro.engine import kernel

    def explode(jobs, engine=None):  # pragma: no cover - must not run
        raise AssertionError("batched path taken while disabled")

    monkeypatch.setattr("repro.uarch.detailed.run_detailed_group", explode)
    monkeypatch.setattr(BATCH_ON, lambda: False)
    labels, jobs = _golden_jobs("gcc")
    for label, result in zip(labels, kernel.run_jobs(jobs)):
        assert _digest(result) == GOLDEN_DIGESTS[label]


def test_detailed_batch_enabled_requires_jit(monkeypatch):
    from repro.engine.kernel import detailed_batch_enabled

    try:
        jit.set_jit(True)
        assert detailed_batch_enabled() == jit.jit_available()
        jit.set_jit(False)
        assert not detailed_batch_enabled()
        monkeypatch.setenv("REPRO_BATCH_KERNEL", "0")
        jit.set_jit(True)
        assert not detailed_batch_enabled()
    finally:
        jit.set_jit(None)


# ----------------------------------------------------------------------
# Group-aware chunk carving and planning
# ----------------------------------------------------------------------
def _mixed_jobs():
    base = baseline_config()
    variants = [dataclasses.replace(base, iq_size=16 + 8 * i)
                for i in range(6)]
    interval = [SimJob("gcc", c, backend="interval") for c in variants[:2]]
    group_a = [_job("gcc", c) for c in variants]
    group_b = [_job("mcf", c) for c in variants[:2]]
    return interval + group_a + group_b  # runs: 2 interval | 6 gcc | 2 mcf


def test_carve_chunk_rounds_down_to_group_boundary(monkeypatch):
    monkeypatch.setattr(BATCH_ON, lambda: True)
    jobs = _mixed_jobs()
    # Detailed run starts at 2; a 4-job chunk from there would end at 6,
    # inside the gcc group — it must stop at the run start instead...
    assert carve_chunk(jobs, 2, 4) == 8  # ...no: run IS the chunk head
    # A chunk that holds the whole gcc run plus part of the mcf run
    # rounds down to the mcf boundary.
    assert carve_chunk(jobs, 2, 7) == 8
    assert carve_chunk(jobs, 2, 100) == 10  # both runs fit: keep all


def test_carve_chunk_extends_over_its_own_group(monkeypatch):
    monkeypatch.setattr(BATCH_ON, lambda: True)
    jobs = _mixed_jobs()
    # Chunk starting inside the gcc run with a boundary that shears it:
    # the run is the whole chunk, so it extends to the run's end.
    assert carve_chunk(jobs, 4, 2) == 8
    # Backend homogeneity still cuts first: interval jobs never join.
    assert carve_chunk(jobs, 0, 6) == 2


def test_carve_chunk_unchanged_when_batching_off(monkeypatch):
    monkeypatch.setattr(BATCH_ON, lambda: False)
    jobs = _mixed_jobs()
    assert carve_chunk(jobs, 2, 4) == 6  # shearing allowed, as before
    assert carve_chunk(jobs, 0, 6) == 2


def test_batch_group_run_lengths(monkeypatch):
    jobs = _mixed_jobs()
    monkeypatch.setattr(BATCH_ON, lambda: True)
    assert batch_group_run(jobs, 0) == 1   # interval job
    assert batch_group_run(jobs, 2) == 6   # gcc run
    assert batch_group_run(jobs, 4) == 4   # tail of the gcc run
    assert batch_group_run(jobs, 8) == 2   # mcf run
    monkeypatch.setattr(BATCH_ON, lambda: False)
    assert batch_group_run(jobs, 2) == 1


def test_chunk_tuner_plans_whole_groups():
    tuner = ChunkTuner(target_seconds=1.0)
    tuner.record("detailed", 0.01)
    flat = tuner.plan("detailed", 640, workers=4)
    grouped = tuner.plan("detailed", 640, workers=4, group_size=64)
    assert grouped % 64 == 0
    # Planning in group units keeps the same per-chunk time target:
    # 100 jobs' worth of work, rounded to one whole 64-job group.
    assert flat == 100 and grouped == 64
    # An untuned key probes a single group rather than shearing one.
    probe = ChunkTuner().plan("detailed", 640, workers=4, group_size=64)
    assert probe == 64
    # group_size=1 is exactly the historical plan.
    assert tuner.plan("detailed", 640, 4, group_size=1) == flat


# ----------------------------------------------------------------------
# jit helpers: thread knob, compile memo, cache dir
# ----------------------------------------------------------------------
def test_jit_threads_resolution(monkeypatch):
    monkeypatch.delenv("REPRO_JIT_THREADS", raising=False)
    assert jit.jit_threads() == 1
    monkeypatch.setenv("REPRO_JIT_THREADS", "3")
    assert jit.jit_threads() == 3
    try:
        jit.set_jit_threads(2)
        assert jit.jit_threads() == 2  # override beats environment
    finally:
        jit.set_jit_threads(None)
    assert jit.jit_threads() == 3
    assert jit.apply_jit_threads() >= 1
    monkeypatch.setenv("REPRO_JIT_THREADS", "zero")
    with pytest.raises(ValueError, match="REPRO_JIT_THREADS"):
        jit.jit_threads()
    with pytest.raises(ValueError, match=">= 1"):
        jit.set_jit_threads(0)


def test_jit_cache_dir_resolution(monkeypatch):
    monkeypatch.delenv("REPRO_JIT_CACHE_DIR", raising=False)
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    assert jit.jit_cache_dir() is None
    monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/rc")
    assert jit.jit_cache_dir() == "/tmp/rc/numba-cache"
    monkeypatch.setenv("REPRO_JIT_CACHE_DIR", "/tmp/explicit")
    assert jit.jit_cache_dir() == "/tmp/explicit"


def test_compile_njit_memoizes_per_flags():
    def probe(x):
        return x + 1

    first = jit.compile_njit(probe)
    assert jit.compile_njit(probe) is first  # memo hit, no recompile
    parallel = jit.compile_njit(probe, parallel=True)
    assert jit.compile_njit(probe, parallel=True) is parallel
    if jit.jit_available():
        assert first is not parallel  # distinct flag keys
        assert first(1) == 2
    else:
        assert first is False and parallel is False


def test_compiled_batch_step_memoized():
    from repro.uarch import pipeline_kernel

    first = pipeline_kernel.compiled_batch_step()
    assert pipeline_kernel.compiled_batch_step() is first
    if not jit.jit_available():
        assert first is False
