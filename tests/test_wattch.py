"""Unit tests for the Wattch-style power model."""

import numpy as np
import pytest

from repro.power.wattch import (
    STRUCTURES,
    WattchModel,
    clock_power,
    leakage_power,
    structure_energies,
)
from repro.uarch.params import MachineConfig, baseline_config


def _mix(n=1):
    ones = np.ones(n)
    return {"f_load": 0.25 * ones, "f_store": 0.10 * ones,
            "f_branch": 0.15 * ones, "f_fp": 0.05 * ones}


class TestEnergies:
    def test_all_structures_covered(self):
        energies = structure_energies(baseline_config())
        assert set(energies) == set(STRUCTURES)
        assert all(e > 0 for e in energies.values())

    def test_iq_energy_scales_linearly_with_entries(self):
        small = structure_energies(baseline_config(iq_size=32))
        large = structure_energies(baseline_config(iq_size=128))
        # CAM broadcast: linear in entry count.
        assert large["issue_queue"] / small["issue_queue"] == pytest.approx(4.0)

    def test_cache_energy_sublinear_in_capacity(self):
        small = structure_energies(baseline_config(dl1_size_kb=8))
        large = structure_energies(baseline_config(dl1_size_kb=64))
        ratio = large["dl1"] / small["dl1"]
        assert 1.0 < ratio < 8.0

    def test_width_scales_regfile_superlinearly(self):
        narrow = structure_energies(MachineConfig(fetch_width=2))
        wide = structure_energies(MachineConfig(fetch_width=16))
        assert wide["regfile"] / narrow["regfile"] > 8.0


class TestLeakageAndClock:
    def test_leakage_grows_with_state(self):
        small = leakage_power(MachineConfig(fetch_width=2, l2_size_kb=256,
                                            rob_size=96, iq_size=32,
                                            lsq_size=16, dl1_size_kb=8,
                                            il1_size_kb=8))
        large = leakage_power(MachineConfig(fetch_width=16, l2_size_kb=4096,
                                            rob_size=160, iq_size=128,
                                            lsq_size=64, dl1_size_kb=64,
                                            il1_size_kb=64))
        assert large > small > 0

    def test_clock_gating_floor(self):
        cfg = baseline_config()
        idle = clock_power(cfg, 0.0)
        busy = clock_power(cfg, 1.0)
        assert 0 < idle < busy
        assert idle == pytest.approx(0.25 * busy)


class TestPowerTrace:
    def test_shapes_and_positivity(self):
        model = WattchModel(baseline_config())
        ipc = np.linspace(0.5, 4.0, 16)
        power = model.power_trace(ipc, _mix(16), np.full(16, 0.05),
                                  np.full(16, 0.01))
        assert power.shape == (16,)
        assert np.all(power > 0)

    def test_power_increases_with_ipc(self):
        model = WattchModel(baseline_config())
        lo = model.power_trace(np.array([1.0]), _mix(), np.array([0.05]),
                               np.array([0.01]))
        hi = model.power_trace(np.array([4.0]), _mix(), np.array([0.05]),
                               np.array([0.01]))
        assert hi[0] > lo[0]

    def test_fp_heavy_mix_burns_more(self):
        model = WattchModel(baseline_config())
        int_mix = {"f_load": np.array(0.2), "f_store": np.array(0.1),
                   "f_branch": np.array(0.1), "f_fp": np.array(0.0)}
        fp_mix = {"f_load": np.array(0.2), "f_store": np.array(0.1),
                  "f_branch": np.array(0.1), "f_fp": np.array(0.4)}
        ipc = np.array(2.0)
        assert (model.power_trace(ipc, fp_mix, np.array(0.05), np.array(0.01))
                > model.power_trace(ipc, int_mix, np.array(0.05), np.array(0.01)))

    def test_realistic_absolute_range(self):
        model = WattchModel(baseline_config())
        power = model.power_trace(np.array([2.0]), _mix(), np.array([0.05]),
                                  np.array([0.01]))
        assert 25.0 < power[0] < 160.0

    def test_peak_power_sane(self):
        assert 40.0 < WattchModel(baseline_config()).peak_power() < 400.0


class TestCounterBackend:
    def test_zero_cycles_gives_leakage(self):
        model = WattchModel(baseline_config())
        assert model.power_from_counters({}, 0) == pytest.approx(
            leakage_power(baseline_config())
        )

    def test_counters_consistent_with_trace_model(self):
        """Feeding the counter backend the same per-cycle activities as
        the trace model must give the same power."""
        cfg = baseline_config()
        model = WattchModel(cfg)
        ipc = 2.0
        mix = {k: float(v[0]) for k, v in _mix(1).items()}
        activities = model.activities_per_cycle(
            np.array(ipc), {k: np.array(v) for k, v in mix.items()},
            np.array(0.05), np.array(0.01),
        )
        cycles = 1000.0
        counters = {k: float(v) * cycles for k, v in activities.items()}
        counters["instructions"] = ipc * cycles
        from_counters = model.power_from_counters(counters, cycles)
        from_trace = model.power_trace(
            np.array([ipc]), {k: np.array([v]) for k, v in mix.items()},
            np.array([0.05]), np.array([0.01]),
        )[0]
        assert from_counters == pytest.approx(from_trace, rel=1e-9)

    def test_unknown_counters_ignored(self):
        model = WattchModel(baseline_config())
        p = model.power_from_counters({"warp_scheduler": 1e9}, 100.0)
        assert np.isfinite(p)
