"""Tests for the thermal model and DTM policy."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.power.thermal import DTMPolicy, ThermalModel
from repro.uarch.params import baseline_config
from repro.uarch.simulator import Simulator


class TestThermalModel:
    def test_steady_state(self):
        model = ThermalModel(r_thermal=0.5, t_ambient=40.0)
        assert model.steady_state(80.0) == pytest.approx(80.0)

    def test_constant_power_converges_to_steady_state(self):
        model = ThermalModel(time_constant_intervals=4.0)
        power = np.full(200, 60.0)
        temp = model.temperature_trace(power, t_initial=model.t_ambient)
        assert temp[-1] == pytest.approx(model.steady_state(60.0), abs=0.1)

    def test_monotone_approach(self):
        model = ThermalModel()
        temp = model.temperature_trace(np.full(50, 90.0),
                                       t_initial=model.t_ambient)
        assert np.all(np.diff(temp) >= -1e-9)

    def test_low_pass_behaviour(self):
        """Temperature fluctuates far less than the power that drives it
        (relative to their means)."""
        model = ThermalModel(time_constant_intervals=8.0)
        rng = np.random.default_rng(0)
        power = 60.0 + 20.0 * rng.standard_normal(256)
        temp = model.temperature_trace(power)
        rel_power = power.std() / power.mean()
        rel_temp = (temp - model.t_ambient).std() / (temp - model.t_ambient).mean()
        assert rel_temp < rel_power / 2

    def test_higher_power_hotter(self):
        model = ThermalModel()
        cool = model.temperature_trace(np.full(64, 30.0))
        hot = model.temperature_trace(np.full(64, 120.0))
        assert hot[-1] > cool[-1]

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            ThermalModel(r_thermal=0.0)
        with pytest.raises(ConfigurationError):
            ThermalModel(time_constant_intervals=-1)

    def test_works_on_simulated_power(self):
        result = Simulator().run("crafty", baseline_config(), 128)
        temp = ThermalModel().temperature_trace(result.trace("power"))
        assert temp.shape == (128,)
        assert np.all(temp > ThermalModel().t_ambient - 1.0)
        assert np.all(temp < 150.0)


class TestDTMPolicy:
    def test_invalid_policy(self):
        with pytest.raises(ConfigurationError):
            DTMPolicy(throttle_factor=1.5)
        with pytest.raises(ConfigurationError):
            DTMPolicy(hysteresis=-1.0)

    def test_no_throttle_when_cool(self):
        thermal = ThermalModel()
        policy = DTMPolicy(trigger=200.0)
        power = np.full(64, 50.0)
        temp, managed, throttled = policy.apply(power, thermal)
        assert not throttled.any()
        assert np.allclose(managed, power)

    def test_throttles_hot_workload(self):
        thermal = ThermalModel(r_thermal=0.6, t_ambient=45.0)
        policy = DTMPolicy(trigger=85.0, throttle_factor=0.5)
        power = np.full(128, 120.0)     # steady state would be 117 C
        temp, managed, throttled = policy.apply(power, thermal)
        assert throttled.any()
        assert managed[throttled].max() == pytest.approx(60.0)
        # DTM keeps the die near the trigger rather than at 117 C.
        assert temp.max() < 95.0

    def test_hysteresis_creates_bursty_throttling(self):
        thermal = ThermalModel(r_thermal=0.6, time_constant_intervals=4.0)
        policy = DTMPolicy(trigger=85.0, hysteresis=6.0, throttle_factor=0.4)
        power = np.full(256, 110.0)
        _, _, throttled = policy.apply(power, thermal)
        # With hysteresis the controller cycles on and off.
        transitions = np.sum(np.diff(throttled.astype(int)) != 0)
        assert transitions >= 2

    def test_managed_cooler_than_unmanaged(self):
        thermal = ThermalModel(r_thermal=0.6)
        policy = DTMPolicy(trigger=80.0)
        result = Simulator().run("crafty",
                                 baseline_config(fetch_width=16, iq_size=128),
                                 128)
        power = result.trace("power")
        unmanaged = thermal.temperature_trace(power)
        managed_temp, _, throttled = policy.apply(power, thermal)
        if throttled.any():
            assert managed_temp.max() <= unmanaged.max() + 1e-9

    def test_worst_case_headroom_sign(self):
        thermal = ThermalModel(r_thermal=0.6)
        policy = DTMPolicy(trigger=85.0)
        cold = np.full(64, 20.0)
        hot = np.full(64, 150.0)
        assert policy.worst_case_headroom(cold, thermal) > 0
        assert policy.worst_case_headroom(hot, thermal) < 0
