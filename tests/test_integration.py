"""End-to-end integration tests across the whole pipeline."""

import numpy as np
import pytest

import repro
from repro.core.metrics import pooled_nmse_percent
from repro.dse.runner import SweepPlan, SweepRunner
from repro.dse.space import paper_design_space


@pytest.fixture(scope="module")
def gcc_train_test():
    plan = SweepPlan(space=paper_design_space(), n_train=100, n_test=25,
                     n_lhs_matrices=3, seed=11)
    return SweepRunner(n_samples=128).run_train_test("gcc", plan)


class TestEndToEnd:
    def test_full_pipeline_accuracy(self, gcc_train_test):
        """Sample -> simulate -> decompose -> fit -> predict -> score."""
        train, test = gcc_train_test
        model = repro.WaveletNeuralPredictor(n_coefficients=16)
        model.fit(train.design_matrix(), train.domain("cpi"))
        errors = pooled_nmse_percent(
            test.domain("cpi"), model.predict(test.design_matrix()))
        assert np.median(errors) < 12.0       # paper band (with margin)

    def test_avf_beats_mean_predictor(self, gcc_train_test):
        train, test = gcc_train_test
        model = repro.WaveletNeuralPredictor(n_coefficients=16)
        model.fit(train.design_matrix(), train.domain("avf"))
        pred = model.predict(test.design_matrix())
        actual = test.domain("avf")
        errors = pooled_nmse_percent(actual, pred)
        # Predicting the train-set grand mean everywhere is the null model.
        null = np.broadcast_to(train.domain("avf").mean(), actual.shape)
        null_errors = pooled_nmse_percent(actual, null)
        assert np.median(errors) < np.median(null_errors) / 2

    def test_public_api_surface(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quickstart_snippet(self):
        """The README/docstring snippet must work verbatim."""
        sim = repro.Simulator()
        result = sim.run("gcc", repro.baseline_config(), n_samples=128)
        assert result.trace("cpi").shape == (128,)

    def test_scenario_classification_end_to_end(self, gcc_train_test):
        train, test = gcc_train_test
        model = repro.WaveletNeuralPredictor(n_coefficients=16)
        model.fit(train.design_matrix(), train.domain("cpi"))
        pred = model.predict(test.design_matrix())
        ds_values = []
        for actual, p in zip(test.domain("cpi"), pred):
            _, q2, _ = repro.quartile_thresholds(actual)
            ds_values.append(repro.directional_symmetry(actual, p, q2))
        assert np.mean(ds_values) > 0.85


class TestBackendAgreement:
    """The DESIGN.md substitution argument, as a test."""

    @pytest.mark.parametrize("bench", ["gcc", "mcf"])
    def test_directional_agreement_on_cache_size(self, bench):
        small = repro.baseline_config(l2_size_kb=256)
        large = repro.baseline_config(l2_size_kb=4096)
        fast = repro.Simulator(backend="interval", noise=False)
        slow = repro.Simulator(backend="detailed")
        fast_delta = (fast.run(bench, small, 32).aggregate("cpi")
                      - fast.run(bench, large, 32).aggregate("cpi"))
        slow_delta = (slow.run(bench, small, 8,
                               instructions_per_sample=400).aggregate("cpi")
                      - slow.run(bench, large, 8,
                                 instructions_per_sample=400).aggregate("cpi"))
        assert fast_delta >= 0.0
        assert slow_delta >= -0.15   # detailed sim is noisier at small scale

    def test_width_ordering_agreement(self):
        narrow = repro.baseline_config(fetch_width=2)
        wide = repro.baseline_config(fetch_width=16)
        fast = repro.Simulator(backend="interval", noise=False)
        slow = repro.Simulator(backend="detailed")
        assert (fast.run("eon", narrow, 32).aggregate("cpi")
                > fast.run("eon", wide, 32).aggregate("cpi"))
        assert (slow.run("eon", narrow, 8, 400).aggregate("cpi")
                > slow.run("eon", wide, 8, 400).aggregate("cpi"))

    def test_power_scale_same_order_of_magnitude(self):
        cfg = repro.baseline_config()
        fast = repro.Simulator(backend="interval", noise=False)
        slow = repro.Simulator(backend="detailed")
        p_fast = fast.run("gcc", cfg, 32).aggregate("power")
        p_slow = slow.run("gcc", cfg, 8, 400).aggregate("power")
        assert 0.2 < p_fast / p_slow < 5.0
