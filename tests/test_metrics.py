"""Unit and property tests for repro.core.metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import (
    BoxplotStats,
    boxplot_stats,
    directional_asymmetry_percent,
    directional_symmetry,
    mae,
    mean_relative_error_percent,
    mse,
    nmse_percent,
    overall_median,
    quartile_thresholds,
    rmse,
    scenario_asymmetries,
    signal_nmse_percent,
    summarize_errors,
    threshold_violation_fraction,
)
from repro.errors import ModelError


def _traces(n=16):
    return st.lists(st.floats(-100, 100, allow_nan=False, allow_infinity=False),
                    min_size=n, max_size=n)


class TestPointwiseErrors:
    def test_mse_zero_for_exact_prediction(self):
        x = np.arange(10.0)
        assert mse(x, x) == 0.0

    def test_mse_known_value(self):
        assert mse([0.0, 0.0], [1.0, 3.0]) == pytest.approx(5.0)

    def test_rmse_is_sqrt_of_mse(self):
        a, p = [0.0, 0.0], [1.0, 3.0]
        assert rmse(a, p) == pytest.approx(np.sqrt(mse(a, p)))

    def test_mae_known_value(self):
        assert mae([0.0, 0.0], [1.0, -3.0]) == pytest.approx(2.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ModelError):
            mse([1.0, 2.0], [1.0])

    @given(_traces(), _traces())
    @settings(max_examples=40, deadline=None)
    def test_mse_nonnegative_and_symmetric(self, a, p):
        assert mse(a, p) >= 0.0
        assert mse(a, p) == pytest.approx(mse(p, a))


class TestNormalizedErrors:
    def test_nmse_is_percent_of_variance(self):
        rng = np.random.default_rng(0)
        actual = rng.normal(size=256)
        noise = rng.normal(size=256)
        # Prediction = actual + noise with noise std = 10% of signal std.
        scale = 0.1 * actual.std() / noise.std()
        predicted = actual + noise * scale
        assert nmse_percent(actual, predicted) == pytest.approx(1.0, rel=0.2)

    def test_nmse_of_mean_prediction_is_100(self):
        actual = np.array([1.0, 2.0, 3.0, 4.0])
        predicted = np.full(4, actual.mean())
        assert nmse_percent(actual, predicted) == pytest.approx(100.0)

    def test_nmse_constant_trace_perfect_prediction(self):
        assert nmse_percent([5.0] * 8, [5.0] * 8) == 0.0

    def test_nmse_constant_trace_wrong_prediction(self):
        v = nmse_percent([5.0] * 8, [6.0] * 8)
        assert v > 0.0 and np.isfinite(v)

    def test_signal_nmse_uses_mean_square(self):
        actual = np.array([2.0, 2.0])
        predicted = np.array([2.2, 1.8])
        expected = 100.0 * np.mean([0.04, 0.04]) / 4.0
        assert signal_nmse_percent(actual, predicted) == pytest.approx(expected)

    def test_mean_relative_error(self):
        assert mean_relative_error_percent([2.0, 4.0], [2.2, 3.6]) == pytest.approx(10.0)

    def test_nmse_scale_invariance(self):
        rng = np.random.default_rng(1)
        a = rng.uniform(1, 2, size=64)
        p = a + rng.normal(scale=0.05, size=64)
        assert nmse_percent(a, p) == pytest.approx(nmse_percent(a * 50, p * 50), rel=1e-9)


class TestThresholds:
    def test_quartile_thresholds_formula(self):
        trace = [0.0, 1.0, 2.0, 4.0]
        q1, q2, q3 = quartile_thresholds(trace)
        assert (q1, q2, q3) == (1.0, 2.0, 3.0)

    def test_ds_perfect_prediction(self):
        trace = np.linspace(0, 1, 32)
        assert directional_symmetry(trace, trace, 0.5) == 1.0

    def test_ds_half_random(self):
        actual = np.array([0.0, 1.0, 0.0, 1.0])
        predicted = np.array([1.0, 1.0, 0.0, 0.0])  # 2 of 4 correct sides
        assert directional_symmetry(actual, predicted, 0.5) == 0.5

    def test_asymmetry_complement(self):
        actual = np.array([0.0, 1.0, 0.0, 1.0])
        predicted = np.array([1.0, 1.0, 0.0, 0.0])
        assert directional_asymmetry_percent(actual, predicted, 0.5) == pytest.approx(50.0)

    def test_scenario_asymmetries_returns_three(self):
        rng = np.random.default_rng(2)
        a = rng.uniform(size=128)
        p = a + rng.normal(scale=0.02, size=128)
        out = scenario_asymmetries(a, p)
        assert len(out) == 3
        assert all(0.0 <= v <= 100.0 for v in out)

    def test_violation_fraction(self):
        assert threshold_violation_fraction([0.1, 0.2, 0.5, 0.9], 0.5) == pytest.approx(0.5)

    @given(_traces(), st.floats(-50, 50))
    @settings(max_examples=40, deadline=None)
    def test_ds_bounds(self, trace, threshold):
        p = list(reversed(trace))
        ds = directional_symmetry(trace, p, threshold)
        assert 0.0 <= ds <= 1.0


class TestBoxplots:
    def test_median_and_quartiles(self):
        stats = boxplot_stats(np.arange(1.0, 102.0))  # 1..101
        assert stats.median == pytest.approx(51.0)
        assert stats.q1 == pytest.approx(26.0)
        assert stats.q3 == pytest.approx(76.0)
        assert stats.iqr == pytest.approx(50.0)

    def test_outlier_detection(self):
        values = np.concatenate([np.ones(20), [100.0]])
        stats = boxplot_stats(values)
        assert stats.outliers == (100.0,)
        assert stats.whisker_high == pytest.approx(1.0)

    def test_no_outliers_whiskers_at_extremes(self):
        values = np.linspace(0, 10, 50)
        stats = boxplot_stats(values)
        assert stats.whisker_low == pytest.approx(0.0)
        assert stats.whisker_high == pytest.approx(10.0)
        assert stats.outliers == ()

    def test_summarize_errors_keys(self):
        out = summarize_errors([1.0, 2.0, 3.0])
        assert set(out) >= {"median", "mean", "max", "min", "q1", "q3", "n", "boxplot"}
        assert out["n"] == 3
        assert isinstance(out["boxplot"], BoxplotStats)

    def test_overall_median_pools_benchmarks(self):
        assert overall_median([[1.0, 2.0], [3.0, 4.0, 100.0]]) == pytest.approx(3.0)

    @given(st.lists(st.floats(0, 1000, allow_nan=False), min_size=2, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_boxplot_invariants(self, values):
        stats = boxplot_stats(values)
        assert stats.q1 <= stats.median <= stats.q3
        # Whiskers bracket the median (interpolated percentiles can land
        # beyond every inlier, so they need not bracket the hinges).
        assert stats.whisker_low <= stats.median <= stats.whisker_high
        for out in stats.outliers:
            assert out < stats.whisker_low or out > stats.whisker_high
