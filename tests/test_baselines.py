"""Unit tests for repro.core.baselines."""

import numpy as np
import pytest

from repro.core.baselines import (
    GlobalAggregateModel,
    LinearCoefficientModel,
    PerSampleModel,
)
from repro.core.predictor import WaveletNeuralPredictor
from repro.errors import ModelError, NotFittedError


def _nonlinear_dynamics(n_cfg=100, n_samples=32, seed=0):
    """Dynamics with a strongly non-linear config dependence."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(size=(n_cfg, 3))
    t = np.linspace(0, 1, n_samples)
    traces = []
    for x in X:
        # Thresholded (non-linear) response mimicking a working set
        # falling out of a cache.
        miss = 1.0 / (1.0 + np.exp((x[0] - 0.5) * 12))
        traces.append(0.8 + 2.0 * miss + 0.4 * x[1] * np.sin(2 * np.pi * 3 * t))
    return X, np.vstack(traces)


class TestLinearCoefficientModel:
    def test_shapes(self):
        X, traces = _nonlinear_dynamics()
        model = LinearCoefficientModel(n_coefficients=8).fit(X, traces)
        assert model.predict(X[:4]).shape == (4, 32)

    def test_recovers_linear_response_exactly(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(size=(50, 2))
        t = np.linspace(0, 1, 16)
        traces = np.vstack([1.0 + 2 * x[0] + x[1] * np.ones_like(t) for x in X])
        model = LinearCoefficientModel(n_coefficients=4).fit(X, traces)
        errs = model.score(X, traces)
        assert np.median(errs) < 1e-6

    def test_worse_than_wavelet_nn_on_nonlinear_response(self):
        X, traces = _nonlinear_dynamics(seed=2)
        train, test = slice(0, 75), slice(75, 100)
        lin = LinearCoefficientModel(n_coefficients=16).fit(X[train], traces[train])
        wnn = WaveletNeuralPredictor(n_coefficients=16).fit(X[train], traces[train])
        assert (np.median(wnn.score(X[test], traces[test]))
                < np.median(lin.score(X[test], traces[test])))

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            LinearCoefficientModel().predict([[0.0]])

    def test_bad_k(self):
        with pytest.raises(ModelError):
            LinearCoefficientModel(n_coefficients=0)


class TestGlobalAggregateModel:
    def test_prediction_is_flat(self):
        X, traces = _nonlinear_dynamics(n_cfg=60)
        model = GlobalAggregateModel().fit(X, traces)
        pred = model.predict(X[:3])
        assert np.allclose(pred, pred[:, :1])

    def test_aggregate_is_accurate(self):
        X, traces = _nonlinear_dynamics(n_cfg=120, seed=3)
        model = GlobalAggregateModel().fit(X[:90], traces[:90])
        agg_pred = model.predict_aggregate(X[90:])
        agg_true = traces[90:].mean(axis=1)
        assert np.abs(agg_pred - agg_true).mean() < 0.25

    def test_dynamics_error_much_worse_than_wavelet_model(self):
        X, traces = _nonlinear_dynamics(n_cfg=120, seed=4)
        train, test = slice(0, 90), slice(90, 120)
        flat = GlobalAggregateModel().fit(X[train], traces[train])
        wnn = WaveletNeuralPredictor(n_coefficients=16).fit(X[train], traces[train])
        med_flat = np.median(flat.score(X[test], traces[test]))
        med_wnn = np.median(wnn.score(X[test], traces[test]))
        # The flat model cannot explain any within-trace variance:
        # its variance-normalized MSE% should be near 100%.
        assert med_flat > 60.0
        assert med_wnn < med_flat / 2

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            GlobalAggregateModel().predict([[0.0]])
        with pytest.raises(NotFittedError):
            GlobalAggregateModel().predict_aggregate([[0.0]])


class TestPerSampleModel:
    def test_one_network_per_sample(self):
        X, traces = _nonlinear_dynamics(n_cfg=50, n_samples=16)
        model = PerSampleModel().fit(X, traces)
        assert model.n_networks == 16

    def test_shapes(self):
        X, traces = _nonlinear_dynamics(n_cfg=50, n_samples=16)
        model = PerSampleModel().fit(X, traces)
        assert model.predict(X[:5]).shape == (5, 16)

    def test_reasonable_accuracy(self):
        from repro.core.metrics import mae

        X, traces = _nonlinear_dynamics(n_cfg=80, n_samples=16, seed=5)
        model = PerSampleModel().fit(X[:60], traces[:60])
        errs = model.score(X[60:], traces[60:], metric=mae)
        # Absolute accuracy is decent even though the variance-normalized
        # error blows up on near-flat traces (the baseline's weakness).
        assert np.median(errs) < 0.3

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            PerSampleModel().predict([[0.0]])
        with pytest.raises(NotFittedError):
            PerSampleModel().n_networks

    def test_row_mismatch(self):
        with pytest.raises(ModelError):
            PerSampleModel().fit(np.ones((3, 2)), np.ones((4, 8)))
