"""Golden digests and engine parity for the detailed pipeline kernel.

The detailed backend has two execution engines — the object-model
interpreter and the struct-of-arrays kernel (optionally numba-compiled)
— that must produce bit-identical statistic streams.  This module pins:

* golden sha256 digests of full detailed runs for five
  (benchmark, config) pairs, including DVM-enabled ones — any
  behavioural drift in the pipeline, caches, predictor or DVM
  controller fails loudly;
* interpreter / kernel / JIT-setting parity against those digests
  (the compiled-kernel case runs in CI's with-numba leg and is skipped
  where numba is absent);
* canonical-snapshot round-trips across engines, checkpoint
  resume-mid-run (including crashing under one engine and resuming
  under the other), and v1-checkpoint invalidation;
* the trace memo's sharing and isolation guarantees.

Regenerate the digest table with ``tools/capture_detailed_goldens.py``
after an *intended* behaviour change.
"""

import hashlib
import os
import time

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.reliability.dvm import DVMController, DVMPolicy
from repro.uarch import jit
from repro.uarch.detailed import (CHECKPOINT_VERSION, DetailedSimulator,
                                  sweep_checkpoints)
from repro.uarch.params import MachineConfig, baseline_config
from repro.uarch.pipeline import OutOfOrderCore
from repro.workloads.generator import clear_trace_memo, synthesize_interval
from repro.workloads.spec2000 import get_benchmark

N_SAMPLES = 8
IPS = 400

STREAMS = ("cpi", "power", "avf", "iq_avf", "mispredict_rate",
           "dvm_throttled_frac")

#: sha256 over the concatenated float64 bytes of all six streams of an
#: 8-interval x 400-instruction detailed run.
GOLDEN_DIGESTS = {
    "gcc-baseline":
        "72d40a0fe267aa9a2bd4b6eea233fadc404f6f71524086026bbfe77a34c24747",
    "mcf-weak":
        "1cc2d47861d0610e2e7947c96a4cafb551c95360b85145c261883ce8b88206af",
    "swim-strong":
        "caae8a1b1e7016ca7e590652561ed7fef831444f41a824a19dfe68193d3e71bd",
    "mcf-dvm-tight":
        "91e9ddb1185e7c40cb770552e49cd2a0b16dc5286cf22c0d1a387b45d3fcbd25",
    "gcc-dvm":
        "71b15594b533fecab8903fd7f17d2848e32bcbc98f803eb345404a2b11c40d8d",
}


def golden_cases():
    weak = MachineConfig(fetch_width=2, rob_size=96, iq_size=32,
                         lsq_size=16, l2_size_kb=256, l2_latency=20,
                         il1_size_kb=8, dl1_size_kb=8, dl1_latency=4)
    strong = MachineConfig(fetch_width=16, rob_size=160, iq_size=128,
                           lsq_size=64, l2_size_kb=4096, l2_latency=8,
                           il1_size_kb=64, dl1_size_kb=64, dl1_latency=1)
    return [
        ("gcc-baseline", "gcc", baseline_config()),
        ("mcf-weak", "mcf", weak),
        ("swim-strong", "swim", strong),
        ("mcf-dvm-tight", "mcf", baseline_config().with_dvm(True, 0.05)),
        ("gcc-dvm", "gcc", baseline_config().with_dvm(True, 0.3)),
    ]


def _digest(result) -> str:
    parts = []
    for name in STREAMS:
        arr = result.traces.get(name)
        if arr is None:
            arr = result.components[name]
        parts.append(np.ascontiguousarray(arr, dtype=np.float64).tobytes())
    return hashlib.sha256(b"".join(parts)).hexdigest()


def _force_engine(monkeypatch, engine):
    original = OutOfOrderCore.run_interval
    monkeypatch.setattr(
        OutOfOrderCore, "run_interval",
        lambda self, trace, _original=original, _engine=engine:
            _original(self, trace, engine=_engine))


def _run_case(bench, config, **kwargs):
    return DetailedSimulator(config).run(
        bench, n_samples=N_SAMPLES, instructions_per_sample=IPS, **kwargs)


# ----------------------------------------------------------------------
# Golden digests per engine
# ----------------------------------------------------------------------
@pytest.mark.parametrize("label,bench,config", golden_cases(),
                         ids=[c[0] for c in golden_cases()])
def test_interpreter_matches_goldens(label, bench, config):
    assert _digest(_run_case(bench, config)) == GOLDEN_DIGESTS[label]


@pytest.mark.parametrize("label,bench,config", golden_cases(),
                         ids=[c[0] for c in golden_cases()])
def test_kernel_matches_goldens_uncompiled(monkeypatch, label, bench, config):
    _force_engine(monkeypatch, "kernel-interp")
    assert _digest(_run_case(bench, config)) == GOLDEN_DIGESTS[label]


@pytest.mark.skipif(not jit.jit_available(), reason="numba not installed")
@pytest.mark.parametrize("label,bench,config", golden_cases(),
                         ids=[c[0] for c in golden_cases()])
def test_kernel_matches_goldens_compiled(monkeypatch, label, bench, config):
    _force_engine(monkeypatch, "kernel")
    assert _digest(_run_case(bench, config)) == GOLDEN_DIGESTS[label]


def test_jit_on_off_parity():
    """Digest invariant under the JIT setting, whatever numba's state.

    With numba absent a requested JIT silently falls back to the
    interpreter; with numba present (CI's with-numba leg) the default
    engine becomes the compiled kernel — either way the streams must
    not move.
    """
    label, bench, config = golden_cases()[0]
    try:
        jit.set_jit(False)
        off = _digest(_run_case(bench, config))
        jit.set_jit(True)
        on = _digest(_run_case(bench, config))
    finally:
        jit.set_jit(None)
    assert off == on == GOLDEN_DIGESTS[label]


def test_unknown_engine_rejected():
    core = OutOfOrderCore(baseline_config())
    trace = synthesize_interval(get_benchmark("gcc"), 0, N_SAMPLES, IPS)
    with pytest.raises(SimulationError, match="unknown pipeline engine"):
        core.run_interval(trace, engine="fortran")


# ----------------------------------------------------------------------
# Snapshot round-trips across engines
# ----------------------------------------------------------------------
def _interval_signature(stats):
    return (stats.cycles, stats.branch_mispredicts,
            stats.dvm_throttled_cycles, tuple(stats.counters.items()),
            tuple(stats.ace_bit_cycles.items()))


def _core_with_dvm():
    return OutOfOrderCore(baseline_config(),
                         dvm=DVMController(DVMPolicy(threshold=0.3)))


def _run_intervals(core, lo, hi, engine):
    workload = get_benchmark("gcc")
    return [
        _interval_signature(core.run_interval(
            synthesize_interval(workload, i, N_SAMPLES, IPS), engine=engine))
        for i in range(lo, hi)
    ]


def test_alternating_engines_bit_identical():
    reference = _run_intervals(_core_with_dvm(), 0, N_SAMPLES, "python")
    core = _core_with_dvm()
    workload = get_benchmark("gcc")
    mixed = [
        _interval_signature(core.run_interval(
            synthesize_interval(workload, i, N_SAMPLES, IPS),
            engine=("python" if i % 2 else "kernel-interp")))
        for i in range(N_SAMPLES)
    ]
    assert mixed == reference


@pytest.mark.parametrize("first_engine,second_engine",
                         [("kernel-interp", "python"),
                          ("python", "kernel-interp")])
def test_snapshot_round_trip_across_engines(first_engine, second_engine):
    reference = _run_intervals(_core_with_dvm(), 0, N_SAMPLES, "python")
    core = _core_with_dvm()
    head = _run_intervals(core, 0, 4, first_engine)
    snapshot = core.snapshot_state()
    resumed = _core_with_dvm()
    resumed.restore_state(snapshot)
    tail = _run_intervals(resumed, 4, N_SAMPLES, second_engine)
    assert head == reference[:4]
    assert tail == reference[4:]


def test_kernel_and_object_snapshots_identical():
    core = _core_with_dvm()
    _run_intervals(core, 0, 4, "kernel-interp")
    from_kernel = core.snapshot_state()
    core._leave_kernel_mode()
    from_objects = core.snapshot_state()
    assert set(from_kernel) == set(from_objects)
    for key in from_kernel:
        assert np.array_equal(from_kernel[key], from_objects[key]), key


def test_restore_rejects_mismatched_shapes():
    snapshot = OutOfOrderCore(baseline_config()).snapshot_state()
    small = MachineConfig(il1_size_kb=8, dl1_size_kb=8)
    with pytest.raises(Exception, match="does not match"):
        OutOfOrderCore(small).restore_state(snapshot)


# ----------------------------------------------------------------------
# Checkpointing on the array snapshot (format v2)
# ----------------------------------------------------------------------
class _Crash(Exception):
    pass


def _crashing_run(monkeypatch, bench, config, path, engine, crash_after):
    """Run with checkpointing, forcing ``engine``, crashing after N
    intervals; returns without the crash propagating."""
    original = OutOfOrderCore.run_interval
    calls = [0]

    def wrapper(self, trace, _original=original):
        calls[0] += 1
        if calls[0] > crash_after:
            raise _Crash()
        return _original(self, trace, engine=engine)

    monkeypatch.setattr(OutOfOrderCore, "run_interval", wrapper)
    with pytest.raises(_Crash):
        _run_case(bench, config, checkpoint_every=3, checkpoint_path=path)
    monkeypatch.undo()


@pytest.mark.parametrize("crash_engine,resume_engine",
                         [("python", "python"),
                          ("kernel-interp", "python"),
                          ("python", "kernel-interp")])
def test_checkpoint_resume_mid_run(monkeypatch, tmp_path,
                                   crash_engine, resume_engine):
    """A crashed run resumes bit-identically — in either engine, from a
    snapshot written by either engine (DVM controller state included)."""
    label, bench, config = golden_cases()[4]  # gcc-dvm
    path = tmp_path / "run.ckpt.npz"
    # Warmup + intervals 0..3 simulate; snapshot lands at next=3.
    _crashing_run(monkeypatch, bench, config, path, crash_engine,
                  crash_after=5)
    assert path.exists()

    _force_engine(monkeypatch, resume_engine)
    calls = [0]
    original = OutOfOrderCore.run_interval

    def counting(self, trace, _original=original):
        calls[0] += 1
        return _original(self, trace)

    monkeypatch.setattr(OutOfOrderCore, "run_interval", counting)
    result = _run_case(bench, config, checkpoint_every=3,
                       checkpoint_path=path)
    assert _digest(result) == GOLDEN_DIGESTS[label]
    assert calls[0] == N_SAMPLES - 3   # no warmup, intervals 3..7 only
    assert not path.exists()           # completed runs remove the snapshot


def test_v1_checkpoint_invalidated_not_resumed(tmp_path):
    """A pre-v2 snapshot (pickled core, no ``state_version``) is deleted
    and the run starts cleanly from interval 0."""
    label, bench, config = golden_cases()[0]
    path = tmp_path / "run.ckpt.npz"
    np.savez(path, meta=np.array("ckpt/v1-era digest"), next=np.array(4),
             core=np.zeros(64, dtype=np.uint8))
    result = _run_case(bench, config, checkpoint_every=3,
                       checkpoint_path=path)
    assert _digest(result) == GOLDEN_DIGESTS[label]
    assert not path.exists()


def test_sweep_checkpoints_removes_only_orphans(tmp_path):
    keep = tmp_path / "fresh.ckpt.npz"
    np.savez(keep, meta=np.array("m"), next=np.array(1),
             state_version=np.array(CHECKPOINT_VERSION))
    np.savez(tmp_path / "v1.ckpt.npz", meta=np.array("m"), next=np.array(1),
             core=np.zeros(8, dtype=np.uint8))
    (tmp_path / "crashed.tmp").write_bytes(b"partial write")
    (tmp_path / "corrupt.ckpt.npz").write_bytes(b"not a zip archive")
    ancient = tmp_path / "ancient.ckpt.npz"
    np.savez(ancient, meta=np.array("m"), next=np.array(1),
             state_version=np.array(CHECKPOINT_VERSION))
    stale_time = time.time() - 8 * 24 * 3600
    os.utime(ancient, (stale_time, stale_time))
    (tmp_path / "unrelated.txt").write_text("not a checkpoint")

    removed, reclaimed = sweep_checkpoints(tmp_path)
    assert removed == 4
    assert reclaimed > 0
    survivors = sorted(p.name for p in tmp_path.iterdir())
    assert survivors == ["fresh.ckpt.npz", "unrelated.txt"]
    assert sweep_checkpoints(tmp_path) == (0, 0)
    assert sweep_checkpoints(tmp_path / "missing") == (0, 0)


# ----------------------------------------------------------------------
# Trace memo
# ----------------------------------------------------------------------
def test_trace_memo_shares_frozen_traces():
    clear_trace_memo()
    workload = get_benchmark("gcc")
    first = synthesize_interval(workload, 0, N_SAMPLES, IPS)
    second = synthesize_interval(workload, 0, N_SAMPLES, IPS)
    assert second is first
    assert not first.op.flags.writeable
    with pytest.raises((ValueError, RuntimeError)):
        first.address[0] = 1


def test_trace_memo_keys_on_content_and_arguments():
    clear_trace_memo()
    workload = get_benchmark("gcc")
    base = synthesize_interval(workload, 0, N_SAMPLES, IPS)
    assert synthesize_interval(workload, 1, N_SAMPLES, IPS) is not base
    assert synthesize_interval(workload, 0, N_SAMPLES, IPS,
                               seed=123) is not base
    other = get_benchmark("mcf")
    assert synthesize_interval(other, 0, N_SAMPLES, IPS) is not base


def test_trace_memo_disable(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_MEMO", "0")
    clear_trace_memo()
    workload = get_benchmark("gcc")
    first = synthesize_interval(workload, 0, N_SAMPLES, IPS)
    second = synthesize_interval(workload, 0, N_SAMPLES, IPS)
    assert second is not first
    assert first.op.flags.writeable
    for name in ("op", "src1_dist", "src2_dist", "address", "pc",
                 "taken", "ace"):
        assert np.array_equal(getattr(first, name), getattr(second, name))
