"""Unit and property tests for the interval simulation backend."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.uarch.interval_model import IntervalSimResult, simulate_interval
from repro.uarch.params import MachineConfig, baseline_config
from repro.uarch.simulator import Simulator
from repro.workloads.spec2000 import BENCHMARK_NAMES, get_benchmark


def _run(bench="gcc", noise=False, n_samples=64, **overrides):
    cfg = baseline_config(**overrides)
    return simulate_interval(get_benchmark(bench), cfg, n_samples, noise=noise)


class TestBasicProperties:
    def test_result_shapes(self):
        res = _run(n_samples=128)
        assert isinstance(res, IntervalSimResult)
        for trace in (res.cpi, res.power, res.avf, res.iq_avf):
            assert trace.shape == (128,)

    def test_deterministic_with_noise(self):
        cfg = baseline_config()
        wl = get_benchmark("gcc")
        a = simulate_interval(wl, cfg, 64, noise=True)
        b = simulate_interval(wl, cfg, 64, noise=True)
        assert np.allclose(a.cpi, b.cpi)
        assert np.allclose(a.power, b.power)

    def test_noise_differs_across_configs(self):
        wl = get_benchmark("gcc")
        a = simulate_interval(wl, baseline_config(), 64)
        b = simulate_interval(wl, baseline_config(l2_latency=14), 64)
        assert not np.allclose(a.cpi, b.cpi)

    @pytest.mark.parametrize("bench", BENCHMARK_NAMES)
    def test_physical_ranges(self, bench):
        res = _run(bench, noise=True, n_samples=128)
        assert np.all(res.cpi > 0.05) and np.all(res.cpi < 50)
        assert np.all(res.power > 5) and np.all(res.power < 400)
        assert np.all(res.avf >= 0) and np.all(res.avf <= 1)
        assert np.all(res.iq_avf >= 0) and np.all(res.iq_avf <= 1)

    def test_ipc_is_reciprocal(self):
        res = _run()
        assert np.allclose(res.ipc, 1.0 / res.cpi)

    def test_unknown_domain_rejected(self):
        with pytest.raises(SimulationError):
            _run().trace("temperature")

    def test_components_present(self):
        res = _run()
        for key in ("cpi_base", "cpi_branch", "cpi_mem", "mem_stall_frac",
                    "dl1_miss_rate", "l2_miss_rate"):
            assert key in res.components


class TestMonotonicity:
    """First-order sanity: better hardware never hurts, worse never helps."""

    @pytest.mark.parametrize("bench", ["gcc", "mcf", "swim"])
    def test_bigger_dl1_reduces_misses_and_cpi(self, bench):
        small = _run(bench, dl1_size_kb=8)
        large = _run(bench, dl1_size_kb=64)
        assert np.all(large.components["dl1_miss_rate"]
                      <= small.components["dl1_miss_rate"] + 1e-12)
        assert large.cpi.mean() <= small.cpi.mean() + 1e-9

    @pytest.mark.parametrize("bench", ["gcc", "mcf"])
    def test_bigger_l2_reduces_memory_traffic(self, bench):
        small = _run(bench, l2_size_kb=256)
        large = _run(bench, l2_size_kb=4096)
        assert np.all(large.components["l2_miss_rate"]
                      <= small.components["l2_miss_rate"] + 1e-12)

    def test_higher_l2_latency_increases_cpi(self):
        fast = _run("gcc", l2_latency=8)
        slow = _run("gcc", l2_latency=20)
        assert slow.cpi.mean() > fast.cpi.mean()

    def test_higher_dl1_latency_increases_cpi(self):
        fast = _run("gcc", dl1_latency=1)
        slow = _run("gcc", dl1_latency=4)
        assert slow.cpi.mean() > fast.cpi.mean()

    def test_wider_machine_not_slower(self):
        narrow = _run("eon", fetch_width=2)
        wide = _run("eon", fetch_width=16)
        assert wide.cpi.mean() < narrow.cpi.mean()

    def test_wider_machine_burns_more_power(self):
        narrow = _run("eon", fetch_width=2)
        wide = _run("eon", fetch_width=16)
        assert wide.power.mean() > narrow.power.mean()

    def test_bigger_window_helps_memory_bound_code(self):
        small = _run("mcf", rob_size=96, lsq_size=16)
        large = _run("mcf", rob_size=160, lsq_size=64)
        assert large.cpi.mean() < small.cpi.mean()

    @given(st.sampled_from([8, 16, 32, 64]))
    @settings(max_examples=8, deadline=None)
    def test_il1_size_never_hurts(self, il1):
        base = _run("gcc", il1_size_kb=8)
        this = _run("gcc", il1_size_kb=il1)
        assert this.cpi.mean() <= base.cpi.mean() + 1e-9


class TestDVMEffects:
    def test_dvm_never_increases_iq_avf(self):
        wl = get_benchmark("gcc")
        cfg = baseline_config()
        off = simulate_interval(wl, cfg, 64, noise=False)
        on = simulate_interval(wl, cfg.with_dvm(True, 0.3), 64, noise=False)
        assert np.all(on.iq_avf <= off.iq_avf + 1e-12)

    def test_dvm_costs_performance_when_engaged(self):
        wl = get_benchmark("gcc")
        cfg = baseline_config()
        off = simulate_interval(wl, cfg, 64, noise=False)
        on = simulate_interval(wl, cfg.with_dvm(True, 0.2), 64, noise=False)
        if on.components["dvm_engaged"].any():
            assert on.cpi.mean() >= off.cpi.mean()

    def test_lower_threshold_lower_avf(self):
        wl = get_benchmark("gcc")
        lo = simulate_interval(wl, baseline_config().with_dvm(True, 0.2),
                               64, noise=False)
        hi = simulate_interval(wl, baseline_config().with_dvm(True, 0.5),
                               64, noise=False)
        assert lo.iq_avf.mean() <= hi.iq_avf.mean() + 1e-12

    def test_dvm_engagement_flag(self):
        wl = get_benchmark("mcf")  # high AVF: triggers often
        on = simulate_interval(wl, baseline_config().with_dvm(True, 0.2),
                               64, noise=False)
        assert on.components["dvm_engaged"].max() == 1.0


class TestResolutionConsistency:
    def test_mean_stable_across_resolutions(self):
        """Coarser sampling is an average of finer sampling, so the mean
        CPI must agree across resolutions (no noise)."""
        means = [
            _run("gcc", n_samples=n).cpi.mean() for n in (64, 256, 1024)
        ]
        assert np.allclose(means, means[0], rtol=0.02)

    def test_finer_sampling_reveals_more_variance(self):
        coarse = _run("gcc", n_samples=64).cpi
        fine = _run("gcc", n_samples=1024).cpi
        assert fine.std() >= coarse.std() * 0.9


class TestSimulatorFacade:
    def test_facade_matches_direct_call(self):
        sim = Simulator(noise=True)
        res = sim.run("gcc", baseline_config(), 64)
        direct = simulate_interval(get_benchmark("gcc"), baseline_config(),
                                   64, noise=True)
        assert np.allclose(res.trace("cpi"), direct.cpi)

    def test_unknown_backend_rejected(self):
        with pytest.raises(SimulationError):
            Simulator(backend="fpga")

    def test_aggregate(self):
        sim = Simulator()
        res = sim.run("gcc", baseline_config(), 64)
        assert res.aggregate("cpi") == pytest.approx(res.trace("cpi").mean())
