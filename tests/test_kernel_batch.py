"""Batched interval kernel: bit-identity, golden pins, JIT, dispatch.

The PR that introduced :func:`repro.uarch.interval_model.\
simulate_interval_batch` rewrote the whole interval-model kernel to
advance a stack of configurations at once.  These tests pin the two
contracts that rewrite must never break:

* **traces** — the scalar path (now a batch of one) and every batch row
  are byte-for-byte identical to the pre-rewrite kernel (golden sha256
  digests pinned below);
* **keys** — :meth:`repro.engine.jobs.SimJob.key` is byte-identical to
  the pre-rewrite recipe (golden keys pinned below), so every existing
  :class:`~repro.engine.cache.ResultCache` entry remains valid.

Plus the surrounding machinery: the EWMA scan against a naive reference
loop, numba-JIT vs NumPy equivalence, grouped engine dispatch vs
per-job execution, and the ensemble's stacked-DWT refit.
"""

import hashlib

import numpy as np
import pytest

from repro.engine.executor import LocalExecutor, ParallelExecutor
from repro.engine.jobs import SimJob, make_jobs
from repro.engine.kernel import (
    batch_kernel_enabled,
    group_signature,
    plan_groups,
    run_jobs,
)
from repro.uarch.interval_model import (
    IntervalBatchResult,
    simulate_interval,
    simulate_interval_batch,
)
from repro.uarch.jit import ewma_scan, jit_available, jit_enabled, set_jit
from repro.uarch.params import ConfigBatch, baseline_config
from repro.workloads.spec2000 import get_benchmark


def _trace_digest(res) -> str:
    """sha256 over every output array of one interval result."""
    h = hashlib.sha256()
    for arr in (res.cpi, res.power, res.avf, res.iq_avf):
        h.update(arr.tobytes())
    for name in sorted(res.components):
        h.update(name.encode())
        h.update(res.components[name].tobytes())
    return h.hexdigest()


#: (benchmark, config overrides, n_samples, noise) -> golden digests,
#: computed on the pre-rewrite scalar kernel.  A digest change means the
#: kernel's numerics moved — which invalidates every published baseline.
GOLDEN_CASES = [
    ("gcc", {}, 128, True,
     "bff715aafa3178d7b470266bbc849bf438e8d99d3a3294ae3ae7cd6032e4c51c",
     "573d1bd564e4da1746e388a2a754b6a3d69f6849105a3510f46d1b4773268fc9"),
    ("gcc", {}, 128, False,
     "e56a3ff3d6e74935caba9bada509ee53ed87351ffb8d1ab14572d1d387f5ead0",
     "8b53f3f77f5299f96ed1d48b188305e49dc5de1cc78eeaa4110352485e1b45ae"),
    ("mcf", {"fetch_width": 4, "rob_size": 64, "iq_size": 32,
             "lsq_size": 24, "l2_size_kb": 512, "dl1_size_kb": 16,
             "dl1_latency": 3}, 64, True,
     "dcd5368bb09c3cf450a2cc3cd1af6449dddabd90d26334ef9cb4ecb486327f2c",
     "b3b5518b7812445fc33b17ba1bbb4806ce8ce05915488c3642825d2e003050ea"),
    ("swim", {"dvm_enabled": True, "dvm_threshold": 0.25}, 128, True,
     "14ff0260279e054e077a5b7353f8d1ac7d25b9bec85a53143a0f691b76a26139",
     "936fe2f6872d471231856a10857345983ee60fcc5c9d8e609257d01756d04608"),
    ("bzip2", {"fetch_width": 16, "l2_latency": 20}, 32, False,
     "d5ad9c98354fb3742a992240f869498363272d4557e38e8b952afa6691f56ab9",
     "a01e1f2bb977c6ddd780782502322aad0cbc19b2e5c85d7baef08ea6d79096ab"),
    ("vpr", {"dvm_enabled": True}, 64, False,
     "737db34dcf7f5cf688140c9338dd0551cdf3ec82cc8a1364e94841333a9b7ac2",
     "057d8e8127d5131b41dc2967151e11c8c02cbca82f4a1b681696d0de88f90053"),
]

#: Pre-rewrite key for a detailed-backend job: grouped dispatch must not
#: perturb detailed jobs' identity either.
GOLDEN_DETAILED_KEY = (
    "ea7fd372543c92ce0a39f4916f25432507542cc65e20956c4bf1efe854046e9d"
)


@pytest.mark.parametrize(
    "bench,overrides,n,noise,trace_golden,key_golden",
    GOLDEN_CASES, ids=[f"{c[0]}-{c[2]}-noise{int(c[3])}"
                       for c in GOLDEN_CASES])
def test_golden_traces_and_keys(bench, overrides, n, noise,
                                trace_golden, key_golden):
    config = baseline_config(**overrides)
    res = simulate_interval(get_benchmark(bench), config, n, noise=noise)
    assert _trace_digest(res) == trace_golden
    job = SimJob(bench, config, n_samples=n, noise=noise)
    assert job.key() == key_golden


def test_golden_detailed_key():
    job = SimJob("gcc", baseline_config(), backend="detailed",
                 n_samples=16, instructions_per_sample=200)
    assert job.key() == GOLDEN_DETAILED_KEY


def test_key_unchanged_by_key_memoization():
    """key() memoizes on first call; the memo must not leak into
    equality/hash semantics or later key() calls."""
    a = baseline_config()
    b = baseline_config()
    k1 = SimJob("gcc", a, n_samples=128).key()
    a.key()  # populate the config-level memo
    k2 = SimJob("gcc", a, n_samples=128).key()
    k3 = SimJob("gcc", b, n_samples=128).key()
    assert k1 == k2 == k3
    assert a == b and hash(a) == hash(b)


# ----------------------------------------------------------------------
# Batch == scalar, bit for bit
# ----------------------------------------------------------------------
def _lhs_configs(n, seed):
    from repro.dse.lhs import sample_train_configs
    from repro.dse.space import paper_design_space

    return sample_train_configs(paper_design_space(), n, seed=seed)


def _assert_rows_equal(batch: IntervalBatchResult, scalars):
    for row, ref in zip(batch, scalars):
        assert np.array_equal(row.cpi, ref.cpi)
        assert np.array_equal(row.power, ref.power)
        assert np.array_equal(row.avf, ref.avf)
        assert np.array_equal(row.iq_avf, ref.iq_avf)
        assert sorted(row.components) == sorted(ref.components)
        for name in ref.components:
            assert np.array_equal(row.components[name],
                                  ref.components[name]), name


@pytest.mark.parametrize("size", [1, 7, 64])
@pytest.mark.parametrize("noise", [True, False])
def test_batch_rows_match_scalar(size, noise):
    workload = get_benchmark("gcc")
    configs = _lhs_configs(size, seed=size)
    batch = simulate_interval_batch(workload, configs, n_samples=64,
                                    noise=noise)
    scalars = [simulate_interval(workload, c, 64, noise=noise)
               for c in configs]
    _assert_rows_equal(batch, scalars)


@pytest.mark.parametrize("bench", ["mcf", "swim", "twolf"])
def test_batch_matches_scalar_across_benchmarks(bench):
    workload = get_benchmark(bench)
    configs = _lhs_configs(9, seed=17)
    batch = simulate_interval_batch(workload, configs, n_samples=32)
    _assert_rows_equal(
        batch, [simulate_interval(workload, c, 32) for c in configs])


def test_batch_matches_scalar_mixed_dvm():
    """DVM-on and DVM-off configs in one batch, different thresholds."""
    workload = get_benchmark("swim")
    base = _lhs_configs(7, seed=5)
    configs = [
        c.with_dvm(True, 0.2 + 0.1 * (i % 3)) if i % 2 else c
        for i, c in enumerate(base)
    ]
    batch = simulate_interval_batch(workload, configs, n_samples=128)
    _assert_rows_equal(
        batch, [simulate_interval(workload, c, 128) for c in configs])


def test_batch_accepts_config_batch_and_seeds_independent():
    workload = get_benchmark("gcc")
    configs = _lhs_configs(4, seed=3)
    prebuilt = ConfigBatch(configs)
    a = simulate_interval_batch(workload, prebuilt, n_samples=64)
    b = simulate_interval_batch(workload, configs, n_samples=64)
    _assert_rows_equal(a, list(b))
    # Noise seeds derive per config: permuting the batch permutes rows.
    perm = simulate_interval_batch(workload, configs[::-1], n_samples=64)
    _assert_rows_equal(perm, list(b)[::-1])


def test_scalar_simulate_interval_is_batch_of_one():
    workload = get_benchmark("vortex")
    config = baseline_config(rob_size=128, lsq_size=96)
    scalar = simulate_interval(workload, config, 64)
    batch = simulate_interval_batch(workload, [config], n_samples=64)
    _assert_rows_equal(batch, [scalar])


# ----------------------------------------------------------------------
# EWMA scan + JIT
# ----------------------------------------------------------------------
def _naive_ewma_smooth(trace, alpha=0.3):
    """The pre-rewrite per-element persistence loop (reference): the
    accumulator seeds from ``trace[0]`` and the update runs on every
    element including the first."""
    out = np.empty_like(trace)
    acc = trace[0]
    beta = 1.0 - alpha
    for i in range(len(trace)):
        acc = alpha * trace[i] + beta * acc
        out[i] = acc
    return out


@pytest.mark.parametrize("dtype", [np.float64, np.float32])
def test_ewma_scan_matches_naive_loop(dtype):
    rng = np.random.default_rng(11)
    traces = rng.normal(size=(5, 40)).astype(dtype)
    out = ewma_scan(traces, 0.3)
    for row in range(traces.shape[0]):
        assert np.array_equal(out[row],
                              _naive_ewma_smooth(traces[row], 0.3)), row


def test_ewma_scan_rejects_bad_rank():
    with pytest.raises(Exception):
        ewma_scan(np.zeros(8), 0.3)


def test_jit_disabled_without_numba_or_flag(monkeypatch):
    monkeypatch.delenv("REPRO_JIT", raising=False)
    set_jit(None)
    assert jit_enabled() is False          # default off
    if not jit_available():
        set_jit(True)
        assert jit_enabled() is False      # requested but unavailable
    set_jit(None)


def test_jit_env_flag_parsing(monkeypatch):
    from repro.uarch import jit as jit_mod

    set_jit(None)
    for text, expected in [("1", True), ("true", True), ("on", True),
                           ("0", False), ("", False), ("off", False)]:
        monkeypatch.setenv("REPRO_JIT", text)
        assert jit_mod.jit_requested() is expected, text
    set_jit(False)
    monkeypatch.setenv("REPRO_JIT", "1")
    assert jit_mod.jit_requested() is False  # explicit override wins
    set_jit(None)


def test_jit_scan_bit_identical_to_numpy():
    pytest.importorskip("numba")
    rng = np.random.default_rng(23)
    traces = rng.normal(size=(8, 64))
    assert np.array_equal(ewma_scan(traces, 0.3, jit=True),
                          ewma_scan(traces, 0.3, jit=False))


def test_jit_kernel_bit_identical_to_numpy():
    pytest.importorskip("numba")
    workload = get_benchmark("gcc")
    configs = _lhs_configs(5, seed=9)
    set_jit(True)
    try:
        jitted = simulate_interval_batch(workload, configs, n_samples=64)
    finally:
        set_jit(None)
    plain = simulate_interval_batch(workload, configs, n_samples=64)
    _assert_rows_equal(jitted, list(plain))


# ----------------------------------------------------------------------
# Grouped engine dispatch
# ----------------------------------------------------------------------
def _result_equal(a, b):
    assert a.benchmark == b.benchmark and a.config == b.config
    assert sorted(a.traces) == sorted(b.traces)
    for d in a.traces:
        assert np.array_equal(a.traces[d], b.traces[d]), d
    assert sorted(a.components) == sorted(b.components)
    for d in a.components:
        assert np.array_equal(a.components[d], b.components[d]), d


def _mixed_jobs():
    configs = _lhs_configs(12, seed=2)
    jobs = make_jobs("gcc", configs, backend="interval", n_samples=64)
    jobs += make_jobs("mcf", configs[:4], backend="interval", n_samples=64)
    jobs += [SimJob("swim", c, n_samples=32, noise=False)
             for c in configs[:3]]
    return jobs


def test_group_signature_partitions():
    jobs = _mixed_jobs()
    detailed = SimJob("gcc", baseline_config(), backend="detailed",
                      n_samples=8, instructions_per_sample=50)
    # Detailed jobs group among themselves (trace-memo sharing), on a
    # distinct signature shape that can never collide with interval's.
    sig = group_signature(detailed)
    assert sig is not None and sig[0] == "detailed"
    assert sig != group_signature(jobs[0])
    other_res = SimJob("gcc", baseline_config(), backend="detailed",
                       n_samples=8, instructions_per_sample=80)
    assert group_signature(other_res) != sig
    sigs = {group_signature(j) for j in jobs}
    assert len(sigs) == 3
    groups = plan_groups(jobs + [detailed])
    sizes = sorted(len(g) for g in groups)
    assert sizes == [1, 3, 4, 12]


def test_plan_groups_disabled(monkeypatch):
    monkeypatch.setenv("REPRO_BATCH_KERNEL", "0")
    assert not batch_kernel_enabled()
    jobs = _mixed_jobs()
    assert plan_groups(jobs) == [[i] for i in range(len(jobs))]


def test_run_jobs_matches_per_job_run(monkeypatch):
    jobs = _mixed_jobs()
    monkeypatch.setenv("REPRO_BATCH_KERNEL", "0")
    ref = run_jobs(jobs)
    monkeypatch.setenv("REPRO_BATCH_KERNEL", "1")
    got = run_jobs(jobs)
    for r, g in zip(ref, got):
        _result_equal(r, g)


def test_local_executor_stream_grouped(monkeypatch):
    monkeypatch.delenv("REPRO_BATCH_KERNEL", raising=False)
    jobs = _mixed_jobs()
    ref = [j.run() for j in jobs]
    seen = []
    for i, res in LocalExecutor().submit_batch(jobs):
        seen.append(i)
        _result_equal(ref[i], res)
    assert seen == list(range(len(jobs)))


@pytest.mark.parametrize("shm", [False, True])
def test_parallel_executor_grouped(shm):
    jobs = _mixed_jobs()
    ref = [j.run() for j in jobs]
    got = ParallelExecutor(max_workers=2, shm=shm).run_batch(jobs)
    for r, g in zip(ref, got):
        _result_equal(r, g)


def test_grouped_results_detach_cleanly():
    """Batch rows are views into the (B, S) matrices; consumers that
    need owning arrays (the memory cache) detach them."""
    jobs = make_jobs("gcc", _lhs_configs(3, seed=1),
                     backend="interval", n_samples=32)
    results = run_jobs(jobs)
    assert any(arr.base is not None
               for res in results for arr in res.traces.values())
    for res in results:
        owned = res.detach()
        for d in res.traces:
            assert owned.traces[d].base is None
            assert np.array_equal(owned.traces[d], res.traces[d])


# ----------------------------------------------------------------------
# Ensemble stacked-DWT refit
# ----------------------------------------------------------------------
def test_ensemble_fit_matches_per_member_dwt():
    from repro._validation import rng_from_seed
    from repro.core.predictor import (
        WaveletNeuralPredictor,
        WaveletPredictorEnsemble,
    )

    rng = np.random.default_rng(3)
    X = rng.uniform(size=(40, 5))
    t = np.linspace(0, 1, 32)
    traces = np.array([np.sin(5 * t + x[0]) * (1 + x[2]) for x in X])
    ens = WaveletPredictorEnsemble(n_members=3, n_coefficients=8,
                                   seed=0).fit(X, traces)
    # Reference: the historical path — each member transforms its own
    # (resampled) trace matrix.
    r = rng_from_seed(0)
    Xq = rng.uniform(size=(6, 5))
    for m in range(3):
        if m == 0:
            Xm, tm = X, traces
        else:
            idx = r.integers(0, X.shape[0], size=X.shape[0])
            Xm, tm = X[idx], traces[idx]
        ref = WaveletNeuralPredictor(ens.settings).fit(Xm, tm)
        assert np.array_equal(ens.members_[m].selected_indices_,
                              ref.selected_indices_)
        assert np.array_equal(ens.members_[m].predict(Xq), ref.predict(Xq))


def test_fit_rejects_mismatched_coefficients():
    from repro.core.predictor import WaveletNeuralPredictor
    from repro.errors import ModelError

    rng = np.random.default_rng(0)
    X = rng.uniform(size=(16, 3))
    traces = rng.normal(size=(16, 32))
    with pytest.raises(ModelError):
        WaveletNeuralPredictor(n_coefficients=4).fit(
            X, traces, coefficients=traces[:, :16])
