"""Unit tests for the twelve synthetic SPEC CPU 2000 models."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.phases import FINE_RESOLUTION
from repro.workloads.spec2000 import (
    BENCHMARK_NAMES,
    get_benchmark,
    list_benchmarks,
)


class TestRegistry:
    def test_twelve_benchmarks(self):
        assert len(BENCHMARK_NAMES) == 12
        assert len(list_benchmarks()) == 12

    def test_paper_name_set(self):
        assert set(BENCHMARK_NAMES) == {
            "bzip2", "crafty", "eon", "gap", "gcc", "mcf",
            "parser", "perlbmk", "swim", "twolf", "vortex", "vpr",
        }

    def test_aliases(self):
        assert get_benchmark("bzip").name == "bzip2"
        assert get_benchmark("perl").name == "perlbmk"

    def test_unknown_rejected(self):
        with pytest.raises(WorkloadError):
            get_benchmark("gzip")

    def test_models_cached(self):
        assert get_benchmark("gcc") is get_benchmark("gcc")


class TestModelValidity:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_schedule_well_formed(self, name):
        model = get_benchmark(name)
        assert model.schedule.size == FINE_RESOLUTION
        assert model.schedule.min() >= 0
        assert model.schedule.max() < model.n_phases

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_every_phase_reachable(self, name):
        model = get_benchmark(name)
        used = set(np.unique(model.schedule))
        assert used == set(range(model.n_phases))

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_weights_valid_at_paper_resolution(self, name):
        weights = get_benchmark(name).phase_weights(128)
        assert np.allclose(weights.sum(axis=1), 1.0)

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_description_nonempty(self, name):
        assert get_benchmark(name).description


class TestCharacterization:
    """The qualitative benchmark characters the substitution relies on."""

    def test_mcf_most_memory_bound(self):
        def biggest_footprint(model):
            log2kb, weight = model.footprint_components()
            return float((log2kb * (weight > 0)).max())

        mcf = biggest_footprint(get_benchmark("mcf"))
        for other in ("crafty", "eon", "parser", "twolf"):
            assert mcf > biggest_footprint(get_benchmark(other))

    def test_crafty_branchiest(self):
        crafty = get_benchmark("crafty").attribute_trace("f_branch", 64).mean()
        swim = get_benchmark("swim").attribute_trace("f_branch", 64).mean()
        assert crafty > 2 * swim

    def test_swim_most_predictable_branches(self):
        mp = {n: get_benchmark(n).attribute_trace("branch_mispredict", 64).mean()
              for n in BENCHMARK_NAMES}
        assert mp["swim"] == min(mp.values())

    def test_swim_and_eon_high_ilp(self):
        ilp = {n: get_benchmark(n).attribute_trace("ilp_limit", 64).mean()
               for n in BENCHMARK_NAMES}
        assert ilp["swim"] > ilp["mcf"]
        assert ilp["eon"] > ilp["gcc"]

    def test_mcf_has_highest_noise(self):
        noise = {n: get_benchmark(n).noise.cpi for n in BENCHMARK_NAMES}
        assert noise["mcf"] == max(noise.values())
        assert noise["swim"] == min(noise.values())

    def test_gcc_most_phase_rich(self):
        assert get_benchmark("gcc").n_phases == max(
            get_benchmark(n).n_phases for n in BENCHMARK_NAMES
        )

    def test_benchmarks_produce_distinct_dynamics(self):
        traces = [get_benchmark(n).attribute_trace("f_load", 128)
                  for n in BENCHMARK_NAMES]
        for i in range(len(traces)):
            for j in range(i + 1, len(traces)):
                assert not np.allclose(traces[i], traces[j])
