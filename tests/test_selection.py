"""Unit and property tests for repro.core.selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.selection import (
    consensus_ranking,
    energy_captured,
    magnitude_ranks,
    rank_by_magnitude,
    rank_map,
    ranking_stability,
    select_coefficients,
    truncate_coefficients,
)
from repro.errors import ModelError


def _coeff_vectors():
    return st.lists(
        st.floats(-1e4, 1e4, allow_nan=False, allow_infinity=False),
        min_size=4, max_size=64,
    )


class TestRanking:
    def test_rank_by_magnitude_simple(self):
        order = rank_by_magnitude([1.0, -5.0, 3.0, 0.5])
        assert order.tolist() == [1, 2, 0, 3]

    def test_ties_break_toward_lower_index(self):
        order = rank_by_magnitude([2.0, -2.0, 2.0])
        assert order.tolist() == [0, 1, 2]

    def test_magnitude_ranks_inverse_of_order(self):
        coeffs = np.array([0.1, 9.0, -3.0, 2.0])
        order = rank_by_magnitude(coeffs)
        ranks = magnitude_ranks(coeffs)
        for rank, idx in enumerate(order):
            assert ranks[idx] == rank

    @given(_coeff_vectors())
    @settings(max_examples=40, deadline=None)
    def test_ranking_is_permutation(self, coeffs):
        order = rank_by_magnitude(coeffs)
        assert sorted(order.tolist()) == list(range(len(coeffs)))

    @given(_coeff_vectors())
    @settings(max_examples=40, deadline=None)
    def test_magnitudes_nonincreasing_along_ranking(self, coeffs):
        arr = np.abs(np.asarray(coeffs, float))
        order = rank_by_magnitude(coeffs)
        mags = arr[order]
        assert np.all(mags[:-1] >= mags[1:] - 1e-12)


class TestSelection:
    def test_magnitude_selects_largest(self):
        coeffs = [0.1, 9.0, -3.0, 2.0]
        idx, vals = select_coefficients(coeffs, 2, "magnitude")
        assert idx.tolist() == [1, 2]
        assert vals.tolist() == [9.0, -3.0]

    def test_order_selects_prefix(self):
        coeffs = [0.1, 9.0, -3.0, 2.0]
        idx, vals = select_coefficients(coeffs, 2, "order")
        assert idx.tolist() == [0, 1]
        assert vals.tolist() == [0.1, 9.0]

    def test_k_equals_n_keeps_everything(self):
        coeffs = [1.0, 2.0, 3.0, 4.0]
        out = truncate_coefficients(coeffs, 4)
        assert out.tolist() == coeffs

    def test_truncation_zeroes_unselected(self):
        out = truncate_coefficients([0.1, 9.0, -3.0, 2.0], 2, "magnitude")
        assert out.tolist() == [0.0, 9.0, -3.0, 0.0]

    @pytest.mark.parametrize("k", [0, 5, -1])
    def test_bad_k_rejected(self, k):
        with pytest.raises(ModelError):
            select_coefficients([1.0, 2.0, 3.0, 4.0], k)

    def test_bad_scheme_rejected(self):
        with pytest.raises(ModelError):
            select_coefficients([1.0, 2.0], 1, scheme="random")

    @given(_coeff_vectors(), st.integers(1, 10))
    @settings(max_examples=40, deadline=None)
    def test_magnitude_energy_dominates_order_energy(self, coeffs, k):
        k = min(k, len(coeffs))
        mag = energy_captured(coeffs, k, "magnitude")
        order = energy_captured(coeffs, k, "order")
        assert mag >= order - 1e-12

    @given(_coeff_vectors())
    @settings(max_examples=40, deadline=None)
    def test_energy_captured_monotone_in_k(self, coeffs):
        vals = [energy_captured(coeffs, k, "magnitude")
                for k in range(1, len(coeffs) + 1)]
        assert all(a <= b + 1e-12 for a, b in zip(vals, vals[1:]))
        assert vals[-1] == pytest.approx(1.0, abs=1e-9)


class TestConsensus:
    def test_consensus_prefers_consistently_large_coefficients(self):
        rng = np.random.default_rng(0)
        mat = rng.normal(scale=0.1, size=(20, 8))
        mat[:, 3] += 10.0
        mat[:, 5] -= 6.0
        ranking = consensus_ranking(mat)
        assert ranking[0] == 3
        assert ranking[1] == 5

    def test_rank_map_shape_and_contents(self):
        mat = np.array([[1.0, -2.0, 0.5], [3.0, 0.1, -0.2]])
        ranks = rank_map(mat)
        assert ranks.shape == (2, 3)
        assert ranks[0].tolist() == [1, 0, 2]
        assert ranks[1].tolist() == [0, 2, 1]

    def test_stability_perfect_when_rows_identical(self):
        row = np.array([5.0, 1.0, -3.0, 0.2, 0.0, 7.0])
        mat = np.vstack([row] * 10)
        assert ranking_stability(mat, 3) == pytest.approx(1.0)

    def test_stability_low_for_adversarial_rows(self):
        # Each row has a disjoint dominant set -> tiny overlap.
        mat = np.zeros((4, 8))
        for i in range(4):
            mat[i, 2 * i:2 * i + 2] = 10.0
        assert ranking_stability(mat, 2) < 0.2

    def test_stability_single_row_is_one(self):
        assert ranking_stability(np.array([[3.0, 1.0]]), 1) == 1.0

    @given(st.integers(2, 6), st.integers(4, 16))
    @settings(max_examples=20, deadline=None)
    def test_stability_bounded(self, n_cfg, n_coef):
        rng = np.random.default_rng(n_cfg * 100 + n_coef)
        mat = rng.normal(size=(n_cfg, n_coef))
        s = ranking_stability(mat, min(4, n_coef))
        assert 0.0 <= s <= 1.0
