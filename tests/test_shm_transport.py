"""Tests for the zero-copy shared-memory result transport.

Pins the PR-3 tentpole guarantees: shared-memory and pickle transports
are bit-identical across backends, arenas are unlinked on batch
completion / worker crash / early consumer exit while delivered views
stay valid, dataset assembly is zero-copy for contiguous batches, and
the chunk autotuner sizes interval and detailed chunks differently.
"""

import multiprocessing.shared_memory as _sm
import os

import numpy as np
import pytest

from repro.dse.runner import SweepRunner
from repro.dse.space import paper_design_space
from repro.engine import (
    ExecutionEngine,
    LocalExecutor,
    ParallelExecutor,
    ShmArena,
    SimJob,
    create_engine,
    stack_rows,
)
from repro.engine.executor import PROBE_CHUNK_SIZE
from repro.engine.shm import MAX_COMPONENT_SLOTS, shm_from_env
from repro.uarch.params import baseline_config
from repro.uarch.simulator import SimulationResult


@pytest.fixture(scope="module")
def configs():
    return paper_design_space().sample_random(6, split="train", seed=21)


def _assert_results_equal(a, b):
    assert a.benchmark == b.benchmark
    assert a.config == b.config
    assert a.backend == b.backend
    assert a.n_samples == b.n_samples
    assert sorted(a.traces) == sorted(b.traces)
    for domain in a.traces:
        assert np.array_equal(a.traces[domain], b.traces[domain])
    assert list(a.components) == list(b.components)
    for name in a.components:
        assert np.array_equal(a.components[name], b.components[name])


class _KillWorkerJob(SimJob):
    """A job that kills its worker process mid-chunk (crash testing)."""

    def run(self):
        os._exit(1)


class TestTransportParity:
    def test_interval_shm_matches_pickle_and_local(self, configs):
        jobs = [SimJob("gcc", c, n_samples=64) for c in configs]
        local = LocalExecutor().run_batch(jobs)
        with ParallelExecutor(max_workers=2, shm=True) as shm_ex:
            via_shm = shm_ex.run_batch(jobs)
            assert shm_ex.last_arena is not None  # transport engaged
        with ParallelExecutor(max_workers=2, shm=False) as pickle_ex:
            via_pickle = pickle_ex.run_batch(jobs)
            assert pickle_ex.last_arena is None
        for a, b, c in zip(local, via_shm, via_pickle):
            _assert_results_equal(a, b)
            _assert_results_equal(a, c)

    def test_detailed_shm_matches_pickle_and_local(self, configs):
        jobs = [SimJob("mcf", c, backend="detailed", n_samples=4,
                       instructions_per_sample=60) for c in configs[:3]]
        local = LocalExecutor().run_batch(jobs)
        with ParallelExecutor(max_workers=2, shm=True) as shm_ex:
            via_shm = shm_ex.run_batch(jobs)
        with ParallelExecutor(max_workers=2, shm=False) as pickle_ex:
            via_pickle = pickle_ex.run_batch(jobs)
        for a, b, c in zip(local, via_shm, via_pickle):
            _assert_results_equal(a, b)
            _assert_results_equal(a, c)

    def test_interval_components_survive_transport(self, configs):
        jobs = [SimJob("swim", c, n_samples=32) for c in configs[:2]]
        with ParallelExecutor(max_workers=2, shm=True) as ex:
            results = ex.run_batch(jobs)
        reference = jobs[0].run()
        assert list(results[0].components) == list(reference.components)
        for name, arr in reference.components.items():
            assert np.array_equal(results[0].components[name], arr)


class TestArenaLifecycle:
    def test_unlinked_on_completion_views_stay_valid(self, configs):
        jobs = [SimJob("gcc", c, n_samples=32) for c in configs]
        with ParallelExecutor(max_workers=2, shm=True) as ex:
            results = ex.run_batch(jobs)
            arena = ex.last_arena
            assert arena is not None and arena.unlinked
            with pytest.raises(FileNotFoundError):
                _sm.SharedMemory(name=arena.name)
        # Views outlive both the batch and the executor.
        reference = jobs[0].run()
        assert np.array_equal(results[0].trace("cpi"),
                              reference.trace("cpi"))

    def test_unlinked_on_worker_crash(self, configs):
        jobs = [SimJob("gcc", configs[0], n_samples=32),
                _KillWorkerJob("gcc", configs[1], n_samples=32)]
        with ParallelExecutor(max_workers=2, chunk_size=1, shm=True) as ex:
            with pytest.raises(Exception):
                ex.run_batch(jobs)
            arena = ex.last_arena
            assert arena is not None and arena.unlinked
            with pytest.raises(FileNotFoundError):
                _sm.SharedMemory(name=arena.name)

    def test_unlinked_on_early_consumer_exit(self, configs):
        jobs = [SimJob("gcc", c, n_samples=32) for c in configs]
        with ParallelExecutor(max_workers=2, chunk_size=2, shm=True) as ex:
            stream = ex.submit_batch(jobs)
            next(stream)
            stream.close()  # consumer abandons the batch
            arena = ex.last_arena
            assert arena is not None and arena.unlinked

    def test_abandoned_batch_unlinks_arena(self, configs):
        """A stream that is never iterated must not leak its segment."""
        import gc

        ex = ParallelExecutor(max_workers=2, shm=True)
        try:
            stream = ex.submit_batch(
                [SimJob("gcc", c, n_samples=32) for c in configs[:3]])
            name = ex.last_arena.name
            del stream  # abandoned before the first pull
        finally:
            ex.close()  # drops the executor's arena reference
        gc.collect()
        with pytest.raises(FileNotFoundError):
            _sm.SharedMemory(name=name)

    def test_views_are_read_only(self, configs):
        jobs = [SimJob("gcc", c, n_samples=32) for c in configs[:2]]
        with ParallelExecutor(max_workers=2, shm=True) as ex:
            results = ex.run_batch(jobs)
        trace = results[0].trace("cpi")
        assert not trace.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            trace[0] = 0.0
        detached = results[0].detach()
        assert detached.trace("cpi").flags.writeable
        assert detached.trace("cpi").base is None

    def test_memory_cache_tier_does_not_pin_arena(self, configs):
        engine = create_engine(jobs=2)
        try:
            jobs = [SimJob("gcc", c, n_samples=32) for c in configs[:3]]
            engine.run(jobs)
            hits = engine.run(jobs)  # all from the in-memory LRU
            assert engine.cache.stats.memory_hits == len(jobs)
            for result in hits:
                assert all(arr.base is None
                           for arr in result.traces.values())
        finally:
            engine.executor.close()


class TestArenaUnit:
    def test_component_overflow_falls_back_to_pickle(self, configs):
        jobs = [SimJob("gcc", configs[0], n_samples=16)]
        arena = ShmArena.create(jobs)
        assert arena is not None
        try:
            result = SimulationResult(
                benchmark="gcc", config=configs[0], n_samples=16,
                backend="interval",
                traces={d: np.arange(16, dtype=float)
                        for d in ("cpi", "power", "avf", "iq_avf")},
                components={f"c{i}": np.full(16, float(i))
                            for i in range(MAX_COMPONENT_SLOTS + 4)},
            )
            desc = arena.write(0, result)
            assert desc.fallback is not None
            _assert_results_equal(arena.materialize(desc), result)
        finally:
            arena.unlink()

    def test_foreign_dtype_falls_back(self, configs):
        jobs = [SimJob("gcc", configs[0], n_samples=8)]
        arena = ShmArena.create(jobs)
        try:
            result = SimulationResult(
                benchmark="gcc", config=configs[0], n_samples=8,
                backend="interval",
                traces={d: np.arange(8, dtype=np.float32)
                        for d in ("cpi", "power", "avf", "iq_avf")},
            )
            desc = arena.write(0, result)
            assert desc.fallback is not None
        finally:
            arena.unlink()

    def test_shm_env_toggle(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHM", raising=False)
        assert shm_from_env() is True
        monkeypatch.setenv("REPRO_SHM", "0")
        assert shm_from_env() is False
        assert ParallelExecutor(max_workers=2).shm is False
        monkeypatch.setenv("REPRO_SHM", "1")
        assert ParallelExecutor(max_workers=2).shm is True


class TestStackRows:
    def test_contiguous_rows_return_view(self):
        base = np.arange(24, dtype=float).reshape(4, 6).copy()
        stacked = stack_rows([base[1], base[2], base[3]])
        assert np.shares_memory(stacked, base)
        assert np.array_equal(stacked, base[1:4])

    def test_non_contiguous_rows_copy(self):
        base = np.arange(24, dtype=float).reshape(4, 6).copy()
        stacked = stack_rows([base[2], base[0]])
        assert not np.shares_memory(stacked, base)
        assert np.array_equal(stacked, np.vstack([base[2], base[0]]))

    def test_owning_arrays_copy(self):
        rows = [np.arange(6, dtype=float), np.arange(6, dtype=float) + 1]
        stacked = stack_rows(rows)
        assert stacked.shape == (2, 6)
        assert not np.shares_memory(stacked, rows[0])

    def test_dataset_assembly_is_zero_copy_for_cold_sweep(self, configs):
        with ParallelExecutor(max_workers=2, shm=True) as ex:
            runner = SweepRunner(n_samples=32, engine=ExecutionEngine(ex))
            ds = runner.run_configs("gcc", configs)
            arena = ex.last_arena
            assert arena is not None
            matrix = ds.domain("cpi")
            assert np.shares_memory(matrix, arena._traces()[0])
            # And the sequential path agrees bit-for-bit.
            seq = SweepRunner(n_samples=32).run_configs("gcc", configs)
            for domain in seq.domains:
                assert np.array_equal(seq.domain(domain), ds.domain(domain))
            materialized = ds.materialize()
            assert not np.shares_memory(materialized.domain("cpi"), matrix)
            assert np.array_equal(materialized.domain("cpi"), matrix)


class TestChunkAutotune:
    def test_probe_then_tuned_sizes(self):
        ex = ParallelExecutor(max_workers=2)
        assert ex.planned_chunk_size("interval", 200) <= PROBE_CHUNK_SIZE
        ex._record_timing("interval", 1e-4)   # fast interval jobs
        ex._record_timing("detailed", 0.5)    # seconds-per-job detailed
        coarse = ex.planned_chunk_size("interval", 200)
        fine = ex.planned_chunk_size("detailed", 200)
        assert fine == 1
        assert coarse > 8 * fine
        assert coarse <= 100  # every worker still gets a chunk

    def test_fixed_chunk_size_disables_autotune(self):
        ex = ParallelExecutor(max_workers=2, chunk_size=7)
        assert ex.planned_chunk_size("interval", 200) == 7
        assert ex.autotune is False

    def test_timings_recorded_end_to_end(self, configs):
        jobs = [SimJob("gcc", c, n_samples=32) for c in configs]
        with ParallelExecutor(max_workers=2) as ex:
            results = ex.run_batch(jobs)
            assert "interval" in ex._tuned
            assert ex._tuned["interval"] > 0
        assert [r.config for r in results] == [j.config for j in jobs]

    def test_mixed_backend_chunks_stay_homogeneous(self, configs):
        jobs = ([SimJob("gcc", c, n_samples=16) for c in configs[:3]]
                + [SimJob("gcc", c, backend="detailed", n_samples=4,
                          instructions_per_sample=40) for c in configs[3:5]])
        with ParallelExecutor(max_workers=2) as ex:
            results = ex.run_batch(jobs)
        assert [r.backend for r in results] == (["interval"] * 3
                                                + ["detailed"] * 2)
