"""Unit tests for repro.uarch.params."""

import pytest

from repro.errors import ConfigurationError
from repro.uarch.params import (
    TABLE1_ROWS,
    VARIED_PARAMETERS,
    MachineConfig,
    baseline_config,
)


class TestBaseline:
    def test_baseline_matches_table1(self):
        cfg = baseline_config()
        assert cfg.fetch_width == 8
        assert cfg.iq_size == 96
        assert cfg.rob_size == 96
        assert cfg.lsq_size == 48
        assert cfg.l2_size_kb == 2048
        assert cfg.l2_latency == 12
        assert cfg.il1_size_kb == 32
        assert cfg.dl1_size_kb == 64
        assert cfg.dl1_latency == 1
        assert cfg.memory_latency == 200
        assert cfg.branch_predictor_entries == 2048

    def test_table1_rows_complete(self):
        names = [r[0] for r in TABLE1_ROWS]
        assert "Branch Predictor" in names
        assert "L2 Cache" in names
        assert len(TABLE1_ROWS) == 15

    def test_overrides(self):
        cfg = baseline_config(fetch_width=4, l2_size_kb=1024)
        assert cfg.fetch_width == 4
        assert cfg.l2_size_kb == 1024
        assert cfg.rob_size == 96  # untouched


class TestValidation:
    @pytest.mark.parametrize("name", VARIED_PARAMETERS)
    def test_nonpositive_rejected(self, name):
        with pytest.raises(ConfigurationError):
            MachineConfig(**{name: 0})

    def test_lsq_cannot_exceed_rob(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(rob_size=96, lsq_size=128)

    def test_bad_dvm_threshold(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(dvm_threshold=1.5)

    def test_float_size_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(l2_size_kb=2048.5)


class TestBehaviour:
    def test_key_is_hashable_and_distinct(self):
        a = baseline_config()
        b = baseline_config(fetch_width=4)
        assert a.key() != b.key()
        assert hash(a.key()) != hash(b.key()) or a.key() != b.key()

    def test_varied_values(self):
        values = baseline_config().varied_values()
        assert set(values) == set(VARIED_PARAMETERS)

    def test_with_dvm(self):
        cfg = baseline_config().with_dvm(True, 0.4)
        assert cfg.dvm_enabled
        assert cfg.dvm_threshold == 0.4
        assert not baseline_config().dvm_enabled

    def test_pipeline_depth_grows_with_width(self):
        depths = [MachineConfig(fetch_width=w).pipeline_depth
                  for w in (2, 4, 8, 16)]
        assert depths == sorted(depths)
        assert depths[0] >= 10

    def test_describe_mentions_all_varied_parameters(self):
        text = baseline_config().describe()
        for name in VARIED_PARAMETERS:
            assert name in text

    def test_frozen(self):
        cfg = baseline_config()
        with pytest.raises(Exception):
            cfg.fetch_width = 4
