"""Unit tests for repro.core.predictor (the wavelet neural network)."""

import numpy as np
import pytest

from repro.core.metrics import nmse_percent
from repro.core.predictor import PredictorSettings, WaveletNeuralPredictor
from repro.errors import ModelError, NotFittedError


def _synthetic_dynamics(n_cfg=80, n_samples=64, seed=0):
    """Config-dependent traces: a fixed phase pattern whose amplitudes
    respond smoothly (but non-linearly) to the design vector."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(size=(n_cfg, 4))
    t = np.linspace(0, 1, n_samples)
    step = (t > 0.5).astype(float)
    traces = []
    for x in X:
        base = 1.0 + 0.8 * x[0]
        amp = 0.3 + 0.5 * x[1]
        burst = 0.6 / (1.0 + np.exp(-(x[2] - 0.5) * 8))
        wave = amp * np.sin(2 * np.pi * 4 * t)
        traces.append(base + wave + burst * step + 0.2 * x[3] * np.cos(2 * np.pi * t))
    return X, np.vstack(traces)


class TestSettings:
    def test_defaults_match_paper(self):
        s = PredictorSettings()
        assert s.n_coefficients == 16
        assert s.scheme == "magnitude"
        assert s.wavelet == "haar"

    @pytest.mark.parametrize("kwargs", [
        {"n_coefficients": 0},
        {"scheme": "entropy"},
        {"wavelet": "morlet"},
        {"convention": "weird"},
    ])
    def test_invalid_settings_rejected(self, kwargs):
        with pytest.raises(ModelError):
            WaveletNeuralPredictor(**kwargs)

    def test_settings_object_and_kwargs_mutually_exclusive(self):
        with pytest.raises(ModelError):
            WaveletNeuralPredictor(PredictorSettings(), n_coefficients=8)


class TestFitPredict:
    def test_prediction_shape(self):
        X, traces = _synthetic_dynamics()
        model = WaveletNeuralPredictor(n_coefficients=8).fit(X, traces)
        pred = model.predict(X[:5])
        assert pred.shape == (5, traces.shape[1])

    def test_predict_one(self):
        X, traces = _synthetic_dynamics()
        model = WaveletNeuralPredictor(n_coefficients=8).fit(X, traces)
        single = model.predict_one(X[0])
        assert single.shape == (traces.shape[1],)
        assert np.allclose(single, model.predict(X[:1])[0])

    def test_training_error_reasonable(self):
        X, traces = _synthetic_dynamics()
        model = WaveletNeuralPredictor(n_coefficients=16).fit(X, traces)
        errs = model.score(X, traces)
        assert np.median(errs) < 15.0

    def test_generalization(self):
        X, traces = _synthetic_dynamics(n_cfg=120, seed=1)
        model = WaveletNeuralPredictor(n_coefficients=16).fit(X[:90], traces[:90])
        errs = model.score(X[90:], traces[90:])
        assert np.median(errs) < 25.0

    def test_more_coefficients_reduce_training_error(self):
        X, traces = _synthetic_dynamics(seed=2)
        few = WaveletNeuralPredictor(n_coefficients=4).fit(X, traces)
        many = WaveletNeuralPredictor(n_coefficients=32).fit(X, traces)
        assert (np.median(many.score(X, traces))
                <= np.median(few.score(X, traces)) + 1e-9)

    @pytest.mark.parametrize("k", [4, 16])
    def test_magnitude_beats_order_selection(self, k):
        # The paper's Section 3 claim; at these k the energy-compaction
        # argument is unambiguous on this synthetic (the full benchmark
        # comparison lives in the selection-ablation experiment).
        X, traces = _synthetic_dynamics(seed=3)
        mag = WaveletNeuralPredictor(n_coefficients=k, scheme="magnitude").fit(X, traces)
        order = WaveletNeuralPredictor(n_coefficients=k, scheme="order").fit(X, traces)
        assert (np.median(mag.score(X, traces))
                <= np.median(order.score(X, traces)) + 1e-9)

    def test_number_of_networks_equals_k(self):
        X, traces = _synthetic_dynamics()
        model = WaveletNeuralPredictor(n_coefficients=12).fit(X, traces)
        assert model.n_networks == 12
        assert len(model.selected_indices_) == 12

    def test_unselected_coefficients_are_zero(self):
        X, traces = _synthetic_dynamics()
        model = WaveletNeuralPredictor(n_coefficients=6).fit(X, traces)
        coeffs = model.predict_coefficients(X[:3])
        mask = np.ones(traces.shape[1], dtype=bool)
        mask[model.selected_indices_] = False
        assert np.allclose(coeffs[:, mask], 0.0)

    def test_order_scheme_selects_prefix(self):
        X, traces = _synthetic_dynamics()
        model = WaveletNeuralPredictor(n_coefficients=5, scheme="order").fit(X, traces)
        assert model.selected_indices_.tolist() == [0, 1, 2, 3, 4]

    def test_db4_wavelet_supported(self):
        X, traces = _synthetic_dynamics(n_cfg=60)
        model = WaveletNeuralPredictor(n_coefficients=8, wavelet="db4",
                                       convention="orthonormal").fit(X, traces)
        errs = model.score(X, traces)
        assert np.all(np.isfinite(errs))


class TestScoreAndImportance:
    def test_score_uses_nmse_by_default(self):
        X, traces = _synthetic_dynamics(n_cfg=40)
        model = WaveletNeuralPredictor(n_coefficients=8).fit(X, traces)
        errs = model.score(X[:4], traces[:4])
        pred = model.predict(X[:4])
        manual = [nmse_percent(a, p) for a, p in zip(traces[:4], pred)]
        assert errs == pytest.approx(manual)

    def test_split_importance_shapes(self):
        X, traces = _synthetic_dynamics(n_cfg=60)
        model = WaveletNeuralPredictor(n_coefficients=8).fit(X, traces)
        imp = model.split_importance()
        assert imp["order"].shape == (4,)
        assert imp["frequency"].shape == (4,)
        assert imp["frequency"].sum() == pytest.approx(1.0, abs=1e-9)

    def test_importance_finds_informative_parameter(self):
        rng = np.random.default_rng(5)
        X = rng.uniform(size=(100, 3))
        t = np.linspace(0, 1, 32)
        # Only parameter 1 matters.
        traces = np.vstack([1.0 + x[1] * np.sin(2 * np.pi * 2 * t) + 2 * x[1]
                            for x in X])
        model = WaveletNeuralPredictor(n_coefficients=8).fit(X, traces)
        imp = model.split_importance()
        assert imp["frequency"][1] == imp["frequency"].max()


class TestValidation:
    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            WaveletNeuralPredictor().predict([[0.0]])

    def test_row_count_mismatch(self):
        with pytest.raises(ModelError):
            WaveletNeuralPredictor().fit(np.ones((4, 2)), np.ones((5, 8)))

    def test_k_exceeding_samples_rejected(self):
        with pytest.raises(ModelError):
            WaveletNeuralPredictor(n_coefficients=64).fit(
                np.random.default_rng(0).uniform(size=(20, 2)),
                np.ones((20, 16)),
            )

    def test_predict_wrong_feature_count(self):
        X, traces = _synthetic_dynamics(n_cfg=40)
        model = WaveletNeuralPredictor(n_coefficients=4).fit(X, traces)
        with pytest.raises(ModelError):
            model.predict(np.ones((2, 9)))

    def test_score_shape_mismatch(self):
        X, traces = _synthetic_dynamics(n_cfg=40)
        model = WaveletNeuralPredictor(n_coefficients=4).fit(X, traces)
        with pytest.raises(ModelError):
            model.score(X[:2], traces[:2, :16])
