"""Tests for detailed-backend checkpoint/resume.

Pins the PR-3 guarantee: an interrupted detailed run — whether by an
in-process error or a real ``SIGKILL`` — resumes from its latest
snapshot and produces a :class:`SimulationResult` bit-identical to an
uninterrupted run, then removes the snapshot on completion.
"""

import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.engine import SimJob
from repro.uarch import pipeline
from repro.uarch.detailed import (
    DetailedSimulator,
    checkpoint_settings_from_env,
)
from repro.uarch.params import baseline_config

BENCH = "gcc"
N_SAMPLES = 8
IPS = 60


class _Interrupted(RuntimeError):
    pass


def _clean_run(config, **kwargs):
    return DetailedSimulator(config).run(
        BENCH, n_samples=N_SAMPLES, instructions_per_sample=IPS, **kwargs)


def _assert_results_equal(a, b):
    assert a.benchmark == b.benchmark and a.backend == b.backend
    for domain in a.traces:
        assert np.array_equal(a.traces[domain], b.traces[domain])
    for name in a.components:
        assert np.array_equal(a.components[name], b.components[name])


def _count_intervals(monkeypatch, die_after=None):
    """Patch the core to count intervals (and optionally fail)."""
    calls = {"n": 0}
    original = pipeline.OutOfOrderCore.run_interval

    def counting(self, trace):
        calls["n"] += 1
        if die_after is not None and calls["n"] > die_after:
            raise _Interrupted()
        return original(self, trace)

    monkeypatch.setattr(pipeline.OutOfOrderCore, "run_interval", counting)
    return calls


class TestCheckpointResume:
    def test_interrupted_run_resumes_bit_identical(self, tmp_path,
                                                   monkeypatch):
        config = baseline_config()
        path = tmp_path / "job.ckpt.npz"
        clean = _clean_run(config)

        # Interrupt after warmup + 6 measured intervals; the last
        # snapshot (checkpoint_every=3) covers intervals 0..5.
        calls = _count_intervals(monkeypatch, die_after=7)
        with pytest.raises(_Interrupted):
            _clean_run(config, checkpoint_every=3, checkpoint_path=path)
        monkeypatch.undo()
        assert path.exists()

        calls = _count_intervals(monkeypatch)
        resumed = _clean_run(config, checkpoint_every=3,
                             checkpoint_path=path)
        # Resume really skipped the first six intervals (and warmup).
        assert calls["n"] == N_SAMPLES - 6
        _assert_results_equal(clean, resumed)
        assert not path.exists()  # snapshot removed on completion

    def test_completed_run_leaves_no_checkpoint(self, tmp_path):
        config = baseline_config()
        path = tmp_path / "job.ckpt.npz"
        result = _clean_run(config, checkpoint_every=2,
                            checkpoint_path=path)
        _assert_results_equal(_clean_run(config), result)
        assert not path.exists()

    def test_stale_checkpoint_is_ignored_and_deleted(self, tmp_path,
                                                     monkeypatch):
        config = baseline_config()
        path = tmp_path / "job.ckpt.npz"
        _count_intervals(monkeypatch, die_after=5)
        with pytest.raises(_Interrupted):
            _clean_run(config, checkpoint_every=2, checkpoint_path=path)
        monkeypatch.undo()
        assert path.exists()
        # Different instruction budget: the snapshot must not resume.
        other = DetailedSimulator(config).run(
            BENCH, n_samples=N_SAMPLES, instructions_per_sample=IPS + 11,
            checkpoint_every=2, checkpoint_path=path)
        reference = DetailedSimulator(config).run(
            BENCH, n_samples=N_SAMPLES, instructions_per_sample=IPS + 11)
        _assert_results_equal(reference, other)
        assert not path.exists()

    def test_corrupt_checkpoint_is_a_fresh_start(self, tmp_path):
        config = baseline_config()
        path = tmp_path / "job.ckpt.npz"
        path.write_bytes(b"not an npz at all")
        result = _clean_run(config, checkpoint_every=3,
                            checkpoint_path=path)
        _assert_results_equal(_clean_run(config), result)

    def test_dvm_state_survives_resume(self, tmp_path, monkeypatch):
        config = baseline_config().with_dvm(True, 0.3)
        path = tmp_path / "dvm.ckpt.npz"
        clean = _clean_run(config)
        _count_intervals(monkeypatch, die_after=6)
        with pytest.raises(_Interrupted):
            _clean_run(config, checkpoint_every=2, checkpoint_path=path)
        monkeypatch.undo()
        resumed = _clean_run(config, checkpoint_every=2,
                             checkpoint_path=path)
        _assert_results_equal(clean, resumed)


class TestEnvironmentPlumbing:
    def test_settings_default_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECKPOINT_EVERY", raising=False)
        assert checkpoint_settings_from_env() == (0, None)

    def test_settings_directory_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINT_EVERY", "8")
        monkeypatch.delenv("REPRO_CHECKPOINT_DIR", raising=False)
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert checkpoint_settings_from_env() == (8, ".repro-checkpoints")
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/rc")
        every, directory = checkpoint_settings_from_env()
        assert every == 8 and directory == str(Path("/tmp/rc") / "checkpoints")
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", "/tmp/ck")
        assert checkpoint_settings_from_env() == (8, "/tmp/ck")

    def test_invalid_every_rejected(self, monkeypatch):
        from repro.errors import SimulationError

        monkeypatch.setenv("REPRO_CHECKPOINT_EVERY", "soon")
        with pytest.raises(SimulationError):
            checkpoint_settings_from_env()

    def test_job_run_writes_keyed_checkpoint(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINT_EVERY", "3")
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path))
        job = SimJob(BENCH, baseline_config(), backend="detailed",
                     n_samples=N_SAMPLES, instructions_per_sample=IPS)
        # Patch the core by hand (monkeypatch.undo would also revert the
        # environment variables set above).
        original = pipeline.OutOfOrderCore.run_interval
        calls = {"n": 0}

        def dying(self, trace):
            calls["n"] += 1
            if calls["n"] > 7:
                raise _Interrupted()
            return original(self, trace)

        pipeline.OutOfOrderCore.run_interval = dying
        try:
            with pytest.raises(_Interrupted):
                job.run()
        finally:
            pipeline.OutOfOrderCore.run_interval = original
        assert (tmp_path / f"{job.key()}.ckpt.npz").exists()
        resumed = job.run()
        assert not (tmp_path / f"{job.key()}.ckpt.npz").exists()
        monkeypatch.delenv("REPRO_CHECKPOINT_EVERY")
        _assert_results_equal(job.run(), resumed)


class TestSigkillResume:
    def test_sigkilled_job_resumes_to_identical_result(self, tmp_path):
        """A real SIGKILL mid-sweep, then a resume in a fresh process."""
        src_root = Path(repro.__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = (str(src_root) + os.pathsep
                             + env.get("PYTHONPATH", ""))
        env["REPRO_CHECKPOINT_EVERY"] = "2"
        env["REPRO_CHECKPOINT_DIR"] = str(tmp_path)
        out_npz = tmp_path / "resumed.npz"
        common = f"""
import numpy as np
from repro.engine import SimJob
from repro.uarch.params import baseline_config
job = SimJob({BENCH!r}, baseline_config(), backend="detailed",
             n_samples={N_SAMPLES}, instructions_per_sample={IPS})
"""
        killed = common + """
import os, signal
import repro.uarch.pipeline as pipeline
original = pipeline.OutOfOrderCore.run_interval
calls = [0]
def dying(self, trace):
    calls[0] += 1
    if calls[0] > 6:  # warmup + 5 measured intervals
        os.kill(os.getpid(), signal.SIGKILL)
    return original(self, trace)
pipeline.OutOfOrderCore.run_interval = dying
job.run()
"""
        resume = common + f"""
result = job.run()
np.savez({str(out_npz)!r}, **result.traces, **result.components)
"""
        first = subprocess.run([sys.executable, "-c", killed], env=env,
                               capture_output=True)
        assert first.returncode == -signal.SIGKILL
        job = SimJob(BENCH, baseline_config(), backend="detailed",
                     n_samples=N_SAMPLES, instructions_per_sample=IPS)
        ckpt = tmp_path / f"{job.key()}.ckpt.npz"
        assert ckpt.exists(), first.stderr.decode()

        second = subprocess.run([sys.executable, "-c", resume], env=env,
                                capture_output=True)
        assert second.returncode == 0, second.stderr.decode()
        assert not ckpt.exists()

        clean = job.run()  # this process has no checkpoint env set
        with np.load(out_npz) as resumed:
            for domain, arr in clean.traces.items():
                assert np.array_equal(resumed[domain], arr)
            for name, arr in clean.components.items():
                assert np.array_equal(resumed[name], arr)


class TestWorkloadContentMeta:
    def test_edited_workload_invalidates_snapshot(self, tmp_path,
                                                  monkeypatch):
        """A snapshot must not resume into a *different* workload that
        merely shares the name (the meta digests workload content)."""
        import dataclasses

        from repro.workloads.spec2000 import get_benchmark

        config = baseline_config()
        path = tmp_path / "named.ckpt.npz"
        original = get_benchmark("gcc")
        edited = dataclasses.replace(get_benchmark("mcf"), name="gcc")

        _count_intervals(monkeypatch, die_after=5)
        with pytest.raises(_Interrupted):
            DetailedSimulator(config).run(
                original, n_samples=N_SAMPLES, instructions_per_sample=IPS,
                checkpoint_every=2, checkpoint_path=path)
        monkeypatch.undo()
        assert path.exists()

        resumed = DetailedSimulator(config).run(
            edited, n_samples=N_SAMPLES, instructions_per_sample=IPS,
            checkpoint_every=2, checkpoint_path=path)
        clean = DetailedSimulator(config).run(
            edited, n_samples=N_SAMPLES, instructions_per_sample=IPS)
        _assert_results_equal(clean, resumed)


class TestDvmPolicyMeta:
    def test_changed_dvm_policy_invalidates_snapshot(self, tmp_path,
                                                     monkeypatch):
        """An explicit dvm_policy override participates in the digest."""
        from repro.reliability.dvm import DVMPolicy

        config = baseline_config().with_dvm(True, 0.3)
        path = tmp_path / "policy.ckpt.npz"
        loose = DVMPolicy(threshold=0.9)

        _count_intervals(monkeypatch, die_after=5)
        with pytest.raises(_Interrupted):
            DetailedSimulator(config, dvm_policy=DVMPolicy(threshold=0.3)).run(
                BENCH, n_samples=N_SAMPLES, instructions_per_sample=IPS,
                checkpoint_every=2, checkpoint_path=path)
        monkeypatch.undo()
        assert path.exists()

        resumed = DetailedSimulator(config, dvm_policy=loose).run(
            BENCH, n_samples=N_SAMPLES, instructions_per_sample=IPS,
            checkpoint_every=2, checkpoint_path=path)
        clean = DetailedSimulator(config, dvm_policy=loose).run(
            BENCH, n_samples=N_SAMPLES, instructions_per_sample=IPS)
        _assert_results_equal(clean, resumed)
