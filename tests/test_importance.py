"""Tests for regression-tree parameter importance (Figure 11 data)."""

import numpy as np
import pytest

from repro.core.predictor import WaveletNeuralPredictor
from repro.dse.importance import StarPlotData, importance_star, importance_table
from repro.errors import ModelError


@pytest.fixture(scope="module")
def fitted_model():
    """A model where parameter 1 dominates and parameter 2 is noise."""
    rng = np.random.default_rng(0)
    X = rng.uniform(size=(120, 3))
    t = np.linspace(0, 1, 32)
    traces = np.vstack([
        (1.0 + 2.5 * x[1]) * (1 + 0.4 * np.sin(2 * np.pi * 2 * t))
        + 0.3 * x[0]
        for x in X
    ])
    return WaveletNeuralPredictor(n_coefficients=8).fit(X, traces)


class TestImportanceStar:
    def test_scores_normalized(self, fitted_model):
        star = importance_star(fitted_model, ("a", "b", "c"), "toy", "cpi")
        assert star.scores.max() == pytest.approx(1.0)
        assert np.all(star.scores >= 0.0)

    def test_dominant_parameter_found(self, fitted_model):
        for measure in ("order", "frequency"):
            star = importance_star(fitted_model, ("a", "b", "c"), "toy",
                                   "cpi", measure)
            assert star.top_parameters(1) == ["b"]

    def test_as_dict(self, fitted_model):
        star = importance_star(fitted_model, ("a", "b", "c"), "toy", "cpi")
        d = star.as_dict()
        assert set(d) == {"a", "b", "c"}

    def test_bad_measure_rejected(self, fitted_model):
        with pytest.raises(ModelError):
            importance_star(fitted_model, ("a", "b", "c"), "toy", "cpi",
                            measure="gini")

    def test_name_count_checked(self, fitted_model):
        with pytest.raises(ModelError):
            importance_star(fitted_model, ("a", "b"), "toy", "cpi")

    def test_importance_table(self, fitted_model):
        star = importance_star(fitted_model, ("a", "b", "c"), "toy", "cpi")
        rows = importance_table([star])
        assert rows[0][0] == "toy"
        assert rows[0][2].startswith("b")

    def test_star_plot_data_frozen(self, fitted_model):
        star = importance_star(fitted_model, ("a", "b", "c"), "toy", "cpi")
        assert isinstance(star, StarPlotData)
        with pytest.raises(Exception):
            star.benchmark = "other"
