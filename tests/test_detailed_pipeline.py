"""Tests for the detailed cycle-level simulator (slower; kept small)."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.reliability.dvm import DVMController, DVMPolicy
from repro.uarch.detailed import DetailedSimulator
from repro.uarch.params import MachineConfig, baseline_config
from repro.uarch.pipeline import OutOfOrderCore
from repro.uarch.simulator import Simulator
from repro.workloads.generator import synthesize_interval
from repro.workloads.spec2000 import get_benchmark

#: Small-but-meaningful run sizes for cycle-level tests.
N_SAMPLES = 8
INSTS = 400


@pytest.fixture(scope="module")
def gcc_result():
    sim = DetailedSimulator(baseline_config())
    return sim.run("gcc", n_samples=N_SAMPLES, instructions_per_sample=INSTS)


class TestBasicExecution:
    def test_all_intervals_complete(self, gcc_result):
        assert gcc_result.trace("cpi").shape == (N_SAMPLES,)
        assert np.all(np.isfinite(gcc_result.trace("cpi")))

    def test_cpi_bounded_below_by_width(self, gcc_result):
        # An 8-wide machine cannot commit faster than width per cycle.
        assert np.all(gcc_result.trace("cpi") >= 1.0 / 8.0)

    def test_power_positive_and_sane(self, gcc_result):
        power = gcc_result.trace("power")
        assert np.all(power > 5.0) and np.all(power < 400.0)

    def test_avf_in_unit_interval(self, gcc_result):
        for dom in ("avf", "iq_avf"):
            trace = gcc_result.trace(dom)
            assert np.all(trace >= 0.0) and np.all(trace <= 1.0)

    def test_mispredict_rate_reasonable(self, gcc_result):
        mp = gcc_result.components["mispredict_rate"]
        assert np.all(mp >= 0.0) and np.all(mp < 0.3)

    def test_deterministic(self):
        a = DetailedSimulator(baseline_config()).run(
            "eon", n_samples=4, instructions_per_sample=300)
        b = DetailedSimulator(baseline_config()).run(
            "eon", n_samples=4, instructions_per_sample=300)
        assert np.allclose(a.trace("cpi"), b.trace("cpi"))


class TestConfigSensitivity:
    def test_weak_machine_slower(self):
        weak = MachineConfig(fetch_width=2, rob_size=96, iq_size=32,
                             lsq_size=16, l2_size_kb=256, l2_latency=20,
                             il1_size_kb=8, dl1_size_kb=8, dl1_latency=4)
        strong = MachineConfig(fetch_width=16, rob_size=160, iq_size=128,
                               lsq_size=64, l2_size_kb=4096, l2_latency=8,
                               il1_size_kb=64, dl1_size_kb=64, dl1_latency=1)
        cpi_weak = DetailedSimulator(weak).run(
            "gcc", n_samples=N_SAMPLES,
            instructions_per_sample=INSTS).aggregate("cpi")
        cpi_strong = DetailedSimulator(strong).run(
            "gcc", n_samples=N_SAMPLES,
            instructions_per_sample=INSTS).aggregate("cpi")
        assert cpi_weak > cpi_strong

    def test_narrow_machine_burns_less_power(self):
        narrow = DetailedSimulator(MachineConfig(fetch_width=2)).run(
            "eon", n_samples=4, instructions_per_sample=INSTS)
        wide = DetailedSimulator(MachineConfig(fetch_width=16)).run(
            "eon", n_samples=4, instructions_per_sample=INSTS)
        assert narrow.aggregate("power") < wide.aggregate("power")

    def test_memory_bound_code_hit_harder_by_small_l2(self):
        def slowdown(bench):
            small = DetailedSimulator(baseline_config(l2_size_kb=256)).run(
                bench, n_samples=4, instructions_per_sample=INSTS)
            big = DetailedSimulator(baseline_config(l2_size_kb=4096)).run(
                bench, n_samples=4, instructions_per_sample=INSTS)
            return small.aggregate("cpi") / big.aggregate("cpi")

        assert slowdown("mcf") > slowdown("eon") * 0.95


class TestDVMIntegration:
    def test_dvm_throttles_and_reduces_iq_avf(self):
        cfg = baseline_config().with_dvm(True, 0.05)  # aggressive target
        managed = DetailedSimulator(cfg).run(
            "mcf", n_samples=4, instructions_per_sample=INSTS)
        plain = DetailedSimulator(baseline_config()).run(
            "mcf", n_samples=4, instructions_per_sample=INSTS)
        assert managed.components["dvm_throttled_frac"].sum() > 0.0
        assert (managed.trace("iq_avf").mean()
                <= plain.trace("iq_avf").mean() + 1e-9)

    def test_dvm_controller_wired_from_config(self):
        sim = DetailedSimulator(baseline_config().with_dvm(True, 0.4))
        assert sim.dvm_controller is not None
        assert sim.dvm_controller.policy.threshold == 0.4
        assert DetailedSimulator(baseline_config()).dvm_controller is None


class TestCoreInternals:
    def test_interval_stats_cpi_guard(self):
        core = OutOfOrderCore(baseline_config())
        trace = synthesize_interval(get_benchmark("eon"), 0, 8, 200)
        stats = core.run_interval(trace)
        assert stats.instructions == 200
        assert stats.cycles > 0
        assert stats.counters["instructions"] == 200

    def test_counters_consistent(self):
        core = OutOfOrderCore(baseline_config())
        trace = synthesize_interval(get_benchmark("gcc"), 0, 8, 300)
        stats = core.run_interval(trace)
        # Every instruction is renamed exactly once and committed once.
        assert stats.counters["rename"] == 300
        assert stats.counters["issue_queue"] == 300

    def test_facade_backend(self):
        sim = Simulator(backend="detailed")
        res = sim.run("eon", baseline_config(), n_samples=4,
                      instructions_per_sample=200)
        assert res.backend == "detailed"

    def test_bad_sizes_rejected(self):
        with pytest.raises(SimulationError):
            DetailedSimulator(baseline_config()).run("gcc", n_samples=0)
