"""Engine lifecycle regression tests (PR-4 bugfix sweep).

Pins the process-global-state and teardown guarantees multi-process /
multi-host execution depends on:

* abandoning a streaming batch leaks no ``/dev/shm`` segment and
  raises no ``ResourceWarning`` at interpreter exit (pool shutdown and
  arena unlink run exactly once, via finalizers rather than ``__del__``
  ordering luck);
* a worker death mid-chunk surfaces as one structured
  :class:`SimulationError` on the affected jobs while cache-resolved
  siblings in the same batch stay intact;
* byte-cap eviction is reproducible when entries share an mtime
  (coarse filesystem timestamps): ties break on entry filename;
* detailed-backend checkpoint settings travel inside jobs/engine
  config, never via ``os.environ`` mutation.
"""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.dse.space import paper_design_space
from repro.engine import (
    ExecutionEngine,
    ParallelExecutor,
    ResultCache,
    SimJob,
)
from repro.errors import SimulationError

pytestmark = pytest.mark.filterwarnings("error::ResourceWarning")


@pytest.fixture(scope="module")
def configs():
    return paper_design_space().sample_random(6, split="train", seed=41)


class _KillWorkerJob(SimJob):
    """A job that kills its worker process mid-chunk (crash testing)."""

    def run(self):
        os._exit(1)


class TestDeterministicTeardown:
    def test_abandoned_batch_leaks_nothing_at_interpreter_exit(self,
                                                               tmp_path):
        """Partially drain a streaming batch, then just exit.

        The subprocess runs under ``-W error::ResourceWarning``; any
        leaked mmap/file would fail it, a resource_tracker complaint
        would land on stderr, and the segment name must be gone from
        the system afterwards.
        """
        src_root = Path(repro.__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = (str(src_root) + os.pathsep
                             + env.get("PYTHONPATH", ""))
        code = """
from repro.dse.space import paper_design_space
from repro.engine import ExecutionEngine, ParallelExecutor, SimJob

configs = paper_design_space().sample_random(4, split="train", seed=3)
ex = ParallelExecutor(max_workers=2, shm=True)
engine = ExecutionEngine(ex)
handle = engine.submit([SimJob("gcc", c, n_samples=32) for c in configs])
handle.result(0)   # partially drained ...
print(ex.last_arena.name if ex.last_arena is not None else "pickle")
# ... then abandoned: no close(), no further drain, just exit.
"""
        proc = subprocess.run(
            [sys.executable, "-W", "error::ResourceWarning", "-c", code],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "ResourceWarning" not in proc.stderr, proc.stderr
        assert "leaked" not in proc.stderr, proc.stderr  # resource_tracker
        name = proc.stdout.strip()
        if name != "pickle":
            import multiprocessing.shared_memory as sm

            with pytest.raises(FileNotFoundError):
                sm.SharedMemory(name=name)

    def test_arena_unlink_runs_exactly_once(self, configs):
        jobs = [SimJob("gcc", c, n_samples=32) for c in configs[:3]]
        with ParallelExecutor(max_workers=2, shm=True) as ex:
            ex.run_batch(jobs)
            arena = ex.last_arena
            assert arena is not None and arena.unlinked
            before = arena._shm  # segment object survives for views
            arena.unlink()  # idempotent: the finalizer already fired
            arena.unlink()
            assert arena._shm is before and arena.unlinked

    def test_close_is_idempotent_and_detaches_finalizer(self, configs):
        ex = ParallelExecutor(max_workers=2)
        ex.run_batch([SimJob("gcc", configs[0], n_samples=16)] * 2)
        # Single job short-circuits; force a pool with two chunks.
        ex.run_batch([SimJob("gcc", c, n_samples=16) for c in configs[:4]])
        assert ex._pool is not None and ex._pool_finalizer.alive
        finalizer = ex._pool_finalizer
        ex.close()
        assert ex._pool is None and ex._pool_finalizer is None
        assert not finalizer.alive  # detached: cannot fire later
        ex.close()  # idempotent


class TestFailurePropagation:
    def test_dead_worker_raises_once_cached_siblings_intact(self, tmp_path,
                                                            configs):
        cache = ResultCache(tmp_path)
        good = [SimJob("gcc", c, n_samples=32) for c in configs[:2]]
        expected = []
        for job in good:
            result = job.run()
            cache.put(job, result)
            expected.append(result)
        # Two killers: the batch has >= 2 executor misses, so it takes
        # the pool path (a single miss would run in-process and
        # os._exit the test itself).
        killers = [_KillWorkerJob("gcc", configs[2], n_samples=32),
                   _KillWorkerJob("gcc", configs[3], n_samples=32)]
        with ParallelExecutor(max_workers=2, chunk_size=1) as ex:
            engine = ExecutionEngine(ex, cache=cache)
            handle = engine.submit(good + killers)
            # Cache hits resolved at submit: available before (and
            # after) the worker death, in any access order.
            assert np.array_equal(handle.result(0).trace("cpi"),
                                  expected[0].trace("cpi"))
            with pytest.raises(SimulationError, match="worker process died"):
                handle.result(2)
            # The failure is terminal and repeatable for the dead job...
            with pytest.raises(SimulationError, match="worker process died"):
                handle.result(2)
            # ... and for its sibling miss, without a fresh pool trip.
            with pytest.raises(SimulationError, match="worker process died"):
                handle.result(3)
            # ... and as_completed surfaces it too, instead of hanging.
            with pytest.raises(SimulationError):
                list(handle.as_completed())
            # Cached siblings remain intact throughout.
            assert np.array_equal(handle.result(1).trace("cpi"),
                                  expected[1].trace("cpi"))
            assert handle.done == 2

    def test_run_batch_reports_structured_error(self, configs):
        jobs = [SimJob("gcc", configs[0], n_samples=16),
                _KillWorkerJob("gcc", configs[1], n_samples=16)]
        with ParallelExecutor(max_workers=2, chunk_size=1) as ex:
            with pytest.raises(SimulationError, match="worker process died"):
                ex.run_batch(jobs)


class TestDeterministicEviction:
    def _fill(self, cache, jobs):
        sizes = {}
        for job in jobs:
            cache.put(job, job.run())
            [path] = [p for p in Path(cache.cache_dir).glob("*.npz")
                      if job.key() in p.name]
            sizes[path.name] = path.stat().st_size
        return sizes

    def test_same_mtime_eviction_is_name_ordered(self, tmp_path, configs):
        jobs = [SimJob("gcc", c, n_samples=32) for c in configs[:4]]
        sizes = self._fill(ResultCache(tmp_path, memory_items=0), jobs)
        # Coarse-timestamp filesystem: every entry shares one mtime.
        stamp = 1_700_000_000
        for name in sizes:
            os.utime(tmp_path / name, (stamp, stamp))
        ordered = sorted(sizes)  # the deterministic eviction order
        total = sum(sizes.values())
        target = total - sizes[ordered[0]] - sizes[ordered[1]] + 1
        fresh = ResultCache(tmp_path, memory_items=0)  # index via rescan
        removed, freed = fresh.gc(max_bytes=target)
        assert removed == 2
        assert freed == sizes[ordered[0]] + sizes[ordered[1]]
        survivors = {p.name for p in Path(tmp_path).glob("*.npz")}
        assert survivors == set(ordered[2:])

    def test_incremental_index_matches_rescan_order(self, tmp_path,
                                                    configs):
        """Eviction picks the same victim whether the index was grown
        by puts or rebuilt by a scan, even with tied mtimes."""
        import heapq

        jobs = [SimJob("swim", c, n_samples=32) for c in configs[:3]]
        cache = ResultCache(tmp_path, memory_items=0)
        sizes = self._fill(cache, jobs)
        stamp = 1_700_000_000
        for name in sizes:
            os.utime(tmp_path / name, (stamp, stamp))
            cache._index()[name] = (stamp * 10**9, sizes[name])
            heapq.heappush(cache._heap, (stamp * 10**9, name))
        ordered = sorted(sizes)
        cache._enforce_cap(sum(sizes.values()) - 1)  # evict exactly one
        incremental_victim = set(sizes) - {p.name for p
                                           in Path(tmp_path).glob("*.npz")}
        assert incremental_victim == {ordered[0]}

    def test_overwrite_refreshes_recency(self, tmp_path, configs):
        import heapq

        jobs = [SimJob("vpr", c, n_samples=32) for c in configs[:2]]
        cache = ResultCache(tmp_path, memory_items=0)
        sizes = self._fill(cache, jobs)
        old = 1_600_000_000
        for name in sizes:
            os.utime(tmp_path / name, (old, old))
            cache._index()[name] = (old * 10**9, sizes[name])
            heapq.heappush(cache._heap, (old * 10**9, name))
        cache.put(jobs[0], jobs[0].run())  # rewrite: fresh mtime
        cache._enforce_cap(sum(sizes.values()) - 1)
        survivors = {p.name for p in Path(tmp_path).glob("*.npz")}
        [kept] = [name for name in sizes if jobs[0].key() in name]
        assert kept in survivors and len(survivors) == 1


class TestCheckpointThreading:
    BENCH, N, IPS = "gcc", 8, 50

    def test_job_carries_checkpoint_settings(self, tmp_path, monkeypatch):
        from repro.uarch import pipeline
        from repro.uarch.params import baseline_config

        monkeypatch.delenv("REPRO_CHECKPOINT_EVERY", raising=False)
        monkeypatch.delenv("REPRO_CHECKPOINT_DIR", raising=False)
        job = SimJob(self.BENCH, baseline_config(), backend="detailed",
                     n_samples=self.N, instructions_per_sample=self.IPS,
                     checkpoint_every=3, checkpoint_dir=str(tmp_path))

        original = pipeline.OutOfOrderCore.run_interval
        calls = {"n": 0}

        def dying(self, trace):
            calls["n"] += 1
            if calls["n"] > 6:
                raise RuntimeError("interrupted")
            return original(self, trace)

        monkeypatch.setattr(pipeline.OutOfOrderCore, "run_interval", dying)
        with pytest.raises(RuntimeError):
            job.run()
        monkeypatch.setattr(pipeline.OutOfOrderCore, "run_interval",
                            original)
        # With no environment at all, the snapshot landed in the job's
        # own directory and resuming is bit-identical to a clean run.
        ckpt = tmp_path / f"{job.key()}.ckpt.npz"
        assert ckpt.exists()
        resumed = job.run()
        assert not ckpt.exists()
        import dataclasses

        clean = dataclasses.replace(job, checkpoint_every=0,
                                    checkpoint_dir=None).run()
        for domain in clean.traces:
            assert np.array_equal(clean.traces[domain],
                                  resumed.traces[domain])

    def test_checkpoint_fields_do_not_fragment_cache_key(self):
        from repro.uarch.params import baseline_config

        plain = SimJob(self.BENCH, baseline_config(), backend="detailed",
                       n_samples=self.N, instructions_per_sample=self.IPS)
        threaded = SimJob(self.BENCH, baseline_config(), backend="detailed",
                          n_samples=self.N,
                          instructions_per_sample=self.IPS,
                          checkpoint_every=5, checkpoint_dir="/tmp/ck")
        assert plain.key() == threaded.key()

    def test_engine_stamps_only_unset_detailed_jobs(self, tmp_path):
        from repro.uarch.params import baseline_config

        engine = ExecutionEngine(checkpoint_every=4,
                                 checkpoint_dir=tmp_path)
        interval = SimJob(self.BENCH, baseline_config(), n_samples=16)
        assert engine._configure_job(interval) is interval
        detailed = SimJob(self.BENCH, baseline_config(), backend="detailed",
                          n_samples=self.N,
                          instructions_per_sample=self.IPS)
        stamped = engine._configure_job(detailed)
        assert stamped.checkpoint_every == 4
        assert stamped.checkpoint_dir == str(tmp_path)
        own = SimJob(self.BENCH, baseline_config(), backend="detailed",
                     n_samples=self.N, instructions_per_sample=self.IPS,
                     checkpoint_every=9, checkpoint_dir="/elsewhere")
        restamped = engine._configure_job(own)
        assert restamped.checkpoint_every == 9
        assert restamped.checkpoint_dir == "/elsewhere"
