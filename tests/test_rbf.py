"""Unit tests for repro.core.rbf."""

import numpy as np
import pytest

from repro.core.rbf import DEFAULT_LAMBDA_GRID, RBFNetwork, _design_matrix
from repro.errors import ModelError, NotFittedError


def _smooth_problem(n=150, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(size=(n, 3))
    y = np.sin(4 * X[:, 0]) + X[:, 1] ** 2 - 0.5 * X[:, 2]
    return X, y


class TestDesignMatrix:
    def test_activation_is_one_at_center(self):
        centers = np.array([[0.3, 0.7]])
        radii = np.array([[0.2, 0.2]])
        phi = _design_matrix(np.array([[0.3, 0.7]]), centers, radii)
        assert phi[0, 0] == pytest.approx(1.0)

    def test_activation_decays_with_distance(self):
        centers = np.array([[0.0, 0.0]])
        radii = np.array([[1.0, 1.0]])
        near = _design_matrix(np.array([[0.1, 0.0]]), centers, radii)[0, 0]
        far = _design_matrix(np.array([[2.0, 0.0]]), centers, radii)[0, 0]
        assert near > far

    def test_anisotropic_radii(self):
        centers = np.array([[0.0, 0.0]])
        radii = np.array([[10.0, 0.1]])
        along_wide = _design_matrix(np.array([[1.0, 0.0]]), centers, radii)[0, 0]
        along_narrow = _design_matrix(np.array([[0.0, 1.0]]), centers, radii)[0, 0]
        assert along_wide > along_narrow

    def test_values_in_unit_interval(self):
        rng = np.random.default_rng(1)
        phi = _design_matrix(rng.normal(size=(20, 4)),
                             rng.normal(size=(6, 4)),
                             np.abs(rng.normal(size=(6, 4))) + 0.1)
        assert np.all(phi > 0.0) and np.all(phi <= 1.0)


class TestFitPredict:
    def test_fits_smooth_function_well(self):
        X, y = _smooth_problem()
        net = RBFNetwork().fit(X, y)
        assert np.abs(net.predict(X) - y).mean() < 0.1

    def test_generalizes_to_unseen_points(self):
        X, y = _smooth_problem(n=200, seed=2)
        net = RBFNetwork().fit(X[:150], y[:150])
        test_err = np.abs(net.predict(X[150:]) - y[150:]).mean()
        assert test_err < 0.25

    def test_constant_target_predicted_exactly(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(size=(60, 2))
        net = RBFNetwork().fit(X, np.full(60, 4.2))
        assert net.predict(X) == pytest.approx(np.full(60, 4.2), abs=1e-6)

    def test_beats_linear_on_nonlinear_response(self):
        rng = np.random.default_rng(4)
        X = rng.uniform(size=(200, 2))
        y = np.sin(6 * X[:, 0]) * np.exp(-X[:, 1])
        net = RBFNetwork().fit(X[:150], y[:150])
        design = np.hstack([X[:150], np.ones((150, 1))])
        coef, *_ = np.linalg.lstsq(design, y[:150], rcond=None)
        lin_pred = np.hstack([X[150:], np.ones((50, 1))]) @ coef
        rbf_err = np.mean((net.predict(X[150:]) - y[150:]) ** 2)
        lin_err = np.mean((lin_pred - y[150:]) ** 2)
        assert rbf_err < lin_err

    def test_forward_solver_works(self):
        X, y = _smooth_problem(n=80, seed=5)
        net = RBFNetwork(solver="forward", max_depth=4).fit(X, y)
        assert np.abs(net.predict(X) - y).mean() < 0.3
        # Forward selection should leave some weights at exactly zero.
        assert np.sum(net.weights_ == 0.0) > 0

    def test_gcv_selects_lambda_from_grid(self):
        X, y = _smooth_problem(n=80, seed=6)
        net = RBFNetwork().fit(X, y)
        assert net.lambda_ in DEFAULT_LAMBDA_GRID

    def test_unit_count_matches_tree_nodes(self):
        X, y = _smooth_problem(n=80, seed=7)
        net = RBFNetwork(max_depth=3).fit(X, y)
        assert net.n_units == net.tree_.n_nodes


class TestValidation:
    def test_unknown_solver_rejected(self):
        with pytest.raises(ModelError):
            RBFNetwork(solver="sgd")

    def test_bad_radius_scale_rejected(self):
        with pytest.raises(ModelError):
            RBFNetwork(radius_scale=0.0)

    def test_bad_min_radius_rejected(self):
        with pytest.raises(ModelError):
            RBFNetwork(min_radius=-1.0)

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            RBFNetwork().predict([[0.0]])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ModelError):
            RBFNetwork().fit(np.ones((5, 2)), np.ones(4))

    def test_predict_wrong_width_rejected(self):
        X, y = _smooth_problem(n=60, seed=8)
        net = RBFNetwork().fit(X, y)
        with pytest.raises(ModelError):
            net.predict(np.ones((2, 7)))
