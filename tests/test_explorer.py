"""Tests for the predictive design-space explorer."""

import numpy as np
import pytest

import repro
from repro.dse.explorer import (
    Constraint,
    ExplorationResult,
    Objective,
    PredictiveExplorer,
)
from repro.dse.runner import SweepPlan, SweepRunner
from repro.dse.space import paper_design_space
from repro.errors import ExperimentError, ModelError


@pytest.fixture(scope="module")
def explorer():
    space = paper_design_space()
    plan = SweepPlan(space=space, n_train=120, n_test=10,
                     n_lhs_matrices=3, seed=21)
    train, _ = SweepRunner(n_samples=64).run_train_test("gcc", plan)
    models = {}
    for domain in ("cpi", "power", "iq_avf"):
        models[domain] = repro.WaveletNeuralPredictor(
            n_coefficients=16).fit(train.design_matrix(), train.domain(domain))
    return PredictiveExplorer(space, models)


class TestConstraintObjective:
    def test_constraint_semantics(self):
        c = Constraint("power", "max", "<=", 50.0)
        assert c.satisfied(np.array([10.0, 49.0]))
        assert not c.satisfied(np.array([10.0, 51.0]))
        assert c.margin(np.array([10.0, 40.0])) == pytest.approx(10.0)

    def test_constraint_ge(self):
        c = Constraint("cpi", "min", ">=", 0.5)
        assert c.satisfied(np.array([0.6, 0.9]))
        assert not c.satisfied(np.array([0.4, 0.9]))

    def test_objective_score_sign(self):
        trace = np.array([1.0, 3.0])
        assert Objective("cpi").score(trace) == pytest.approx(2.0)
        assert Objective("cpi", maximize=True).score(trace) == pytest.approx(-2.0)

    def test_bad_reducer_rejected(self):
        with pytest.raises(ModelError):
            Constraint("cpi", "median", "<=", 1.0)
        with pytest.raises(ModelError):
            Objective("cpi", reducer="sum")

    def test_bad_op_rejected(self):
        with pytest.raises(ModelError):
            Constraint("cpi", "mean", "<", 1.0)

    def test_describe(self):
        assert "power" in Constraint("power", "max", "<=", 100).describe()
        assert "minimize" in Objective("cpi").describe()


class TestExplorer:
    def test_unfitted_model_rejected(self):
        with pytest.raises(ModelError):
            PredictiveExplorer(paper_design_space(),
                               {"cpi": repro.WaveletNeuralPredictor()})

    def test_candidate_grid_sampled_when_limited(self, explorer):
        candidates = explorer.candidate_grid(limit=100, seed=0)
        assert len(candidates) == 100

    def test_candidate_grid_full_when_small(self, explorer):
        candidates = explorer.candidate_grid(split="test", limit=None)
        assert len(candidates) == explorer.space.size("test")

    def test_unknown_domain_rejected(self, explorer):
        with pytest.raises(ExperimentError):
            explorer.search(Objective("temperature"), limit=10)

    def test_search_returns_feasible_optimum(self, explorer):
        result = explorer.search(
            Objective("cpi", "mean"),
            constraints=(Constraint("power", "max", "<=", 80.0),),
            limit=400, seed=1,
        )
        assert isinstance(result, ExplorationResult)
        assert result.n_evaluated == 400
        assert result.best_config is not None
        # The winner must itself satisfy the constraint per the model.
        traces = explorer.predict_traces([result.best_config],
                                         ["power", "cpi"])
        assert traces["power"][0].max() <= 80.0 + 1e-6

    def test_unconstrained_search_prefers_strong_machines(self, explorer):
        result = explorer.search(Objective("cpi", "mean"), limit=400, seed=2)
        # Minimizing CPI without constraints should pick a wide machine
        # with a big L2 (per the model's monotone trends).
        assert result.best_config.fetch_width >= 8
        assert result.best_config.l2_size_kb >= 1024

    def test_power_constraint_binds(self, explorer):
        loose = explorer.search(Objective("cpi", "mean"), limit=400, seed=3)
        tight = explorer.search(
            Objective("cpi", "mean"),
            constraints=(Constraint("power", "max", "<=", 40.0),),
            limit=400, seed=3,
        )
        assert tight.n_feasible < loose.n_feasible
        if tight.best_config is not None:
            assert tight.best_score >= loose.best_score - 1e-9

    def test_infeasible_constraints_give_empty_result(self, explorer):
        result = explorer.search(
            Objective("cpi"),
            constraints=(Constraint("power", "max", "<=", 0.1),),
            limit=100, seed=4,
        )
        assert result.best_config is None
        assert result.n_feasible == 0
        assert result.feasible_fraction == 0.0

    def test_ranked_results_sorted(self, explorer):
        result = explorer.search(Objective("cpi"), limit=200, top_k=5, seed=5)
        scores = [s for _, s in result.ranked]
        assert scores == sorted(scores)
        assert len(result.ranked) <= 5


class TestSensitivity:
    def test_l2_sweep_monotone(self, explorer):
        sweep = explorer.sensitivity(repro.baseline_config(), "l2_size_kb",
                                     "cpi", "mean")
        levels = [lvl for lvl, _ in sweep]
        values = [v for _, v in sweep]
        assert levels == [256, 1024, 2048, 4096]
        # Bigger L2 should not (predictedly) hurt gcc.
        assert values[-1] <= values[0] + 0.2

    def test_unknown_parameter_rejected(self, explorer):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            explorer.sensitivity(repro.baseline_config(), "l3_size", "cpi")

    def test_bad_reducer_rejected(self, explorer):
        with pytest.raises(ModelError):
            explorer.sensitivity(repro.baseline_config(), "l2_size_kb",
                                 "cpi", reducer="harmonic")


class TestReducers:
    def test_p99_and_amax_abs_builtin(self):
        from repro.dse.explorer import REDUCERS
        trace = np.concatenate([np.zeros(99), [-5.0]])
        assert float(REDUCERS["p99"](np.arange(101.0))) == pytest.approx(99.0)
        assert float(REDUCERS["amax_abs"](trace)) == pytest.approx(5.0)
        c = Constraint("power", "p99", "<=", 10.0)
        assert c.satisfied(np.full(100, 5.0))
        assert Objective("avf", "amax_abs").score(trace) == pytest.approx(5.0)

    def test_reducers_vectorized_over_matrix(self):
        from repro.dse.explorer import REDUCERS
        traces = np.arange(12.0).reshape(3, 4)
        for name, fn in REDUCERS.items():
            reduced = np.asarray(fn(traces, axis=-1))
            assert reduced.shape == (3,), name

    def test_register_reducer_roundtrip(self):
        from repro.dse.explorer import (REDUCERS, register_reducer,
                                        unregister_reducer)
        register_reducer("p10", lambda t, axis=-1: np.percentile(t, 10, axis=axis))
        try:
            assert "p10" in REDUCERS
            c = Constraint("cpi", "p10", ">=", 0.0)
            assert c.satisfied(np.ones(8))
        finally:
            unregister_reducer("p10")
        assert "p10" not in REDUCERS

    def test_register_reducer_validation(self):
        from repro.dse.explorer import register_reducer, unregister_reducer
        with pytest.raises(ModelError):
            register_reducer("not an identifier", lambda t, axis=-1: t.mean(axis))
        with pytest.raises(ModelError):
            register_reducer("mean", lambda t, axis=-1: t.mean(axis))  # no overwrite
        with pytest.raises(ModelError):
            register_reducer("broken", "not-callable")
        with pytest.raises(ModelError):
            register_reducer("raises", lambda t, axis=-1: 1 / 0)
        with pytest.raises(ModelError):
            register_reducer("wrong_shape", lambda t, axis=-1: t)
        with pytest.raises(ModelError):
            unregister_reducer("never_registered")

    def test_register_reducer_overwrite_allowed(self):
        from repro.dse.explorer import REDUCERS, register_reducer
        original = REDUCERS["p95"]
        register_reducer("p95", lambda t, axis=-1: np.percentile(t, 95, axis=axis),
                         overwrite=True)
        REDUCERS["p95"] = original

    def test_collision_refused_and_leaves_original_intact(self):
        from repro.dse.explorer import REDUCERS, register_reducer
        original = REDUCERS["mean"]
        with pytest.raises(ModelError, match="overwrite=True"):
            register_reducer("mean", lambda t, axis=-1: np.max(t, axis=axis))
        assert REDUCERS["mean"] is original  # failed overwrite is atomic

    def test_collision_applies_to_custom_reducers_too(self):
        from repro.dse.explorer import register_reducer, unregister_reducer
        register_reducer("p20", lambda t, axis=-1: np.percentile(t, 20, axis=axis))
        try:
            with pytest.raises(ModelError):
                register_reducer(
                    "p20", lambda t, axis=-1: np.percentile(t, 25, axis=axis))
        finally:
            unregister_reducer("p20")

    def test_overwritten_builtin_can_be_restored(self):
        from repro.dse.explorer import REDUCERS, register_reducer
        original = REDUCERS["min"]
        replacement = lambda t, axis=-1: np.min(t, axis=axis) + 0.0
        register_reducer("min", replacement, overwrite=True)
        try:
            assert REDUCERS["min"] is replacement
        finally:
            # Built-ins cannot be unregistered; the documented recovery
            # path is a second overwrite-registration.
            register_reducer("min", original, overwrite=True)
        assert REDUCERS["min"] is original

    def test_unregister_builtin_refused(self):
        from repro.dse.explorer import REDUCERS, unregister_reducer
        with pytest.raises(ModelError, match="built-in"):
            unregister_reducer("mean")
        assert "mean" in REDUCERS

    def test_non_finite_reducer_rejected(self):
        from repro.dse.explorer import register_reducer
        with pytest.raises(ModelError):
            register_reducer(
                "to_nan", lambda t, axis=-1: np.full(t.shape[0], np.nan))


class TestConstraintValidation:
    def test_bad_domain_rejected(self):
        with pytest.raises(ModelError):
            Constraint("", "mean", "<=", 1.0)
        with pytest.raises(ModelError):
            Constraint(3, "mean", "<=", 1.0)

    @pytest.mark.parametrize("bound", [
        float("nan"), float("inf"), float("-inf"), "100", None, True,
    ])
    def test_bad_bound_rejected(self, bound):
        with pytest.raises(ModelError):
            Constraint("power", "max", "<=", bound)

    def test_integer_bound_accepted(self):
        c = Constraint("power", "max", "<=", 100)
        assert c.satisfied(np.array([50.0, 99.0]))

    def test_numpy_scalar_bounds_accepted(self):
        # Bounds computed from numpy arrays must not be rejected.
        for bound in (np.float64(80.0), np.float32(80.0), np.int64(80)):
            c = Constraint("power", "max", "<=", bound)
            assert c.satisfied(np.array([50.0, 79.0]))
        with pytest.raises(ModelError):
            Constraint("power", "max", "<=", np.float64("nan"))

    def test_margin_many_matches_scalar_margin(self):
        traces = np.array([[1.0, 5.0], [2.0, 8.0], [0.5, 0.5]])
        for op, bound in (("<=", 6.0), (">=", 1.0)):
            c = Constraint("power", "max", op, bound)
            margins = c.margin_many(traces)
            assert margins.shape == (3,)
            for row, margin in zip(traces, margins):
                assert margin == pytest.approx(c.margin(row))

    def test_margin_many_over_ensemble_stack(self):
        c = Constraint("power", "p95", "<=", 4.0)
        stack = np.arange(24.0).reshape(2, 3, 4)  # (members, configs, samples)
        margins = c.margin_many(stack)
        assert margins.shape == (2, 3)
        assert np.array_equal(margins[0], c.margin_many(stack[0]))
