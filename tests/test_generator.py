"""Unit tests for synthetic trace generation."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.uarch.trace import InstructionTrace, OpClass
from repro.workloads.generator import synthesize_interval, synthesize_trace
from repro.workloads.spec2000 import get_benchmark


class TestTraceContainer:
    def test_slice_view(self):
        trace = synthesize_interval(get_benchmark("gcc"), 0, 16, 200)
        sub = trace.slice(50, 100)
        assert len(sub) == 50
        assert np.array_equal(sub.op, trace.op[50:100])

    def test_bad_slice_rejected(self):
        trace = synthesize_interval(get_benchmark("gcc"), 0, 16, 100)
        with pytest.raises(WorkloadError):
            trace.slice(50, 20)
        with pytest.raises(WorkloadError):
            trace.slice(0, 101)

    def test_mismatched_fields_rejected(self):
        with pytest.raises(WorkloadError):
            InstructionTrace(
                op=np.zeros(4, dtype=np.int8),
                src1_dist=np.zeros(4, dtype=np.int64),
                src2_dist=np.zeros(4, dtype=np.int64),
                address=np.zeros(4, dtype=np.int64),
                pc=np.zeros(3, dtype=np.int64),      # wrong length
                taken=np.zeros(4, dtype=bool),
                ace=np.zeros(4, dtype=bool),
            )


class TestStatisticalFidelity:
    def test_deterministic(self):
        wl = get_benchmark("gcc")
        a = synthesize_interval(wl, 3, 64, 500)
        b = synthesize_interval(wl, 3, 64, 500)
        assert np.array_equal(a.op, b.op)
        assert np.array_equal(a.address, b.address)

    def test_different_intervals_differ(self):
        wl = get_benchmark("gcc")
        a = synthesize_interval(wl, 0, 64, 500)
        b = synthesize_interval(wl, 32, 64, 500)
        assert not np.array_equal(a.op, b.op)

    @pytest.mark.parametrize("bench", ["gcc", "swim", "mcf"])
    def test_mix_matches_model(self, bench):
        wl = get_benchmark(bench)
        n_samples = 16
        interval = 4
        trace = synthesize_interval(wl, interval, n_samples, 4000)
        observed = trace.mix_fractions()
        weights = wl.phase_weights(n_samples)[interval]
        for attr, key in (("f_load", "f_load"), ("f_branch", "f_branch"),
                          ("f_fp", "f_fp")):
            expected = float(weights @ wl.phase_vector(attr))
            assert observed[key] == pytest.approx(expected, abs=0.03)

    def test_memory_ops_have_addresses(self):
        trace = synthesize_interval(get_benchmark("gcc"), 0, 16, 1000)
        is_mem = (trace.op == OpClass.LOAD) | (trace.op == OpClass.STORE)
        assert np.all(trace.address[is_mem] > 0)
        assert np.all(trace.address[~is_mem] == 0)

    def test_ace_fraction_matches_model(self):
        wl = get_benchmark("gcc")
        trace = synthesize_interval(wl, 0, 16, 5000)
        weights = wl.phase_weights(16)[0]
        expected = float(weights @ wl.phase_vector("ace_fraction"))
        assert np.mean(trace.ace) == pytest.approx(expected, abs=0.03)

    def test_dependence_distances_positive(self):
        trace = synthesize_interval(get_benchmark("eon"), 0, 16, 1000)
        assert np.all(trace.src1_dist >= 1)
        assert np.all(trace.src2_dist >= 0)

    def test_swim_branch_fraction_tiny(self):
        trace = synthesize_interval(get_benchmark("swim"), 4, 16, 4000)
        assert trace.mix_fractions()["f_branch"] < 0.06

    def test_mcf_touches_larger_footprint_than_crafty(self):
        mcf = synthesize_interval(get_benchmark("mcf"), 0, 16, 3000)
        crafty = synthesize_interval(get_benchmark("crafty"), 0, 16, 3000)
        mcf_lines = np.unique(mcf.address[mcf.address > 0] // 64).size
        crafty_lines = np.unique(crafty.address[crafty.address > 0] // 64).size
        assert mcf_lines > crafty_lines

    def test_bad_length_rejected(self):
        with pytest.raises(WorkloadError):
            synthesize_interval(get_benchmark("gcc"), 0, 16, 0)


class TestFullTrace:
    def test_concatenation(self):
        wl = get_benchmark("eon")
        trace = synthesize_trace(wl, n_samples=4, instructions_per_sample=100)
        assert len(trace) == 400
        part = synthesize_interval(wl, 0, 4, 100)
        assert np.array_equal(trace.op[:100], part.op)
