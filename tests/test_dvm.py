"""Unit tests for the DVM policy and controller."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.reliability.dvm import DVMController, DVMPolicy
from repro.uarch.params import MachineConfig, baseline_config


class TestPolicyValidation:
    @pytest.mark.parametrize("kwargs", [
        {"threshold": 0.0},
        {"threshold": 1.0},
        {"sample_divisor": 0},
        {"wq_decrease": 1.5},
    ])
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            DVMPolicy(**kwargs)

    def test_defaults_match_paper(self):
        p = DVMPolicy()
        assert p.threshold == 0.3
        assert p.sample_divisor == 5        # sample_interval/5
        assert p.wq_decrease == 0.5         # wq_ratio = wq_ratio/2


class TestIntervalEffect:
    def _apply(self, avf, stall, cfg=None, threshold=0.3):
        policy = DVMPolicy(threshold=threshold)
        cfg = cfg or baseline_config()
        cpi = np.full_like(np.asarray(avf, dtype=float), 1.5)
        return policy.apply_interval_effect(avf, cpi, cfg, stall)

    def test_below_threshold_untouched(self):
        avf = np.array([0.1, 0.2, 0.25])
        stall = np.full(3, 0.2)
        managed, cpi, engaged = self._apply(avf, stall)
        assert np.allclose(managed, avf)
        assert np.allclose(cpi, 1.5)
        assert np.all(engaged == 0.0)

    def test_managed_never_exceeds_raw(self):
        avf = np.linspace(0.1, 0.9, 16)
        stall = np.linspace(0.0, 0.9, 16)
        managed, _, _ = self._apply(avf, stall)
        assert np.all(managed <= avf + 1e-12)

    def test_effective_regime_clamps_below_threshold(self):
        avf = np.array([0.45])
        stall = np.array([0.1])       # low stall: controller effective
        managed, _, _ = self._apply(avf, stall)
        assert managed[0] < 0.3

    def test_saturated_regime_fails(self):
        avf = np.array([0.7])
        stall = np.array([0.9])       # memory-bound: throttle saturates
        managed, _, _ = self._apply(avf, stall)
        assert managed[0] > 0.3

    def test_throttling_costs_cpi(self):
        avf = np.array([0.6])
        stall = np.array([0.2])
        _, cpi, engaged = self._apply(avf, stall)
        assert engaged[0] == 1.0
        assert cpi[0] > 1.5

    def test_effectiveness_monotone_in_stall(self):
        policy = DVMPolicy()
        cfg = baseline_config()
        stalls = np.linspace(0.0, 1.0, 11)
        eta = policy.effectiveness(cfg, stalls)
        assert np.all(np.diff(eta) <= 1e-12)
        assert np.all((eta >= 0.05) & (eta <= 0.95))

    def test_wide_fetch_reduces_effectiveness(self):
        policy = DVMPolicy()
        narrow = policy.effectiveness(MachineConfig(fetch_width=2), 0.3)
        wide = policy.effectiveness(MachineConfig(fetch_width=16), 0.3)
        assert wide < narrow


class TestController:
    def test_wq_halves_on_trigger(self):
        ctl = DVMController(DVMPolicy(threshold=0.3, wq_initial=4.0))
        ctl.on_sample(0.5)
        assert ctl.wq_ratio == pytest.approx(2.0)
        assert ctl.trigger_count == 1

    def test_wq_grows_slowly_when_safe(self):
        ctl = DVMController(DVMPolicy(threshold=0.3, wq_initial=2.0))
        ctl.on_sample(0.1)
        assert ctl.wq_ratio == pytest.approx(3.0)

    def test_wq_bounded(self):
        ctl = DVMController(DVMPolicy(wq_max=8.0))
        for _ in range(50):
            ctl.on_sample(0.0)
        assert ctl.wq_ratio == 8.0
        for _ in range(50):
            ctl.on_sample(0.9)
        assert ctl.wq_ratio >= 0.25

    def test_throttle_on_l2_miss(self):
        ctl = DVMController(DVMPolicy())
        assert ctl.should_throttle(waiting=0, ready=5,
                                   l2_miss_outstanding=True)

    def test_throttle_on_wq_ratio_violation(self):
        ctl = DVMController(DVMPolicy(wq_initial=2.0))
        assert ctl.should_throttle(waiting=10, ready=2,
                                   l2_miss_outstanding=False)
        assert not ctl.should_throttle(waiting=3, ready=2,
                                       l2_miss_outstanding=False)

    def test_no_ready_instructions(self):
        ctl = DVMController(DVMPolicy(wq_initial=2.0))
        assert ctl.should_throttle(waiting=5, ready=0,
                                   l2_miss_outstanding=False)
        assert not ctl.should_throttle(waiting=1, ready=0,
                                       l2_miss_outstanding=False)
