"""Unit and property tests for the detailed cache models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.uarch.caches import (
    AccessResult,
    CacheHierarchy,
    SetAssociativeCache,
    TLB,
)
from repro.uarch.params import baseline_config


class TestSetAssociativeCache:
    def test_repeat_access_hits(self):
        cache = SetAssociativeCache(4, 2, 64)
        assert not cache.access(0x1000)
        assert cache.access(0x1000)
        assert cache.hits == 1 and cache.misses == 1

    def test_same_line_different_bytes_hit(self):
        cache = SetAssociativeCache(4, 2, 64)
        cache.access(0x1000)
        assert cache.access(0x103F)      # same 64B line
        assert not cache.access(0x1040)  # next line

    def test_lru_eviction_order(self):
        # 2 ways, 1KB with 64B lines -> 8 sets; three lines in one set.
        cache = SetAssociativeCache(1, 2, 64)
        set_stride = 8 * 64
        a, b, c = 0x0, set_stride, 2 * set_stride
        cache.access(a)
        cache.access(b)
        cache.access(a)        # a is now MRU
        cache.access(c)        # evicts b (LRU)
        assert cache.access(a)
        assert not cache.access(b)

    def test_contains_does_not_mutate(self):
        cache = SetAssociativeCache(4, 2, 64)
        cache.access(0x2000)
        hits, misses = cache.hits, cache.misses
        assert cache.contains(0x2000)
        assert not cache.contains(0x9000)
        assert (cache.hits, cache.misses) == (hits, misses)

    def test_capacity_fits_working_set(self):
        cache = SetAssociativeCache(8, 4, 64)    # 128 lines
        lines = [i * 64 for i in range(128)]
        for addr in lines:
            cache.access(addr)
        cache.reset_stats()
        for addr in lines:
            cache.access(addr)
        assert cache.miss_rate == 0.0

    def test_overflow_working_set_misses(self):
        cache = SetAssociativeCache(8, 4, 64)    # 128 lines
        lines = [i * 64 for i in range(256)]     # 2x capacity, cyclic
        for _ in range(3):
            for addr in lines:
                cache.access(addr)
        cache.reset_stats()
        for addr in lines:
            cache.access(addr)
        assert cache.miss_rate == 1.0            # cyclic sweep defeats LRU

    @given(st.integers(0, 2**40 - 1))
    @settings(max_examples=50, deadline=None)
    def test_inclusion_property(self, addr):
        """A bigger same-geometry cache never misses where the smaller
        hit (stack/inclusion property of LRU)."""
        small = SetAssociativeCache(4, 4, 64)
        big = SetAssociativeCache(16, 4, 64)
        rng = np.random.default_rng(addr % 65536)
        stream = (rng.integers(0, 1 << 16, size=200) * 64).tolist() + [addr]
        small_hits = [small.access(a) for a in stream]
        big_hits = [big.access(a) for a in stream]
        for s_hit, b_hit in zip(small_hits, big_hits):
            if s_hit:
                assert b_hit

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(0, 2, 64)
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(1, 64, 64)   # capacity < assoc lines


class TestTLB:
    def test_page_reuse_hits(self):
        tlb = TLB(entries=4)
        assert not tlb.access(0x1000)
        assert tlb.access(0x1FFF)        # same 4K page
        assert not tlb.access(0x2000)

    def test_lru_eviction(self):
        tlb = TLB(entries=2)
        tlb.access(0x0000)
        tlb.access(0x1000 * 4)
        tlb.access(0x0000)               # refresh first page
        tlb.access(0x2000 * 4)           # evicts the second page
        assert tlb.access(0x0000)
        assert not tlb.access(0x1000 * 4)

    def test_invalid_entries(self):
        with pytest.raises(ConfigurationError):
            TLB(entries=0)


class TestHierarchy:
    def test_dl1_hit_latency(self):
        h = CacheHierarchy(baseline_config())
        h.data_access(0x4000)            # warm
        result = h.data_access(0x4000)
        assert result.dl1_hit
        assert result.latency == baseline_config().dl1_latency

    def test_l2_hit_latency(self):
        cfg = baseline_config()
        h = CacheHierarchy(cfg)
        # Fill DL1 beyond capacity so early lines fall to L2 only.
        lines = [0x100000 + i * 64 for i in range(4096)]
        for a in lines:
            h.data_access(a)
        result = h.data_access(lines[0])
        if not result.dl1_hit and result.l2_hit and result.tlb_hit:
            assert result.latency == cfg.dl1_latency + cfg.l2_latency

    def test_memory_latency_on_cold_miss(self):
        cfg = baseline_config()
        h = CacheHierarchy(cfg)
        result = h.data_access(0x77000000)
        assert result.goes_to_memory
        expected = cfg.dl1_latency + cfg.l2_latency + cfg.memory_latency
        if result.tlb_hit:
            assert result.latency == expected
        else:
            assert result.latency == expected + cfg.tlb_miss_latency

    def test_inst_access_bubble_zero_on_hit(self):
        h = CacheHierarchy(baseline_config())
        h.inst_access(0x400000)
        assert h.inst_access(0x400000) == 0

    def test_access_result_flags(self):
        r = AccessResult(latency=5, dl1_hit=False, l2_hit=False)
        assert r.goes_to_memory
        r2 = AccessResult(latency=5, dl1_hit=False, l2_hit=True)
        assert not r2.goes_to_memory


class TestLruEquivalence:
    """The O(1) ordered-dict sets must reproduce a reference per-way
    true-LRU scan's hit/miss stream exactly (the detailed backend's
    results are pinned on it)."""

    @staticmethod
    def _reference_stream(addresses, n_sets, assoc, line_shift):
        sets = [[] for _ in range(n_sets)]  # MRU last
        stream = []
        for address in addresses:
            line = address >> line_shift
            ways = sets[line & (n_sets - 1)]
            if line in ways:
                ways.remove(line)
                ways.append(line)
                stream.append(True)
            else:
                if len(ways) >= assoc:
                    ways.pop(0)
                ways.append(line)
                stream.append(False)
        return stream

    def test_cache_access_matches_reference_lru(self):
        cache = SetAssociativeCache(size_kb=1, assoc=2, line_bytes=32)
        rng = np.random.default_rng(5)
        addresses = [int(a) for a in rng.integers(0, 1 << 14, size=4000)]
        expected = self._reference_stream(addresses, cache.n_sets,
                                          cache.assoc, 5)
        observed = [cache.access(a) for a in addresses]
        assert observed == expected
        assert cache.hits == sum(expected)
        assert cache.misses == len(expected) - sum(expected)

    def test_btb_access_matches_reference_lru(self):
        from repro.uarch.branch import BranchTargetBuffer

        btb = BranchTargetBuffer(entries=64, assoc=4)
        rng = np.random.default_rng(6)
        pcs = [int(a) * 4 for a in rng.integers(0, 256, size=3000)]
        sets = [[] for _ in range(btb.n_sets)]
        expected = []
        for pc in pcs:
            tag = pc >> 2
            ways = sets[tag % btb.n_sets]
            if tag in ways:
                ways.remove(tag)
                ways.append(tag)
                expected.append(True)
            else:
                if len(ways) >= btb.assoc:
                    ways.pop(0)
                ways.append(tag)
                expected.append(False)
        assert [btb.access(pc) for pc in pcs] == expected

    def test_tlb_access_matches_reference_lru(self):
        tlb = TLB(entries=8)
        rng = np.random.default_rng(7)
        pages = [int(p) << 12 for p in rng.integers(0, 24, size=2000)]
        resident = []
        expected = []
        for address in pages:
            page = address >> 12
            if page in resident:
                resident.remove(page)
                resident.append(page)
                expected.append(True)
            else:
                if len(resident) >= 8:
                    resident.pop(0)
                resident.append(page)
                expected.append(False)
        assert [tlb.access(a) for a in pages] == expected

    def test_cache_state_pickles_for_checkpointing(self):
        import pickle

        cache = SetAssociativeCache(size_kb=1, assoc=2, line_bytes=32)
        for a in range(0, 4096, 32):
            cache.access(a)
        clone = pickle.loads(pickle.dumps(cache))
        probe = [int(a) for a in
                 np.random.default_rng(8).integers(0, 1 << 13, size=500)]
        assert [cache.access(a) for a in probe] == \
            [clone.access(a) for a in probe]
