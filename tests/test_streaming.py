"""Streaming engine semantics, cache lifecycle, and the cache CLI.

Pins the PR-2 contracts: cache hits resolve before any execution,
``as_completed`` streams in completion order while ``results()`` stays
deterministic, streaming and batch sweeps build bit-identical datasets,
and a byte-capped cache never ends a sweep over budget.
"""

import io

import numpy as np
import pytest

from repro.cli import main
from repro.dse.runner import SweepPlan, SweepRunner
from repro.dse.space import paper_design_space
from repro.engine import (
    VERSION_TAG,
    ExecutionEngine,
    LocalExecutor,
    ParallelExecutor,
    ResultCache,
    SimJob,
    create_engine,
)
from repro.errors import EngineError


@pytest.fixture(scope="module")
def configs():
    return paper_design_space().sample_random(6, split="train", seed=3)


@pytest.fixture(scope="module")
def jobs(configs):
    return [SimJob("gcc", c, n_samples=64) for c in configs]


class FailingExecutor:
    """An executor that must never be asked to run anything."""

    def run_batch(self, batch):
        raise AssertionError("executor invoked for a fully-cached batch")

    def submit_batch(self, batch):
        raise AssertionError("executor invoked for a fully-cached batch")


class CountingExecutor(LocalExecutor):
    def __init__(self):
        self.calls = 0

    def run_batch(self, batch):
        self.calls += len(batch)
        return super().run_batch(batch)


class TestBatchHandle:
    def test_results_in_job_order(self, jobs):
        reference = LocalExecutor().run_batch(jobs)
        handle = ExecutionEngine().submit(jobs)
        streamed = handle.results()
        assert len(streamed) == len(jobs)
        for expected, got in zip(reference, streamed):
            assert np.array_equal(expected.trace("cpi"), got.trace("cpi"))

    def test_as_completed_yields_each_job_exactly_once(self, jobs):
        engine = ExecutionEngine(
            ParallelExecutor(max_workers=2, chunk_size=1))
        handle = engine.submit(jobs)
        seen = {}
        for index, result in handle.as_completed():
            assert index not in seen
            seen[index] = result
        assert sorted(seen) == list(range(len(jobs)))
        reference = LocalExecutor().run_batch(jobs)
        for i, expected in enumerate(reference):
            assert np.array_equal(expected.trace("cpi"),
                                  seen[i].trace("cpi"))
        assert handle.done == len(jobs)

    def test_cache_hits_resolve_immediately(self, tmp_path, jobs):
        warm = create_engine(cache_dir=tmp_path)
        warm.run(jobs)
        cold = ExecutionEngine(executor=FailingExecutor(),
                               cache=ResultCache(tmp_path))
        handle = cold.submit(jobs)
        assert handle.cache_hits == len(jobs)
        assert handle.done == len(jobs)  # resolved before any iteration
        assert len(list(handle.as_completed())) == len(jobs)

    def test_result_blocks_for_one_job(self, jobs):
        handle = ExecutionEngine().submit(jobs)
        expected = jobs[3].run()
        assert np.array_equal(handle.result(3).trace("cpi"),
                              expected.trace("cpi"))
        with pytest.raises(EngineError):
            handle.result(len(jobs))

    def test_duplicates_collapse_in_streaming_path(self, jobs):
        executor = CountingExecutor()
        engine = ExecutionEngine(executor=executor)
        batch = [jobs[0], jobs[1], jobs[0], jobs[0]]
        events = list(engine.submit(batch).as_completed())
        assert executor.calls == 2
        assert sorted(i for i, _ in events) == [0, 1, 2, 3]
        by_index = dict(events)
        assert np.array_equal(by_index[0].trace("cpi"),
                              by_index[2].trace("cpi"))

    def test_on_result_callbacks(self, tmp_path, jobs):
        engine_events = []
        engine = create_engine(cache_dir=tmp_path,
                               on_result=lambda *e: engine_events.append(e))
        batch_events = []
        engine.submit(jobs, on_result=lambda i, job, result, hit:
                      batch_events.append(hit)).results()
        assert len(engine_events) == len(jobs)
        assert batch_events == [False] * len(jobs)
        # Second submission: every job resolves from cache at submit time.
        rerun_events = []
        handle = engine.submit(jobs, on_result=lambda i, job, result, hit:
                               rerun_events.append(hit))
        assert rerun_events == [True] * len(jobs)
        assert len(engine_events) == 2 * len(jobs)
        assert handle.cache_hits == len(jobs)


class TestStreamingSweeps:
    @pytest.mark.parametrize("make_executor", [
        LocalExecutor,
        lambda: ParallelExecutor(max_workers=2, chunk_size=2),
    ])
    def test_streaming_and_batch_datasets_bit_identical(self, configs,
                                                        make_executor):
        groups = [configs[:4], configs[4:]]
        batch_runner = SweepRunner(n_samples=64)
        batch = batch_runner.run_many("gcc", groups)
        streaming_runner = SweepRunner(
            n_samples=64, engine=ExecutionEngine(make_executor()))
        streamed = dict(streaming_runner.run_many_streaming("gcc", groups))
        assert sorted(streamed) == [0, 1]
        for gi, dataset in enumerate(batch):
            assert [c.key() for c in dataset.configs] == \
                [c.key() for c in streamed[gi].configs]
            for domain in dataset.domains:
                assert np.array_equal(dataset.domain(domain),
                                      streamed[gi].domain(domain))

    def test_grid_streaming_matches_per_benchmark_runs(self, configs):
        groups = [configs[:3], configs[3:]]
        runner = SweepRunner(n_samples=64)
        grid = {}
        for ri, gi, ds in runner.run_grid_streaming(
                [("gcc", groups), ("mcf", groups)]):
            grid[(ri, gi)] = ds
        assert sorted(grid) == [(0, 0), (0, 1), (1, 0), (1, 1)]
        for ri, bench in enumerate(("gcc", "mcf")):
            direct = SweepRunner(n_samples=64).run_many(bench, groups)
            for gi in (0, 1):
                assert grid[(ri, gi)].benchmark == bench
                assert np.array_equal(grid[(ri, gi)].domain("cpi"),
                                      direct[gi].domain("cpi"))

    def test_empty_group_yields_first(self, configs):
        runner = SweepRunner(n_samples=64)
        order = [gi for gi, _ in
                 runner.run_many_streaming("gcc", [configs[:2], []])]
        assert order[0] == 1  # nothing to wait for
        assert sorted(order) == [0, 1]

    def test_warm_cache_streams_without_execution(self, tmp_path, configs):
        engine = create_engine(cache_dir=tmp_path)
        runner = SweepRunner(n_samples=64, engine=engine)
        first = runner.run_many("swim", [configs])
        cold_engine = ExecutionEngine(executor=FailingExecutor(),
                                      cache=ResultCache(tmp_path))
        warm_runner = SweepRunner(n_samples=64, engine=cold_engine)
        streamed = dict(warm_runner.run_many_streaming("swim", [configs]))
        assert np.array_equal(first[0].domain("cpi"),
                              streamed[0].domain("cpi"))


class TestContextStreaming:
    def _scale(self):
        from repro.experiments.context import Scale

        return Scale(name="tiny", n_train=8, n_test=4, n_samples=32,
                     n_coefficients=8, benchmarks=("gcc", "mcf"))

    def test_errors_by_benchmark_matches_serial_path(self):
        from repro.experiments.context import ExperimentContext

        streaming_ctx = ExperimentContext(self._scale(),
                                          engine=ExecutionEngine())
        streamed = streaming_ctx.errors_by_benchmark("cpi")
        serial_ctx = ExperimentContext(self._scale(),
                                       engine=ExecutionEngine())
        serial = {bench: serial_ctx.test_errors(bench, "cpi")
                  for bench in ("gcc", "mcf")}
        assert list(streamed) == ["gcc", "mcf"]
        for bench in serial:
            assert np.array_equal(streamed[bench], serial[bench])

    def test_iter_datasets_yields_cached_benchmarks_first(self):
        from repro.experiments.context import ExperimentContext

        ctx = ExperimentContext(self._scale(), engine=ExecutionEngine())
        ctx.dataset("mcf")
        order = list(ctx.iter_datasets(("gcc", "mcf")))
        assert order[0] == "mcf"
        assert sorted(order) == ["gcc", "mcf"]

    def test_prefetch_builds_all_datasets(self):
        from repro.experiments.context import ExperimentContext

        ctx = ExperimentContext(self._scale(), engine=ExecutionEngine())
        ctx.prefetch(("gcc", "mcf"))
        assert len(ctx._datasets) == 2
        train, test = ctx.dataset("gcc")
        assert train.n_configs == 8 and test.n_configs == 4


class TestCacheLifecycle:
    def _entry_size(self, tmp_path, jobs) -> int:
        probe = ResultCache(tmp_path / "probe")
        probe.put(jobs[0], jobs[0].run())
        return probe.disk_bytes()

    def test_byte_cap_enforced_after_every_put(self, tmp_path, jobs):
        size = self._entry_size(tmp_path, jobs)
        cap = 2 * size + size // 2  # room for two entries, not three
        cache = ResultCache(tmp_path / "capped", max_bytes=cap)
        for job in jobs:
            cache.put(job, job.run())
            assert cache.disk_bytes() <= cap
        assert len(cache) == 2
        assert cache.stats.evictions == len(jobs) - 2
        # The newest entries survive (mtime-LRU evicts oldest first).
        assert cache.get(jobs[-1]) is not None

    def test_sweep_with_cap_stays_under_budget(self, tmp_path, configs, jobs):
        size = self._entry_size(tmp_path, jobs)
        cap = 3 * size + size // 2
        engine = create_engine(cache_dir=tmp_path / "sweep",
                               cache_max_bytes=cap)
        SweepRunner(n_samples=64, engine=engine).run_configs("gcc", configs)
        assert engine.cache.disk_bytes() <= cap
        assert engine.cache.stats.evictions > 0

    def test_gc_to_byte_target(self, tmp_path, jobs):
        cache = ResultCache(tmp_path)
        for job in jobs:
            cache.put(job, job.run())
        size = cache.disk_bytes() // len(jobs)
        entries, freed = cache.gc(max_bytes=size)
        assert entries == len(jobs) - 1
        assert freed > 0
        assert len(cache) == 1

    def test_gc_versions_drops_foreign_and_legacy_entries(self, tmp_path,
                                                          jobs):
        cache = ResultCache(tmp_path)
        cache.put(jobs[0], jobs[0].run())
        (tmp_path / "simjob-v0-feedface.npz").write_bytes(b"old version")
        (tmp_path / "deadbeef.npz").write_bytes(b"seed naming scheme")
        assert len(cache) == 3
        entries, freed = cache.gc_versions()
        assert entries == 2 and freed > 0
        assert len(cache) == 1
        assert list(tmp_path.glob("*.npz"))[0].name.startswith(
            VERSION_TAG + "-")

    def test_clear_empties_both_tiers(self, tmp_path, jobs):
        cache = ResultCache(tmp_path)
        for job in jobs[:3]:
            cache.put(job, job.run())
        assert cache.clear() == 3
        assert len(cache) == 0
        assert cache.get(jobs[0]) is None

    def test_invalid_max_bytes_rejected(self, tmp_path):
        with pytest.raises(EngineError):
            ResultCache(tmp_path, max_bytes=0)


class TestCacheCli:
    def _populate(self, cache_dir, jobs, n=3):
        cache = ResultCache(cache_dir)
        for job in jobs[:n]:
            cache.put(job, job.run())
        return cache

    def test_stats(self, tmp_path, jobs):
        self._populate(tmp_path, jobs)
        out = io.StringIO()
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)],
                    out=out) == 0
        text = out.getvalue()
        assert "entries:     3" in text
        assert "simjob/v1" in text

    def test_gc_with_byte_target(self, tmp_path, jobs):
        cache = self._populate(tmp_path, jobs)
        size = cache.disk_bytes() // 3
        out = io.StringIO()
        assert main(["cache", "gc", "--cache-dir", str(tmp_path),
                     "--max-bytes", str(size)], out=out) == 0
        assert len(list(tmp_path.glob("*.npz"))) == 1
        assert "size gc: removed 2 entries" in out.getvalue()

    def test_clear_honours_env_cache_dir(self, tmp_path, jobs, monkeypatch):
        self._populate(tmp_path, jobs)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        out = io.StringIO()
        assert main(["cache", "clear"], out=out) == 0
        assert list(tmp_path.glob("*.npz")) == []

    def test_missing_cache_dir_is_an_error(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        with pytest.raises(EngineError):
            main(["cache", "stats"], out=io.StringIO())

    def test_sweep_progress_flag(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        out = io.StringIO()
        code = main(["sweep", "gcc", "--n-train", "20", "--n-test", "5",
                     "--samples", "32", "--progress"], out=out)
        assert code == 0
        assert "progress: 25 jobs done (0 cache hits)" in out.getvalue()


class TestVectorizedTransforms:
    @pytest.mark.parametrize("wavelet,convention", [
        ("haar", "paper"),
        ("haar", "orthonormal"),
        ("db4", "orthonormal"),
    ])
    def test_batch_matches_per_row_exactly(self, wavelet, convention):
        from repro.core.wavelets import dwt, dwt_batch, idwt, idwt_batch

        rng = np.random.default_rng(7)
        traces = rng.normal(size=(17, 64))
        batch = dwt_batch(traces, wavelet=wavelet, convention=convention)
        rows = np.vstack([dwt(row, wavelet=wavelet, convention=convention)
                          for row in traces])
        assert np.array_equal(batch, rows)
        back = idwt_batch(batch, wavelet=wavelet, convention=convention)
        back_rows = np.vstack([
            idwt(row, wavelet=wavelet, convention=convention)
            for row in batch
        ])
        assert np.array_equal(back, back_rows)
        assert np.allclose(back, traces)

    def test_batch_rejects_bad_shapes(self):
        from repro.core.wavelets import dwt_batch
        from repro.errors import TransformError

        with pytest.raises(TransformError):
            dwt_batch(np.zeros((4, 48)))  # not a power of two
        with pytest.raises(TransformError):
            dwt_batch(np.zeros(64))       # 1-D belongs to dwt()
