"""Tests for the distributed executor (:mod:`repro.engine.remote`).

Pins the PR-4 tentpole guarantees: a loopback-hosts sweep through
:class:`DistributedExecutor` is bit-identical to :class:`LocalExecutor`
for both backends, the streaming ``BatchHandle`` surface works
unchanged on top of it, a worker killed mid-batch has its in-flight
chunk re-queued on the survivors, remote job errors come back as
structured :class:`SimulationError`\\ s, and an empty host list degrades
to the local :class:`ParallelExecutor`.
"""

import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.dse.runner import SweepRunner
from repro.dse.space import paper_design_space
from repro.engine import (
    DistributedExecutor,
    ExecutionEngine,
    HostSpec,
    LocalExecutor,
    ParallelExecutor,
    ResultCache,
    SimJob,
    WorkerServer,
    create_engine,
    hosts_from_env,
    parse_hosts,
)
from repro.engine.remote import PROTOCOL_VERSION, _run_chunk_timed
from repro.errors import EngineError, SimulationError


@pytest.fixture(scope="module")
def configs():
    return paper_design_space().sample_random(6, split="train", seed=31)


@pytest.fixture(scope="module")
def servers():
    """Two in-process loopback workers, one simulation process each."""
    started = [WorkerServer(max_workers=1).start(),
               WorkerServer(max_workers=1).start()]
    yield started
    for server in started:
        server.shutdown()


def _hosts(servers):
    return [f"127.0.0.1:{server.port}" for server in servers]


class _KillPoolJob(SimJob):
    """A job that kills the serving host's simulation process."""

    def run(self):
        os._exit(1)


def _assert_results_equal(a, b):
    assert a.benchmark == b.benchmark and a.backend == b.backend
    assert a.config == b.config and a.n_samples == b.n_samples
    for domain in a.traces:
        assert np.array_equal(a.traces[domain], b.traces[domain])
    assert list(a.components) == list(b.components)
    for name in a.components:
        assert np.array_equal(a.components[name], b.components[name])


class TestHostParsing:
    def test_parse_host_port(self):
        spec = HostSpec.parse("worker-3.lab:9001")
        assert spec.host == "worker-3.lab" and spec.port == 9001
        assert str(spec) == "worker-3.lab:9001"

    def test_default_port(self):
        from repro.engine.remote import DEFAULT_PORT

        assert HostSpec.parse("workerhost").port == DEFAULT_PORT

    def test_invalid_specs_rejected(self):
        for bad in ("", "host:notaport", ":123", "host:0", "host:70000",
                    "::1", "fe80::1:7821"):  # IPv6 literals: clean error
            with pytest.raises(EngineError):
                HostSpec.parse(bad)

    def test_parse_hosts_list(self):
        specs = parse_hosts("a:1000, b:2000,,c")
        assert [s.host for s in specs] == ["a", "b", "c"]
        assert parse_hosts("") == []
        assert parse_hosts(None) == []

    def test_hosts_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_HOSTS", "x:1234,y:5678")
        assert [str(s) for s in hosts_from_env()] == ["x:1234", "y:5678"]
        monkeypatch.delenv("REPRO_HOSTS")
        assert hosts_from_env() == []


class TestLoopbackParity:
    def test_interval_bit_identical_to_local(self, servers, configs):
        jobs = [SimJob("gcc", c, n_samples=64) for c in configs]
        local = LocalExecutor().run_batch(jobs)
        with DistributedExecutor(_hosts(servers)) as ex:
            remote = ex.run_batch(jobs)
        assert len(remote) == len(jobs)
        for a, b in zip(local, remote):
            _assert_results_equal(a, b)

    def test_detailed_bit_identical_to_local(self, servers, configs):
        jobs = [SimJob("mcf", c, backend="detailed", n_samples=4,
                       instructions_per_sample=50) for c in configs[:3]]
        local = LocalExecutor().run_batch(jobs)
        with DistributedExecutor(_hosts(servers)) as ex:
            remote = ex.run_batch(jobs)
        for a, b in zip(local, remote):
            _assert_results_equal(a, b)

    def test_work_spreads_across_hosts(self, servers, configs):
        jobs = [SimJob("gcc", c, n_samples=32) for c in configs] * 4
        before = [server.chunks_served for server in servers]
        with DistributedExecutor(_hosts(servers), chunk_size=2) as ex:
            ex.run_batch(jobs)
        served = [server.chunks_served - b
                  for server, b in zip(servers, before)]
        assert sum(served) == len(jobs) // 2
        assert all(count > 0 for count in served)  # both hosts pulled

    def test_tuner_keyed_per_host_and_backend(self, servers, configs):
        with DistributedExecutor(_hosts(servers)) as ex:
            ex.run_batch([SimJob("gcc", c, n_samples=32) for c in configs])
            keys = list(ex.tuner._tuned)
        assert keys, "loopback batch should record chunk timings"
        assert all(backend == "interval" for _, backend in keys)
        assert len({host for host, _ in keys}) >= 1  # per-host entries

    def test_sweep_runner_matches_sequential(self, servers, configs):
        seq = SweepRunner(n_samples=32).run_configs("vpr", configs)
        with DistributedExecutor(_hosts(servers)) as ex:
            dist = SweepRunner(
                n_samples=32, engine=ExecutionEngine(ex),
            ).run_configs("vpr", configs)
        for domain in seq.domains:
            assert np.array_equal(seq.domain(domain), dist.domain(domain))


class TestEngineIntegration:
    def test_streaming_handle_unchanged(self, servers, configs):
        jobs = [SimJob("gcc", c, n_samples=32) for c in configs]
        with DistributedExecutor(_hosts(servers)) as ex:
            handle = ExecutionEngine(ex).submit(jobs)
            seen = dict(handle.as_completed())
        assert sorted(seen) == list(range(len(jobs)))
        reference = LocalExecutor().run_batch(jobs)
        for i, result in seen.items():
            _assert_results_equal(reference[i], result)

    def test_cache_hits_skip_dispatch(self, tmp_path, servers, configs):
        jobs = [SimJob("twolf", c, n_samples=32) for c in configs[:3]]
        with DistributedExecutor(_hosts(servers)) as ex:
            engine = ExecutionEngine(ex, cache=ResultCache(tmp_path))
            first = engine.run(jobs)
            engine.cache.clear_memory()
            second = engine.run(jobs)
        assert engine.cache.stats.disk_hits == len(jobs)
        for a, b in zip(first, second):
            _assert_results_equal(a, b)

    def test_create_engine_selects_distributed(self, servers):
        engine = create_engine(hosts=_hosts(servers))
        assert isinstance(engine.executor, DistributedExecutor)
        engine.executor.close()

    def test_engine_from_env_reads_repro_hosts(self, monkeypatch, servers):
        from repro.experiments.context import engine_from_env

        monkeypatch.setenv("REPRO_HOSTS", ",".join(_hosts(servers)))
        engine = engine_from_env()
        assert isinstance(engine.executor, DistributedExecutor)
        assert [str(s) for s in engine.executor.hosts] == _hosts(servers)
        engine.executor.close()


class TestDegradedAndErrors:
    def test_no_hosts_degrades_to_parallel(self, configs):
        with DistributedExecutor([], fallback_jobs=2) as ex:
            assert ex.run_batch([]) == []
            results = ex.run_batch(
                [SimJob("gcc", c, n_samples=32) for c in configs[:2]])
            assert isinstance(ex._fallback, ParallelExecutor)
        reference = LocalExecutor().run_batch(
            [SimJob("gcc", c, n_samples=32) for c in configs[:2]])
        for a, b in zip(reference, results):
            _assert_results_equal(a, b)

    def test_unreachable_host_is_structured_error(self, configs):
        with DistributedExecutor(["127.0.0.1:1"]) as ex:
            with pytest.raises(SimulationError, match="cannot connect"):
                ex.run_batch([SimJob("gcc", configs[0], n_samples=16)])

    def test_authkey_mismatch_is_structured_error(self, configs):
        server = WorkerServer(max_workers=1, authkey=b"right-key").start()
        try:
            with DistributedExecutor([f"127.0.0.1:{server.port}"],
                                     authkey=b"wrong-key") as ex:
                with pytest.raises(SimulationError, match="cannot connect"):
                    ex.run_batch([SimJob("gcc", configs[0], n_samples=16)])
        finally:
            server.shutdown()

    def test_crashed_simulation_process_requeues_then_structured_error(
            self, configs):
        """A pool child dying on the serving host is infrastructure
        failure: the chunk re-queues (bounded) instead of instantly
        failing the batch, and the server survives to serve again."""
        server = WorkerServer(max_workers=1).start()
        hosts = [f"127.0.0.1:{server.port}"]
        try:
            jobs = [SimJob("gcc", configs[0], n_samples=16),
                    _KillPoolJob("gcc", configs[1], n_samples=16)]
            with DistributedExecutor(hosts, chunk_size=1,
                                     max_chunk_retries=1) as ex:
                with pytest.raises(SimulationError,
                                   match="lost to worker failures"):
                    ex.run_batch(jobs)
            # Two pool crashes later, the host still serves fresh work.
            with DistributedExecutor(hosts) as ex:
                results = ex.run_batch(
                    [SimJob("gcc", configs[0], n_samples=16)])
            assert results[0].benchmark == "gcc"
        finally:
            server.shutdown()

    def test_remote_job_error_is_structured(self, servers, configs):
        # The benchmark name passes job validation but fails workload
        # resolution on the worker; the server must survive and report.
        jobs = [SimJob("gcc", configs[0], n_samples=16),
                SimJob("definitely_not_a_benchmark", configs[0],
                       n_samples=16)]
        with DistributedExecutor(_hosts(servers), chunk_size=1) as ex:
            with pytest.raises(SimulationError,
                               match="definitely_not_a_benchmark"):
                ex.run_batch(jobs)
        # Same servers still serve the next, healthy batch.
        with DistributedExecutor(_hosts(servers)) as ex:
            results = ex.run_batch([SimJob("gcc", configs[0], n_samples=16)])
        assert results[0].benchmark == "gcc"

    def test_executor_reusable_after_remote_error_no_stale_replies(
            self, servers, configs):
        """A failing chunk can leave a pipelined sibling's reply inbound
        on the same connection; the connection must be retired so the
        *same* executor's next batch never reads a stale reply (which
        would mislabel — and cache — another chunk's results)."""
        bad = [SimJob("gcc", configs[0], n_samples=16),
               SimJob("definitely_not_a_benchmark", configs[0],
                      n_samples=16),
               SimJob("gcc", configs[1], n_samples=16),
               SimJob("gcc", configs[2], n_samples=16)]
        with DistributedExecutor(_hosts(servers), chunk_size=1) as ex:
            with pytest.raises(SimulationError):
                ex.run_batch(bad)
            good = [SimJob("swim", c, n_samples=32) for c in configs]
            results = ex.run_batch(good)
        reference = LocalExecutor().run_batch(good)
        for a, b in zip(reference, results):
            _assert_results_equal(a, b)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(EngineError):
            DistributedExecutor([], chunk_size=0)
        with pytest.raises(EngineError):
            DistributedExecutor([], max_chunk_retries=-1)
        with pytest.raises(EngineError):
            DistributedExecutor([], connections_per_host=0)
        with pytest.raises(EngineError):
            WorkerServer(max_workers=0)


def _spawn_worker_process(name):
    """Start ``repro worker serve`` as a real subprocess; returns
    (process, port).  Runs in its own session so the server and its
    simulation pool die together on killpg."""
    src_root = Path(repro.__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src_root) + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "serve",
         "--host", "127.0.0.1", "--port", "0", "--jobs", "1"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, start_new_session=True,
    )
    line = process.stdout.readline()
    match = re.search(r"serving on 127\.0\.0\.1:(\d+)", line)
    assert match, f"worker {name} failed to start: {line!r}"
    return process, int(match.group(1))


def _killpg(process):
    try:
        os.killpg(process.pid, signal.SIGKILL)
    except ProcessLookupError:
        pass
    process.wait()


class TestWorkerFailure:
    def test_killed_worker_requeues_chunks_bit_identical(self, configs):
        """SIGKILL one of two workers mid-batch: its in-flight chunk is
        re-queued on the survivor and the sweep completes bit-identical
        to a local run."""
        victim, victim_port = _spawn_worker_process("victim")
        survivor, survivor_port = _spawn_worker_process("survivor")
        jobs = [SimJob("gcc", configs[i % len(configs)], n_samples=128)
                for i in range(60)]
        try:
            ex = DistributedExecutor(
                [f"127.0.0.1:{victim_port}", f"127.0.0.1:{survivor_port}"])
            stream = ex.submit_batch(jobs)
            first = next(stream)  # the fleet is demonstrably mid-batch
            _killpg(victim)
            remaining = list(stream)
            ex.close()
        finally:
            _killpg(victim)
            _killpg(survivor)
        delivered = dict([first] + remaining)
        assert sorted(delivered) == list(range(len(jobs)))
        assert ex.requeued_chunks >= 1, "the kill must have landed mid-chunk"
        reference = LocalExecutor().run_batch(jobs)
        for i, result in delivered.items():
            _assert_results_equal(reference[i], result)

    def test_all_workers_lost_is_structured_error(self, configs):
        server, port = _spawn_worker_process("only")
        jobs = [SimJob("gcc", configs[i % len(configs)], n_samples=128)
                for i in range(40)]
        try:
            ex = DistributedExecutor([f"127.0.0.1:{port}"])
            stream = ex.submit_batch(jobs)
            next(stream)
            _killpg(server)
            with pytest.raises(SimulationError,
                               match="disconnected|lost to worker"):
                list(stream)
            ex.close()
        finally:
            _killpg(server)


class TestRunChunkTimed:
    def test_times_and_returns_results(self, configs):
        jobs = [SimJob("gcc", configs[0], n_samples=16)]
        results, elapsed = _run_chunk_timed(jobs)
        assert elapsed > 0
        _assert_results_equal(results[0], jobs[0].run())

    def test_protocol_version_pinned(self):
        # A wire change must bump the version so old dispatchers refuse
        # politely instead of failing mid-batch.
        assert PROTOCOL_VERSION == "repro-remote/v1"
