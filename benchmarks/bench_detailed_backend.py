"""Bench: engine-aware detailed backend — chunk autotuning + resume.

The detailed backend costs seconds per job, which makes it both the
dominant expense of the engine and the place where scheduling decisions
matter most.  This bench pins the two PR-3 behaviours:

* the **chunk autotuner** measures per-job wall time from the first
  completed chunk of each backend and sizes later chunks accordingly —
  detailed jobs must end up at least 8x finer-chunked than interval
  jobs, so the ``as_completed`` stream stays responsive where jobs are
  slow and IPC stays amortized where jobs are fast;
* a detailed sweep killed with **SIGKILL** mid-benchmark resumes from
  its per-interval checkpoint and produces bit-identical traces while
  re-simulating only the intervals after the snapshot.

Since the compiled detailed-pipeline kernel landed, the bench also
re-baselines the backend **per execution engine**: the same job is
timed under the object-model interpreter and under the array kernel
(njit-compiled when numba is present, uncompiled otherwise), with
bit-identical traces asserted before either wall is recorded.  The
engine-vs-engine speedup floor itself is pinned by
``bench_detailed_kernel.py``; here the two walls are simply reported
side by side so backend regressions are attributable to an engine.

Results land in ``BENCH_detailed_backend.json`` (CI artifact).
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

import repro
from repro.dse.space import paper_design_space
from repro.engine import ParallelExecutor, SimJob
from repro.uarch.params import baseline_config

N_SAMPLES = 16
IPS = 120
KILL_AFTER = 13  # warmup + 12 measured intervals (checkpoint lands at 12)
CHECKPOINT_EVERY = 4

_AUTOTUNE_RECORD = {}  # filled by the autotune test, merged into the JSON
_ENGINE_RECORD = {}    # filled by the engine side-by-side test


def test_engines_side_by_side():
    from repro.uarch.jit import jit_available
    from repro.uarch.pipeline import OutOfOrderCore

    kernel_engine = "kernel" if jit_available() else "kernel-interp"
    job = SimJob("gcc", baseline_config(), backend="detailed",
                 n_samples=N_SAMPLES, instructions_per_sample=IPS)
    walls = {}
    traces = {}
    original = OutOfOrderCore.run_interval
    for engine in ("python", kernel_engine):
        OutOfOrderCore.run_interval = (
            lambda self, trace, _e=engine: original(self, trace, engine=_e))
        try:
            job.run()  # warm the trace memo / compile before timing
            start = time.perf_counter()
            result = job.run()
            walls[engine] = time.perf_counter() - start
        finally:
            OutOfOrderCore.run_interval = original
        traces[engine] = {**result.traces, **result.components}

    for name, arr in traces["python"].items():
        assert np.array_equal(arr, traces[kernel_engine][name]), (
            f"engines diverged on the {name} trace")

    interp, kernel = walls["python"], walls[kernel_engine]
    print(f"\nengine walls for a {N_SAMPLES}x{IPS} detailed job: "
          f"interpreter {interp * 1e3:.0f} ms, "
          f"{kernel_engine} {kernel * 1e3:.0f} ms "
          f"({interp / kernel:.1f}x), traces bit-identical")
    _ENGINE_RECORD.update({
        "numba_available": jit_available(),
        "kernel_engine": kernel_engine,
        "engine_wall_seconds_interpreter": round(interp, 4),
        "engine_wall_seconds_kernel": round(kernel, 4),
        "engine_speedup": round(interp / kernel, 2),
    })


def test_autotuner_chunks_detailed_fine_interval_coarse():
    configs = paper_design_space().sample_random(8, split="train", seed=17)
    interval_jobs = [SimJob("gcc", c, n_samples=128) for c in configs] * 8
    detailed_jobs = [SimJob("gcc", c, backend="detailed", n_samples=4,
                            instructions_per_sample=200) for c in configs]
    with ParallelExecutor(max_workers=2) as ex:
        start = time.perf_counter()
        ex.run_batch(interval_jobs)
        interval_wall = time.perf_counter() - start
        start = time.perf_counter()
        ex.run_batch(detailed_jobs)
        detailed_wall = time.perf_counter() - start

        per_interval = ex._tuned["interval"]
        per_detailed = ex._tuned["detailed"]
        coarse = ex.planned_chunk_size("interval", 250)
        fine = ex.planned_chunk_size("detailed", 250)

    print(f"\nmeasured per-job seconds: interval {per_interval * 1e3:.2f} ms, "
          f"detailed {per_detailed * 1e3:.1f} ms "
          f"({per_detailed / per_interval:.0f}x slower)")
    print(f"tuned chunk sizes for a 250-job batch: interval {coarse}, "
          f"detailed {fine}")
    print(f"walls: interval batch {interval_wall:.2f}s, "
          f"detailed batch {detailed_wall:.2f}s")

    assert per_detailed > per_interval
    assert coarse >= 8 * fine, (
        f"interval chunks ({coarse}) should be >=8x coarser than detailed "
        f"chunks ({fine})"
    )
    _AUTOTUNE_RECORD.update({
        "per_job_seconds_interval": round(per_interval, 6),
        "per_job_seconds_detailed": round(per_detailed, 6),
        "chunk_interval": coarse,
        "chunk_detailed": fine,
    })


def test_sigkill_resume_saves_work(tmp_path):
    job = SimJob("swim", baseline_config(), backend="detailed",
                 n_samples=N_SAMPLES, instructions_per_sample=IPS)
    src_root = Path(repro.__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src_root) + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_CHECKPOINT_EVERY"] = str(CHECKPOINT_EVERY)
    env["REPRO_CHECKPOINT_DIR"] = str(tmp_path)
    out_npz = tmp_path / "resumed.npz"

    common = f"""
import numpy as np
from repro.engine import SimJob
from repro.uarch.params import baseline_config
job = SimJob("swim", baseline_config(), backend="detailed",
             n_samples={N_SAMPLES}, instructions_per_sample={IPS})
"""
    killed = common + f"""
import os, signal
import repro.uarch.pipeline as pipeline
original = pipeline.OutOfOrderCore.run_interval
calls = [0]
def dying(self, trace):
    calls[0] += 1
    if calls[0] > {KILL_AFTER}:
        os.kill(os.getpid(), signal.SIGKILL)
    return original(self, trace)
pipeline.OutOfOrderCore.run_interval = dying
job.run()
"""
    resume = common + f"""
import repro.uarch.pipeline as pipeline
original = pipeline.OutOfOrderCore.run_interval
calls = [0]
def counting(self, trace):
    calls[0] += 1
    return original(self, trace)
pipeline.OutOfOrderCore.run_interval = counting
result = job.run()
np.savez({str(out_npz)!r}, intervals=np.array(calls[0]),
         **result.traces, **result.components)
"""
    start = time.perf_counter()
    first = subprocess.run([sys.executable, "-c", killed], env=env,
                           capture_output=True)
    killed_wall = time.perf_counter() - start
    assert first.returncode == -signal.SIGKILL, first.stderr.decode()
    assert (tmp_path / f"{job.key()}.ckpt.npz").exists()

    start = time.perf_counter()
    second = subprocess.run([sys.executable, "-c", resume], env=env,
                            capture_output=True)
    resume_wall = time.perf_counter() - start
    assert second.returncode == 0, second.stderr.decode()

    clean = job.run()  # no checkpoint env in this process
    with np.load(out_npz) as resumed:
        resumed_intervals = int(resumed["intervals"])
        for domain, arr in clean.traces.items():
            assert np.array_equal(resumed[domain], arr)
        for name, arr in clean.components.items():
            assert np.array_equal(resumed[name], arr)

    # The resume re-simulated only the post-snapshot tail (no warmup,
    # no intervals before the last multiple of CHECKPOINT_EVERY).
    last_snapshot = ((KILL_AFTER - 1) // CHECKPOINT_EVERY) * CHECKPOINT_EVERY
    expected = N_SAMPLES - last_snapshot
    print(f"\nSIGKILL after {KILL_AFTER - 1}/{N_SAMPLES} intervals "
          f"(wall {killed_wall:.2f}s); resume simulated "
          f"{resumed_intervals}/{N_SAMPLES} intervals "
          f"(wall {resume_wall:.2f}s), bit-identical to a clean run")
    assert resumed_intervals == expected

    record = {
        "bench": "detailed_backend",
        "n_samples": N_SAMPLES,
        "instructions_per_sample": IPS,
        "checkpoint_every": CHECKPOINT_EVERY,
        "killed_after_intervals": KILL_AFTER - 1,
        "resume_simulated_intervals": resumed_intervals,
        "intervals_saved_by_resume": N_SAMPLES - resumed_intervals,
        "killed_wall_seconds": round(killed_wall, 3),
        "resume_wall_seconds": round(resume_wall, 3),
        "bit_identical": True,
        **_AUTOTUNE_RECORD,
        **_ENGINE_RECORD,
    }
    with open("BENCH_detailed_backend.json", "w") as handle:
        json.dump(record, handle, indent=2)
