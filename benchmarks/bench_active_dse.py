"""Bench: active-learning DSE vs a matched-seed blind LHS sweep.

The PR-5 closed loop (`repro.dse.active`) claims that letting ensemble
uncertainty pick each next simulation batch reaches a good
constraint-satisfying design with a fraction of the simulations a fixed
LHS sample needs.  This bench pins that claim end-to-end:

* **target** — the best feasible mean-CPI design a blind ``N_LHS``-point
  LHS sweep finds under a worst-case power constraint;
* **pin** — the active loop, started from the *same seed and the same
  initial-design prefix*, must reach a design at least that good using
  **<= 50%** of the LHS simulation budget;
* **equivalence** — every configuration simulated by both paths must
  produce bit-identical traces (the engine's determinism contract).

Everything in the comparison is deterministic — the simulator seeds its
measurement texture from job content and the loop's trajectory is
executor-independent — so this is a stable regression gate, not a
statistical flake.  Results land in ``BENCH_active_dse.json`` (uploaded
as a CI artifact).
"""

import json
import time

import numpy as np

import repro
from repro.dse.explorer import Constraint, Objective
from repro.dse.lhs import sample_train_configs

SEED = 0
N_LHS = 160
N_INIT = 32
BATCH = 16
N_SAMPLES = 128
POWER_BUDGET = 70.0
BENCHMARK = "gcc"


def test_active_search_halves_the_lhs_budget():
    space = repro.paper_design_space()
    runner = repro.SweepRunner(n_samples=N_SAMPLES)
    objective = Objective("cpi", "mean")
    constraint = Constraint("power", "max", "<=", POWER_BUDGET)

    # Blind baseline: the full LHS sweep, one engine batch.
    lhs_configs = sample_train_configs(space, N_LHS, seed=SEED)
    start = time.perf_counter()
    lhs = runner.run_configs(BENCHMARK, lhs_configs, space)
    lhs_seconds = time.perf_counter() - start
    scores = np.array([objective.score(row) for row in lhs.domain("cpi")])
    feasible = np.array([constraint.satisfied(row)
                         for row in lhs.domain("power")])
    assert np.any(feasible), "power budget infeasible for the whole sweep"
    target = float(scores[feasible].min())

    # Active loop: same seed, same initial design prefix.
    start = time.perf_counter()
    result = repro.SweepRunner(n_samples=N_SAMPLES).run_active(
        BENCHMARK, objective, constraints=[constraint],
        budget=N_LHS, batch_size=BATCH, n_init=N_INIT, seed=SEED,
        space=space, init_configs=lhs_configs[:N_INIT],
    )
    active_seconds = time.perf_counter() - start

    sims_to_target = next(
        (r.n_simulations for r in result.rounds
         if r.best_score <= target + 1e-12), None)
    assert sims_to_target is not None, (
        f"active search never matched the LHS target {target:.4f} "
        f"(best {result.best_score:.4f} after {result.n_simulations} sims)"
    )
    assert sims_to_target <= N_LHS // 2, (
        f"active search needed {sims_to_target} simulations to match the "
        f"{N_LHS}-point LHS target {target:.4f} — more than 50% of the "
        f"LHS budget"
    )

    # Determinism contract: configurations simulated by both paths must
    # have produced bit-identical traces (the shared init prefix
    # guarantees a non-trivial intersection).
    lhs_by_key = {c.key(): i for i, c in enumerate(lhs.configs)}
    shared = 0
    for j, config in enumerate(result.observed.configs):
        i = lhs_by_key.get(config.key())
        if i is None:
            continue
        shared += 1
        for domain in ("cpi", "power"):
            assert np.array_equal(lhs.domain(domain)[i],
                                  result.observed.domain(domain)[j]), (
                f"trace mismatch for shared config {config.key()} "
                f"in domain {domain}"
            )
    assert shared >= N_INIT

    record = {
        "bench": "active_dse",
        "benchmark": BENCHMARK,
        "objective": objective.describe(),
        "constraint": constraint.describe(),
        "seed": SEED,
        "n_samples": N_SAMPLES,
        "lhs_budget": N_LHS,
        "lhs_best_score": round(target, 6),
        "lhs_seconds": round(lhs_seconds, 4),
        "active_sims_to_target": sims_to_target,
        "active_budget_fraction": round(sims_to_target / N_LHS, 4),
        "active_total_sims": result.n_simulations,
        "active_best_score": round(result.best_score, 6),
        "active_reason": result.reason,
        "active_seconds": round(active_seconds, 4),
        "shared_configs_bit_identical": shared,
    }
    with open("BENCH_active_dse.json", "w") as handle:
        json.dump(record, handle, indent=2)
    print(f"\nLHS best {target:.4f} in {N_LHS} sims; active matched it in "
          f"{sims_to_target} sims ({100 * sims_to_target / N_LHS:.0f}% of "
          f"the budget), final best {result.best_score:.4f} "
          f"({result.reason}); {shared} shared configs bit-identical")
