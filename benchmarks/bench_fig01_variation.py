"""Bench: Figure 1 — workload dynamics variation across configurations."""

from benchmarks.conftest import run_and_print


def test_fig1(benchmark, ctx):
    result = run_and_print(benchmark, ctx, "fig1")
    rows = result.table("Trace ranges").rows
    # 3 panels x 3 configurations.
    assert len(rows) == 9
    # The paper's point: the same benchmark's dynamics differ widely
    # across configurations — weak CPI means must exceed strong ones.
    gap = {r[2]: r[4] for r in rows if r[0] == "gap"}
    assert gap["weak"] > gap["strong"]
