"""Bench: distributed executor dispatch overhead on loopback workers.

The PR-4 tentpole farms sweep chunks out to ``repro worker serve``
hosts.  Distribution must pay for itself the moment a second machine
joins, which it only can if the dispatch machinery itself is cheap.
This bench runs the paper-scale interval batch (250 configurations x
128 samples) through a **loopback** worker fleet — same machine, so
the comparison isolates pure dispatch cost (TCP framing, pickling,
feeder threads, chunk tuning) from any real parallelism win — and
pins:

* dispatch overhead **<= 15%** over :class:`ParallelExecutor` on the
  interval backend (best-of-N, rounds interleaved);
* **bit-identical** results to :class:`LocalExecutor` for both the
  interval and detailed backends.

Results land in ``BENCH_remote_executor.json`` (uploaded as a CI
artifact).
"""

import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

import repro
from repro.dse.lhs import sample_test_configs, sample_train_configs
from repro.dse.space import paper_design_space
from repro.engine import DistributedExecutor, LocalExecutor, ParallelExecutor, SimJob
from repro.uarch.simulator import DOMAINS

N_CONFIGS = 250
N_SAMPLES = 128
REPEATS = 5
MAX_OVERHEAD = 0.15


def _paper_scale_jobs():
    space = paper_design_space()
    configs = (sample_train_configs(space, 200, 4, 0)
               + sample_test_configs(space, 50, 1))[:N_CONFIGS]
    return [SimJob("gcc", c, n_samples=N_SAMPLES) for c in configs]


def _spawn_loopback_worker():
    src_root = Path(repro.__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src_root) + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "serve",
         "--host", "127.0.0.1", "--port", "0", "--jobs", "2"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, start_new_session=True,
    )
    line = process.stdout.readline()
    match = re.search(r"serving on 127\.0\.0\.1:(\d+)", line)
    assert match, f"worker failed to start: {line!r}"
    return process, int(match.group(1))


def _killpg(process):
    try:
        os.killpg(process.pid, signal.SIGKILL)
    except ProcessLookupError:
        pass
    process.wait()


def _interleaved_best(fn_a, fn_b, *args):
    """Best-of-N for two paths, rounds interleaved so machine-load
    drift hits both sides equally.  Returns (best_a, best_b, a, b)."""
    value_a = fn_a(*args)  # warmup (pool start, connections, tuner)
    value_b = fn_b(*args)
    best_a = best_b = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        value_a = fn_a(*args)
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        value_b = fn_b(*args)
        best_b = min(best_b, time.perf_counter() - start)
    return best_a, best_b, value_a, value_b


def _assert_bit_identical(reference, results):
    for a, b in zip(reference, results):
        assert a.benchmark == b.benchmark and a.config == b.config
        for domain in DOMAINS:
            assert np.array_equal(a.trace(domain), b.trace(domain))


def test_remote_dispatch_overhead_and_parity():
    jobs = _paper_scale_jobs()
    worker, port = _spawn_loopback_worker()
    try:
        with ParallelExecutor(max_workers=2) as parallel, \
                DistributedExecutor([f"127.0.0.1:{port}"]) as remote:
            par_time, dist_time, via_par, via_dist = _interleaved_best(
                parallel.run_batch, remote.run_batch, jobs)

            reference = LocalExecutor().run_batch(jobs)
            _assert_bit_identical(reference, via_par)
            _assert_bit_identical(reference, via_dist)

            # Detailed-backend parity rides the same wire.
            detailed = [SimJob("mcf", job.config, backend="detailed",
                               n_samples=8, instructions_per_sample=60)
                        for job in jobs[:4]]
            _assert_bit_identical(LocalExecutor().run_batch(detailed),
                                  remote.run_batch(detailed))
    finally:
        _killpg(worker)

    overhead = dist_time / par_time - 1.0
    record = {
        "bench": "remote_executor",
        "n_jobs": len(jobs),
        "n_samples": N_SAMPLES,
        "parallel_seconds": round(par_time, 4),
        "distributed_seconds": round(dist_time, 4),
        "dispatch_overhead": round(overhead, 4),
        "max_overhead": MAX_OVERHEAD,
        "bit_identical": True,
    }
    with open("BENCH_remote_executor.json", "w") as handle:
        json.dump(record, handle, indent=2)

    print(f"\npaper-scale interval batch ({len(jobs)} jobs x {N_SAMPLES} "
          f"samples): parallel {par_time:.3f}s, loopback-distributed "
          f"{dist_time:.3f}s ({overhead * 100:+.1f}% dispatch overhead)")

    assert overhead <= MAX_OVERHEAD, (
        f"loopback dispatch overhead {overhead * 100:.1f}% exceeds "
        f"{MAX_OVERHEAD * 100:.0f}% over ParallelExecutor"
    )
