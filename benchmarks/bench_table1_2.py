"""Bench: regenerate Tables 1 and 2 (machine config and design space)."""

from benchmarks.conftest import run_and_print


def test_table1(benchmark, ctx):
    result = run_and_print(benchmark, ctx, "table1")
    assert len(result.table("Baseline").rows) == 15


def test_table2(benchmark, ctx):
    result = run_and_print(benchmark, ctx, "table2")
    rows = result.table("Design space").rows
    assert len(rows) == 9
    assert [r[0] for r in rows][0] == "fetch_width"
