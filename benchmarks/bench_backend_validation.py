"""Bench: validation — interval model vs detailed cycle-level simulator."""

from benchmarks.conftest import run_and_print


def test_backend_validation(benchmark, ctx):
    result = run_and_print(benchmark, ctx, "val-backend")
    # The notes record directional agreement as "agree/checks".
    agree, checks = result.notes.split(":")[1].strip().split(" ")[0].split("/")
    assert int(agree) >= int(checks) * 0.75
