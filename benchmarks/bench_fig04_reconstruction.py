"""Bench: Figures 2-4 — Haar example and truncated reconstruction."""

from benchmarks.conftest import run_and_print


def test_fig4(benchmark, ctx):
    result = run_and_print(benchmark, ctx, "fig4")
    rows = result.table("reconstruction").rows
    errors = [r[1] for r in rows]
    # Fidelity improves monotonically with more coefficients, and all 64
    # restore the trace exactly.
    assert all(a >= b - 1e-9 for a, b in zip(errors, errors[1:]))
    assert errors[-1] < 1e-12
