"""Bench: execution-engine sweep throughput (parallel + cached vs. seed).

The seed repo's data-collection path simulated every (benchmark, config)
pair in a sequential Python loop with no result reuse.  This bench pins
the engine's two wins on a quick-scale sweep:

* a **cache-warm re-run** (what every repeated experiment/figure run
  sees) must complete at least 5x faster than a cold sequential sweep
  (measured against the per-job scalar path, ``REPRO_BATCH_KERNEL=0``,
  so the baseline stays comparable across PRs; the grouped batch
  kernel's own >=10x win is pinned in ``bench_kernel.py`` and reported
  here informationally);
* the **parallel executor** must produce bit-identical datasets (its
  wall-clock win is reported informationally — it depends on the
  machine's core count).
"""

import time

import numpy as np

from repro.dse.runner import SweepPlan, SweepRunner
from repro.dse.space import paper_design_space
from repro.engine import ExecutionEngine, ParallelExecutor, create_engine

BENCHMARKS = ("bzip2", "gcc", "mcf", "swim")
PLAN = SweepPlan(space=paper_design_space(), n_train=40, n_test=10,
                 n_lhs_matrices=4, seed=0)
N_SAMPLES = 128


def _sweep(runner):
    return {b: runner.run_train_test(b, PLAN) for b in BENCHMARKS}


def test_cached_rerun_5x_faster_than_cold_sequential(tmp_path, monkeypatch):
    n_runs = len(BENCHMARKS) * (PLAN.n_train + PLAN.n_test)

    # Cold sequential sweep: the seed repo's execution model — one
    # scalar simulation per (benchmark, config) pair, so the grouped
    # batch kernel (bench_kernel.py pins its own >=10x win) is disabled
    # for this leg to keep the baseline comparable across PRs.
    sequential = SweepRunner(n_samples=N_SAMPLES, engine=ExecutionEngine())
    monkeypatch.setenv("REPRO_BATCH_KERNEL", "0")
    start = time.perf_counter()
    cold_data = _sweep(sequential)
    cold = time.perf_counter() - start
    monkeypatch.setenv("REPRO_BATCH_KERNEL", "1")

    # The same cold sweep with grouped kernel dispatch (the default).
    start = time.perf_counter()
    _sweep(SweepRunner(n_samples=N_SAMPLES, engine=ExecutionEngine()))
    cold_batched = time.perf_counter() - start

    # Same sweep through a cache-backed engine: first run populates,
    # second run (the common repeated-experiment case) only looks up.
    engine = create_engine(cache_dir=tmp_path / "cache")
    cached_runner = SweepRunner(n_samples=N_SAMPLES, engine=engine)
    _sweep(cached_runner)
    start = time.perf_counter()
    warm_data = _sweep(cached_runner)
    warm = time.perf_counter() - start

    # Disk-only re-run (fresh process simulation: cold memory tier).
    engine.cache.clear_memory()
    start = time.perf_counter()
    _sweep(cached_runner)
    disk = time.perf_counter() - start

    print()
    print(f"sweep: {len(BENCHMARKS)} benchmarks x "
          f"{PLAN.n_train}+{PLAN.n_test} configs x {N_SAMPLES} samples "
          f"({n_runs} simulations)")
    print(f"  cold sequential : {cold * 1e3:8.1f} ms (per-job scalar)")
    print(f"  cold batched    : {cold_batched * 1e3:8.1f} ms "
          f"({cold / cold_batched:6.1f}x)")
    print(f"  cached (memory) : {warm * 1e3:8.1f} ms "
          f"({cold / warm:6.1f}x)")
    print(f"  cached (disk)   : {disk * 1e3:8.1f} ms "
          f"({cold / disk:6.1f}x)")
    print(f"  cache stats     : {engine.cache.stats.describe()}")

    # Identical contents, much faster.
    for bench in BENCHMARKS:
        for seq_ds, warm_ds in zip(cold_data[bench], warm_data[bench]):
            for domain in seq_ds.domains:
                assert np.array_equal(seq_ds.domain(domain),
                                      warm_ds.domain(domain))
    assert warm * 5 < cold, (
        f"cache-warm re-run ({warm:.3f}s) should be >=5x faster than the "
        f"cold sequential sweep ({cold:.3f}s)"
    )


def test_parallel_sweep_bit_identical_to_sequential():
    sequential = SweepRunner(n_samples=N_SAMPLES)
    parallel = SweepRunner(
        n_samples=N_SAMPLES,
        engine=ExecutionEngine(ParallelExecutor(max_workers=2)),
    )

    start = time.perf_counter()
    seq_train, seq_test = sequential.run_train_test("gcc", PLAN)
    seq_time = time.perf_counter() - start

    start = time.perf_counter()
    par_train, par_test = parallel.run_train_test("gcc", PLAN)
    par_time = time.perf_counter() - start

    print()
    print(f"  sequential      : {seq_time * 1e3:8.1f} ms")
    print(f"  parallel (2p)   : {par_time * 1e3:8.1f} ms "
          f"(speedup is machine-dependent; correctness is not)")

    for seq_ds, par_ds in ((seq_train, par_train), (seq_test, par_test)):
        for domain in seq_ds.domains:
            assert np.array_equal(seq_ds.domain(domain),
                                  par_ds.domain(domain))
