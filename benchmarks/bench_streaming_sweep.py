"""Bench: streaming cross-benchmark orchestration vs the serial loop.

PR-1 batched each benchmark's sweep but still ran benchmarks one after
another, and model fitting waited for the last straggler job.  This
bench pins the PR-2 streaming engine's wins on a cold-cache
multi-benchmark ``errors_by_benchmark`` run:

* the **streaming path** (all benchmarks' train+test sweeps submitted as
  one engine batch, wavelet-model fitting overlapped with the
  simulation tail) must be **faster wall-clock** than the serial
  per-benchmark loop whenever more than one core is available
  (``jobs > 1``); on a single-core machine the timing is reported
  informationally, since process-level overlap cannot win there;
* both paths must produce **bit-identical** datasets and error arrays.

Timings land in ``BENCH_streaming_sweep.json`` (uploaded as a CI
artifact).
"""

import json
import os
import time

import numpy as np

from repro.dse.space import paper_design_space
from repro.engine import create_engine, make_jobs
from repro.experiments.context import ExperimentContext, Scale

BENCHMARKS = ("bzip2", "gcc", "mcf", "swim", "twolf", "vpr")
SCALE = Scale(name="bench-streaming", n_train=60, n_test=15, n_samples=256,
              benchmarks=BENCHMARKS)
DOMAIN = "cpi"
JOBS = max(1, min(4, os.cpu_count() or 1))


def _engine():
    engine = create_engine(jobs=JOBS)
    # Pay worker start-up before the timed region: 2*JOBS distinct tiny
    # jobs, so the pool path engages (single-job batches run in-process)
    # and every worker spawns.
    warmup_configs = paper_design_space().sample_random(
        2 * JOBS, split="train", seed=99)
    engine.run(make_jobs("gcc", warmup_configs, n_samples=8))
    return engine


def _serial_loop(ctx):
    """The pre-streaming execution model: one benchmark at a time, the
    pool draining at each sweep's tail, fitting strictly afterwards."""
    errors = {}
    for bench in BENCHMARKS:
        ctx.dataset(bench)
        errors[bench] = ctx.test_errors(bench, DOMAIN)
    return errors


def test_streaming_overlap_and_bit_identical_datasets():
    # Warm numpy/model code paths on a throwaway context so neither
    # timed region pays first-call costs.
    warmup_scale = Scale(name="warmup", n_train=8, n_test=4, n_samples=64,
                         benchmarks=("gcc",))
    warmup = ExperimentContext(warmup_scale, engine=create_engine())
    warmup.errors_by_benchmark(DOMAIN)

    serial_ctx = ExperimentContext(SCALE, engine=_engine())
    start = time.perf_counter()
    serial_errors = _serial_loop(serial_ctx)
    serial_time = time.perf_counter() - start

    streaming_ctx = ExperimentContext(SCALE, engine=_engine())
    start = time.perf_counter()
    streaming_errors = streaming_ctx.errors_by_benchmark(DOMAIN)
    streaming_time = time.perf_counter() - start

    # Equivalence: identical error arrays and bit-identical datasets.
    assert list(streaming_errors) == list(BENCHMARKS)
    for bench in BENCHMARKS:
        assert np.array_equal(serial_errors[bench], streaming_errors[bench])
        serial_train, serial_test = serial_ctx.dataset(bench)
        stream_train, stream_test = streaming_ctx.dataset(bench)
        for a, b in ((serial_train, stream_train),
                     (serial_test, stream_test)):
            assert [c.key() for c in a.configs] == [c.key() for c in b.configs]
            for domain in a.domains:
                assert np.array_equal(a.domain(domain), b.domain(domain))

    n_jobs = len(BENCHMARKS) * (SCALE.n_train + SCALE.n_test)
    ratio = streaming_time / serial_time
    record = {
        "bench": "streaming_sweep",
        "benchmarks": list(BENCHMARKS),
        "n_simulations": n_jobs,
        "n_samples": SCALE.n_samples,
        "jobs": JOBS,
        "serial_seconds": round(serial_time, 4),
        "streaming_seconds": round(streaming_time, 4),
        "streaming_over_serial": round(ratio, 4),
        "bit_identical": True,
    }
    with open("BENCH_streaming_sweep.json", "w") as handle:
        json.dump(record, handle, indent=2)
    print(f"\nserial per-benchmark loop: {serial_time:.2f}s; "
          f"streaming cross-benchmark batch: {streaming_time:.2f}s "
          f"(ratio {ratio:.2f}, {JOBS} worker(s), {n_jobs} simulations)")

    if JOBS > 1:
        # With a real pool, one cross-benchmark batch + overlapped
        # fitting must beat sweep-then-fit per benchmark.  A small
        # tolerance keeps load spikes on shared CI runners from turning
        # scheduler noise into a red build; the JSON record holds the
        # actual ratio.
        assert streaming_time < serial_time * 1.05, (
            f"streaming path ({streaming_time:.2f}s) not faster than the "
            f"serial per-benchmark loop ({serial_time:.2f}s) with "
            f"{JOBS} workers"
        )
