"""Bench: Figure 14 — simulation-vs-prediction scenario traces (bzip2)."""

from benchmarks.conftest import run_and_print


import numpy as np


def test_fig14(benchmark, ctx):
    result = run_and_print(benchmark, ctx, "fig14")
    rows = result.table("Representative").rows
    assert {r[0] for r in rows} == {"cpi", "power", "avf"}
    ds_values = [row[3] for row in rows]
    # Predicted traces closely track the simulated dynamics; the power
    # trace's flat mid-level section weakens its Q2 agreement (the
    # Figure 13 deviation documented in EXPERIMENTS.md).
    for ds in ds_values:
        assert ds > 65.0         # DS at the Q2 threshold, percent
    assert np.mean(ds_values) > 85.0
