"""Bench: ablation — wavelet NN vs the paper's 'existing methods'."""

import numpy as np

from benchmarks.conftest import run_and_print


def test_ablation_baselines(benchmark, ctx):
    result = run_and_print(benchmark, ctx, "abl-baselines")
    rows = result.table("complexity").rows
    by_model = {}
    for bench, model, median, mx, nets in rows:
        by_model.setdefault(model, []).append(median)
    med = {m: float(np.median(v)) for m, v in by_model.items()}
    # The global aggregate model cannot express within-trace dynamics;
    # the wavelet NN must beat it decisively, and beat the linear model.
    assert med["wavelet-nn (k=16)"] < med["global aggregate"]
    assert med["wavelet-nn (k=16)"] < med["linear coeffs (k=16)"]
