"""Bench: the compiled detailed-pipeline kernel vs the interpreter.

Times a 64-interval detailed run through both execution engines of
:class:`~repro.uarch.pipeline.OutOfOrderCore` — the object-model
interpreter and the struct-of-arrays kernel — and proves bit-identity
across {interpreter, kernel} x {fresh, checkpoint-resumed} before any
timing is trusted.  With numba installed (CI's with-numba leg) the
kernel is njit-compiled and must clear a **>=5x** speedup over the
interpreter; without numba the kernel runs uncompiled and only the
bit-identity claims are asserted (an uncompiled array kernel is scalar
Python over numpy cells — slower than the interpreter, and never the
auto-selected engine).

A second leg times the **batched** stepper: a 64-config detailed group
advanced through one :func:`~repro.uarch.pipeline_kernel
.step_interval_batch` call per interval
(:func:`~repro.uarch.detailed.run_detailed_group`, two prange threads)
against the same 64 configs run job-by-job through the scalar kernel.
Bit-identity is asserted member-for-member, fresh and resumed from
identical mid-run snapshots; with numba the batched path must clear
**>=3x** over the scalar kernel in both cases.

All engines are measured warm — the trace memo is shared state, njit
compilation (persistent-cache or in-memory) happens on an untimed
warm-up pass — best of two runs.  Results land in
``BENCH_detailed_kernel.json`` (CI artifact).
"""

import dataclasses
import hashlib
import json
import shutil
import time
from contextlib import contextmanager

import numpy as np

from repro.engine.jobs import SimJob
from repro.uarch import detailed as detailed_module
from repro.uarch import jit
from repro.uarch.detailed import DetailedSimulator, run_detailed_group
from repro.uarch.jit import jit_available
from repro.uarch.params import baseline_config
from repro.uarch.pipeline import OutOfOrderCore

N_SAMPLES = 64
IPS = 1000
CHECKPOINT_EVERY = 8
CRASH_AFTER = 25      # warmup + 24 measured intervals; snapshot at 24
MIN_SPEEDUP = 5.0

# Batched leg: shorter intervals over a wide config axis — the shape a
# detailed DSE group actually has (many near-identical configs, one
# workload), where per-core call overhead is the bottleneck batching
# removes.  Without numba both paths run the same scalar interpreter
# per row (parity is the only claim, no floor), so the leg shrinks to
# keep the numba-less CI legs fast.
BATCH_SIZE = 64 if jit_available() else 16
BATCH_SAMPLES = 32 if jit_available() else 16
BATCH_IPS = 250
BATCH_EVERY = 8
BATCH_CRASH_AT = 9   # first snapshot lands at interval 8, then crash
BATCH_THREADS = 2
MIN_BATCH_SPEEDUP = 3.0

STREAMS = ("cpi", "power", "avf", "iq_avf", "mispredict_rate",
           "dvm_throttled_frac")

#: 8x400 gcc/baseline digest pinned in tests/test_detailed_kernel.py —
#: re-asserted here so the bench never times a behaviourally-drifted
#: build.
GOLDEN_GCC_BASELINE = \
    "72d40a0fe267aa9a2bd4b6eea233fadc404f6f71524086026bbfe77a34c24747"


def _digest(result) -> str:
    parts = []
    for name in STREAMS:
        arr = result.traces.get(name)
        if arr is None:
            arr = result.components[name]
        parts.append(np.ascontiguousarray(arr, dtype=np.float64).tobytes())
    return hashlib.sha256(b"".join(parts)).hexdigest()


@contextmanager
def _forced_engine(engine):
    original = OutOfOrderCore.run_interval
    OutOfOrderCore.run_interval = (
        lambda self, trace, _original=original, _engine=engine:
            _original(self, trace, engine=_engine))
    try:
        yield
    finally:
        OutOfOrderCore.run_interval = original


def _run(engine, **kwargs):
    with _forced_engine(engine):
        return DetailedSimulator(baseline_config()).run(
            "gcc", n_samples=N_SAMPLES, instructions_per_sample=IPS,
            **kwargs)


def _timed_run(engine):
    best = float("inf")
    digest = None
    for _ in range(2):
        start = time.perf_counter()
        result = _run(engine)
        wall = time.perf_counter() - start
        best = min(best, wall)
        digest = _digest(result)
    return digest, best


class _Crash(Exception):
    pass


def _resumed_digest(engine, path):
    """Crash a checkpointing run mid-benchmark, resume it, digest it."""
    original = OutOfOrderCore.run_interval
    calls = [0]

    def crashing(self, trace, _original=original):
        calls[0] += 1
        if calls[0] > CRASH_AFTER:
            raise _Crash()
        return _original(self, trace, engine=engine)

    OutOfOrderCore.run_interval = crashing
    try:
        DetailedSimulator(baseline_config()).run(
            "gcc", n_samples=N_SAMPLES, instructions_per_sample=IPS,
            checkpoint_every=CHECKPOINT_EVERY, checkpoint_path=path)
        raise AssertionError("crash injection never fired")
    except _Crash:
        pass
    finally:
        OutOfOrderCore.run_interval = original
    assert path.exists(), "no checkpoint written before the crash"
    return _digest(_run(engine, checkpoint_every=CHECKPOINT_EVERY,
                        checkpoint_path=path))


def test_goldens_unchanged():
    result = DetailedSimulator(baseline_config()).run(
        "gcc", n_samples=8, instructions_per_sample=400)
    assert _digest(result) == GOLDEN_GCC_BASELINE


def test_kernel_bit_identity_and_speedup(tmp_path):
    kernel_engine = "kernel" if jit_available() else "kernel-interp"

    # Warm the trace memo (and trigger njit compilation when numba is
    # present) before anything is timed.
    _run("python")
    _run(kernel_engine)

    interp_digest, interp_wall = _timed_run("python")
    kernel_digest, kernel_wall = _timed_run(kernel_engine)
    assert kernel_digest == interp_digest, (
        "kernel and interpreter streams diverged")

    resumed_interp = _resumed_digest("python", tmp_path / "interp.ckpt.npz")
    resumed_kernel = _resumed_digest(kernel_engine,
                                     tmp_path / "kernel.ckpt.npz")
    assert resumed_interp == interp_digest, (
        "checkpoint-resumed interpreter run diverged from a fresh one")
    assert resumed_kernel == interp_digest, (
        "checkpoint-resumed kernel run diverged from a fresh one")

    speedup = interp_wall / kernel_wall
    compiled = jit_available()
    print(f"\n{N_SAMPLES}x{IPS} gcc/baseline: interpreter "
          f"{interp_wall:.3f}s, kernel[{kernel_engine}] {kernel_wall:.3f}s "
          f"({speedup:.1f}x); fresh/resumed digests identical across "
          f"engines")
    if compiled:
        assert speedup >= MIN_SPEEDUP, (
            f"compiled kernel speedup {speedup:.2f}x below the "
            f"{MIN_SPEEDUP:.0f}x floor"
        )

    record = {
        "bench": "detailed_kernel",
        "n_samples": N_SAMPLES,
        "instructions_per_sample": IPS,
        "numba_available": compiled,
        "kernel_engine": kernel_engine,
        "interpreter_wall_seconds": round(interp_wall, 4),
        "kernel_wall_seconds": round(kernel_wall, 4),
        "speedup": round(speedup, 2),
        "min_speedup_enforced": MIN_SPEEDUP if compiled else None,
        "bit_identical_fresh": True,
        "bit_identical_resumed": True,
        "digest": interp_digest,
    }
    _merge_record(record)


def _merge_record(update):
    """Fold one leg's metrics into ``BENCH_detailed_kernel.json`` so the
    scalar and batched legs can run in either order (or alone)."""
    try:
        with open("BENCH_detailed_kernel.json") as handle:
            record = json.load(handle)
    except (OSError, ValueError):
        record = {"bench": "detailed_kernel"}
    record.update(update)
    with open("BENCH_detailed_kernel.json", "w") as handle:
        json.dump(record, handle, indent=2)


# ----------------------------------------------------------------------
# Batched leg: one stacked kernel call per interval for a 64-config group
# ----------------------------------------------------------------------
def _batch_jobs(checkpoint_dir=None):
    base = baseline_config()
    kwargs = {}
    if checkpoint_dir is not None:
        kwargs = dict(checkpoint_every=BATCH_EVERY,
                      checkpoint_dir=str(checkpoint_dir))
    return [
        SimJob("gcc", dataclasses.replace(base, iq_size=16 + i),
               backend="detailed", n_samples=BATCH_SAMPLES,
               instructions_per_sample=BATCH_IPS, **kwargs)
        for i in range(BATCH_SIZE)
    ]


def _timed(fn, reps=2):
    best = float("inf")
    out = None
    for _ in range(reps):
        start = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - start)
    return out, best


def test_batched_kernel_bit_identity_and_speedup(tmp_path):
    kernel_engine = "kernel" if jit_available() else "kernel-interp"
    jit.set_jit_threads(BATCH_THREADS)
    try:
        jobs = _batch_jobs()

        # Warm-up, off the measured path: trace memo, the scalar-kernel
        # njit compile, and the prange batch-loop compile all land here.
        def scalar_leg():
            with _forced_engine(kernel_engine):
                return [job.run() for job in jobs]

        scalar_digests = [_digest(r) for r in scalar_leg()]
        warm = run_detailed_group(jobs, engine="batch")
        assert [_digest(r) for r in warm] == scalar_digests, (
            "batched streams diverged from per-job scalar kernel runs")

        scalar_results, scalar_wall = _timed(scalar_leg)
        batch_results, batch_wall = _timed(
            lambda: run_detailed_group(jobs, engine="batch"))
        assert [_digest(r) for r in scalar_results] == scalar_digests
        assert [_digest(r) for r in batch_results] == scalar_digests

        # Resumed leg: crash one checkpointing batched run mid-stream,
        # clone the snapshot directory, and resume the identical
        # snapshots through both paths.
        dir_scalar = tmp_path / "ckpt-scalar"
        dir_batch = tmp_path / "ckpt-batch"
        jobs_scalar = _batch_jobs(dir_scalar)
        jobs_batch = _batch_jobs(dir_batch)
        original = detailed_module.synthesize_interval

        def crashing(workload, i, n, ips, seed=None):
            if i == BATCH_CRASH_AT and seed is None:
                raise _Crash()
            if seed is None:
                return original(workload, i, n, ips)
            return original(workload, i, n, ips, seed=seed)

        detailed_module.synthesize_interval = crashing
        try:
            run_detailed_group(jobs_scalar, engine="batch")
            raise AssertionError("crash injection never fired")
        except _Crash:
            pass
        finally:
            detailed_module.synthesize_interval = original
        snapshots = list(dir_scalar.glob("*.ckpt.npz"))
        assert len(snapshots) == BATCH_SIZE, (
            "expected one mid-stream snapshot per group member")
        shutil.copytree(dir_scalar, dir_batch)

        def scalar_resume():
            with _forced_engine(kernel_engine):
                return [job.run() for job in jobs_scalar]

        resumed_scalar, scalar_resumed_wall = _timed(scalar_resume, reps=1)
        resumed_batch, batch_resumed_wall = _timed(
            lambda: run_detailed_group(jobs_batch, engine="batch"), reps=1)
        assert [_digest(r) for r in resumed_scalar] == scalar_digests, (
            "scalar-resumed streams diverged from fresh runs")
        assert [_digest(r) for r in resumed_batch] == scalar_digests, (
            "batch-resumed streams diverged from fresh runs")
    finally:
        jit.set_jit_threads(None)

    compiled = jit_available()
    speedup = scalar_wall / batch_wall
    resumed_speedup = scalar_resumed_wall / batch_resumed_wall
    print(f"\nB={BATCH_SIZE} x {BATCH_SAMPLES}x{BATCH_IPS} gcc: scalar "
          f"kernel {scalar_wall:.3f}s, batched {batch_wall:.3f}s "
          f"({speedup:.1f}x fresh); resumed {scalar_resumed_wall:.3f}s vs "
          f"{batch_resumed_wall:.3f}s ({resumed_speedup:.1f}x); "
          f"{BATCH_THREADS} threads, digests identical")
    if compiled:
        assert speedup >= MIN_BATCH_SPEEDUP, (
            f"fresh batched speedup {speedup:.2f}x below the "
            f"{MIN_BATCH_SPEEDUP:.0f}x floor")
        assert resumed_speedup >= MIN_BATCH_SPEEDUP, (
            f"resumed batched speedup {resumed_speedup:.2f}x below the "
            f"{MIN_BATCH_SPEEDUP:.0f}x floor")

    _merge_record({
        "batched": {
            "batch_size": BATCH_SIZE,
            "n_samples": BATCH_SAMPLES,
            "instructions_per_sample": BATCH_IPS,
            "jit_threads": BATCH_THREADS,
            "numba_available": compiled,
            "scalar_wall_seconds": round(scalar_wall, 4),
            "batched_wall_seconds": round(batch_wall, 4),
            "speedup": round(speedup, 2),
            "resumed_scalar_wall_seconds": round(scalar_resumed_wall, 4),
            "resumed_batched_wall_seconds": round(batch_resumed_wall, 4),
            "resumed_speedup": round(resumed_speedup, 2),
            "min_speedup_enforced": MIN_BATCH_SPEEDUP if compiled else None,
            "bit_identical": True,
        },
    })
