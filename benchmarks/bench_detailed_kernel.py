"""Bench: the compiled detailed-pipeline kernel vs the interpreter.

Times a 64-interval detailed run through both execution engines of
:class:`~repro.uarch.pipeline.OutOfOrderCore` — the object-model
interpreter and the struct-of-arrays kernel — and proves bit-identity
across {interpreter, kernel} x {fresh, checkpoint-resumed} before any
timing is trusted.  With numba installed (CI's with-numba leg) the
kernel is njit-compiled and must clear a **>=5x** speedup over the
interpreter; without numba the kernel runs uncompiled and only the
bit-identity claims are asserted (an uncompiled array kernel is scalar
Python over numpy cells — slower than the interpreter, and never the
auto-selected engine).

Both engines are measured trace-memo-warm (synthesis is shared state,
not engine work), best of two runs.  Results land in
``BENCH_detailed_kernel.json`` (CI artifact).
"""

import hashlib
import json
import time
from contextlib import contextmanager

import numpy as np

from repro.uarch.detailed import DetailedSimulator
from repro.uarch.jit import jit_available
from repro.uarch.params import baseline_config
from repro.uarch.pipeline import OutOfOrderCore

N_SAMPLES = 64
IPS = 1000
CHECKPOINT_EVERY = 8
CRASH_AFTER = 25      # warmup + 24 measured intervals; snapshot at 24
MIN_SPEEDUP = 5.0

STREAMS = ("cpi", "power", "avf", "iq_avf", "mispredict_rate",
           "dvm_throttled_frac")

#: 8x400 gcc/baseline digest pinned in tests/test_detailed_kernel.py —
#: re-asserted here so the bench never times a behaviourally-drifted
#: build.
GOLDEN_GCC_BASELINE = \
    "72d40a0fe267aa9a2bd4b6eea233fadc404f6f71524086026bbfe77a34c24747"


def _digest(result) -> str:
    parts = []
    for name in STREAMS:
        arr = result.traces.get(name)
        if arr is None:
            arr = result.components[name]
        parts.append(np.ascontiguousarray(arr, dtype=np.float64).tobytes())
    return hashlib.sha256(b"".join(parts)).hexdigest()


@contextmanager
def _forced_engine(engine):
    original = OutOfOrderCore.run_interval
    OutOfOrderCore.run_interval = (
        lambda self, trace, _original=original, _engine=engine:
            _original(self, trace, engine=_engine))
    try:
        yield
    finally:
        OutOfOrderCore.run_interval = original


def _run(engine, **kwargs):
    with _forced_engine(engine):
        return DetailedSimulator(baseline_config()).run(
            "gcc", n_samples=N_SAMPLES, instructions_per_sample=IPS,
            **kwargs)


def _timed_run(engine):
    best = float("inf")
    digest = None
    for _ in range(2):
        start = time.perf_counter()
        result = _run(engine)
        wall = time.perf_counter() - start
        best = min(best, wall)
        digest = _digest(result)
    return digest, best


class _Crash(Exception):
    pass


def _resumed_digest(engine, path):
    """Crash a checkpointing run mid-benchmark, resume it, digest it."""
    original = OutOfOrderCore.run_interval
    calls = [0]

    def crashing(self, trace, _original=original):
        calls[0] += 1
        if calls[0] > CRASH_AFTER:
            raise _Crash()
        return _original(self, trace, engine=engine)

    OutOfOrderCore.run_interval = crashing
    try:
        DetailedSimulator(baseline_config()).run(
            "gcc", n_samples=N_SAMPLES, instructions_per_sample=IPS,
            checkpoint_every=CHECKPOINT_EVERY, checkpoint_path=path)
        raise AssertionError("crash injection never fired")
    except _Crash:
        pass
    finally:
        OutOfOrderCore.run_interval = original
    assert path.exists(), "no checkpoint written before the crash"
    return _digest(_run(engine, checkpoint_every=CHECKPOINT_EVERY,
                        checkpoint_path=path))


def test_goldens_unchanged():
    result = DetailedSimulator(baseline_config()).run(
        "gcc", n_samples=8, instructions_per_sample=400)
    assert _digest(result) == GOLDEN_GCC_BASELINE


def test_kernel_bit_identity_and_speedup(tmp_path):
    kernel_engine = "kernel" if jit_available() else "kernel-interp"

    # Warm the trace memo (and trigger njit compilation when numba is
    # present) before anything is timed.
    _run("python")
    _run(kernel_engine)

    interp_digest, interp_wall = _timed_run("python")
    kernel_digest, kernel_wall = _timed_run(kernel_engine)
    assert kernel_digest == interp_digest, (
        "kernel and interpreter streams diverged")

    resumed_interp = _resumed_digest("python", tmp_path / "interp.ckpt.npz")
    resumed_kernel = _resumed_digest(kernel_engine,
                                     tmp_path / "kernel.ckpt.npz")
    assert resumed_interp == interp_digest, (
        "checkpoint-resumed interpreter run diverged from a fresh one")
    assert resumed_kernel == interp_digest, (
        "checkpoint-resumed kernel run diverged from a fresh one")

    speedup = interp_wall / kernel_wall
    compiled = jit_available()
    print(f"\n{N_SAMPLES}x{IPS} gcc/baseline: interpreter "
          f"{interp_wall:.3f}s, kernel[{kernel_engine}] {kernel_wall:.3f}s "
          f"({speedup:.1f}x); fresh/resumed digests identical across "
          f"engines")
    if compiled:
        assert speedup >= MIN_SPEEDUP, (
            f"compiled kernel speedup {speedup:.2f}x below the "
            f"{MIN_SPEEDUP:.0f}x floor"
        )

    record = {
        "bench": "detailed_kernel",
        "n_samples": N_SAMPLES,
        "instructions_per_sample": IPS,
        "numba_available": compiled,
        "kernel_engine": kernel_engine,
        "interpreter_wall_seconds": round(interp_wall, 4),
        "kernel_wall_seconds": round(kernel_wall, 4),
        "speedup": round(speedup, 2),
        "min_speedup_enforced": MIN_SPEEDUP if compiled else None,
        "bit_identical_fresh": True,
        "bit_identical_resumed": True,
        "digest": interp_digest,
    }
    with open("BENCH_detailed_kernel.json", "w") as handle:
        json.dump(record, handle, indent=2)
