"""Bench: Figure 13 — threshold-based scenario classification (1-DS).

Paper: directional asymmetry below ~10 % for every benchmark, domain
and threshold.  Our reproduction matches that in the median but has a
heavier tail in the power domain: piecewise-flat synthetic power traces
can sit *on* a quartile threshold for a whole phase, so a small
predicted-level shift flips that phase's samples wholesale.  The
deviation is recorded in EXPERIMENTS.md.
"""

import numpy as np

from benchmarks.conftest import run_and_print


def test_fig13(benchmark, ctx):
    result = run_and_print(benchmark, ctx, "fig13")
    values = []
    for domain in ("CPI", "POWER", "AVF"):
        rows = result.table(f"{domain} directional").rows
        assert len(rows) == len(ctx.scale.benchmarks)
        for row in rows:
            values.extend(row[1:])
    values = np.asarray(values, dtype=float)
    assert np.all((values >= 0.0) & (values <= 100.0))
    # Median within the paper's band; bounded tail (documented deviation).
    assert np.median(values) < 10.0
    assert values.max() < 40.0