"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables/figures by running its
experiment driver and printing the resulting rows.  The experiment
context (datasets + fitted models) is shared across the whole benchmark
session, so the expensive sweep and model fitting happen once.

Scale is controlled with ``REPRO_SCALE`` (``quick`` default for bench
runs, ``paper`` for the full reproduction; see
:class:`repro.experiments.context.Scale`).
"""

import pytest

from repro.experiments.context import ExperimentContext, Scale


@pytest.fixture(scope="session")
def ctx():
    """Session-wide experiment context."""
    return ExperimentContext(Scale.from_env(default="quick"))


def run_and_print(benchmark, ctx, experiment_id):
    """Run one experiment under pytest-benchmark and print its output."""
    from repro.experiments import run_experiment

    result = benchmark.pedantic(
        run_experiment, args=(experiment_id, ctx), rounds=1, iterations=1,
    )
    print()
    print(result.render())
    return result
