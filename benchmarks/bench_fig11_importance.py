"""Bench: Figure 11 — parameter-importance star plots."""

import numpy as np

from benchmarks.conftest import run_and_print


def test_fig11(benchmark, ctx):
    result = run_and_print(benchmark, ctx, "fig11")
    freq = result.table("frequency").rows
    headers = ("benchmark", "domain") + ctx.space.names
    # One row per (benchmark, domain); frequency scores normalized.
    assert len(freq) == len(ctx.scale.benchmarks) * 3
    for row in freq:
        scores = np.array(row[2:], dtype=float)
        assert scores.max() <= 1.0 + 1e-9
        assert scores.min() >= 0.0
    # mcf is memory-bound: L2 parameters must dominate its CPI dynamics.
    mcf_cpi = next(r for r in freq if r[0] == "mcf" and r[1] == "cpi")
    scores = dict(zip(headers[2:], mcf_cpi[2:]))
    top = max(scores, key=scores.get)
    assert top in ("l2_size_kb", "l2_latency", "lsq_size", "fetch_width")
