"""Bench: ablation — magnitude vs order coefficient selection."""

from benchmarks.conftest import run_and_print


def test_ablation_selection(benchmark, ctx):
    result = run_and_print(benchmark, ctx, "abl-selection")
    rows = result.table("selection scheme").rows
    wins = sum(1 for r in rows if r[4] == "magnitude")
    # The paper claims magnitude always wins; allow a small minority of
    # ties/upsets on our synthetic data but require a clear majority.
    assert wins >= len(rows) * 0.7
