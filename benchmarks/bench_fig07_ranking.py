"""Bench: Figure 7 — magnitude-ranking stability across configurations."""

from benchmarks.conftest import run_and_print


def test_fig7(benchmark, ctx):
    result = run_and_print(benchmark, ctx, "fig7")
    rows = result.table("stability").rows
    # Top-ranked coefficients remain largely consistent across configs.
    gcc = next(r for r in rows if r[0] == "gcc")
    assert gcc[1] > 0.5
