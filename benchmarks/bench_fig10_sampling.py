"""Bench: Figure 10 — MSE vs sampling resolution at k=16."""

from benchmarks.conftest import run_and_print


def test_fig10(benchmark, ctx):
    result = run_and_print(benchmark, ctx, "fig10")
    rows = result.table("Median MSE%").rows
    assert [r[0] for r in rows] == [64, 128, 256, 512, 1024]
    # MSE grows with resolution, but not dramatically (paper: "the
    # increase of MSE is not significant").
    cpi = [r[1] for r in rows]
    assert cpi[-1] >= cpi[0] - 0.5
    assert cpi[-1] < cpi[0] * 6 + 5.0
