"""Benchmark harness: one bench per paper table/figure (pytest-benchmark)."""
