"""Bench: Figure 17 — forecasting DVM success/failure scenarios."""

from benchmarks.conftest import run_and_print


def test_fig17(benchmark, ctx):
    result = run_and_print(benchmark, ctx, "fig17")
    rows = result.table("compliance").rows
    scen1 = next(r for r in rows if "scenario 1" in r[0])
    scen2 = next(r for r in rows if "scenario 2" in r[0])
    # Scenario 1 succeeds, scenario 2 fails, and the predictor agrees
    # with the simulator on both.
    assert scen1[4] == "meets target"
    assert scen2[4] == "violates target"
    assert scen1[5] == scen1[4]
    assert scen2[5] == scen2[4]
