"""Bench: zero-copy shared-memory result transport vs pickle.

The PR-1/PR-2 engine pickled every :class:`SimulationResult` — ~18
float64 arrays per job — back through the pool pipe, then re-stacked
the per-job arrays into training matrices.  This bench pins the PR-3
transport's win on a **paper-scale interval batch** (250 configurations
x 128 samples, the 200-train/50-test sweep):

* the isolated **result-transport + dataset-assembly** path through the
  shared-memory arena (write rows + materialize views + slice matrices)
  must be at least **2x faster** than the pickle path (dumps + loads +
  vstack) — and is typically far more;
* both transports must produce **bit-identical** matrices, and an
  end-to-end parallel sweep with ``shm`` on must match one with ``shm``
  off bit-for-bit (wall-clock reported informationally — on one core
  the simulation itself dominates either way).

Results land in ``BENCH_shm_transport.json`` plus the PR perf record
``BENCH_pr3.json`` (both uploaded as CI artifacts).
"""

import json
import pickle
import time

import numpy as np

from repro.dse.runner import SweepPlan, SweepRunner
from repro.dse.space import paper_design_space
from repro.engine import ExecutionEngine, ParallelExecutor, ShmArena, SimJob
from repro.engine.shm import stack_rows, write_results
from repro.uarch.simulator import DOMAINS

N_TRAIN, N_TEST = 200, 50
N_SAMPLES = 128
PLAN = SweepPlan(space=paper_design_space(), n_train=N_TRAIN, n_test=N_TEST,
                 n_lhs_matrices=4, seed=0)
REPEATS = 5


def _paper_scale_batch():
    train, test = PLAN.sample()
    configs = list(train) + list(test)
    jobs = [SimJob("gcc", c, n_samples=N_SAMPLES) for c in configs]
    return jobs, [job.run() for job in jobs]


def _pickle_transport(jobs, results):
    """The old result path: pickle through the pipe, vstack to matrices."""
    received = [pickle.loads(pickle.dumps(r)) for r in results]
    return {d: np.vstack([r.trace(d) for r in received]) for d in DOMAINS}


def _shm_transport(jobs, results):
    """The arena path: write rows, materialize views, slice matrices."""
    arena = ShmArena.create(jobs)
    assert arena is not None, "shared memory unavailable on this platform"
    descriptors = write_results(arena.spec, range(len(jobs)), results)
    received = [arena.materialize(d) for d in descriptors]
    matrices = {d: stack_rows([r.trace(d) for r in received])
                for d in DOMAINS}
    arena.unlink()
    return matrices


def _interleaved_best(fn_a, fn_b, *args):
    """Best-of-N for two paths, rounds interleaved so machine-load
    drift hits both sides equally.  Returns (best_a, best_b, a, b)."""
    value_a = fn_a(*args)  # warmup (page faults, allocator, imports)
    value_b = fn_b(*args)
    best_a = best_b = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        value_a = fn_a(*args)
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        value_b = fn_b(*args)
        best_b = min(best_b, time.perf_counter() - start)
    return best_a, best_b, value_a, value_b


def test_shm_transport_2x_faster_and_bit_identical(tmp_path):
    jobs, results = _paper_scale_batch()

    pickle_time, shm_time, via_pickle, via_shm = _interleaved_best(
        _pickle_transport, _shm_transport, jobs, results)

    for domain in DOMAINS:
        assert np.array_equal(via_pickle[domain], via_shm[domain])
    zero_copy = via_shm["cpi"].base is not None  # a slice, not a stack

    # End-to-end parallel sweeps, shm on vs off: identical datasets.
    with ParallelExecutor(max_workers=2, shm=True) as shm_ex:
        runner = SweepRunner(n_samples=N_SAMPLES,
                             engine=ExecutionEngine(shm_ex))
        start = time.perf_counter()
        shm_train, shm_test = runner.run_train_test("gcc", PLAN)
        shm_sweep = time.perf_counter() - start
    with ParallelExecutor(max_workers=2, shm=False) as pickle_ex:
        runner = SweepRunner(n_samples=N_SAMPLES,
                             engine=ExecutionEngine(pickle_ex))
        start = time.perf_counter()
        pk_train, pk_test = runner.run_train_test("gcc", PLAN)
        pickle_sweep = time.perf_counter() - start
    for a, b in ((shm_train, pk_train), (shm_test, pk_test)):
        for domain in a.domains:
            assert np.array_equal(a.domain(domain), b.domain(domain))

    speedup = pickle_time / shm_time
    record = {
        "bench": "shm_transport",
        "n_jobs": len(jobs),
        "n_samples": N_SAMPLES,
        "transport_pickle_seconds": round(pickle_time, 6),
        "transport_shm_seconds": round(shm_time, 6),
        "transport_speedup": round(speedup, 2),
        "zero_copy_assembly": bool(zero_copy),
        "sweep_shm_seconds": round(shm_sweep, 3),
        "sweep_pickle_seconds": round(pickle_sweep, 3),
        "bit_identical": True,
    }
    with open("BENCH_shm_transport.json", "w") as handle:
        json.dump(record, handle, indent=2)
    with open("BENCH_pr3.json", "w") as handle:
        json.dump({"pr": 3, "headline": "zero-copy shm result transport",
                   **record}, handle, indent=2)

    print(f"\ntransport+assembly ({len(jobs)} jobs x {N_SAMPLES} samples): "
          f"pickle {pickle_time * 1e3:.1f} ms, "
          f"shm {shm_time * 1e3:.1f} ms ({speedup:.1f}x, "
          f"zero-copy={zero_copy})")
    print(f"end-to-end sweep: shm {shm_sweep:.2f}s, "
          f"pickle {pickle_sweep:.2f}s (simulation-bound; identical data)")

    assert zero_copy, "cold-sweep assembly should be an arena slice"
    assert shm_time * 2 <= pickle_time, (
        f"shared-memory transport ({shm_time * 1e3:.1f} ms) should be >=2x "
        f"faster than pickle ({pickle_time * 1e3:.1f} ms)"
    )


def test_detailed_transport_parity():
    """Detailed-backend results ride the same arena, bit-identically."""
    configs = paper_design_space().sample_random(4, split="train", seed=9)
    jobs = [SimJob("mcf", c, backend="detailed", n_samples=8,
                   instructions_per_sample=80) for c in configs]
    results = [job.run() for job in jobs]
    pickle_time, shm_time, via_pickle, via_shm = _interleaved_best(
        _pickle_transport, _shm_transport, jobs, results)
    for domain in DOMAINS:
        assert np.array_equal(via_pickle[domain], via_shm[domain])
    print(f"\ndetailed transport ({len(jobs)} jobs x 8 samples): "
          f"pickle {pickle_time * 1e6:.0f} us, shm {shm_time * 1e6:.0f} us")
