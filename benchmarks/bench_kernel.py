"""Bench: batched interval kernel vs. the per-config scalar path.

The interval model's rewrite stacks a whole config batch into
``(configs, samples)`` matrices and advances them through one
vectorized kernel call (:func:`repro.uarch.interval_model.\
simulate_interval_batch`).  This bench pins the rewrite's contract on a
sweep-shaped workload (one benchmark x ``BATCH`` LHS configurations):

* the batched kernel must be **>= 10x** faster than the equivalent loop
  of scalar ``simulate_interval`` calls (min-of-``REPEATS`` on both
  sides, both warmed);
* every batch row must be **byte-identical** to its scalar counterpart
  (speed never buys drift);
* when numba is installed, the JIT-compiled persistence scan must also
  be byte-identical (its timing is reported informationally — the scan
  is a small slice of the kernel).

Results land in ``BENCH_kernel.json`` (uploaded as a CI artifact).
"""

import json
import time

import numpy as np

from repro.dse.lhs import sample_train_configs
from repro.dse.space import paper_design_space
from repro.uarch.interval_model import simulate_interval, simulate_interval_batch
from repro.uarch.jit import jit_available, set_jit
from repro.workloads.spec2000 import get_benchmark

BENCHMARK = "gcc"
BATCH = 128
N_SAMPLES = 128
REPEATS = 3
MIN_SPEEDUP = 10.0


def _min_of(repeats, fn):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_batched_kernel_10x_and_bit_identical():
    workload = get_benchmark(BENCHMARK)
    configs = sample_train_configs(paper_design_space(), BATCH, seed=0)

    # Warm both paths (imports, benchmark attribute caches, key memos).
    simulate_interval(workload, configs[0], N_SAMPLES)
    simulate_interval_batch(workload, configs[:2], n_samples=N_SAMPLES)

    scalar_s = _min_of(REPEATS, lambda: [
        simulate_interval(workload, c, N_SAMPLES) for c in configs])
    batch_s = _min_of(REPEATS, lambda: simulate_interval_batch(
        workload, configs, n_samples=N_SAMPLES))
    speedup = scalar_s / batch_s

    # Bit-identity: the speedup must not come from different numerics.
    batch = simulate_interval_batch(workload, configs, n_samples=N_SAMPLES)
    scalars = [simulate_interval(workload, c, N_SAMPLES) for c in configs]
    for row, ref in zip(batch, scalars):
        assert np.array_equal(row.cpi, ref.cpi)
        assert np.array_equal(row.power, ref.power)
        assert np.array_equal(row.avf, ref.avf)
        assert np.array_equal(row.iq_avf, ref.iq_avf)
        for name in ref.components:
            assert np.array_equal(row.components[name],
                                  ref.components[name]), name

    jit_s = None
    jit_identical = None
    if jit_available():
        set_jit(True)
        try:
            simulate_interval_batch(workload, configs[:2],
                                    n_samples=N_SAMPLES)  # compile warm-up
            jit_s = _min_of(REPEATS, lambda: simulate_interval_batch(
                workload, configs, n_samples=N_SAMPLES))
            jitted = simulate_interval_batch(workload, configs,
                                             n_samples=N_SAMPLES)
        finally:
            set_jit(None)
        jit_identical = all(
            np.array_equal(a, b)
            for row, ref in zip(jitted, batch)
            for a, b in ((row.cpi, ref.cpi), (row.power, ref.power),
                         (row.avf, ref.avf), (row.iq_avf, ref.iq_avf))
        )
        assert jit_identical, "JIT persistence scan drifted from NumPy"

    record = {
        "benchmark": BENCHMARK,
        "batch": BATCH,
        "n_samples": N_SAMPLES,
        "repeats": REPEATS,
        "scalar_seconds": round(scalar_s, 4),
        "batch_seconds": round(batch_s, 4),
        "speedup": round(speedup, 2),
        "min_speedup": MIN_SPEEDUP,
        "scalar_us_per_config": round(scalar_s / BATCH * 1e6, 1),
        "batch_us_per_config": round(batch_s / BATCH * 1e6, 1),
        "rows_bit_identical": True,
        "jit_available": jit_available(),
        "jit_seconds": None if jit_s is None else round(jit_s, 4),
        "jit_bit_identical": jit_identical,
    }
    with open("BENCH_kernel.json", "w") as handle:
        json.dump(record, handle, indent=2)

    print()
    print(f"kernel: {BENCHMARK} x {BATCH} configs x {N_SAMPLES} samples "
          f"(min of {REPEATS})")
    print(f"  scalar loop     : {scalar_s * 1e3:8.1f} ms "
          f"({scalar_s / BATCH * 1e6:6.0f} us/config)")
    print(f"  batched kernel  : {batch_s * 1e3:8.1f} ms "
          f"({batch_s / BATCH * 1e6:6.0f} us/config, {speedup:.1f}x)")
    if jit_s is not None:
        print(f"  batched + JIT   : {jit_s * 1e3:8.1f} ms "
              f"({scalar_s / jit_s:.1f}x, bit-identical)")
    else:
        print("  batched + JIT   : numba not installed (NumPy fallback)")

    assert speedup >= MIN_SPEEDUP, (
        f"batched kernel speedup {speedup:.1f}x fell below the pinned "
        f"{MIN_SPEEDUP:.0f}x floor ({scalar_s:.3f}s scalar vs "
        f"{batch_s:.3f}s batched)"
    )
