"""Bench: Figure 8 — the headline MSE boxplots (3 domains x 12 benchmarks).

Paper reference points: CPI medians 0.5-8.6 % per benchmark, overall
median 2.3 %, maxima ~30 %; power slightly worse overall; AVF much
smaller.
"""

from benchmarks.conftest import run_and_print


def test_fig8(benchmark, ctx):
    result = run_and_print(benchmark, ctx, "fig8")
    overall = {r[0]: r[1] for r in result.table("Overall").rows}
    # Shape checks against the paper's bands.
    assert 1.0 < overall["cpi"] < 6.0        # paper: 2.3
    assert 1.0 < overall["power"] < 6.0      # paper: 2.6
    assert overall["avf"] < overall["cpi"] * 1.5   # reliability is best
    cpi_rows = result.table("CPI MSE%").rows
    medians = {r[0]: r[1] for r in cpi_rows}
    assert len(medians) == len(ctx.scale.benchmarks)
    assert max(medians.values()) < 15.0
