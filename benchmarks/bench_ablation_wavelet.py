"""Bench: ablation — wavelet family/convention choice."""

from benchmarks.conftest import run_and_print


def test_ablation_wavelet(benchmark, ctx):
    result = run_and_print(benchmark, ctx, "abl-wavelet")
    rows = result.table("per wavelet").rows
    # All three transforms produce finite, usable accuracy.
    assert len(rows) == 12
    for row in rows:
        assert row[2] < 60.0
