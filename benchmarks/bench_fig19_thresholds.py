"""Bench: Figure 19 — IQ AVF accuracy across DVM thresholds."""

from benchmarks.conftest import run_and_print


def test_fig19(benchmark, ctx):
    result = run_and_print(benchmark, ctx, "fig19")
    raw_rows = result.table("raw MSE").rows
    assert len(raw_rows) == len(ctx.scale.benchmarks)
    # The paper's axis tops out at 0.5; allow generous headroom while
    # still requiring small absolute errors at every threshold.
    for row in raw_rows:
        for value in row[1:]:
            assert value < 2.0
