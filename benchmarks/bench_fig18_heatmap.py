"""Bench: Figure 18 — accuracy heat plots with DVM enabled."""

from benchmarks.conftest import run_and_print


def test_fig18(benchmark, ctx):
    result = run_and_print(benchmark, ctx, "fig18")
    iq_rows = result.table("iq_avf").rows
    power_rows = result.table("power").rows
    assert len(iq_rows) == len(ctx.scale.benchmarks)
    assert len(power_rows) == len(ctx.scale.benchmarks)
    # "In power domain, prediction accuracy is more uniform across
    # benchmarks": the spread of medians is narrower than for IQ AVF.
    iq_medians = [r[1] for r in iq_rows]
    pw_medians = [r[1] for r in power_rows]
    assert (max(pw_medians) - min(pw_medians)) < \
        (max(iq_medians) - min(iq_medians)) * 2.0
