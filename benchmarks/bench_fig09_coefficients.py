"""Bench: Figure 9 — MSE vs number of wavelet coefficients."""

from benchmarks.conftest import run_and_print


def test_fig9(benchmark, ctx):
    result = run_and_print(benchmark, ctx, "fig9")
    rows = result.table("Median MSE%").rows
    ks = [r[0] for r in rows]
    assert ks == [16, 32, 64, 96, 128]
    # Accuracy improves with k in every domain...
    for col in (1, 2, 3):
        series = [r[col] for r in rows]
        assert series[-1] <= series[0] + 1e-9
    # ...with diminishing returns past 16: the first doubling must yield
    # more improvement than the last.
    cpi = [r[1] for r in rows]
    assert (cpi[0] - cpi[1]) >= (cpi[3] - cpi[4]) - 0.5
