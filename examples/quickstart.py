#!/usr/bin/env python
"""Quickstart: simulate a workload, train a dynamics predictor, predict.

Walks the paper's whole pipeline on one benchmark in under a minute:

1. simulate gcc's CPI dynamics across a Latin-Hypercube sample of the
   9-parameter design space (Table 2);
2. Haar-decompose the traces and fit one RBF network per important
   wavelet coefficient (Figure 6's hybrid scheme);
3. predict the dynamics at 50 unseen test configurations and report the
   paper's MSE% metric;
4. show one predicted-vs-simulated trace as a sparkline.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro
from repro.analysis.render import render_trace_pair


def main():
    print("== 1. Sample the design space and simulate gcc ==")
    runner = repro.SweepRunner()
    plan = repro.SweepPlan(space=repro.paper_design_space(),
                           n_train=200, n_test=50, seed=0)
    train, test = runner.run_train_test("gcc", plan)
    print(f"simulated {train.n_configs} train + {test.n_configs} test "
          f"configurations, {train.n_samples} samples per trace")

    print("\n== 2. Fit the wavelet neural network (k=16 coefficients) ==")
    model = repro.WaveletNeuralPredictor(n_coefficients=16)
    model.fit(train.design_matrix(), train.domain("cpi"))
    print(f"fitted {model.n_networks} per-coefficient RBF networks; "
          f"selected coefficient indices: {model.selected_indices_.tolist()}")

    print("\n== 3. Predict unseen configurations ==")
    predicted = model.predict(test.design_matrix())
    errors = repro.pooled_nmse_percent(test.domain("cpi"), predicted)
    print(f"CPI dynamics MSE%: median {np.median(errors):.2f}%, "
          f"max {errors.max():.2f}% over {len(errors)} test configs")

    print("\n== 4. A typical test configuration, simulated vs predicted ==")
    idx = int(np.argsort(errors)[len(errors) // 2])
    cfg = test.configs[idx]
    print(cfg.describe())
    print(render_trace_pair(test.domain("cpi")[idx], predicted[idx],
                            "gcc CPI"))


if __name__ == "__main__":
    main()
