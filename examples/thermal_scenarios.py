#!/usr/bin/env python
"""Thermal scenario exploration — the paper's introductory motivation.

"Instead of designing packaging that can meet the cooling capacity for
worst-case scenarios, architects can examine how the workload thermal
dynamics behave across different architecture configurations and deploy
appropriate dynamic thermal management (DTM) policies."

This example does exactly that with the reproduction's pieces:

1. simulate crafty's power dynamics across the design space;
2. derive die-temperature dynamics with the lumped RC package model;
3. train a wavelet neural network on the *temperature* traces (any
   per-interval series works — the method is domain-agnostic);
4. use the predicted worst-case temperatures to classify candidate
   configurations into "needs expensive package", "cheap package + DTM
   works" and "cheap package alone works".

Run:  python examples/thermal_scenarios.py
"""

import numpy as np

import repro
from repro.dse.runner import SweepPlan, SweepRunner
from repro.power.thermal import DTMPolicy, ThermalModel

TRIGGER = 85.0


def main():
    thermal = ThermalModel(r_thermal=0.45, time_constant_intervals=8.0)
    dtm = DTMPolicy(trigger=TRIGGER, throttle_factor=0.6)

    print("== 1-2. Simulate crafty and derive thermal dynamics ==")
    runner = repro.SweepRunner()
    plan = repro.SweepPlan(space=repro.paper_design_space(),
                           n_train=200, n_test=50, seed=0)
    train, test = runner.run_train_test("crafty", plan)
    temp_train = np.vstack([thermal.temperature_trace(p)
                            for p in train.domain("power")])
    temp_test = np.vstack([thermal.temperature_trace(p)
                           for p in test.domain("power")])
    print(f"temperature range across space: "
          f"{temp_train.min():.1f} .. {temp_train.max():.1f} C")

    print("\n== 3. Train dynamics models on temperature and power ==")
    temp_model = repro.WaveletNeuralPredictor(n_coefficients=16)
    temp_model.fit(train.design_matrix(), temp_train)
    power_model = repro.WaveletNeuralPredictor(n_coefficients=16)
    power_model.fit(train.design_matrix(), train.domain("power"))
    errors = repro.pooled_nmse_percent(
        temp_test, temp_model.predict(test.design_matrix()))
    print(f"temperature dynamics MSE%: median {np.median(errors):.2f}%")

    print(f"\n== 4. Package planning at trigger {TRIGGER} C ==")
    # Candidate configurations from the *full* train grid (the model
    # predicts; nothing below is simulated).
    space = repro.paper_design_space()
    candidates = space.sample_random(200, split="train", seed=42)
    X = space.encode_many(candidates)
    pred_temp = temp_model.predict(X)
    pred_power = power_model.predict(X)
    classes = {"cheap package suffices": 0,
               "cheap package + DTM": 0,
               "needs better cooling": 0}
    for i, cfg in enumerate(candidates):
        if pred_temp[i].max() < TRIGGER:
            classes["cheap package suffices"] += 1
            continue
        # Would DTM hold the line (evaluated on the predicted power)?
        temp_dtm, _, throttled = dtm.apply(pred_power[i], thermal)
        if temp_dtm.max() <= TRIGGER + 1.0:
            classes["cheap package + DTM"] += 1
        else:
            classes["needs better cooling"] += 1
    for label, count in classes.items():
        print(f"  {label:26s} {count:3d} / {len(candidates)} configurations")


if __name__ == "__main__":
    main()
