#!/usr/bin/env python
"""Closed-loop active-learning DSE vs. a blind LHS sweep.

The paper's predictor consumes a fixed Latin-Hypercube training sample
chosen before any model exists.  The active loop (`repro.dse.active`)
instead *closes* the loop: fit a bootstrap ensemble of wavelet
predictors, score thousands of unsimulated configurations with an
expected-improvement acquisition, simulate only the most promising
batch through the execution engine, refit while the batch tail is still
simulating, repeat.

This script runs both strategies from the *same* initial design and
reports how many simulations each needs to find an equally good
power-constrained configuration — the active loop typically gets there
in a fraction of the LHS budget.

Run:  python examples/active_search.py
"""

import numpy as np

import repro
from repro.dse.explorer import Constraint, Objective
from repro.dse.lhs import sample_train_configs

SEED = 0
N_LHS = 160          # the blind sweep's simulation budget
N_INIT = 32          # shared initial design
BATCH = 16
POWER_BUDGET = 70.0  # watts, worst-case


def main():
    space = repro.paper_design_space()
    runner = repro.SweepRunner(n_samples=128)
    objective = Objective("cpi", "mean")
    constraint = Constraint("power", "max", "<=", POWER_BUDGET)

    # -- Blind baseline: one fixed LHS sweep, best feasible design wins.
    print(f"== Blind LHS sweep: {N_LHS} simulations ==")
    lhs_configs = sample_train_configs(space, N_LHS, seed=SEED)
    lhs = runner.run_configs("gcc", lhs_configs, space)
    scores = np.array([objective.score(row) for row in lhs.domain("cpi")])
    feasible = np.array([constraint.satisfied(row)
                         for row in lhs.domain("power")])
    best_lhs = float(scores[feasible].min())
    # How deep into the sweep the final winner first appears:
    running = np.minimum.accumulate(np.where(feasible, scores, np.inf))
    lhs_sims_to_best = int(np.argmax(running <= best_lhs + 1e-12)) + 1
    print(f"best feasible mean CPI: {best_lhs:.4f} "
          f"(first reached after {lhs_sims_to_best} simulations)")

    # -- Active loop: same seed, same initial design, model-led batches.
    print(f"\n== Active search: EI acquisition, batches of {BATCH} ==")
    result = runner.run_active(
        "gcc", objective, constraints=[constraint],
        budget=N_LHS, batch_size=BATCH, n_init=N_INIT, seed=SEED,
        init_configs=lhs_configs[:N_INIT],
    )
    active_sims_to_match = next(
        (r.n_simulations for r in result.rounds
         if r.best_score <= best_lhs + 1e-12),
        result.n_simulations,
    )
    for record in result.rounds:
        overlap = " (fit overlapped tail)" if record.fit_overlapped else ""
        print(f"round {record.round_index:>2d} [{record.strategy:<4s}] "
              f"{record.n_simulations:>4d} sims  "
              f"best {record.best_score:.4f}{overlap}")
    print(f"\nactive best feasible mean CPI: {result.best_score:.4f} "
          f"in {result.n_simulations} simulations ({result.reason})")
    if result.best_score <= best_lhs + 1e-12:
        print(f"matched the {N_LHS}-simulation LHS result after only "
              f"{active_sims_to_match} simulations "
              f"({100 * active_sims_to_match / N_LHS:.0f}% of the budget)")
    print(result.best_config.describe())

    # -- Multi-objective mode: the whole CPI/power trade-off in one run.
    print("\n== Pareto mode: mean CPI vs p99 power ==")
    pareto = runner.run_active(
        "gcc", [Objective("cpi", "mean"), Objective("power", "p99")],
        budget=96, batch_size=BATCH, n_init=N_INIT, seed=SEED,
    )
    print(f"{len(pareto.pareto)} non-dominated designs from "
          f"{pareto.n_simulations} simulations:")
    for point in sorted(pareto.pareto, key=lambda p: p.scores[0]):
        cpi, p99 = point.scores
        print(f"  mean CPI {cpi:.3f} | p99 power {p99:6.2f} W | "
              f"fetch {point.config.fetch_width}, "
              f"L2 {point.config.l2_size_kb} KB")


if __name__ == "__main__":
    main()
