#!/usr/bin/env python
"""Compare the two simulation backends on the same workloads.

The design-space sweeps run a fast first-order interval model; the
detailed cycle-level out-of-order pipeline is the reference it is
validated against.  This example runs both on contrasting machine
configurations and checks that they agree on *directional* questions —
which config is faster, which burns more power — which is what the
predictive-modelling methodology needs from its substrate.

Run:  python examples/detailed_vs_fast.py
"""

import time

import repro
from repro.uarch.params import MachineConfig


def main():
    weak = MachineConfig(fetch_width=2, rob_size=96, iq_size=32, lsq_size=16,
                         l2_size_kb=256, l2_latency=20, il1_size_kb=8,
                         dl1_size_kb=8, dl1_latency=4)
    strong = MachineConfig(fetch_width=16, rob_size=160, iq_size=128,
                           lsq_size=64, l2_size_kb=4096, l2_latency=8,
                           il1_size_kb=64, dl1_size_kb=64, dl1_latency=1)
    configs = {"weak": weak, "baseline": repro.baseline_config(),
               "strong": strong}

    interval = repro.Simulator(backend="interval", noise=False)
    detailed = repro.Simulator(backend="detailed")

    print(f"{'bench':8s} {'config':>9s} | {'CPI int':>8s} {'CPI det':>8s} | "
          f"{'P int':>7s} {'P det':>7s}")
    agree = checks = 0
    for bench in ("gcc", "mcf", "swim"):
        means = {}
        for label, cfg in configs.items():
            t0 = time.time()
            r_i = interval.run(bench, cfg, n_samples=32)
            t_int = time.time() - t0
            t0 = time.time()
            r_d = detailed.run(bench, cfg, n_samples=16,
                               instructions_per_sample=400)
            t_det = time.time() - t0
            means[label] = (r_i.aggregate("cpi"), r_d.aggregate("cpi"),
                            r_i.aggregate("power"), r_d.aggregate("power"))
            ci, cd, pi, pd = means[label]
            print(f"{bench:8s} {label:>9s} | {ci:8.2f} {cd:8.2f} | "
                  f"{pi:7.1f} {pd:7.1f}   "
                  f"({1000*t_int:.0f} ms vs {1000*t_det:.0f} ms)")
        for a, b in (("weak", "baseline"), ("baseline", "strong")):
            checks += 2
            agree += int((means[a][0] > means[b][0])
                         == (means[a][1] > means[b][1]))
            agree += int((means[a][2] < means[b][2])
                         == (means[a][3] < means[b][3]))
    print(f"\ndirectional agreement: {agree}/{checks} "
          f"(CPI and power orderings across config pairs)")


if __name__ == "__main__":
    main()
