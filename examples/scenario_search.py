#!/usr/bin/env python
"""Scenario-constrained design-space search from predicted dynamics.

The end-game of the paper's methodology: with dynamics models trained on
a few hundred simulations, evaluate *scenario-aware* design questions
over thousands of configurations in seconds — questions that aggregate
models cannot even express, because they constrain the predicted
*trajectory* (worst-case power, AVF ceilings), not just the mean.

Here: find the fastest gcc configuration whose predicted power never
exceeds a budget and whose predicted IQ AVF trace never crosses a
reliability ceiling.

Run:  python examples/scenario_search.py
"""

import numpy as np

import repro
from repro.dse.explorer import Constraint, Objective, PredictiveExplorer


def main():
    space = repro.paper_design_space()
    print("== Train dynamics models on one 200-run sweep ==")
    runner = repro.SweepRunner()
    plan = repro.SweepPlan(space=space, n_train=200, n_test=20, seed=0)
    train, _ = runner.run_train_test("gcc", plan)
    models = {}
    for domain in ("cpi", "power", "iq_avf"):
        models[domain] = repro.WaveletNeuralPredictor(
            n_coefficients=16).fit(train.design_matrix(),
                                   train.domain(domain))
    explorer = PredictiveExplorer(space, models)

    objective = Objective("cpi", "mean")
    for budget in (120.0, 70.0, 45.0):
        constraints = (
            Constraint("power", "max", "<=", budget),
            Constraint("iq_avf", "p95", "<=", 0.45),
        )
        result = explorer.search(objective, constraints,
                                 limit=4000, seed=1)
        print(f"\n== {objective.describe()} s.t. "
              f"{', '.join(c.describe() for c in constraints)} ==")
        print(f"evaluated {result.n_evaluated} configurations, "
              f"{result.n_feasible} feasible "
              f"({100 * result.feasible_fraction:.1f}%)")
        if result.best_config is None:
            print("no feasible configuration — the constraints are too tight")
            continue
        print(f"best predicted mean CPI: {result.best_score:.3f}")
        print(result.best_config.describe())

    print("\n== One-parameter sensitivity from the model (no simulation) ==")
    for value, cpi in explorer.sensitivity(repro.baseline_config(),
                                           "l2_size_kb", "cpi"):
        print(f"  L2 {int(value):5d} KB -> predicted mean CPI {cpi:.3f}")


if __name__ == "__main__":
    main()
