#!/usr/bin/env python
"""A tour of the wavelet machinery (the paper's Section 2 background).

* verifies the paper's Figure 2 worked Haar example;
* shows multiresolution approximations of a simulated gcc trace;
* rebuilds the trace from growing coefficient subsets (Figure 4);
* compares magnitude- vs order-based coefficient selection (Section 3).

Run:  python examples/wavelet_tour.py
"""

import numpy as np

import repro
from repro.analysis.render import sparkline
from repro.core.selection import energy_captured, select_coefficients
from repro.core.wavelets import MultiresolutionAnalysis


def main():
    print("== Figure 2 worked example ==")
    data = [3, 4, 20, 25, 15, 5, 20, 3]
    coeffs = repro.haar_dwt(data)
    print(f"data:         {data}")
    print(f"coefficients: {coeffs.tolist()}")
    assert coeffs.tolist() == [11.875, 1.125, -9.5, -0.75, -0.5, -2.5, 5.0, 8.5]
    print(f"inverse restores data: "
          f"{np.allclose(repro.haar_idwt(coeffs), data)}")

    print("\n== Multiresolution view of gcc (64 samples) ==")
    trace = repro.Simulator().run("gcc", repro.baseline_config(), 64).trace("ipc")
    mra = MultiresolutionAnalysis(trace)
    for scale in (1, 3, 5):
        approx = mra.approximation_at(scale)
        print(f"scale {scale} ({approx.size:3d} points) |{sparkline(approx)}|")

    print("\n== Figure 4: reconstruction from k coefficients ==")
    for k in (1, 2, 4, 8, 16, 64):
        approx = mra.reconstruct(range(k))
        err = float(np.mean((approx - trace) ** 2))
        print(f"k={k:2d}  mse={err:9.5f}  |{sparkline(approx)}|")

    print("\n== Magnitude vs order selection (Section 3) ==")
    for k in (4, 8, 16):
        e_mag = energy_captured(mra.coefficients, k, "magnitude")
        e_ord = energy_captured(mra.coefficients, k, "order")
        idx, _ = select_coefficients(mra.coefficients, k, "magnitude")
        print(f"k={k:2d}: magnitude captures {100*e_mag:5.1f}% of energy "
              f"(order: {100*e_ord:5.1f}%), indices {idx.tolist()}")


if __name__ == "__main__":
    main()
