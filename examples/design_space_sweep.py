#!/usr/bin/env python
"""Design-space exploration: which parameters drive workload dynamics?

Reproduces the paper's Figure 11 analysis for a memory-bound and a
compute-bound benchmark: sample the space with low-discrepancy LHS,
fit per-domain dynamics models, and rank the nine microarchitecture
parameters by their regression-tree split order and split frequency.

Run:  python examples/design_space_sweep.py
"""

import numpy as np

import repro
from repro.analysis.render import render_star
from repro.dse.importance import importance_star
from repro.dse.lhs import best_lhs_matrix, l2_star_discrepancy, latin_hypercube


def main():
    space = repro.paper_design_space()

    print("== Low-discrepancy sampling (Section 3) ==")
    naive = latin_hypercube(200, space.n_parameters, seed=7)
    best = best_lhs_matrix(200, space.n_parameters, n_matrices=20, seed=7)
    print(f"single LHS matrix   L2-star discrepancy: "
          f"{l2_star_discrepancy(naive):.5f}")
    print(f"best of 20 matrices L2-star discrepancy: "
          f"{l2_star_discrepancy(best):.5f}")

    runner = repro.SweepRunner()
    for bench in ("mcf", "crafty"):
        print(f"\n== {bench}: parameter roles per domain (Figure 11) ==")
        train, _ = runner.run_train_test(bench)
        for domain in ("cpi", "power", "avf"):
            model = repro.WaveletNeuralPredictor(n_coefficients=16)
            model.fit(train.design_matrix(), train.domain(domain))
            star = importance_star(model, space.names, bench, domain,
                                   measure="frequency")
            print(f"\n{bench} / {domain} — split frequency "
                  f"(top: {', '.join(star.top_parameters(3))})")
            print(render_star(star.as_dict()))


if __name__ == "__main__":
    main()
