#!/usr/bin/env python
"""DVM case study: forecast soft-error management outcomes (Section 5).

Reproduces the paper's workflow for scenario-driven architecture
optimization: treat Dynamic Vulnerability Management as a tenth design
parameter, train an IQ-AVF dynamics model over the extended space, and
use it to forecast — without new simulations — whether the DVM policy
will keep IQ AVF under its target for any candidate configuration.

Run:  python examples/dvm_exploration.py
"""

import numpy as np

import repro
from repro.analysis.render import render_trace_pair
from repro.core.metrics import threshold_violation_fraction
from repro.dse.runner import SweepPlan, SweepRunner

DVM_TARGET = 0.3


def main():
    space = repro.paper_design_space().with_dvm_parameter()
    print(f"design space extended with DVM: {space.n_parameters} parameters")

    runner = SweepRunner()
    plan = SweepPlan(space=space, n_train=200, n_test=50, seed=0)
    train, test = runner.run_train_test("gcc", plan)

    model = repro.WaveletNeuralPredictor(n_coefficients=16)
    model.fit(train.design_matrix(), train.domain("iq_avf"))

    predicted = model.predict(test.design_matrix())
    actual = test.domain("iq_avf")

    print(f"\nForecasting DVM-target compliance (target IQ AVF < {DVM_TARGET}):")
    print(f"{'cfg':>4s} {'dvm':>4s} {'sim viol%':>10s} {'pred viol%':>11s} "
          f"{'sim says':>16s} {'model says':>16s}")
    correct = 0
    dvm_rows = []
    for i, cfg in enumerate(test.configs):
        if not cfg.dvm_enabled:
            continue
        vs = threshold_violation_fraction(actual[i], DVM_TARGET)
        vp = threshold_violation_fraction(predicted[i], DVM_TARGET)
        sim_ok, pred_ok = vs <= 0.05, vp <= 0.05
        correct += int(sim_ok == pred_ok)
        dvm_rows.append(i)
        print(f"{i:4d} {'on':>4s} {100*vs:10.1f} {100*vp:11.1f} "
              f"{'meets target' if sim_ok else 'VIOLATES':>16s} "
              f"{'meets target' if pred_ok else 'VIOLATES':>16s}")
    print(f"\nmodel forecast the DVM outcome correctly for "
          f"{correct}/{len(dvm_rows)} configurations")

    # Show the clearest success and failure, like the paper's Figure 17.
    viol = [(i, threshold_violation_fraction(actual[i], DVM_TARGET))
            for i in dvm_rows]
    success = min(viol, key=lambda t: t[1])[0]
    failure = max(viol, key=lambda t: t[1])[0]
    for label, idx in (("scenario 1 — DVM succeeds", success),
                       ("scenario 2 — DVM fails", failure)):
        print(f"\n{label} (test config {idx}):")
        print(render_trace_pair(actual[idx], predicted[idx], "IQ AVF"))


if __name__ == "__main__":
    main()
