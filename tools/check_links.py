#!/usr/bin/env python
"""Offline markdown link checker for the docs CI job.

Checks every ``[text](target)`` and reference-style link in the given
markdown files:

* **relative links** must point at an existing file or directory
  (resolved against the linking file's location), and a ``#fragment``
  on a markdown target must match a heading in that file;
* **bare fragments** (``#section``) must match a heading in the same
  file;
* **external links** (``http(s)://``, ``mailto:``) are *not* fetched —
  CI must stay offline-deterministic — but obviously malformed ones
  (whitespace, empty host) fail.

Headings are slugified the way GitHub does (lowercase, spaces to
hyphens, punctuation dropped), which is what both GitHub and most
renderers generate anchors from.

Usage: ``python tools/check_links.py README.md docs/*.md``
Exits non-zero listing every broken link.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Tuple

INLINE_LINK = re.compile(r"(?<!\!)\[(?:[^\]]*)\]\(([^)\s]+(?:\s+\"[^\"]*\")?)\)")
IMAGE_LINK = re.compile(r"\!\[(?:[^\]]*)\]\(([^)\s]+)\)")
REFERENCE_DEF = re.compile(r"^\s*\[([^\]]+)\]:\s*(\S+)", re.MULTILINE)
HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$", re.MULTILINE)
CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)       # inline code
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set:
    text = path.read_text(encoding="utf-8")
    text = CODE_FENCE.sub("", text)
    slugs: dict = {}
    out = set()
    for match in HEADING.finditer(text):
        slug = github_slug(match.group(2))
        count = slugs.get(slug, 0)
        slugs[slug] = count + 1
        out.add(slug if count == 0 else f"{slug}-{count}")
    return out


def check_file(path: Path) -> List[Tuple[str, str]]:
    """Return ``(target, problem)`` pairs for every broken link."""
    text = path.read_text(encoding="utf-8")
    stripped = CODE_FENCE.sub("", text)
    targets = [m.group(1) for m in INLINE_LINK.finditer(stripped)]
    targets += [m.group(1) for m in IMAGE_LINK.finditer(stripped)]
    targets += [m.group(2) for m in REFERENCE_DEF.finditer(stripped)]
    problems: List[Tuple[str, str]] = []
    for raw in targets:
        target = raw.split(' "')[0].strip()
        if not target:
            problems.append((raw, "empty link target"))
            continue
        if target.startswith(("http://", "https://")):
            if re.match(r"https?://[^\s/]+\.[^\s/]+", target) is None:
                problems.append((target, "malformed external URL"))
            continue
        if target.startswith("mailto:"):
            continue
        if target.startswith("#"):
            if target[1:].lower() not in anchors_of(path):
                problems.append((target, "no such heading in this file"))
            continue
        file_part, _, fragment = target.partition("#")
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            problems.append((target, f"missing file {file_part}"))
            continue
        if fragment:
            if resolved.suffix.lower() not in (".md", ".markdown"):
                continue
            if fragment.lower() not in anchors_of(resolved):
                problems.append(
                    (target, f"no heading #{fragment} in {file_part}"))
    return problems


def main(argv: List[str]) -> int:
    if not argv:
        print("usage: check_links.py FILE.md [FILE.md ...]",
              file=sys.stderr)
        return 2
    broken = 0
    checked = 0
    for name in argv:
        path = Path(name)
        if not path.exists():
            print(f"{name}: file not found", file=sys.stderr)
            broken += 1
            continue
        checked += 1
        for target, problem in check_file(path):
            print(f"{name}: broken link {target!r}: {problem}",
                  file=sys.stderr)
            broken += 1
    print(f"check_links: {checked} file(s) checked, {broken} problem(s)")
    return 1 if broken else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
