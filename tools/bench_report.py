"""Collate every ``BENCH_*.json`` into one summary and gate regressions.

The benchmarks each write a small schema'd JSON record (CI artifacts);
nothing read them across PRs until now.  This tool is the first cut of
ROADMAP's perf-regression tracking: it discovers all ``BENCH_*.json``
files in a directory, re-checks each record against the same pinned
thresholds its benchmark enforces (so a stale or hand-edited record
cannot sneak past CI), writes one ``BENCH_SUMMARY.json``, and exits
non-zero when any pinned metric has regressed.

Conditional floors stay conditional: speedup floors gated on numba in
the benchmark (``min_speedup_enforced`` / ``numba_available``) are only
enforced here when the record says the floor applied.  Missing files
are reported as skipped, not failed — every CI leg runs a subset of the
benchmarks.

Usage::

    python tools/bench_report.py [--dir DIR] [--out BENCH_SUMMARY.json]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Benchmark records the report knows how to gate, by their ``bench``
#: field.  Records without an entry are collated but not checked.
KNOWN_BENCHES = (
    "kernel", "detailed_kernel", "detailed_backend", "shm_transport",
    "streaming_sweep", "remote_executor", "active_dse",
)


def _check(checks, name, ok, detail):
    checks.append({"check": name, "ok": bool(ok), "detail": detail})


def _check_kernel(record, checks):
    floor = record.get("min_speedup", 10.0)
    speedup = record.get("speedup", 0.0)
    _check(checks, "kernel.speedup", speedup >= floor,
           f"{speedup}x (floor {floor}x)")
    _check(checks, "kernel.bit_identical",
           record.get("rows_bit_identical") is True,
           "batch rows == scalar runs")
    if record.get("jit_available"):
        _check(checks, "kernel.jit_bit_identical",
               record.get("jit_bit_identical") is True,
               "JIT scan == NumPy scan")


def _check_detailed_kernel(record, checks):
    floor = record.get("min_speedup_enforced")
    if floor is not None:
        speedup = record.get("speedup", 0.0)
        _check(checks, "detailed_kernel.speedup", speedup >= floor,
               f"{speedup}x compiled-vs-interpreter (floor {floor}x)")
    for key in ("bit_identical_fresh", "bit_identical_resumed"):
        _check(checks, f"detailed_kernel.{key}", record.get(key) is True,
               "kernel == interpreter streams")
    batched = record.get("batched")
    if batched is None:
        return
    _check(checks, "detailed_kernel.batched.bit_identical",
           batched.get("bit_identical") is True,
           "batched == per-job scalar streams")
    floor = batched.get("min_speedup_enforced")
    if floor is not None:
        for key in ("speedup", "resumed_speedup"):
            value = batched.get(key, 0.0)
            _check(checks, f"detailed_kernel.batched.{key}", value >= floor,
                   f"{value}x batched-vs-scalar (floor {floor}x, "
                   f"B={batched.get('batch_size')})")


def _check_detailed_backend(record, checks):
    _check(checks, "detailed_backend.bit_identical",
           record.get("bit_identical") is True,
           "SIGKILL-resumed run == clean run")
    coarse = record.get("chunk_interval", 0)
    fine = record.get("chunk_detailed", 1)
    _check(checks, "detailed_backend.chunk_ratio", coarse >= 8 * fine,
           f"interval chunks {coarse} vs detailed {fine} (>= 8x)")


def _check_shm_transport(record, checks):
    speedup = record.get("transport_speedup", 0.0)
    _check(checks, "shm_transport.speedup", speedup >= 2.0,
           f"{speedup}x vs pickle (floor 2x)")
    _check(checks, "shm_transport.bit_identical",
           record.get("bit_identical") is True, "shm == pickle results")


def _check_streaming_sweep(record, checks):
    _check(checks, "streaming_sweep.bit_identical",
           record.get("bit_identical") is True,
           "streaming == serial sweep results")


def _check_remote_executor(record, checks):
    overhead = record.get("dispatch_overhead", 1.0)
    ceiling = record.get("max_overhead", 0.15)
    _check(checks, "remote_executor.dispatch_overhead", overhead <= ceiling,
           f"{overhead * 100:.1f}% loopback overhead "
           f"(ceiling {ceiling * 100:.0f}%)")


def _check_active_dse(record, checks):
    fraction = record.get("active_budget_fraction", 1.0)
    _check(checks, "active_dse.budget_fraction", fraction <= 0.5,
           f"reached the LHS target in {fraction * 100:.0f}% of the "
           f"budget (ceiling 50%)")


_CHECKERS = {
    "kernel": _check_kernel,
    "detailed_kernel": _check_detailed_kernel,
    "detailed_backend": _check_detailed_backend,
    "shm_transport": _check_shm_transport,
    "streaming_sweep": _check_streaming_sweep,
    "remote_executor": _check_remote_executor,
    "active_dse": _check_active_dse,
}


def build_summary(directory: Path) -> dict:
    """Collate + check every ``BENCH_*.json`` under ``directory``."""
    benches = {}
    checks = []
    skipped = []
    for path in sorted(directory.glob("BENCH_*.json")):
        if path.name == "BENCH_SUMMARY.json":
            continue
        try:
            record = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            _check(checks, f"{path.name}.parse", False, str(exc))
            continue
        name = record.get("bench") or path.stem[len("BENCH_"):]
        if path.name == "BENCH_pr3.json":
            # Legacy duplicate of shm_transport kept for PR-3 history;
            # collated, never gated twice.
            skipped.append({"file": path.name, "reason": "legacy alias"})
            benches[path.name] = record
            continue
        benches[path.name] = record
        checker = _CHECKERS.get(name)
        if checker is None:
            skipped.append({"file": path.name,
                            "reason": f"no checks for bench {name!r}"})
            continue
        checker(record, checks)
    for name in KNOWN_BENCHES:
        expected = f"BENCH_{name}.json"
        if expected not in benches:
            skipped.append({"file": expected, "reason": "not present"})
    failures = [c for c in checks if not c["ok"]]
    return {
        "report": "bench_summary",
        "checks_run": len(checks),
        "failures": len(failures),
        "failed_checks": failures,
        "checks": checks,
        "skipped": skipped,
        "benches": benches,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="collate BENCH_*.json and gate pinned perf metrics")
    parser.add_argument("--dir", default=".", type=Path,
                        help="directory holding BENCH_*.json (default: .)")
    parser.add_argument("--out", default="BENCH_SUMMARY.json",
                        help="summary output path (default: "
                             "BENCH_SUMMARY.json)")
    args = parser.parse_args(argv)
    summary = build_summary(args.dir)
    Path(args.out).write_text(json.dumps(summary, indent=2) + "\n")
    for entry in summary["checks"]:
        mark = "ok  " if entry["ok"] else "FAIL"
        print(f"{mark} {entry['check']}: {entry['detail']}")
    for entry in summary["skipped"]:
        print(f"skip {entry['file']}: {entry['reason']}")
    print(f"{summary['checks_run']} checks, {summary['failures']} failures "
          f"-> {args.out}")
    return 1 if summary["failures"] else 0


if __name__ == "__main__":
    sys.exit(main())
