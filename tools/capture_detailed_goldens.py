"""Capture golden sha256 digests of detailed-backend runs.

Run this against a known-good revision to (re)generate the digest table
pinned in ``tests/test_detailed_kernel.py``.  The digests cover every
stream a detailed run emits (traces + components) so any behavioural
drift in the pipeline, caches, branch predictor or DVM controller is
caught bit-for-bit.
"""

import hashlib
import json
import sys

import numpy as np

from repro.uarch.detailed import DetailedSimulator
from repro.uarch.params import MachineConfig, baseline_config

STREAMS = ("cpi", "power", "avf", "iq_avf", "mispredict_rate",
           "dvm_throttled_frac")


def digest(result) -> str:
    parts = []
    for name in STREAMS:
        arr = result.traces.get(name)
        if arr is None:
            arr = result.components[name]
        parts.append(np.ascontiguousarray(arr, dtype=np.float64).tobytes())
    return hashlib.sha256(b"".join(parts)).hexdigest()


def golden_cases():
    weak = MachineConfig(fetch_width=2, rob_size=96, iq_size=32,
                         lsq_size=16, l2_size_kb=256, l2_latency=20,
                         il1_size_kb=8, dl1_size_kb=8, dl1_latency=4)
    strong = MachineConfig(fetch_width=16, rob_size=160, iq_size=128,
                           lsq_size=64, l2_size_kb=4096, l2_latency=8,
                           il1_size_kb=64, dl1_size_kb=64, dl1_latency=1)
    return [
        ("gcc-baseline", "gcc", baseline_config()),
        ("mcf-weak", "mcf", weak),
        ("swim-strong", "swim", strong),
        ("mcf-dvm-tight", "mcf", baseline_config().with_dvm(True, 0.05)),
        ("gcc-dvm", "gcc", baseline_config().with_dvm(True, 0.3)),
    ]


def main():
    n_samples, ips = 8, 400
    table = {}
    for label, bench, config in golden_cases():
        result = DetailedSimulator(config).run(
            bench, n_samples=n_samples, instructions_per_sample=ips)
        table[label] = digest(result)
        sys.stderr.write(f"{label}: {table[label]}\n")
    json.dump({"n_samples": n_samples, "instructions_per_sample": ips,
               "digests": table}, sys.stdout, indent=2)
    sys.stdout.write("\n")


if __name__ == "__main__":
    main()
