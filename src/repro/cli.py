"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list-benchmarks``
    The twelve synthetic SPEC CPU 2000 workloads.
``list-experiments``
    Every registered paper table/figure driver and ablation.
``simulate``
    Run one (benchmark, configuration) pair and print trace summaries
    with sparklines.
``run-experiment``
    Execute one experiment driver and print its tables.
``sweep``
    Run a train/test design-space sweep through the execution engine
    (optionally parallel and cached) and report timing.
``dse``
    Search the design space against scenario criteria: a one-shot
    predictive search over a fixed LHS training sample, or — with
    ``--active`` — the closed-loop active-learning search whose model
    uncertainty picks each next simulation batch (``--budget``,
    ``--batch-size``, ``--strategy``, ``--seed``).
``cache``
    Inspect (``stats``), garbage-collect (``gc``) or empty (``clear``)
    the on-disk simulation result cache.
``worker serve``
    Serve simulation chunks to remote dispatchers over TCP — the
    receiving end of ``--hosts`` / ``REPRO_HOSTS`` distributed sweeps.
``simpoint``
    Representative-interval selection for a benchmark.

The ``--jobs N`` / ``--cache-dir DIR`` / ``--cache-max-bytes N`` /
``--hosts LIST`` flags (on ``run-experiment`` and ``sweep``) select the
execution engine's worker-process count, on-disk result cache and
remote worker fleet; they mirror the ``REPRO_JOBS`` /
``REPRO_CACHE_DIR`` / ``REPRO_CACHE_MAX_BYTES`` / ``REPRO_HOSTS``
environment variables honoured by the library.  ``--shm/--no-shm``
toggles the zero-copy shared-memory result transport (``REPRO_SHM``),
``--checkpoint-every N`` enables detailed-backend mid-run snapshots,
``--jit/--no-jit`` toggles numba compilation of the hot loops — the
interval kernel's persistence scan and the detailed pipeline kernel
(``REPRO_JIT``; a silent bit-identical pure-Python fallback covers
numba-less installs), ``--jit-threads N`` lets the batched detailed
kernel ``prange`` across N threads (``REPRO_JIT_THREADS``; bit-identical
at any count), and ``--progress`` prints a running jobs-done /
cache-hit count while long sweeps execute.

All flags are threaded through engine and job objects — a CLI run
never mutates ``os.environ``, so embedding callers that invoke
:func:`main` repeatedly see their environment untouched.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.uarch.params import VARIED_PARAMETERS


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Workload-dynamics-aware microarchitecture DSE "
                    "(MICRO 2007 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-benchmarks", help="list the synthetic workloads")
    sub.add_parser("list-experiments", help="list paper-figure experiments")

    sim = sub.add_parser("simulate", help="simulate one benchmark/config")
    sim.add_argument("benchmark")
    sim.add_argument("--samples", type=int, default=128)
    sim.add_argument("--backend", choices=("interval", "detailed"),
                     default="interval")
    sim.add_argument("--dvm", action="store_true",
                     help="enable dynamic vulnerability management")
    sim.add_argument("--dvm-threshold", type=float, default=0.3)
    for name in VARIED_PARAMETERS:
        sim.add_argument(f"--{name.replace('_', '-')}", type=int,
                         default=None, dest=name)

    exp = sub.add_parser("run-experiment", help="run one experiment driver")
    exp.add_argument("experiment_id")
    exp.add_argument("--scale", choices=("paper", "quick"), default="quick")
    _add_engine_arguments(exp)

    sweep = sub.add_parser(
        "sweep", help="run a design-space sweep through the engine")
    sweep.add_argument("benchmark")
    sweep.add_argument("--n-train", type=int, default=200)
    sweep.add_argument("--n-test", type=int, default=50)
    sweep.add_argument("--samples", type=int, default=128)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--out", default=None, metavar="PREFIX",
                       help="save datasets to PREFIX.train.npz / PREFIX.test.npz")
    _add_engine_arguments(sweep)

    dse = sub.add_parser(
        "dse", help="search the design space against scenario criteria")
    dse.add_argument("benchmark")
    dse.add_argument("--objective", action="append", default=None,
                     metavar="DOMAIN:REDUCER[:max]",
                     help="objective term, e.g. cpi:mean (default) or "
                          "power:p99; append ':max' to maximize; repeat "
                          "for multi-objective Pareto search")
    dse.add_argument("--constraint", action="append", default=None,
                     metavar="DOMAIN:REDUCER<=BOUND",
                     help="scenario constraint, e.g. 'power:max<=100' or "
                          "'cpi:min>=0.5'; repeatable")
    dse.add_argument("--samples", type=int, default=128,
                     help="trace resolution per simulation")
    dse.add_argument("--seed", type=int, default=0)
    dse.add_argument("--active", action="store_true",
                     help="closed-loop active learning: ensemble "
                          "uncertainty picks each next simulation batch "
                          "instead of a fixed up-front LHS sample")
    dse.add_argument("--budget", type=int, default=None,
                     help="total simulation budget for --active "
                          "(default: 160)")
    dse.add_argument("--batch-size", type=int, default=None,
                     help="simulations per acquisition round (--active; "
                          "default: 16)")
    dse.add_argument("--n-init", type=int, default=None,
                     help="initial LHS design size (--active; default: 40)")
    dse.add_argument("--strategy", choices=("ei", "ucb", "max_variance"),
                     default=None,
                     help="acquisition strategy (--active; default: ei)")
    dse.add_argument("--n-train", type=int, default=None,
                     help="fixed LHS training sample (without --active; "
                          "default: 200)")
    dse.add_argument("--limit", type=int, default=None,
                     help="predictive-search candidate budget (without "
                          "--active; default: 4096)")
    _add_engine_arguments(dse)

    cache = sub.add_parser(
        "cache", help="inspect / garbage-collect the result cache")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_sub.add_parser(
        "stats", help="entry / byte counts for the cache directory")
    cache_gc = cache_sub.add_parser(
        "gc", help="drop stale-version entries and shrink to a byte target")
    cache_gc.add_argument("--max-bytes", type=int, default=None, metavar="N",
                          help="evict oldest entries (by mtime) until the "
                               "cache holds at most N bytes")
    cache_gc.add_argument("--checkpoint-ttl-hours", type=float, default=168.0,
                          metavar="H",
                          help="also sweep checkpoint snapshots older than H "
                               "hours (plus stale-version and corrupt ones; "
                               "default: 168 = 7 days)")
    cache_clear = cache_sub.add_parser(
        "clear", help="remove every cached simulation result")
    for sub_parser in (cache_stats, cache_gc, cache_clear):
        sub_parser.add_argument("--cache-dir", default=None, metavar="DIR",
                                help="cache directory (default: "
                                     "REPRO_CACHE_DIR)")

    worker = sub.add_parser(
        "worker", help="remote-execution worker management")
    worker_sub = worker.add_subparsers(dest="worker_command", required=True)
    serve = worker_sub.add_parser(
        "serve", help="serve simulation chunks to dispatchers over TCP")
    serve.add_argument("--host", default="0.0.0.0",
                       help="bind address (default: all interfaces)")
    serve.add_argument("--port", type=int, default=None,
                       help="TCP port (default: 7821; 0 picks a free "
                            "port, printed on startup)")
    serve.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="simulation processes / advertised capacity "
                            "(default: CPU count)")

    sp = sub.add_parser("simpoint", help="pick a representative interval")
    sp.add_argument("benchmark")
    sp.add_argument("--intervals", type=int, default=64)
    return parser


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for sweep execution "
                             "(default: in-process)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="on-disk simulation result cache directory")
    parser.add_argument("--cache-max-bytes", type=int, default=None,
                        metavar="N",
                        help="byte cap for the disk cache (mtime-LRU "
                             "eviction)")
    parser.add_argument("--progress", action="store_true",
                        help="print jobs-done / cache-hit progress during "
                             "sweeps")
    parser.add_argument("--shm", action=argparse.BooleanOptionalAction,
                        default=None,
                        help="zero-copy shared-memory result transport for "
                             "parallel sweeps (default: on; REPRO_SHM)")
    parser.add_argument("--checkpoint-every", type=int, default=None,
                        metavar="N",
                        help="detailed backend: snapshot simulation state "
                             "every N intervals so killed sweeps resume "
                             "mid-benchmark (REPRO_CHECKPOINT_EVERY)")
    parser.add_argument("--hosts", default=None, metavar="LIST",
                        help="comma-separated host:port remote workers "
                             "(repro worker serve); dispatches sweep "
                             "chunks to them instead of local processes "
                             "(REPRO_HOSTS)")
    parser.add_argument("--jit", action=argparse.BooleanOptionalAction,
                        default=None,
                        help="numba-compile the hot loops: the interval "
                             "kernel's persistence scan and the detailed "
                             "pipeline kernel (default: off; REPRO_JIT; "
                             "silently falls back to the bit-identical "
                             "pure-Python engines when numba is "
                             "unavailable)")
    parser.add_argument("--jit-threads", type=int, default=None,
                        metavar="N",
                        help="threads the batched detailed kernel prange-s "
                             "across (default: 1; REPRO_JIT_THREADS; "
                             "bit-identical at any count — batch rows are "
                             "independent, so this is a speed knob only)")


def _cmd_list_benchmarks(out) -> int:
    from repro.workloads.spec2000 import list_benchmarks

    for model in list_benchmarks():
        out.write(f"{model.name:10s} {model.n_phases} phases  "
                  f"{model.description}\n")
    return 0


def _cmd_list_experiments(out) -> int:
    from repro.experiments import get_experiment, list_experiments

    for eid in list_experiments():
        reg = get_experiment(eid)
        out.write(f"{eid:15s} {reg.paper_reference:12s} {reg.title}\n")
    return 0


def _cmd_simulate(args, out) -> int:
    from repro.analysis.render import sparkline
    from repro.uarch.params import baseline_config
    from repro.uarch.simulator import Simulator

    overrides = {name: getattr(args, name) for name in VARIED_PARAMETERS
                 if getattr(args, name) is not None}
    config = baseline_config(**overrides)
    if args.dvm:
        config = config.with_dvm(True, args.dvm_threshold)
    sim = Simulator(backend=args.backend)
    result = sim.run(args.benchmark, config, n_samples=args.samples)
    out.write(f"{args.benchmark} on:\n{config.describe()}\n\n")
    for domain in ("cpi", "power", "avf", "iq_avf"):
        trace = result.trace(domain)
        out.write(f"{domain:>7s} mean {trace.mean():8.3f}  "
                  f"[{trace.min():8.3f}, {trace.max():8.3f}]  "
                  f"|{sparkline(trace[:96])}|\n")
    return 0


def _progress_printer(out, every: int = 25):
    """An engine ``on_result`` callback printing periodic progress lines."""
    state = {"done": 0, "hits": 0}

    def on_result(index, job, result, from_cache):
        state["done"] += 1
        state["hits"] += int(from_cache)
        if state["done"] % every == 0:
            out.write(f"progress: {state['done']} jobs done "
                      f"({state['hits']} cache hits)\n")

    return on_result


def _make_engine(args, out=None):
    from repro.experiments.context import engine_from_env

    # The JIT toggle is module state (set_jit), not an environment
    # mutation — forked pool workers inherit it, and either way the
    # NumPy and JIT scans are bit-identical, so a worker resolving the
    # flag differently can only differ in speed.
    if getattr(args, "jit", None) is not None:
        from repro.uarch.jit import set_jit

        set_jit(args.jit)
    if getattr(args, "jit_threads", None) is not None:
        from repro.uarch.jit import set_jit_threads

        set_jit_threads(args.jit_threads)
    on_result = None
    if getattr(args, "progress", False):
        on_result = _progress_printer(out or sys.stdout)
    # Checkpoint settings are threaded through the engine onto the jobs
    # themselves (pickled to pool workers and remote hosts alike), so a
    # CLI invocation never leaks REPRO_* variables into the parent
    # process.  Flags win (--checkpoint-every 0 disables even when the
    # environment enables); unset flags fall back to the environment,
    # resolved by engine_from_env against the effective cache dir.
    return engine_from_env(jobs=args.jobs, cache_dir=args.cache_dir,
                           cache_max_bytes=args.cache_max_bytes,
                           on_result=on_result,
                           shm=getattr(args, "shm", None),
                           hosts=getattr(args, "hosts", None),
                           checkpoint_every=getattr(args, "checkpoint_every",
                                                    None))


def _cmd_run_experiment(args, out) -> int:
    from repro.experiments import run_experiment
    from repro.experiments.context import ExperimentContext, Scale

    scale = Scale.paper() if args.scale == "paper" else Scale.quick()
    ctx = ExperimentContext(scale, engine=_make_engine(args, out))
    result = run_experiment(args.experiment_id, ctx)
    out.write(result.render() + "\n")
    return 0


def _cmd_sweep(args, out) -> int:
    import time

    from repro.dse.runner import SweepPlan, SweepRunner
    from repro.dse.space import paper_design_space

    engine = _make_engine(args, out)
    plan = SweepPlan(space=paper_design_space(), n_train=args.n_train,
                     n_test=args.n_test, seed=args.seed)
    runner = SweepRunner(n_samples=args.samples, engine=engine)
    start = time.perf_counter()
    train, test = runner.run_train_test(args.benchmark, plan)
    elapsed = time.perf_counter() - start
    n_runs = train.n_configs + test.n_configs
    hosts = getattr(engine.executor, "hosts", None)
    if hosts:
        where = f"{len(hosts)} remote host(s)"
    else:
        where = f"{getattr(engine.executor, 'max_workers', 1)} worker(s)"
    out.write(f"{args.benchmark}: {n_runs} simulations "
              f"({train.n_configs} train + {test.n_configs} test, "
              f"{args.samples} samples) in {elapsed:.2f}s "
              f"[{where}]\n")
    if engine.cache is not None:
        out.write(f"cache: {engine.cache.stats.describe()}\n")
    if args.out:
        train.save(f"{args.out}.train.npz")
        test.save(f"{args.out}.test.npz")
        out.write(f"saved {args.out}.train.npz and {args.out}.test.npz\n")
    return 0


def _parse_objective(spec: str):
    from repro.dse.explorer import Objective
    from repro.errors import ModelError

    parts = spec.split(":")
    if not 1 <= len(parts) <= 3:
        raise ModelError(
            f"objective spec must be DOMAIN[:REDUCER[:max]], got {spec!r}"
        )
    maximize = False
    if len(parts) == 3:
        if parts[2] not in ("max", "maximize"):
            raise ModelError(
                f"third objective field must be 'max', got {parts[2]!r}"
            )
        maximize = True
    reducer = parts[1] if len(parts) > 1 else "mean"
    return Objective(parts[0], reducer, maximize=maximize)


def _parse_constraint(spec: str):
    from repro.dse.explorer import Constraint
    from repro.errors import ModelError

    for op in ("<=", ">="):
        if op in spec:
            left, _, bound = spec.partition(op)
            domain, _, reducer = left.partition(":")
            try:
                value = float(bound)
            except ValueError:
                raise ModelError(
                    f"constraint bound must be a number, got {bound!r}"
                ) from None
            return Constraint(domain.strip(), (reducer or "max").strip(),
                              op, value)
    raise ModelError(
        f"constraint spec must look like 'power:max<=100', got {spec!r}"
    )


def _cmd_dse(args, out) -> int:
    from repro.dse.active import ActiveSearchSettings
    from repro.dse.explorer import PredictiveExplorer
    from repro.dse.runner import SweepRunner
    from repro.dse.space import paper_design_space
    from repro.core.predictor import WaveletNeuralPredictor

    from repro.errors import ModelError

    objectives = [_parse_objective(s) for s in (args.objective or ["cpi:mean"])]
    constraints = [_parse_constraint(s) for s in (args.constraint or [])]
    if len(objectives) > 1 and not args.active:
        raise ModelError(
            "multiple --objective terms require --active (Pareto search "
            "is part of the closed-loop mode); the one-shot predictive "
            "search optimizes a single objective"
        )
    # Mode-mismatched flags fail loudly instead of being silently
    # ignored: forgetting --active with --budget 20 would otherwise run
    # a 200-simulation fixed sweep the user believed they had capped.
    active_only = ("budget", "batch_size", "n_init", "strategy")
    oneshot_only = ("n_train", "limit")
    wrong = [name for name in (oneshot_only if args.active else active_only)
             if getattr(args, name) is not None]
    if wrong:
        flags = ", ".join("--" + name.replace("_", "-") for name in wrong)
        mode = "with" if args.active else "without"
        raise ModelError(f"{flags} do(es) not apply {mode} --active")
    space = paper_design_space()
    runner = SweepRunner(n_samples=args.samples,
                         engine=_make_engine(args, out))

    if args.active:
        settings = ActiveSearchSettings(
            budget=args.budget if args.budget is not None else 160,
            batch_size=(args.batch_size if args.batch_size is not None
                        else 16),
            n_init=args.n_init if args.n_init is not None else 40,
            strategy=args.strategy or "ei", seed=args.seed)
        result = runner.run_active(
            args.benchmark,
            objectives if len(objectives) > 1 else objectives[0],
            constraints=constraints, settings=settings, space=space)
        out.write(f"{'round':>5s}  {'strategy':<12s} {'sims':>5s}  "
                  f"{'feasible':>8s}  {'best':>10s}\n")
        for record in result.rounds:
            best = ("-" if record.best_score == float("inf")
                    else f"{record.best_score:.4f}")
            out.write(f"{record.round_index:>5d}  {record.strategy:<12s} "
                      f"{record.n_simulations:>5d}  "
                      f"{record.n_feasible:>8d}  {best:>10s}\n")
        out.write("\n" + result.describe() + "\n")
        if result.pareto:
            out.write("\nPareto front (lower is better per objective):\n")
            for point in result.pareto:
                scores = ", ".join(f"{s:.4f}" for s in point.scores)
                out.write(f"  [{scores}]  "
                          f"{dict(point.config.varied_values())}\n")
        elif result.best_config is not None:
            out.write("\n" + result.best_config.describe() + "\n")
        return 0

    from repro.dse.lhs import sample_train_configs

    n_train = args.n_train if args.n_train is not None else 200
    train_cfgs = sample_train_configs(space, n_train, seed=args.seed)
    dataset = runner.run_configs(args.benchmark, train_cfgs, space)
    domains = {o.domain for o in objectives} | {c.domain for c in constraints}
    models = {
        domain: WaveletNeuralPredictor().fit(dataset.design_matrix(),
                                             dataset.domain(domain))
        for domain in domains
    }
    explorer = PredictiveExplorer(space, models)
    result = explorer.search(
        objectives[0], constraints=constraints,
        limit=args.limit if args.limit is not None else 4096,
        seed=args.seed)
    out.write(f"trained on {dataset.n_configs} simulations; evaluated "
              f"{result.n_evaluated} candidate configurations, "
              f"{result.n_feasible} feasible\n")
    if result.best_config is None:
        out.write("no feasible configuration under the constraints\n")
        return 0
    out.write(f"best predicted {objectives[0].describe()}: "
              f"{result.best_score:.4f}\n")
    out.write(result.best_config.describe() + "\n")
    return 0


def _human_bytes(n: int) -> str:
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024.0 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024.0
    raise AssertionError("unreachable")


def _cmd_cache(args, out) -> int:
    import os
    from pathlib import Path

    from repro.engine import ResultCache
    from repro.errors import EngineError

    cache_dir = args.cache_dir or os.environ.get(
        "REPRO_CACHE_DIR", "").strip() or None
    if cache_dir is None:
        raise EngineError(
            "no cache directory: pass --cache-dir or set REPRO_CACHE_DIR"
        )
    cache = ResultCache(cache_dir=cache_dir, memory_items=0)
    if args.cache_command == "stats":
        info = cache.describe()
        out.write(f"cache dir:   {info['cache_dir']}\n")
        out.write(f"key version: {info['key_version']}\n")
        out.write(f"entries:     {info['disk_entries']}\n")
        out.write(f"bytes:       {info['disk_bytes']} "
                  f"({_human_bytes(info['disk_bytes'])})\n")
        return 0
    if args.cache_command == "gc":
        from repro.uarch.detailed import sweep_checkpoints

        stale_entries, stale_bytes = cache.gc_versions()
        out.write(f"stale versions: removed {stale_entries} entries "
                  f"({_human_bytes(stale_bytes)})\n")
        if args.max_bytes is not None:
            entries, freed = cache.gc(max_bytes=args.max_bytes)
            out.write(f"size gc: removed {entries} entries "
                      f"({_human_bytes(freed)}), "
                      f"{_human_bytes(cache.disk_bytes())} retained\n")
        # Orphaned detailed-run snapshots: the cache's checkpoint
        # subdirectory, plus an explicit REPRO_CHECKPOINT_DIR if it
        # points elsewhere.
        ttl = args.checkpoint_ttl_hours * 3600.0
        ckpt_dirs = [str(Path(cache_dir) / "checkpoints")]
        env_dir = os.environ.get("REPRO_CHECKPOINT_DIR", "").strip()
        if env_dir and env_dir not in ckpt_dirs:
            ckpt_dirs.append(env_dir)
        ckpt_files = ckpt_bytes = 0
        for directory in ckpt_dirs:
            files, freed = sweep_checkpoints(directory, ttl_seconds=ttl)
            ckpt_files += files
            ckpt_bytes += freed
        out.write(f"checkpoints: removed {ckpt_files} snapshots "
                  f"({_human_bytes(ckpt_bytes)})\n")
        return 0
    if args.cache_command == "clear":
        removed = cache.clear()
        out.write(f"cleared {removed} entries from {cache_dir}\n")
        return 0
    raise AssertionError(f"unhandled cache command {args.cache_command!r}")


def _cmd_worker(args, out) -> int:
    import os

    from repro.engine.remote import DEFAULT_PORT, WorkerServer

    if args.worker_command != "serve":
        raise AssertionError(
            f"unhandled worker command {args.worker_command!r}")
    port = DEFAULT_PORT if args.port is None else args.port
    server = WorkerServer(host=args.host, port=port, max_workers=args.jobs)
    if (not os.environ.get("REPRO_AUTHKEY", "")
            and not args.host.startswith("127.")
            and args.host != "localhost"):
        out.write("repro worker: WARNING: serving beyond loopback with the "
                  "built-in default authkey; anyone who can reach this port "
                  "can submit jobs.  Set REPRO_AUTHKEY (identically on the "
                  "dispatcher) on untrusted networks.\n")
    # The bound address is printed (and flushed) before serving so
    # orchestration scripts using --port 0 can scrape the chosen port.
    out.write(f"repro worker: serving on {server.host}:{server.port} "
              f"({server.max_workers} worker(s))\n")
    if hasattr(out, "flush"):
        out.flush()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
    return 0


def _cmd_simpoint(args, out) -> int:
    from repro.workloads.simpoint import pick_simpoint
    from repro.workloads.spec2000 import get_benchmark

    result = pick_simpoint(get_benchmark(args.benchmark),
                           n_intervals=args.intervals)
    out.write(f"{args.benchmark}: representative interval "
              f"{result.representative_interval} of {args.intervals} "
              f"({result.n_clusters} phases, dominant cluster weight "
              f"{result.cluster_weights[result.dominant_cluster]:.2f})\n")
    return 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns a process exit code.

    Never mutates ``os.environ``: every flag is threaded through engine
    and job objects, so embedding callers can invoke :func:`main`
    repeatedly without inheriting stale ``REPRO_*`` settings.
    """
    out = out or sys.stdout
    args = _build_parser().parse_args(argv)
    if args.command == "list-benchmarks":
        return _cmd_list_benchmarks(out)
    if args.command == "list-experiments":
        return _cmd_list_experiments(out)
    if args.command == "simulate":
        return _cmd_simulate(args, out)
    if args.command == "run-experiment":
        return _cmd_run_experiment(args, out)
    if args.command == "sweep":
        return _cmd_sweep(args, out)
    if args.command == "dse":
        return _cmd_dse(args, out)
    if args.command == "cache":
        return _cmd_cache(args, out)
    if args.command == "worker":
        return _cmd_worker(args, out)
    if args.command == "simpoint":
        return _cmd_simpoint(args, out)
    raise AssertionError(f"unhandled command {args.command!r}")
