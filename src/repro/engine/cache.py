"""Result cache: npz-per-job on disk with an in-memory LRU front.

Repeated experiment and figure runs re-simulate the exact same
(benchmark, configuration) grid; with a :class:`ResultCache` attached to
the engine every repeat becomes a lookup.  Entries are named by the
job's content-hash key (:meth:`repro.engine.jobs.SimJob.key`), so a
cache directory can be shared between processes, machines, and sweeps —
anything with the same key is by construction the same simulation.

Disk writes are atomic (tmp file + ``os.replace``) so a crashed or
interrupted sweep never leaves a truncated entry behind; unreadable
entries are treated as misses and overwritten.
"""

from __future__ import annotations

import dataclasses
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

import numpy as np

from repro.errors import EngineError
from repro.engine.jobs import SimJob
from repro.uarch.params import MachineConfig
from repro.uarch.simulator import SimulationResult


@dataclass
class CacheStats:
    """Hit/miss counters for one :class:`ResultCache` instance."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def describe(self) -> str:
        return (f"{self.hits}/{self.lookups} hits "
                f"({self.memory_hits} memory, {self.disk_hits} disk), "
                f"{self.stores} stores")


def _config_arrays(config: MachineConfig):
    """(field names, float values, bool mask) for npz round-tripping."""
    names, values, bools = [], [], []
    for f in dataclasses.fields(config):
        value = getattr(config, f.name)
        names.append(f.name)
        values.append(float(value))
        bools.append(isinstance(value, bool))
    return (np.array(names), np.array(values, dtype=float),
            np.array(bools, dtype=bool))


def _config_from_arrays(names, values, bools) -> MachineConfig:
    field_types = {f.name: f.type for f in dataclasses.fields(MachineConfig)}
    kwargs = {}
    for name, value, is_bool in zip(names, values, bools):
        name = str(name)
        if name not in field_types:
            continue  # forward compatibility: ignore unknown fields
        if is_bool:
            kwargs[name] = bool(value)
        elif field_types[name] in ("int", int):
            kwargs[name] = int(value)
        else:
            kwargs[name] = float(value)
    return MachineConfig(**kwargs)


class ResultCache:
    """Two-level (memory LRU + optional disk) simulation-result cache.

    Parameters
    ----------
    cache_dir:
        Directory for the on-disk npz tier; ``None`` keeps the cache
        purely in-memory.  Created on first store.
    memory_items:
        Capacity of the in-memory LRU front (0 disables it).
    """

    def __init__(self, cache_dir=None, memory_items: int = 512):
        if memory_items < 0:
            raise EngineError(
                f"memory_items must be >= 0, got {memory_items}"
            )
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.memory_items = memory_items
        self.stats = CacheStats()
        self._memory: "OrderedDict[str, SimulationResult]" = OrderedDict()

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.npz"

    def _remember(self, key: str, result: SimulationResult) -> None:
        if self.memory_items == 0:
            return
        self._memory[key] = result
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_items:
            self._memory.popitem(last=False)

    # ------------------------------------------------------------------
    def get(self, job: SimJob) -> Optional[SimulationResult]:
        """The cached result for ``job``, or ``None`` on a miss."""
        key = job.key()
        if key in self._memory:
            self.stats.memory_hits += 1
            self._memory.move_to_end(key)
            return self._memory[key]
        if self.cache_dir is not None:
            path = self._path(key)
            if path.exists():
                try:
                    result = self._load(path)
                except Exception:
                    result = None  # corrupt entry: treat as miss
                if result is not None:
                    self.stats.disk_hits += 1
                    self._remember(key, result)
                    return result
        self.stats.misses += 1
        return None

    def put(self, job: SimJob, result: SimulationResult) -> None:
        """Store ``result`` under ``job``'s key in every enabled tier."""
        key = job.key()
        self._remember(key, result)
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            self._dump(self._path(key), result)
        self.stats.stores += 1

    def clear_memory(self) -> None:
        """Drop the in-memory tier (the disk tier survives)."""
        self._memory.clear()

    def __len__(self) -> int:
        """Number of entries in the disk tier (memory-only: LRU size)."""
        if self.cache_dir is None:
            return len(self._memory)
        if not self.cache_dir.exists():
            return 0
        return sum(1 for _ in self.cache_dir.glob("*.npz"))

    # ------------------------------------------------------------------
    # npz serialization
    # ------------------------------------------------------------------
    @staticmethod
    def _dump(path: Path, result: SimulationResult) -> None:
        names, values, bools = _config_arrays(result.config)
        payload = {
            "benchmark": np.array(result.benchmark),
            "backend": np.array(result.backend),
            "n_samples": np.array(result.n_samples),
            "cfg_names": names,
            "cfg_values": values,
            "cfg_bools": bools,
        }
        payload.update({f"trace_{d}": arr for d, arr in result.traces.items()})
        payload.update(
            {f"comp_{d}": arr for d, arr in result.components.items()}
        )
        fd, tmp = tempfile.mkstemp(dir=str(path.parent),
                                   prefix=path.stem, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                # Uncompressed: per-job trace payloads are a few KB, and
                # load latency is what the disk tier is judged on.
                np.savez(handle, **payload)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    @staticmethod
    def _load(path: Path) -> SimulationResult:
        with np.load(path, allow_pickle=False) as data:
            config = _config_from_arrays(
                data["cfg_names"], data["cfg_values"], data["cfg_bools"]
            )
            traces = {key[len("trace_"):]: data[key]
                      for key in data.files if key.startswith("trace_")}
            components = {key[len("comp_"):]: data[key]
                          for key in data.files if key.startswith("comp_")}
            return SimulationResult(
                benchmark=str(data["benchmark"]),
                config=config,
                n_samples=int(data["n_samples"]),
                backend=str(data["backend"]),
                traces=traces,
                components=components,
            )
