"""Result cache: npz-per-job on disk with an in-memory LRU front.

Repeated experiment and figure runs re-simulate the exact same
(benchmark, configuration) grid; with a :class:`ResultCache` attached to
the engine every repeat becomes a lookup.  Entries are named by the
job's content-hash key (:meth:`repro.engine.jobs.SimJob.key`) prefixed
with the engine's key version, so a cache directory can be shared
between processes, machines, and sweeps — anything with the same key is
by construction the same simulation — and entries written under an
older, incompatible key version are identifiable (and collectable) by
filename alone.

The disk tier has a real lifecycle:

* an optional **byte cap** (``max_bytes``) enforced after every store by
  evicting the oldest entries first (file-mtime LRU, ties broken by
  entry filename so eviction is reproducible even on filesystems with
  coarse timestamps);
* explicit :meth:`gc` (size-targeted collection), :meth:`gc_versions`
  (drop entries from other key versions) and :meth:`clear`;
* byte/entry accounting surfaced through :meth:`disk_bytes`,
  :meth:`describe` and the ``repro cache`` CLI.

Disk writes are atomic (tmp file + ``os.replace``) so a crashed or
interrupted sweep never leaves a truncated entry behind; unreadable
entries are treated as misses and overwritten.
"""

from __future__ import annotations

import dataclasses
import heapq
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import EngineError
from repro.engine.jobs import KEY_VERSION, SimJob
from repro.uarch.params import MachineConfig
from repro.uarch.simulator import SimulationResult

#: Filesystem-safe form of the current job-key version, used as the
#: filename prefix of every disk entry this cache writes.
VERSION_TAG = KEY_VERSION.replace("/", "-")


@dataclass
class CacheStats:
    """Hit/miss/volume counters for one :class:`ResultCache` instance."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    bytes_written: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def describe(self) -> str:
        text = (f"{self.hits}/{self.lookups} hits "
                f"({self.memory_hits} memory, {self.disk_hits} disk), "
                f"{self.stores} stores")
        if self.evictions:
            text += f", {self.evictions} evictions"
        return text


def _config_arrays(config: MachineConfig):
    """(field names, float values, bool mask) for npz round-tripping."""
    names, values, bools = [], [], []
    for f in dataclasses.fields(config):
        value = getattr(config, f.name)
        names.append(f.name)
        values.append(float(value))
        bools.append(isinstance(value, bool))
    return (np.array(names), np.array(values, dtype=float),
            np.array(bools, dtype=bool))


def _config_from_arrays(names, values, bools) -> MachineConfig:
    field_types = {f.name: f.type for f in dataclasses.fields(MachineConfig)}
    kwargs = {}
    for name, value, is_bool in zip(names, values, bools):
        name = str(name)
        if name not in field_types:
            continue  # forward compatibility: ignore unknown fields
        if is_bool:
            kwargs[name] = bool(value)
        elif field_types[name] in ("int", int):
            kwargs[name] = int(value)
        else:
            kwargs[name] = float(value)
    return MachineConfig(**kwargs)


class ResultCache:
    """Two-level (memory LRU + optional disk) simulation-result cache.

    Parameters
    ----------
    cache_dir:
        Directory for the on-disk npz tier; ``None`` keeps the cache
        purely in-memory.  Created on first store.
    memory_items:
        Capacity of the in-memory LRU front (0 disables it).
    max_bytes:
        Disk-tier byte cap, enforced after every store by mtime-LRU
        eviction; ``None`` leaves the tier unbounded.

    Raises
    ------
    repro.errors.EngineError
        If ``memory_items`` is negative or ``max_bytes`` is smaller
        than 1.

    Examples
    --------
    Memory-only round trip (no disk directory configured):

    >>> from repro.engine import ResultCache, make_jobs
    >>> from repro.uarch.params import baseline_config
    >>> cache = ResultCache(cache_dir=None, memory_items=4)
    >>> job = make_jobs("gcc", [baseline_config()], n_samples=8)[0]
    >>> cache.get(job) is None          # first lookup misses
    True
    >>> cache.put(job, job.run())
    >>> cache.get(job).n_samples        # now served from memory
    8
    >>> cache.stats.describe()
    '1/2 hits (1 memory, 0 disk), 1 stores'
    """

    def __init__(self, cache_dir=None, memory_items: int = 512,
                 max_bytes: Optional[int] = None):
        if memory_items < 0:
            raise EngineError(
                f"memory_items must be >= 0, got {memory_items}"
            )
        if max_bytes is not None and max_bytes < 1:
            raise EngineError(
                f"max_bytes must be >= 1 or None, got {max_bytes}"
            )
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.memory_items = memory_items
        self.max_bytes = max_bytes
        self.stats = CacheStats()
        self._memory: "OrderedDict[str, SimulationResult]" = OrderedDict()
        # Disk index: filename -> (mtime_ns, size in bytes).  Built
        # lazily from a directory scan, then maintained incrementally.
        # Eviction victims are chosen by (mtime, filename) — never by
        # index insertion order — so the eviction sequence is identical
        # whether the index was scanned or grown by puts, even when
        # coarse filesystem timestamps make many entries share an mtime.
        # A min-heap over (mtime_ns, filename) keeps victim selection
        # O(log n) per store; stale heap tuples (overwritten or already
        # removed entries) are skipped lazily against the index.
        self._disk: Optional[Dict[str, Tuple[int, int]]] = None
        self._heap: List[Tuple[int, str]] = []

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.cache_dir / f"{VERSION_TAG}-{key}.npz"

    def _remember(self, key: str, result: SimulationResult) -> None:
        if self.memory_items == 0:
            return
        # Arena-backed results are views into a whole batch's shared
        # memory; storing them as-is would pin the arena for the LRU's
        # lifetime.  detach() copies such results (and is a no-op for
        # results that already own their arrays).
        self._memory[key] = result.detach()
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_items:
            self._memory.popitem(last=False)

    # ------------------------------------------------------------------
    # Disk index
    # ------------------------------------------------------------------
    def _scan_disk(self) -> Dict[str, Tuple[int, int]]:
        index: Dict[str, Tuple[int, int]] = {}
        if self.cache_dir is not None and self.cache_dir.exists():
            for path in self.cache_dir.glob("*.npz"):
                try:
                    stat = path.stat()
                except OSError:
                    continue  # deleted underneath us (shared directory)
                index[path.name] = (stat.st_mtime_ns, stat.st_size)
        return index

    def _rescan(self) -> Dict[str, Tuple[int, int]]:
        self._disk = self._scan_disk()
        self._heap = [(mtime, name)
                      for name, (mtime, _) in self._disk.items()]
        heapq.heapify(self._heap)
        return self._disk

    def _index(self) -> Dict[str, Tuple[int, int]]:
        if self._disk is None:
            self._rescan()
        return self._disk

    def disk_bytes(self) -> int:
        """Total bytes held by the disk tier (0 when disabled)."""
        if self.cache_dir is None:
            return 0
        return sum(size for _, size in self._index().values())

    def _evict(self, name: str) -> int:
        """Remove one disk entry; returns the bytes freed."""
        index = self._index()
        _, size = index.pop(name, (0, 0))
        try:
            (self.cache_dir / name).unlink()
        except OSError:
            pass  # already gone: the accounting above still holds
        self.stats.evictions += 1
        return size

    def _enforce_cap(self, max_bytes: Optional[int]) -> Tuple[int, int]:
        """Evict oldest-first until the tier fits; (entries, bytes) freed.

        The victim is always the minimum of ``(mtime, filename)``: the
        filename tie-break keeps the eviction order reproducible when
        coarse filesystem timestamps give many entries one mtime.
        """
        freed_entries, freed_bytes = 0, 0
        if max_bytes is None or self.cache_dir is None:
            return freed_entries, freed_bytes
        index = self._index()
        total = sum(size for _, size in index.values())
        while total > max_bytes and index:
            name = None
            while self._heap:
                mtime, candidate = heapq.heappop(self._heap)
                entry = index.get(candidate)
                if entry is not None and entry[0] == mtime:
                    name = candidate
                    break  # live entry; stale tuples are skipped
            if name is None:
                break  # heap exhausted (index mutated externally)
            size = self._evict(name)
            total -= size
            freed_entries += 1
            freed_bytes += size
        return freed_entries, freed_bytes

    # ------------------------------------------------------------------
    def get(self, job: SimJob) -> Optional[SimulationResult]:
        """The cached result for ``job``, or ``None`` on a miss.

        Parameters
        ----------
        job:
            Looked up by its content-hash :meth:`~repro.engine.jobs.SimJob.key`.

        Returns
        -------
        SimulationResult or None
            ``None`` on a miss *and* on an unreadable/corrupt disk
            entry (which will simply be overwritten by the next store).
        """
        key = job.key()
        if key in self._memory:
            self.stats.memory_hits += 1
            self._memory.move_to_end(key)
            return self._memory[key]
        if self.cache_dir is not None:
            path = self._path(key)
            if path.exists():
                try:
                    result = self._load(path)
                except Exception:
                    result = None  # corrupt entry: treat as miss
                if result is not None:
                    self.stats.disk_hits += 1
                    self._remember(key, result)
                    return result
        self.stats.misses += 1
        return None

    def put(self, job: SimJob, result: SimulationResult) -> None:
        """Store ``result`` under ``job``'s key in every enabled tier.

        With a ``max_bytes`` cap configured, the disk tier is brought
        back under the cap before this method returns — the cache never
        ends a sweep over budget.

        Parameters
        ----------
        job:
            Names the entry (content-hash key, version-prefixed on
            disk).
        result:
            Stored as-is on disk; the memory tier stores a detached
            copy so it never pins a shared-memory arena.
        """
        key = job.key()
        self._remember(key, result)
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            path = self._path(key)
            self._dump(path, result)
            stat = path.stat()
            # Overwrites refresh recency too: the recorded mtime is the
            # new file's, so a rewritten entry stops being an eviction
            # candidate until it ages again (its old heap tuple goes
            # stale and is skipped at pop time).
            self._index()[path.name] = (stat.st_mtime_ns, stat.st_size)
            heapq.heappush(self._heap, (stat.st_mtime_ns, path.name))
            self.stats.bytes_written += stat.st_size
            self._enforce_cap(self.max_bytes)
        self.stats.stores += 1

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def gc(self, max_bytes: Optional[int] = None) -> Tuple[int, int]:
        """Collect the disk tier down to a byte target.

        Rescans the directory first (so entries written by other
        processes are seen), then evicts oldest-mtime-first until the
        tier fits ``max_bytes`` (defaulting to the configured cap).
        Returns ``(entries_removed, bytes_freed)``.
        """
        if self.cache_dir is None:
            return (0, 0)
        self._rescan()
        target = max_bytes if max_bytes is not None else self.max_bytes
        return self._enforce_cap(target)

    def gc_versions(self) -> Tuple[int, int]:
        """Drop disk entries written under any *other* key version.

        A key-version bump (:data:`repro.engine.jobs.KEY_VERSION`) makes
        old entries unreachable — this reclaims their space.  Entries
        from the seed naming scheme (bare hex, no version prefix) are
        unreachable too and are collected alike.  Returns
        ``(entries_removed, bytes_freed)``.
        """
        if self.cache_dir is None:
            return (0, 0)
        self._rescan()
        prefix = VERSION_TAG + "-"
        stale = [name for name in self._index()
                 if not name.startswith(prefix)]
        freed = 0
        for name in stale:
            freed += self._evict(name)
        return (len(stale), freed)

    def clear(self) -> int:
        """Drop every entry in every tier; returns disk entries removed."""
        self._memory.clear()
        if self.cache_dir is None:
            return 0
        self._rescan()
        names = list(self._index())
        for name in names:
            self._evict(name)
        return len(names)

    def clear_memory(self) -> None:
        """Drop the in-memory tier (the disk tier survives)."""
        self._memory.clear()

    def describe(self) -> Dict[str, object]:
        """Machine-readable snapshot for the ``repro cache`` CLI."""
        return {
            "cache_dir": str(self.cache_dir) if self.cache_dir else None,
            "disk_entries": len(self._index()) if self.cache_dir else 0,
            "disk_bytes": self.disk_bytes(),
            "max_bytes": self.max_bytes,
            "memory_entries": len(self._memory),
            "memory_items": self.memory_items,
            "key_version": KEY_VERSION,
            "stats": self.stats.describe(),
        }

    def __len__(self) -> int:
        """Number of entries in the disk tier (memory-only: LRU size)."""
        if self.cache_dir is None:
            return len(self._memory)
        if not self.cache_dir.exists():
            return 0
        return sum(1 for _ in self.cache_dir.glob("*.npz"))

    # ------------------------------------------------------------------
    # npz serialization
    # ------------------------------------------------------------------
    @staticmethod
    def _dump(path: Path, result: SimulationResult) -> None:
        # Arena-backed results serialize straight from their
        # shared-memory rows: npz writes each (contiguous) view without
        # an intermediate copy or pickle pass.
        names, values, bools = _config_arrays(result.config)
        payload = {
            "benchmark": np.array(result.benchmark),
            "backend": np.array(result.backend),
            "n_samples": np.array(result.n_samples),
            "cfg_names": names,
            "cfg_values": values,
            "cfg_bools": bools,
        }
        payload.update({f"trace_{d}": arr for d, arr in result.traces.items()})
        payload.update(
            {f"comp_{d}": arr for d, arr in result.components.items()}
        )
        fd, tmp = tempfile.mkstemp(dir=str(path.parent),
                                   prefix=path.stem, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                # Uncompressed: per-job trace payloads are a few KB, and
                # load latency is what the disk tier is judged on.
                np.savez(handle, **payload)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    @staticmethod
    def _load(path: Path) -> SimulationResult:
        with np.load(path, allow_pickle=False) as data:
            config = _config_from_arrays(
                data["cfg_names"], data["cfg_values"], data["cfg_bools"]
            )
            traces = {key[len("trace_"):]: data[key]
                      for key in data.files if key.startswith("trace_")}
            components = {key[len("comp_"):]: data[key]
                          for key in data.files if key.startswith("comp_")}
            return SimulationResult(
                benchmark=str(data["benchmark"]),
                config=config,
                n_samples=int(data["n_samples"]),
                backend=str(data["backend"]),
                traces=traces,
                components=components,
            )
