"""Executors: run job batches in-process or across worker processes.

Every executor implements one method — ``run_batch(jobs)`` — and returns
results **in job order**, regardless of completion order.  Because each
:class:`~repro.engine.jobs.SimJob` is deterministic (the interval model
seeds its measurement texture from the job content itself), the parallel
and sequential paths produce bit-identical traces; ``tests/test_engine.py``
pins that property.

:class:`ExecutionEngine` composes an executor with an optional
:class:`~repro.engine.cache.ResultCache`: batch lookups first, duplicate
jobs deduplicated by content key, only the misses dispatched.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Protocol, Sequence

from repro.errors import EngineError
from repro.engine.cache import ResultCache
from repro.engine.jobs import SimJob
from repro.uarch.simulator import SimulationResult


class Executor(Protocol):
    """Anything that can run a batch of simulation jobs in order."""

    def run_batch(self, jobs: Sequence[SimJob]) -> List[SimulationResult]:
        """Run every job; results align index-for-index with ``jobs``."""
        ...


def _run_chunk(jobs: Sequence[SimJob]) -> List[SimulationResult]:
    """Worker entry point (module-level so it pickles)."""
    return [job.run() for job in jobs]


class LocalExecutor:
    """Runs jobs sequentially in the current process."""

    def run_batch(self, jobs: Sequence[SimJob]) -> List[SimulationResult]:
        return _run_chunk(jobs)


class ParallelExecutor:
    """Fans job batches out over a process pool.

    Jobs are grouped into contiguous chunks (amortizing pickle and IPC
    overhead over many sub-millisecond interval simulations), submitted
    to a :class:`~concurrent.futures.ProcessPoolExecutor`, and stitched
    back together by chunk index — so the output order never depends on
    scheduling.

    Parameters
    ----------
    max_workers:
        Worker processes; defaults to the machine's CPU count.
    chunk_size:
        Jobs per submitted chunk; by default sized so each worker gets
        about four chunks (load balancing without excessive IPC).
    """

    def __init__(self, max_workers: Optional[int] = None,
                 chunk_size: Optional[int] = None):
        if max_workers is not None and max_workers < 1:
            raise EngineError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        if chunk_size is not None and chunk_size < 1:
            raise EngineError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        self.max_workers = max_workers or os.cpu_count() or 1
        self.chunk_size = chunk_size
        self._pool: Optional[ProcessPoolExecutor] = None

    def _get_pool(self) -> ProcessPoolExecutor:
        # Lazily created and reused across run_batch calls: an engine
        # shared by a whole experiment session pays worker start-up once,
        # not once per benchmark batch.
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (a later run_batch restarts it)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _chunks(self, jobs: Sequence[SimJob]) -> List[Sequence[SimJob]]:
        size = self.chunk_size
        if size is None:
            size = max(1, -(-len(jobs) // (self.max_workers * 4)))
        return [jobs[i:i + size] for i in range(0, len(jobs), size)]

    def run_batch(self, jobs: Sequence[SimJob]) -> List[SimulationResult]:
        jobs = list(jobs)
        if not jobs:
            return []
        if self.max_workers == 1 or len(jobs) == 1:
            return _run_chunk(jobs)
        chunks = self._chunks(jobs)
        ordered: List[Optional[List[SimulationResult]]] = [None] * len(chunks)
        pool = self._get_pool()
        try:
            futures = {pool.submit(_run_chunk, chunk): i
                       for i, chunk in enumerate(chunks)}
            done, not_done = wait(futures, return_when=FIRST_EXCEPTION)
            for future in not_done:
                future.cancel()
            for future in done:
                ordered[futures[future]] = future.result()  # re-raises
        except BrokenProcessPool:
            self.close()  # a dead pool cannot serve the next batch
            raise
        return [result for chunk in ordered for result in chunk]


class ExecutionEngine:
    """Cache-aware batch runner: the front door for every sweep.

    ``run(jobs)`` resolves each job from the cache when possible,
    deduplicates identical jobs inside the batch by content key, runs
    only the remaining unique misses through the executor, and returns
    results in job order.

    Parameters
    ----------
    executor:
        Where misses execute; defaults to :class:`LocalExecutor`.
    cache:
        Optional :class:`~repro.engine.cache.ResultCache`.
    """

    def __init__(self, executor: Optional[Executor] = None,
                 cache: Optional[ResultCache] = None):
        self.executor = executor or LocalExecutor()
        self.cache = cache

    def run(self, jobs: Sequence[SimJob]) -> List[SimulationResult]:
        jobs = list(jobs)
        results: List[Optional[SimulationResult]] = [None] * len(jobs)

        # Resolve cache hits and collapse duplicates to one execution.
        pending: Dict[str, List[int]] = {}
        unique_jobs: List[SimJob] = []
        for i, job in enumerate(jobs):
            key = job.key()
            if key in pending:
                pending[key].append(i)
                continue
            cached = self.cache.get(job) if self.cache is not None else None
            if cached is not None:
                results[i] = cached
            else:
                pending[key] = [i]
                unique_jobs.append(job)

        if unique_jobs:
            fresh = self.executor.run_batch(unique_jobs)
            for job, result in zip(unique_jobs, fresh):
                if self.cache is not None:
                    self.cache.put(job, result)
                for i in pending[job.key()]:
                    results[i] = result
        return results  # type: ignore[return-value]

    def run_one(self, job: SimJob) -> SimulationResult:
        """Convenience wrapper for a single job."""
        return self.run([job])[0]


def create_engine(jobs: Optional[int] = None,
                  cache_dir=None,
                  memory_items: int = 512) -> ExecutionEngine:
    """Build an engine from the two user-facing knobs.

    Parameters
    ----------
    jobs:
        Worker processes; ``None`` or 1 selects the in-process
        :class:`LocalExecutor`, anything larger a
        :class:`ParallelExecutor`.
    cache_dir:
        On-disk cache directory (``None`` disables the disk tier but
        keeps an in-memory LRU when ``memory_items > 0``).
    memory_items:
        In-memory LRU capacity.
    """
    if jobs is not None and jobs < 1:
        raise EngineError(f"jobs must be >= 1, got {jobs}")
    executor: Executor
    if jobs is not None and jobs > 1:
        executor = ParallelExecutor(max_workers=jobs)
    else:
        executor = LocalExecutor()
    cache = None
    if cache_dir is not None or memory_items > 0:
        cache = ResultCache(cache_dir=cache_dir, memory_items=memory_items)
    return ExecutionEngine(executor=executor, cache=cache)
