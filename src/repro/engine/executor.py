"""Executors: run job batches in-process or across worker processes.

Every executor implements ``run_batch(jobs)`` — results **in job order**,
regardless of completion order — and ``submit_batch(jobs)``, a streaming
variant yielding ``(job_index, result)`` pairs in **completion order**.
Because each :class:`~repro.engine.jobs.SimJob` is deterministic (the
interval model seeds its measurement texture from the job content
itself), the parallel, sequential and streaming paths produce
bit-identical traces; ``tests/test_engine.py``,
``tests/test_streaming.py`` and ``tests/test_shm_transport.py`` pin
that property.

:class:`ParallelExecutor` brings results home through a zero-copy
shared-memory arena by default (:mod:`repro.engine.shm`): workers write
trace rows straight into a preallocated per-batch block and only tiny
descriptors cross the pool pipe.  It also autotunes chunk sizes per
backend from measured per-job wall time (:class:`ChunkTuner`) — coarse
chunks for sub-millisecond interval jobs, fine-grained ones for
seconds-per-job detailed runs.  The third implementation of the
protocol, :class:`~repro.engine.remote.DistributedExecutor`, dispatches
the same chunks to ``repro worker serve`` processes on other machines.

:class:`ExecutionEngine` composes an executor with an optional
:class:`~repro.engine.cache.ResultCache`: batch lookups first, duplicate
jobs deduplicated by content key, only the misses dispatched.  Its
``submit`` method returns a :class:`BatchHandle` whose ``as_completed``
stream resolves cache hits immediately and surfaces pool results as they
finish — the consumer can start analysing early results (e.g. fitting
predictive models) while the tail of the batch is still simulating.
"""

from __future__ import annotations

import dataclasses
import os
import time
import weakref
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterator,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
)

from repro.errors import EngineError, SimulationError
from repro.engine.cache import ResultCache
from repro.engine.jobs import SimJob
from repro.engine.shm import ArenaSpec, ShmArena, shm_from_env, write_results
from repro.uarch.simulator import SimulationResult

#: Signature of per-result progress callbacks:
#: ``callback(job_index, job, result, from_cache)``.
ResultCallback = Callable[[int, SimJob, SimulationResult, bool], None]


class Executor(Protocol):
    """Anything that can run a batch of simulation jobs in order."""

    def run_batch(self, jobs: Sequence[SimJob]) -> List[SimulationResult]:
        """Run every job; results align index-for-index with ``jobs``."""
        ...


def _run_chunk(jobs: Sequence[SimJob]) -> List[SimulationResult]:
    """Worker entry point (module-level so it pickles).

    Routed through the grouped kernel dispatcher
    (:func:`repro.engine.kernel.run_jobs`): interval jobs sharing a
    workload advance as one batched kernel call, everything else runs
    per job.
    """
    from repro.engine.kernel import run_jobs

    return run_jobs(jobs)


def _run_chunk_transport(jobs: Sequence[SimJob],
                         spec: Optional[ArenaSpec],
                         rows: Sequence[int]):
    """Pool worker entry: run a chunk, ship results, report wall time.

    With an arena ``spec`` the trace/component arrays are written
    straight into shared memory and only tiny descriptors return over
    the pipe; without one the results themselves are returned (the
    pickle transport).  The measured seconds cover simulation only —
    the autotuner uses them to size subsequent chunks per backend.
    Interval jobs in the chunk run through the batched kernel (see
    :mod:`repro.engine.kernel`).
    """
    from repro.engine.kernel import run_jobs

    start = time.perf_counter()
    results = run_jobs(jobs)
    elapsed = time.perf_counter() - start
    if spec is None:
        return results, elapsed
    return write_results(spec, rows, results), elapsed


def _sequential_stream(jobs: Sequence[SimJob],
                       ) -> Iterator[Tuple[int, SimulationResult]]:
    """Lazy in-process stream, group-at-a-time: each kernel group runs
    when the consumer pulls its first member."""
    from repro.engine.kernel import stream_jobs

    return stream_jobs(jobs)


class LocalExecutor:
    """Runs jobs sequentially in the current process."""

    def run_batch(self, jobs: Sequence[SimJob]) -> List[SimulationResult]:
        return _run_chunk(jobs)

    def submit_batch(self, jobs: Sequence[SimJob],
                     ) -> Iterator[Tuple[int, SimulationResult]]:
        """Stream results lazily, in job order (== completion order).

        Group-lazy: each kernel group (see :mod:`repro.engine.kernel`)
        runs — via ``self.run_batch``, so subclasses that instrument
        execution observe the streaming path too — when the consumer
        pulls its first member.
        """
        from repro.engine.kernel import stream_jobs

        return stream_jobs(jobs, run=self.run_batch)


#: Chunk size used to probe a backend whose per-job cost is unknown yet.
PROBE_CHUNK_SIZE = 4

#: Wall-clock seconds one chunk should take once a backend is tuned:
#: long enough to amortize IPC, short enough that ``as_completed``
#: streaming stays responsive even for seconds-per-job detailed runs.
DEFAULT_TARGET_CHUNK_SECONDS = 0.25


class ChunkTuner:
    """Per-key EMA of measured per-job wall time, turned into chunk sizes.

    The key is whatever granularity the owning executor tunes at:
    :class:`ParallelExecutor` uses the backend name, the distributed
    executor (:mod:`repro.engine.remote`) a ``(host, backend)`` pair so
    a slow machine gets smaller chunks than a fast one.  An untimed key
    starts with a small probe chunk so its first measurement lands
    quickly; once timed, chunks target ``target_seconds`` of work each.
    """

    def __init__(self,
                 target_seconds: float = DEFAULT_TARGET_CHUNK_SECONDS):
        if target_seconds <= 0:
            raise EngineError(
                f"target_seconds must be > 0, got {target_seconds}"
            )
        self.target_seconds = target_seconds
        self._tuned: Dict[Hashable, float] = {}  # key -> per-job seconds

    def known(self, key: Hashable) -> bool:
        return key in self._tuned

    def record(self, key: Hashable, per_job: float) -> None:
        old = self._tuned.get(key)
        self._tuned[key] = per_job if old is None else 0.5 * (old + per_job)

    def plan(self, key: Hashable, n_jobs: int, workers: int,
             group_size: int = 1) -> int:
        """Jobs per chunk for ``key`` in a batch of ``n_jobs``.

        A tuned key targets ``target_seconds`` of measured work per
        chunk (capped so every one of ``workers`` still gets a chunk);
        an untuned key gets a small probe chunk.

        ``group_size > 1`` plans in whole-group units: batched detailed
        dispatch advances a kernel group as one stacked call, so a
        chunk is sized by per-*group* cost (the recorded per-job time
        times the group run length) and always returned as a multiple
        of ``group_size`` — a chunk boundary never shears a group.
        With the default ``group_size=1`` this is exactly the
        historical per-job plan.
        """
        group_size = max(1, int(group_size))
        n_units = -(-n_jobs // group_size)
        default = max(1, -(-n_units // (max(workers, 1) * 4)))
        per_job = self._tuned.get(key)
        if per_job is None:
            probe = max(1, PROBE_CHUNK_SIZE // group_size)
            return min(default, probe) * group_size
        per_unit = max(per_job * group_size, 1e-7)
        upper = max(1, -(-n_units // max(workers, 1)))
        units = max(1, min(int(self.target_seconds / per_unit), upper))
        return units * group_size


def batch_group_run(jobs: Sequence[SimJob], start: int) -> int:
    """Length of the contiguous batched-group run at ``start``.

    The number of consecutive jobs from ``start`` sharing one detailed
    group signature, when batched detailed dispatch is on — the unit
    chunk planning must not shear (the run advances as one stacked
    kernel call).  ``1`` whenever batching is off, the job is not
    detailed, or it has no groupmate at ``start``.
    """
    from repro.engine.kernel import detailed_batch_enabled, group_signature

    job = jobs[start]
    if job.backend != "detailed" or not detailed_batch_enabled():
        return 1
    signature = group_signature(job)
    if signature is None:
        return 1
    stop = start + 1
    while stop < len(jobs) and group_signature(jobs[stop]) == signature:
        stop += 1
    return stop - start


def carve_chunk(jobs: Sequence[SimJob], start: int, size: int) -> int:
    """End index of a chunk of at most ``size`` jobs starting at ``start``.

    Chunks are kept backend-homogeneous — a chunk's wall time feeds a
    per-backend tuning estimate, and mixing sub-millisecond interval
    jobs with seconds-long detailed jobs in one measurement would
    poison it.  When batched detailed dispatch is on, boundaries also
    snap to group boundaries: a contiguous run of one detailed group
    signature advances as a single stacked kernel call, so shearing it
    across chunks would defeat the batching.  The boundary rounds down
    to the run's first job when the chunk holds anything else, and
    extends to the run's end when the run *is* the chunk.  Shared by
    every chunking executor so their carving rules cannot diverge.
    """
    stop = min(len(jobs), start + size)
    backend = jobs[start].backend
    for j in range(start + 1, stop):
        if jobs[j].backend != backend:
            stop = j
            break
    if stop < len(jobs) and backend == "detailed":
        from repro.engine.kernel import (detailed_batch_enabled,
                                         group_signature)

        if detailed_batch_enabled():
            signature = group_signature(jobs[stop])
            if (signature is not None
                    and group_signature(jobs[stop - 1]) == signature):
                run_start = stop - 1
                while (run_start > start
                       and group_signature(jobs[run_start - 1]) == signature):
                    run_start -= 1
                if run_start > start:
                    return run_start  # round down to the group boundary
                while (stop < len(jobs)
                       and group_signature(jobs[stop]) == signature):
                    stop += 1  # the run is the whole chunk: take it whole
    return stop


def _shutdown_pool(pool: ProcessPoolExecutor) -> None:
    """weakref.finalize callback: shut an abandoned executor's pool down.

    Runs exactly once — when the owning executor is garbage collected or
    at interpreter exit (via ``atexit``) — so teardown never depends on
    nondeterministic ``__del__`` ordering during shutdown.
    """
    try:
        pool.shutdown(wait=True)
    except Exception:
        pass


class ParallelExecutor:
    """Fans job batches out over a process pool.

    Jobs are grouped into contiguous chunks (amortizing per-chunk IPC
    overhead over many sub-millisecond interval simulations) and
    submitted to a :class:`~concurrent.futures.ProcessPoolExecutor`.
    ``run_batch`` stitches the chunks back together by chunk index — so
    the output order never depends on scheduling — while
    ``submit_batch`` yields each chunk's results the moment its future
    completes, letting consumers overlap analysis with the simulation
    tail.

    Two transports bring results home, bit-identically:

    * **shared memory** (default): the batch preallocates a
      :class:`~repro.engine.shm.ShmArena`; workers write trace rows
      directly into it and only tiny descriptors cross the pipe;
    * **pickle** (``shm=False``, ``REPRO_SHM=0``, or when shared
      memory is unavailable): whole results return through the pipe.

    Without an explicit ``chunk_size`` an **autotuner** sizes chunks
    per backend: every completed chunk updates a per-job wall-time
    estimate (exponential moving average, persisted across batches),
    and once a backend is timed its chunks target
    ``target_chunk_seconds`` of work each — interval jobs stay
    coarse-chunked while seconds-per-job detailed jobs go fine-grained,
    keeping the completion stream responsive.  A backend's very first
    batch starts with a small probe wave plus worker-count-heuristic
    chunks (everything still dispatched eagerly at submit time).

    Parameters
    ----------
    max_workers:
        Worker processes; defaults to the machine's CPU count.
    chunk_size:
        Fixed jobs-per-chunk; disables the autotuner.  By default the
        autotuner chooses per-backend sizes.
    shm:
        Shared-memory result transport; ``None`` consults ``REPRO_SHM``
        (default on).  Falls back to pickling when the platform lacks
        shared memory.
    autotune:
        Force the chunk autotuner on/off; default: on exactly when
        ``chunk_size`` is not given.
    target_chunk_seconds:
        Autotuner's per-chunk wall-time target.
    """

    def __init__(self, max_workers: Optional[int] = None,
                 chunk_size: Optional[int] = None,
                 shm: Optional[bool] = None,
                 autotune: Optional[bool] = None,
                 target_chunk_seconds: float = DEFAULT_TARGET_CHUNK_SECONDS):
        if max_workers is not None and max_workers < 1:
            raise EngineError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        if chunk_size is not None and chunk_size < 1:
            raise EngineError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        self.max_workers = max_workers or os.cpu_count() or 1
        self.chunk_size = chunk_size
        self.shm = shm_from_env() if shm is None else bool(shm)
        self.autotune = (chunk_size is None) if autotune is None else autotune
        self.tuner = ChunkTuner(target_seconds=target_chunk_seconds)
        #: Last batch's arena (``None`` for pickle transport); exposed
        #: for lifecycle tests and benchmarks.  Intentionally retained
        #: until the next batch (or :meth:`close`): the reference keeps
        #: only the latest mapping alive, bounded by one batch's size.
        self.last_arena: Optional[ShmArena] = None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_finalizer: Optional[weakref.finalize] = None

    @property
    def target_chunk_seconds(self) -> float:
        return self.tuner.target_seconds

    @property
    def _tuned(self) -> Dict[Hashable, float]:
        # Back-compat alias for tests/diagnostics: backend -> seconds.
        return self.tuner._tuned

    def _get_pool(self) -> ProcessPoolExecutor:
        # Lazily created and reused across run_batch calls: an engine
        # shared by a whole experiment session pays worker start-up once,
        # not once per benchmark batch.
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
            # The finalizer — not __del__, whose ordering during
            # interpreter shutdown is undefined — guarantees the pool of
            # an abandoned executor is shut down exactly once.
            self._pool_finalizer = weakref.finalize(
                self, _shutdown_pool, self._pool)
        return self._pool

    def _close_pool(self) -> None:
        if self._pool_finalizer is not None:
            self._pool_finalizer.detach()
            self._pool_finalizer = None
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def close(self) -> None:
        """Shut the worker pool down (a later run_batch restarts it).

        Also drops the executor's reference to the last batch's arena;
        result views keep their own memory alive regardless.  Idempotent
        and — together with the pool/arena finalizers — guaranteed to
        run exactly once per resource even when the executor is simply
        abandoned.
        """
        self.last_arena = None
        self._close_pool()

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def planned_chunk_size(self, backend: str, n_jobs: int,
                           group_size: int = 1) -> int:
        """Jobs per chunk for ``backend`` in a batch of ``n_jobs``.

        Fixed ``chunk_size`` wins; otherwise a tuned backend targets
        ``target_chunk_seconds`` of measured work per chunk (capped so
        every worker still gets a chunk) and an untuned backend gets a
        small probe chunk so its first timing lands quickly.
        ``group_size`` (see :func:`batch_group_run`) makes the plan a
        whole-group multiple under batched detailed dispatch.
        """
        if self.chunk_size is not None:
            return self.chunk_size
        if not self.autotune:
            return max(1, -(-n_jobs // (self.max_workers * 4)))
        return self.tuner.plan(backend, n_jobs, self.max_workers,
                               group_size=group_size)

    def _record_timing(self, backend: str, per_job: float) -> None:
        self.tuner.record(backend, per_job)

    def submit_batch(self, jobs: Sequence[SimJob],
                     ) -> Iterator[Tuple[int, SimulationResult]]:
        """Submit the batch now; stream results in completion order.

        Futures are dispatched eagerly — the pool starts working the
        moment this method is called, before the returned iterator is
        first pulled — so consumer-side work genuinely overlaps the
        remaining simulations.  When a backend has no timing yet, the
        first ``max_workers`` chunks are small probes and the rest use
        the worker-count heuristic; the measured timings right-size
        every later batch.
        """
        jobs = list(jobs)
        if not jobs:
            return iter(())
        if self.max_workers == 1 or len(jobs) == 1:
            self.last_arena = None  # no transport: drop any stale arena
            return _sequential_stream(jobs)
        pool = self._get_pool()
        arena = ShmArena.create(jobs) if self.shm else None
        self.last_arena = arena
        spec = arena.spec if arena is not None else None
        n = len(jobs)
        default_size = max(1, -(-n // (self.max_workers * 4)))
        futures: Dict = {}
        cursor = 0  # index of the first unsubmitted job
        while cursor < n:
            start = cursor
            backend = jobs[start].backend
            if self.chunk_size is not None or not self.autotune:
                size = self.chunk_size or default_size
            elif self.tuner.known(backend):
                size = self.planned_chunk_size(
                    backend, n, group_size=batch_group_run(jobs, start))
            elif len(futures) < self.max_workers:
                size = min(default_size, PROBE_CHUNK_SIZE)  # probe wave
            else:
                size = default_size  # untimed tail: eager, pre-tuning size
            stop = carve_chunk(jobs, start, size)
            cursor = stop
            future = pool.submit(_run_chunk_transport, jobs[start:stop],
                                 spec, list(range(start, stop)))
            futures[future] = start

        def _drain() -> Iterator[Tuple[int, SimulationResult]]:
            try:
                pending = set(futures)
                while pending:
                    done, pending = wait(pending,
                                         return_when=FIRST_COMPLETED)
                    for future in done:
                        try:
                            payload, elapsed = future.result()
                        except BrokenProcessPool as exc:
                            # A dead pool cannot serve the next batch;
                            # keep last_arena for post-mortem inspection.
                            self._close_pool()
                            start = futures[future]
                            raise SimulationError(
                                f"worker process died mid-chunk (chunk "
                                f"starting at job {start} of a "
                                f"{len(jobs)}-job batch); the pool was shut "
                                f"down and the batch aborted"
                            ) from exc
                        start = futures[future]
                        if payload and self.autotune:
                            self._record_timing(jobs[start].backend,
                                                elapsed / len(payload))
                        for j, item in enumerate(payload):
                            if arena is not None:
                                item = arena.materialize(item)
                            yield start + j, item
            finally:
                # On error or early consumer exit, drop what never ran
                # and remove the arena's name; views stay valid.
                for future in futures:
                    future.cancel()
                if arena is not None:
                    arena.unlink()

        return _drain()

    def run_batch(self, jobs: Sequence[SimJob]) -> List[SimulationResult]:
        jobs = list(jobs)
        ordered: List[Optional[SimulationResult]] = [None] * len(jobs)
        for i, result in self.submit_batch(jobs):
            ordered[i] = result
        return ordered  # type: ignore[return-value]


class BatchHandle:
    """Streaming view of one submitted batch.

    Returned by :meth:`ExecutionEngine.submit`.  Jobs resolved from the
    cache are available immediately; executor results arrive in
    completion order.  Consumers choose their trade-off:

    * :meth:`as_completed` — iterate ``(job_index, result)`` pairs the
      moment each resolves (cache hits first, then pool results as they
      finish), overlapping their own work with the simulation tail;
    * :meth:`result` — block for one specific job;
    * :meth:`results` — block for everything, **in job order** (the
      deterministic view :meth:`ExecutionEngine.run` exposes).

    All accessors agree: however the stream is consumed, job *i* always
    maps to the same :class:`~repro.uarch.simulator.SimulationResult`.

    Attributes
    ----------
    jobs:
        The submitted jobs (after engine-level checkpoint stamping).
    cache_hits:
        How many jobs resolved from the cache at submit time.
    done:
        Jobs resolved so far (cache hits plus drained executor results).

    Examples
    --------
    >>> from repro.engine import ExecutionEngine, make_jobs
    >>> from repro.uarch.params import baseline_config
    >>> engine = ExecutionEngine()
    >>> handle = engine.submit(make_jobs("gcc", [baseline_config()] * 2,
    ...                                  n_samples=8))
    >>> len(handle)
    2
    >>> sorted(index for index, _ in handle.as_completed())
    [0, 1]
    >>> handle.done
    2
    """

    def __init__(self, jobs: List[SimJob],
                 results: List[Optional[SimulationResult]],
                 resolved: List[bool],
                 ready: "deque[Tuple[int, SimulationResult]]",
                 stream: Iterator[Tuple[int, SimulationResult]],
                 unique_jobs: List[SimJob],
                 fanout: Dict[int, List[int]],
                 cache: Optional[ResultCache],
                 callbacks: List[ResultCallback]):
        self.jobs = jobs
        self.cache_hits = len(ready)  #: jobs resolved from cache at submit
        self._results = results
        self._resolved = resolved
        self._ready = ready
        self._stream = stream
        self._unique = unique_jobs
        self._fanout = fanout
        self._cache = cache
        self._callbacks = callbacks
        self._yielded = 0
        self._failure: Optional[BaseException] = None

    def __len__(self) -> int:
        return len(self.jobs)

    @property
    def done(self) -> int:
        """Jobs resolved so far (cache hits + drained executor results)."""
        return sum(self._resolved)

    # ------------------------------------------------------------------
    def _advance(self) -> None:
        """Pull one executor result and fan it out to its job indices.

        An executor failure (e.g. a worker process dying mid-chunk) is
        terminal for the batch's unresolved jobs: the first failure is
        remembered and re-raised by every later accessor, while jobs
        that already resolved — cache hits and results drained before
        the failure — stay available.
        """
        if self._failure is not None:
            raise self._failure
        try:
            unique_index, result = next(self._stream)
        except StopIteration:
            raise EngineError(
                "executor stream exhausted with unresolved jobs in the batch"
            )
        except Exception as exc:
            self._failure = exc
            raise
        job = self._unique[unique_index]
        if self._cache is not None:
            self._cache.put(job, result)
        for i in self._fanout[unique_index]:
            self._results[i] = result
            self._resolved[i] = True
            self._ready.append((i, result))
            for callback in self._callbacks:
                callback(i, job, result, False)

    def as_completed(self) -> Iterator[Tuple[int, SimulationResult]]:
        """Yield ``(job_index, result)`` pairs in completion order.

        Cache hits are yielded first (they resolved at submit time);
        executor results follow as they finish.  Safe to resume after a
        partial drain or interleave with :meth:`result` — every job is
        yielded exactly once across all ``as_completed`` iterations.

        Yields
        ------
        tuple
            ``(job_index, result)`` where ``job_index`` indexes into
            :attr:`jobs`.

        Raises
        ------
        repro.errors.SimulationError
            If the executor fails mid-batch (e.g. a worker process
            dies).  The first failure is terminal for the batch's
            unresolved jobs and is re-raised by every later accessor;
            already-resolved jobs stay available.
        """
        while self._yielded < len(self.jobs):
            if not self._ready:
                self._advance()
            index, result = self._ready.popleft()
            self._yielded += 1
            yield index, result

    def result(self, index: int) -> SimulationResult:
        """Block until job ``index`` resolves and return its result.

        Parameters
        ----------
        index:
            Position of the job in the submitted batch.

        Returns
        -------
        SimulationResult
            The same object every other accessor maps to job ``index``.

        Raises
        ------
        repro.errors.EngineError
            If ``index`` is out of range for the batch.
        repro.errors.SimulationError
            If the executor failed before the job could resolve.
        """
        if not 0 <= index < len(self.jobs):
            raise EngineError(
                f"job index {index} out of range for batch of {len(self.jobs)}"
            )
        while not self._resolved[index]:
            self._advance()
        return self._results[index]  # type: ignore[return-value]

    def results(self) -> List[SimulationResult]:
        """Block until the whole batch resolves; results in job order.

        Returns
        -------
        list of SimulationResult
            Index-aligned with :attr:`jobs` — the deterministic view,
            bit-identical no matter which executor ran the batch.

        Raises
        ------
        repro.errors.SimulationError
            If the executor failed before every job resolved.
        """
        return [self.result(i) for i in range(len(self.jobs))]


class ExecutionEngine:
    """Cache-aware batch runner: the front door for every sweep.

    ``run(jobs)`` resolves each job from the cache when possible,
    deduplicates identical jobs inside the batch by content key, runs
    only the remaining unique misses through the executor, and returns
    results in job order.  ``submit(jobs)`` exposes the same batch as a
    :class:`BatchHandle` stream.

    Parameters
    ----------
    executor:
        Where misses execute; defaults to :class:`LocalExecutor`.
    cache:
        Optional :class:`~repro.engine.cache.ResultCache`.
    on_result:
        Optional engine-wide progress callback, invoked as
        ``on_result(job_index, job, result, from_cache)`` for every job
        resolved by any batch this engine runs (the CLI's ``--progress``
        hook).
    checkpoint_every, checkpoint_dir:
        Detailed-backend checkpoint settings stamped onto submitted jobs
        that do not carry their own (see
        :class:`~repro.engine.jobs.SimJob`).  The settings travel
        *inside* the pickled jobs — to pool workers and remote hosts
        alike — so enabling checkpointing never mutates the process
        environment.  They do not participate in job keys: a
        checkpointed job and a plain one share one cache entry.

    Examples
    --------
    >>> from repro.engine import ExecutionEngine, make_jobs
    >>> from repro.uarch.params import baseline_config
    >>> engine = ExecutionEngine()
    >>> jobs = make_jobs("gcc", [baseline_config()], n_samples=8)
    >>> [result.trace("cpi").shape for result in engine.run(jobs)]
    [(8,)]
    """

    def __init__(self, executor: Optional[Executor] = None,
                 cache: Optional[ResultCache] = None,
                 on_result: Optional[ResultCallback] = None,
                 checkpoint_every: Optional[int] = None,
                 checkpoint_dir=None):
        self.executor = executor or LocalExecutor()
        self.cache = cache
        self.on_result = on_result
        self.checkpoint_every = checkpoint_every
        self.checkpoint_dir = str(checkpoint_dir) if checkpoint_dir else None

    # ------------------------------------------------------------------
    def _configure_job(self, job: SimJob) -> SimJob:
        """Stamp engine-level checkpoint settings onto a detailed job.

        Job-level settings win; the job's content key is unaffected
        either way (checkpointing changes where intermediate state
        lives, never the simulated result).
        """
        if job.backend != "detailed":
            return job
        updates = {}
        if self.checkpoint_every is not None and job.checkpoint_every is None:
            updates["checkpoint_every"] = self.checkpoint_every
        if self.checkpoint_dir is not None and job.checkpoint_dir is None:
            updates["checkpoint_dir"] = self.checkpoint_dir
        return dataclasses.replace(job, **updates) if updates else job

    def submit(self, jobs: Sequence[SimJob],
               on_result: Optional[ResultCallback] = None) -> BatchHandle:
        """Submit a batch and return a streaming :class:`BatchHandle`.

        Cache hits resolve immediately (and fire callbacks before this
        method returns); duplicate jobs collapse to one execution; the
        unique misses are dispatched to the executor eagerly, so a
        process pool starts simulating before the handle is consumed.

        Parameters
        ----------
        jobs:
            The batch; an empty sequence yields an immediately-complete
            handle.
        on_result:
            Optional per-batch progress callback, invoked as
            ``on_result(job_index, job, result, from_cache)`` in
            addition to the engine-wide one.

        Returns
        -------
        BatchHandle
            Streaming view of the batch; live batches may be
            interleaved — submitting again before a previous handle has
            drained is safe (the active-learning loop resubmits from
            inside its drain loop every round).
        """
        jobs = [self._configure_job(job) for job in jobs]
        results: List[Optional[SimulationResult]] = [None] * len(jobs)
        resolved = [False] * len(jobs)
        ready: "deque[Tuple[int, SimulationResult]]" = deque()
        callbacks: List[ResultCallback] = []
        if self.on_result is not None:
            callbacks.append(self.on_result)
        if on_result is not None:
            callbacks.append(on_result)

        pending: Dict[str, int] = {}  # job key -> unique-miss index
        fanout: Dict[int, List[int]] = {}
        unique_jobs: List[SimJob] = []
        for i, job in enumerate(jobs):
            key = job.key()
            if key in pending:
                fanout[pending[key]].append(i)
                continue
            cached = self.cache.get(job) if self.cache is not None else None
            if cached is not None:
                results[i] = cached
                resolved[i] = True
                ready.append((i, cached))
                for callback in callbacks:
                    callback(i, job, cached, True)
            else:
                pending[key] = len(unique_jobs)
                fanout[len(unique_jobs)] = [i]
                unique_jobs.append(job)

        stream = self._dispatch(unique_jobs)
        return BatchHandle(jobs, results, resolved, ready, stream,
                           unique_jobs, fanout, self.cache, callbacks)

    def _dispatch(self, unique_jobs: List[SimJob],
                  ) -> Iterator[Tuple[int, SimulationResult]]:
        """Start the unique misses on the executor, streaming if it can."""
        if not unique_jobs:
            return iter(())
        submit_batch = getattr(self.executor, "submit_batch", None)
        if submit_batch is not None:
            return submit_batch(unique_jobs)
        # Third-party executor with only the protocol's run_batch: run
        # eagerly and replay in job order (no overlap, still correct).
        return iter(enumerate(self.executor.run_batch(unique_jobs)))

    def run(self, jobs: Sequence[SimJob]) -> List[SimulationResult]:
        """Run a batch to completion; results in job order.

        Parameters
        ----------
        jobs:
            The batch to execute.

        Returns
        -------
        list of SimulationResult
            Index-aligned with ``jobs``; bit-identical across executors.

        Raises
        ------
        repro.errors.SimulationError
            If the executor fails before every job resolves.
        """
        return self.submit(jobs).results()

    def run_one(self, job: SimJob) -> SimulationResult:
        """Convenience wrapper for a single job."""
        return self.run([job])[0]


def create_engine(jobs: Optional[int] = None,
                  cache_dir=None,
                  memory_items: int = 512,
                  cache_max_bytes: Optional[int] = None,
                  on_result: Optional[ResultCallback] = None,
                  shm: Optional[bool] = None,
                  hosts=None,
                  checkpoint_every: Optional[int] = None,
                  checkpoint_dir=None,
                  ) -> ExecutionEngine:
    """Build an engine from the user-facing knobs.

    Parameters
    ----------
    jobs:
        Worker processes; ``None`` or 1 selects the in-process
        :class:`LocalExecutor`, anything larger a
        :class:`ParallelExecutor`.  With ``hosts`` configured this is
        only the local fallback width — remote capacity is advertised
        by each worker host.
    cache_dir:
        On-disk cache directory (``None`` disables the disk tier but
        keeps an in-memory LRU when ``memory_items > 0``).
    memory_items:
        In-memory LRU capacity.
    cache_max_bytes:
        Byte cap for the disk tier; oldest entries (by file mtime,
        ties broken by filename) are evicted when a store would exceed
        it.  ``None`` means unbounded.
    on_result:
        Engine-wide per-job progress callback (see
        :class:`ExecutionEngine`).
    shm:
        Shared-memory result transport for the parallel executor;
        ``None`` consults ``REPRO_SHM`` (default on).
    hosts:
        Remote worker hosts (``"host:port"`` strings or
        :class:`~repro.engine.remote.HostSpec`); a non-empty list
        selects the :class:`~repro.engine.remote.DistributedExecutor`,
        which dispatches job chunks to ``repro worker serve``
        processes.  Empty/``None`` keeps execution on this machine.
    checkpoint_every, checkpoint_dir:
        Detailed-backend checkpoint settings threaded through the
        engine onto submitted jobs (see :class:`ExecutionEngine`); the
        process environment is never touched.

    Returns
    -------
    ExecutionEngine
        An engine wired with the selected executor and cache tiers.

    Raises
    ------
    repro.errors.EngineError
        If ``jobs`` is given but smaller than 1, or a cache/executor
        argument is malformed.

    Examples
    --------
    >>> from repro.engine import create_engine, make_jobs
    >>> from repro.uarch.params import baseline_config
    >>> engine = create_engine(jobs=1, memory_items=8)
    >>> job = make_jobs("gcc", [baseline_config()], n_samples=8)[0]
    >>> engine.run_one(job).backend
    'interval'
    >>> _ = engine.run_one(job)        # second run hits the memory tier
    >>> engine.cache.stats.hits, engine.cache.stats.misses
    (1, 1)
    """
    if jobs is not None and jobs < 1:
        raise EngineError(f"jobs must be >= 1, got {jobs}")
    executor: Executor
    if hosts:
        from repro.engine.remote import DistributedExecutor

        executor = DistributedExecutor(hosts, fallback_jobs=jobs, shm=shm)
    elif jobs is not None and jobs > 1:
        executor = ParallelExecutor(max_workers=jobs, shm=shm)
    else:
        executor = LocalExecutor()
    cache = None
    if cache_dir is not None or memory_items > 0:
        cache = ResultCache(cache_dir=cache_dir, memory_items=memory_items,
                            max_bytes=cache_max_bytes)
    return ExecutionEngine(executor=executor, cache=cache,
                           on_result=on_result,
                           checkpoint_every=checkpoint_every,
                           checkpoint_dir=checkpoint_dir)
