"""Simulation jobs: the unit of work the execution engine schedules.

A :class:`SimJob` fully describes one (workload, configuration) run —
benchmark, machine configuration, backend, trace resolution, and DVM /
noise options — and exposes a *deterministic content-hash key*.  The key
is stable across processes and interpreter runs (unlike ``hash()``), so
it can name on-disk cache entries and deduplicate identical work inside
a batch, no matter which executor ends up running the job.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.errors import EngineError
from repro.uarch.params import MachineConfig
from repro.workloads.phases import WorkloadModel

#: Backends the engine accepts (mirrors ``repro.uarch.simulator.BACKENDS``
#: without importing it, to keep this module import-light for workers).
JOB_BACKENDS = ("interval", "detailed")

#: Bump when the simulation semantics change incompatibly: old cache
#: entries become unreachable instead of silently wrong.
KEY_VERSION = "simjob/v1"


def _canonical(obj):
    """A recursively canonical, process-stable form of ``obj``.

    Arrays are replaced by (dtype, shape, content digest) so the result
    never depends on numpy's truncating ``repr``; dataclasses are walked
    field by field.
    """
    if isinstance(obj, np.ndarray):
        digest = hashlib.sha256(np.ascontiguousarray(obj).tobytes())
        return ("ndarray", str(obj.dtype), obj.shape, digest.hexdigest())
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return (type(obj).__name__,) + tuple(
            (f.name, _canonical(getattr(obj, f.name)))
            for f in dataclasses.fields(obj)
        )
    if isinstance(obj, (list, tuple)):
        return tuple(_canonical(item) for item in obj)
    if isinstance(obj, float):
        return repr(obj)
    return obj


@dataclass(frozen=True)
class SimJob:
    """One (workload, configuration) simulation request.

    Attributes
    ----------
    benchmark:
        Benchmark name; resolved through the workload registry unless an
        explicit ``workload`` model is attached.
    config:
        Machine configuration to simulate.
    backend:
        ``"interval"`` or ``"detailed"``.
    n_samples:
        Trace resolution (the paper's default is 128).
    instructions_per_sample:
        Detailed backend only; ignored by the interval model.
    noise:
        Interval backend measurement texture; ignored by the detailed
        backend.
    workload:
        Optional explicit :class:`WorkloadModel`, for workloads outside
        the registry.  Its content participates in the job key.
    checkpoint_every, checkpoint_dir:
        Detailed backend only: snapshot the core every N intervals into
        ``checkpoint_dir`` (keyed by this job's content hash) so a
        killed sweep resumes mid-benchmark.  Threaded through the job
        itself — pickled to pool workers and remote hosts alike — so
        enabling checkpointing never mutates ``os.environ``.  ``None``
        means *unset*: the job falls back to the
        ``REPRO_CHECKPOINT_EVERY`` / ``REPRO_CHECKPOINT_DIR``
        environment of whatever process runs it; an explicit ``0``
        disables checkpointing even when that environment enables it.
        **Excluded from the job key**: checkpointing changes where
        intermediate state lives, never the result.
    """

    benchmark: str
    config: MachineConfig
    backend: str = "interval"
    n_samples: int = 128
    instructions_per_sample: int = 1000
    noise: bool = True
    workload: Optional[WorkloadModel] = None
    checkpoint_every: Optional[int] = None
    checkpoint_dir: Optional[str] = None

    def __post_init__(self):
        if self.backend not in JOB_BACKENDS:
            raise EngineError(
                f"unknown backend {self.backend!r}; choose from {JOB_BACKENDS}"
            )
        if not isinstance(self.benchmark, str) or not self.benchmark:
            raise EngineError(
                f"benchmark must be a non-empty string, got {self.benchmark!r}"
            )
        if self.n_samples <= 0:
            raise EngineError(
                f"n_samples must be positive, got {self.n_samples}"
            )
        if self.checkpoint_every is not None and self.checkpoint_every < 0:
            raise EngineError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )
        if self.workload is not None and self.workload.name != self.benchmark:
            raise EngineError(
                f"job benchmark {self.benchmark!r} does not match attached "
                f"workload {self.workload.name!r}"
            )

    # ------------------------------------------------------------------
    def key(self) -> str:
        """Deterministic content-hash identity (hex SHA-256).

        Stable across processes and interpreter runs; two jobs share a
        key exactly when they are guaranteed to produce the same
        :class:`~repro.uarch.simulator.SimulationResult`.  Options that
        a backend ignores are excluded so e.g. interval jobs differing
        only in ``instructions_per_sample`` share one cache entry.

        Memoized: the engine consults the key on every cache lookup,
        store, and dedup check, and the job is immutable.

        Examples
        --------
        >>> from repro.engine.jobs import SimJob
        >>> from repro.uarch.params import baseline_config
        >>> a = SimJob("gcc", baseline_config(), n_samples=8)
        >>> a.key() == SimJob("gcc", baseline_config(), n_samples=8).key()
        True
        >>> a.key() == SimJob("mcf", baseline_config(), n_samples=8).key()
        False
        """
        cached = self.__dict__.get("_key")
        if cached is not None:
            return cached
        parts = [
            KEY_VERSION,
            self.benchmark,
            self.backend,
            self.n_samples,
            _canonical(self.config),
        ]
        if self.backend == "interval":
            parts.append(("noise", self.noise))
        else:
            parts.append(("ips", self.instructions_per_sample))
        if self.workload is not None:
            parts.append(("workload", _canonical(self.workload)))
        key = hashlib.sha256(repr(tuple(parts)).encode("utf8")).hexdigest()
        object.__setattr__(self, "_key", key)
        return key

    def run(self):
        """Execute this job in the current process.

        Returns a :class:`~repro.uarch.simulator.SimulationResult`.
        Imported lazily so job objects stay cheap to pickle into worker
        processes.

        Detailed jobs checkpoint according to their own
        ``checkpoint_every`` / ``checkpoint_dir`` fields, falling back
        to the ``REPRO_CHECKPOINT_EVERY`` / ``REPRO_CHECKPOINT_DIR``
        environment when unset: mid-run snapshots are written under a
        file named by this job's content-hash key, so a killed sweep
        resumes each job from its last checkpoint — in any process, on
        any executor, on any host — instead of restarting it.
        """
        from repro.uarch.simulator import Simulator

        simulator = Simulator(backend=self.backend, noise=self.noise)
        workload = self.workload if self.workload is not None else self.benchmark
        kwargs = {}
        if self.backend == "detailed":
            from pathlib import Path

            from repro.uarch.detailed import resolve_checkpoint_settings

            every, directory = resolve_checkpoint_settings(
                self.checkpoint_every, self.checkpoint_dir)
            if every:
                kwargs = dict(
                    checkpoint_every=every,
                    checkpoint_path=Path(directory) / f"{self.key()}.ckpt.npz",
                )
        return simulator.run(
            workload, self.config, n_samples=self.n_samples,
            instructions_per_sample=self.instructions_per_sample,
            **kwargs,
        )


def make_jobs(workload: Union[str, WorkloadModel],
              configs: Sequence[MachineConfig],
              backend: str = "interval",
              n_samples: int = 128,
              instructions_per_sample: int = 1000,
              noise: bool = True) -> List[SimJob]:
    """Build one :class:`SimJob` per configuration for a single workload.

    String workloads are canonicalized through the registry (aliases such
    as ``"bzip"`` resolve to ``"bzip2"``), so unknown names fail here —
    before any job executes — and alias spellings never fragment the
    content-hash cache.
    """
    if isinstance(workload, WorkloadModel):
        benchmark, model = workload.name, workload
    else:
        from repro.workloads.spec2000 import get_benchmark

        benchmark, model = get_benchmark(workload).name, None
    return [
        SimJob(benchmark=benchmark, config=config, backend=backend,
               n_samples=n_samples,
               instructions_per_sample=instructions_per_sample,
               noise=noise, workload=model)
        for config in configs
    ]
