"""Zero-copy shared-memory result transport for parallel batches.

The pickle transport serializes every :class:`SimulationResult` — four
trace arrays plus a dozen component arrays per job — through the process
pool's result pipe, then re-stacks the per-job arrays into training
matrices.  For paper-scale sweeps (250 configurations x 128 samples x
~18 arrays) that serialization tax dominates the interval backend's
actual simulation time.

This module replaces it with a structure-of-arrays **arena** in
:mod:`multiprocessing.shared_memory`:

* the parent preallocates, per batch, one ``(n_jobs, n_samples)``
  float64 matrix per trace domain plus a ``(n_jobs, n_slots,
  n_samples)`` component block;
* workers attach to the arena, write each job's trace rows and
  component columns directly into it, and send back only a tiny
  :class:`ShmResultDescriptor` (row index, benchmark, config, component
  names) over the pipe;
* the parent materializes each descriptor as a
  :class:`~repro.uarch.simulator.SimulationResult` whose arrays are
  **views** into the arena — no copy — and
  :func:`stack_rows` lets dataset assembly slice whole training
  matrices straight out of the arena when a group's rows are
  contiguous.

Lifecycle: the arena is unlinked (name removed) the moment its batch
drains — including on worker crash or early consumer exit — while the
mapping itself stays valid for as long as any view is alive, so
datasets may outlive the batch.  Results that cannot be described by
the arena layout (foreign dtype, too many components) fall back to
pickling that one result; the transports are bit-identical either way.
"""

from __future__ import annotations

import mmap
import os
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.uarch.params import MachineConfig
from repro.uarch.simulator import DOMAINS, SimulationResult

#: Component-array slots reserved per job.  The interval backend emits
#: 14 component traces, the detailed backend 2; results with more fall
#: back to the pickle path for that job only.
MAX_COMPONENT_SLOTS = 16

#: Refuse to create arenas beyond this size (fall back to pickling).
MAX_ARENA_BYTES = 2 << 30

_FALSEY = frozenset(("0", "false", "no", "off"))

#: Interned native float64 dtype (identity-comparable: numpy interns
#: builtin dtypes, and any non-native variant must fall back anyway).
_F64 = np.dtype(np.float64)


def shm_from_env(default: bool = True) -> bool:
    """The ``REPRO_SHM`` toggle (default: transport enabled)."""
    raw = os.environ.get("REPRO_SHM", "").strip().lower()
    if not raw:
        return default
    return raw not in _FALSEY


@dataclass(frozen=True)
class ArenaSpec:
    """Everything a worker needs to attach to and index an arena."""

    name: str
    n_jobs: int
    n_samples: int
    domains: Tuple[str, ...]
    n_slots: int

    @property
    def row_bytes(self) -> int:
        return 8 * self.n_samples

    @property
    def trace_block_bytes(self) -> int:
        return self.n_jobs * self.row_bytes

    @property
    def total_bytes(self) -> int:
        return self.trace_block_bytes * (len(self.domains) + self.n_slots)


@dataclass(frozen=True)
class ShmResultDescriptor:
    """What crosses the pool pipe per job: metadata, never trace data.

    ``fallback`` carries the whole result for the rare job whose arrays
    do not fit the arena layout; it is ``None`` on the fast path.
    """

    row: int
    benchmark: str
    config: MachineConfig
    n_samples: int
    backend: str
    component_names: Tuple[str, ...] = ()
    fallback: Optional[SimulationResult] = None




class ShmArena:
    """One batch's structure-of-arrays shared-memory arena.

    Layout (all float64): ``len(domains)`` trace matrices of shape
    ``(n_jobs, n_samples)`` followed by one component block of shape
    ``(n_jobs, n_slots, n_samples)``.  Rows are indexed by the job's
    position in the batch's unique-job list, so a cold sweep's dataset
    rows land contiguously and :func:`stack_rows` can return views.
    """

    def __init__(self, shm: shared_memory.SharedMemory, spec: ArenaSpec,
                 owner: bool):
        self._shm = shm
        self.spec = spec
        self._owner = owner
        self._finalizer: Optional[weakref.finalize] = None
        self._trace_mats: Optional[List[np.ndarray]] = None
        self._comp_block: Optional[np.ndarray] = None
        self._trace_mats_ro: Optional[List[np.ndarray]] = None
        self._comp_block_ro: Optional[np.ndarray] = None
        self.zero_copy = True
        if owner:
            # Materialized views must outlive this arena object, but
            # SharedMemory.close() — invoked by its __del__ — unmaps the
            # segment regardless of live numpy views (numpy holds no
            # blocking buffer export; reading a view then segfaults).
            # So the parent maps the segment itself: the numpy base
            # chain refcounts this mmap object, and the last view's
            # death — not this arena's — unmaps the memory.
            fd = getattr(shm, "_fd", -1)
            if isinstance(fd, int) and fd >= 0:
                try:
                    self._buffer = mmap.mmap(fd, spec.total_bytes)
                except (OSError, ValueError):
                    fd = -1
            if isinstance(fd, int) and fd >= 0:
                shm.close()  # the name (and workers' attaches) survive
            else:
                # No usable file descriptor (non-POSIX): views would not
                # own the mapping, so materialize() copies instead.
                self._buffer = shm.buf
                self.zero_copy = False
            # The finalizer — not __del__, whose ordering during
            # interpreter shutdown is undefined — removes the segment's
            # name exactly once: on explicit unlink(), when the last
            # arena reference drops (abandoned batch), or at interpreter
            # exit via atexit.  It holds the SharedMemory object, never
            # the arena, so it cannot resurrect self.
            self._finalizer = weakref.finalize(self, _unlink_segment, shm)
        else:
            self._buffer = shm.buf

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, jobs: Sequence, domains: Sequence[str] = DOMAINS,
               n_slots: int = MAX_COMPONENT_SLOTS) -> Optional["ShmArena"]:
        """Allocate an arena sized for ``jobs``; ``None`` if unavailable.

        Returning ``None`` (no shared-memory support, oversized batch,
        exhausted ``/dev/shm``) makes the executor fall back to the
        pickle transport — never an error.
        """
        if not jobs:
            return None
        width = max(job.n_samples for job in jobs)
        spec = ArenaSpec(name="", n_jobs=len(jobs), n_samples=width,
                         domains=tuple(domains), n_slots=n_slots)
        if spec.total_bytes > MAX_ARENA_BYTES:
            return None
        try:
            shm = shared_memory.SharedMemory(create=True,
                                             size=spec.total_bytes)
        except (OSError, ValueError):
            return None
        spec = ArenaSpec(name=shm.name, n_jobs=spec.n_jobs,
                         n_samples=spec.n_samples, domains=spec.domains,
                         n_slots=spec.n_slots)
        return cls(shm, spec, owner=True)

    @classmethod
    def attach(cls, spec: ArenaSpec) -> "ShmArena":
        """Map an existing arena by name (worker side)."""
        return cls(shared_memory.SharedMemory(name=spec.name), spec,
                   owner=False)

    # ------------------------------------------------------------------
    # Array access
    # ------------------------------------------------------------------
    def _traces(self) -> List[np.ndarray]:
        if self._trace_mats is None:
            spec = self.spec
            self._trace_mats = [
                np.ndarray((spec.n_jobs, spec.n_samples), dtype=np.float64,
                           buffer=self._buffer,
                           offset=i * spec.trace_block_bytes)
                for i in range(len(spec.domains))
            ]
        return self._trace_mats

    def _components(self) -> np.ndarray:
        if self._comp_block is None:
            spec = self.spec
            self._comp_block = np.ndarray(
                (spec.n_jobs, spec.n_slots, spec.n_samples),
                dtype=np.float64, buffer=self._buffer,
                offset=len(spec.domains) * spec.trace_block_bytes)
        return self._comp_block

    def _read_only(self):
        """Read-only aliases of the arena matrices.

        Slicing a read-only base yields read-only views for free, so
        :meth:`materialize` inherits the protection without paying a
        per-view ``flags`` write (thousands per paper-scale batch).
        """
        if self._trace_mats_ro is None:
            self._trace_mats_ro = [mat.view() for mat in self._traces()]
            for mat in self._trace_mats_ro:
                mat.flags.writeable = False
            self._comp_block_ro = self._components().view()
            self._comp_block_ro.flags.writeable = False
        return self._trace_mats_ro, self._comp_block_ro

    # ------------------------------------------------------------------
    # Worker side: write
    # ------------------------------------------------------------------
    def write(self, row: int, result: SimulationResult,
              ) -> ShmResultDescriptor:
        """Write one result's arrays into arena row ``row``.

        Returns the tiny descriptor to send back; results that do not
        fit the layout (extra domains, too many components, foreign
        dtype or shape) are returned whole via ``fallback`` instead —
        a partially written row is simply never referenced.
        """
        spec = self.spec
        n = result.n_samples
        traces = result.traces
        components = result.components
        shape = (n,)
        if (n <= spec.n_samples and len(traces) == len(spec.domains)
                and len(components) <= spec.n_slots):
            mats = self._traces()
            comp = self._components()
            for i, domain in enumerate(spec.domains):
                arr = traces.get(domain)
                if arr is None or arr.dtype is not _F64 or arr.shape != shape:
                    break
                mats[i][row, :n] = arr
            else:
                comp_row = comp[row]
                for slot, arr in enumerate(components.values()):
                    if arr.dtype is not _F64 or arr.shape != shape:
                        break
                    comp_row[slot, :n] = arr
                else:
                    return ShmResultDescriptor(
                        row=row, benchmark=result.benchmark,
                        config=result.config, n_samples=n,
                        backend=result.backend,
                        component_names=tuple(components),
                    )
        return ShmResultDescriptor(
            row=row, benchmark=result.benchmark, config=result.config,
            n_samples=n, backend=result.backend, fallback=result,
        )

    def write_chunk(self, rows: Sequence[int],
                    results: Sequence[SimulationResult],
                    ) -> Optional[List[ShmResultDescriptor]]:
        """Vectorized write of a uniform chunk, or ``None``.

        When every result in the chunk shares the arena's full sample
        width and one component-name tuple, and the rows are
        consecutive (the executor always assigns them that way), each
        domain lands as **one** stacked slice assignment instead of a
        per-job row write — the hot path for tuned interval chunks of
        dozens of jobs.  Returns ``None`` whenever the chunk is not
        uniform; the caller then falls back to per-result writes.
        """
        results = list(results)
        if not results:
            return []
        spec = self.spec
        first = results[0]
        n = first.n_samples
        names = tuple(first.components)
        if n != spec.n_samples or len(names) > spec.n_slots:
            return None
        rows = list(rows)
        start = rows[0]
        if rows != list(range(start, start + len(results))):
            return None
        shape = (n,)
        for result in results:
            if (result.n_samples != n
                    or tuple(result.components) != names
                    or len(result.traces) != len(spec.domains)):
                return None
        stop = start + len(results)
        mats = self._traces()
        for i, domain in enumerate(spec.domains):
            arrays = []
            for result in results:
                arr = result.traces.get(domain)
                if arr is None or arr.dtype is not _F64 or arr.shape != shape:
                    return None
                arrays.append(arr)
            mats[i][start:stop] = arrays
        if names:
            block = []
            for result in results:
                row = []
                for arr in result.components.values():
                    if arr.dtype is not _F64 or arr.shape != shape:
                        return None
                    row.append(arr)
                block.append(row)
            self._components()[start:stop, :len(names)] = block
        return [
            ShmResultDescriptor(
                row=start + j, benchmark=result.benchmark,
                config=result.config, n_samples=n, backend=result.backend,
                component_names=names,
            )
            for j, result in enumerate(results)
        ]

    # ------------------------------------------------------------------
    # Parent side: materialize
    # ------------------------------------------------------------------
    def materialize(self, desc: ShmResultDescriptor) -> SimulationResult:
        """Build a result whose arrays are zero-copy views into the arena.

        Views are marked read-only: they alias batch-shared memory, so
        in-place mutation would corrupt sibling results.  Use
        :meth:`~repro.uarch.simulator.SimulationResult.detach` for a
        private, writable copy.
        """
        if desc.fallback is not None:
            return desc.fallback
        n = desc.n_samples
        row = desc.row
        mats, comp = self._read_only()
        full = n == self.spec.n_samples
        if full:
            traces = {domain: mats[i][row]
                      for i, domain in enumerate(self.spec.domains)}
            comp_row = comp[row]
            components = {name: comp_row[slot]
                          for slot, name in enumerate(desc.component_names)}
        else:
            traces = {domain: mats[i][row, :n]
                      for i, domain in enumerate(self.spec.domains)}
            comp_row = comp[row]
            components = {name: comp_row[slot, :n]
                          for slot, name in enumerate(desc.component_names)}
        result = SimulationResult(
            benchmark=desc.benchmark, config=desc.config, n_samples=n,
            backend=desc.backend, traces=traces, components=components,
        )
        # Without a refcounted mapping the views die with this arena;
        # hand out private copies instead (correct, just not zero-copy).
        return result if self.zero_copy else result.detach()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def unlinked(self) -> bool:
        return self._finalizer is not None and not self._finalizer.alive

    def unlink(self) -> None:
        """Remove the arena's name from the system (parent, at batch end).

        The mapping — and every view handed out by :meth:`materialize`
        — stays valid until the arrays are garbage collected; only new
        attaches become impossible and the kernel reclaims the memory
        once the last mapping drops.  Backed by a ``weakref.finalize``
        on the segment, so the unlink happens **exactly once** whether
        it is called explicitly, the arena is garbage collected
        (abandoned batch), or the interpreter exits.
        """
        if self._finalizer is not None:
            self._finalizer()

    def release(self) -> None:
        """Drop array views and close the mapping (worker, after writes)."""
        self._trace_mats = None
        self._comp_block = None
        try:
            self._shm.close()
        except BufferError:
            # A view escaped; the mapping lives until it is collected.
            pass


def _unlink_segment(shm: shared_memory.SharedMemory) -> None:
    """Finalizer target: remove a segment's name, swallowing races."""
    try:
        shm.unlink()
    except (OSError, FileNotFoundError):
        pass  # already gone (another process, or a prior explicit unlink)


def write_results(spec: ArenaSpec, rows: Sequence[int],
                  results: Sequence[SimulationResult],
                  ) -> List[ShmResultDescriptor]:
    """Worker entry: write a chunk's results into the arena.

    Attaches by name, writes each result into its assigned row, and
    closes the worker-side mapping before returning the descriptors.
    """
    arena = ShmArena.attach(spec)
    try:
        fast = arena.write_chunk(rows, results)
        if fast is not None:
            return fast
        return [arena.write(row, result)
                for row, result in zip(rows, results)]
    finally:
        arena.release()


def stack_rows(arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Stack equal-length 1-D arrays into a matrix, zero-copy when possible.

    When every array is a full-row view of one shared 2-D base (the
    shared-memory arena) and the rows are consecutive and in order —
    the layout a cold-cache sweep produces — the stacked matrix is a
    **slice of the base**, not a copy.  Anything else (cache hits,
    pickle-path results, reordered rows) falls back to ``np.vstack``.
    """
    arrays = list(arrays)
    if not arrays:
        raise ValueError("stack_rows needs at least one array")
    view = _common_base_slice(arrays)
    if view is not None:
        if not all(arr.flags.writeable for arr in arrays):
            view.flags.writeable = False
        return view
    return np.vstack(arrays)


def _common_base_slice(arrays: List[np.ndarray]) -> Optional[np.ndarray]:
    base = arrays[0].base
    if base is None or getattr(base, "ndim", 0) != 2:
        return None
    if base.shape[0] < len(arrays):
        return None
    row_stride, item_stride = base.strides
    if row_stride <= 0:
        return None
    base_addr = base.__array_interface__["data"][0]
    first_row = None
    for offset, arr in enumerate(arrays):
        if (arr.base is not base or arr.ndim != 1
                or arr.shape[0] != base.shape[1]
                or arr.strides != (item_stride,)
                or arr.dtype != base.dtype):
            return None
        delta = arr.__array_interface__["data"][0] - base_addr
        if delta % row_stride:
            return None
        row = delta // row_stride
        if first_row is None:
            first_row = row
        elif row != first_row + offset:
            return None
    return base[first_row:first_row + len(arrays)]
