"""Batched, parallel, cache-aware simulation execution.

The engine is the single execution path every layer above the simulator
goes through:

* :class:`~repro.engine.jobs.SimJob` — a content-addressed unit of work
  (benchmark, configuration, backend, options) with a process-stable
  hash key;
* :class:`~repro.engine.executor.LocalExecutor` /
  :class:`~repro.engine.executor.ParallelExecutor` /
  :class:`~repro.engine.remote.DistributedExecutor` — in-process,
  process-pool and multi-host batch execution behind one
  :class:`~repro.engine.executor.Executor` protocol, with deterministic
  result ordering; the pool path ships results through a zero-copy
  shared-memory arena (:mod:`repro.engine.shm`), the remote path
  streams chunks to ``repro worker serve`` hosts
  (:mod:`repro.engine.remote`), and both autotune chunk sizes from
  measured per-job wall time;
* :class:`~repro.engine.cache.ResultCache` — npz-per-job disk tier plus
  an in-memory LRU front, keyed by job content hash, with a byte-capped
  mtime-LRU lifecycle (``gc`` / ``gc_versions`` / ``clear``);
* :class:`~repro.engine.executor.ExecutionEngine` — composes the two:
  batch cache lookups, in-batch deduplication, miss execution — with a
  blocking ``run`` and a streaming ``submit`` returning a
  :class:`~repro.engine.executor.BatchHandle` (``as_completed`` /
  ``result(i)`` / ``results()``).

Typical use::

    from repro.engine import SimJob, create_engine

    engine = create_engine(jobs=8, cache_dir="~/.cache/repro")
    results = engine.run([SimJob("gcc", cfg) for cfg in configs])

    # Streaming: consume results as they finish (cache hits first).
    handle = engine.submit([SimJob("gcc", cfg) for cfg in configs])
    for index, result in handle.as_completed():
        analyse(result)          # overlaps the remaining simulations
"""

from repro.engine.cache import CacheStats, ResultCache, VERSION_TAG
from repro.engine.executor import (
    BatchHandle,
    ChunkTuner,
    ExecutionEngine,
    Executor,
    LocalExecutor,
    ParallelExecutor,
    ResultCallback,
    create_engine,
)
from repro.engine.jobs import KEY_VERSION, SimJob, make_jobs
from repro.engine.remote import (
    DistributedExecutor,
    HostSpec,
    WorkerServer,
    hosts_from_env,
    parse_hosts,
)
from repro.engine.shm import (
    ArenaSpec,
    ShmArena,
    ShmResultDescriptor,
    shm_from_env,
    stack_rows,
)

__all__ = [
    "SimJob",
    "make_jobs",
    "KEY_VERSION",
    "VERSION_TAG",
    "Executor",
    "LocalExecutor",
    "ParallelExecutor",
    "DistributedExecutor",
    "WorkerServer",
    "HostSpec",
    "parse_hosts",
    "hosts_from_env",
    "ChunkTuner",
    "ExecutionEngine",
    "BatchHandle",
    "ResultCallback",
    "ResultCache",
    "CacheStats",
    "create_engine",
    "ArenaSpec",
    "ShmArena",
    "ShmResultDescriptor",
    "shm_from_env",
    "stack_rows",
]
