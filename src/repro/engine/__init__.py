"""Batched, parallel, cache-aware simulation execution.

The engine is the single execution path every layer above the simulator
goes through:

* :class:`~repro.engine.jobs.SimJob` — a content-addressed unit of work
  (benchmark, configuration, backend, options) with a process-stable
  hash key;
* :class:`~repro.engine.executor.LocalExecutor` /
  :class:`~repro.engine.executor.ParallelExecutor` — in-process and
  process-pool batch execution behind one
  :class:`~repro.engine.executor.Executor` protocol, with deterministic
  result ordering;
* :class:`~repro.engine.cache.ResultCache` — npz-per-job disk tier plus
  an in-memory LRU front, keyed by job content hash;
* :class:`~repro.engine.executor.ExecutionEngine` — composes the two:
  batch cache lookups, in-batch deduplication, miss execution.

Typical use::

    from repro.engine import SimJob, create_engine

    engine = create_engine(jobs=8, cache_dir="~/.cache/repro")
    results = engine.run([SimJob("gcc", cfg) for cfg in configs])
"""

from repro.engine.cache import CacheStats, ResultCache
from repro.engine.executor import (
    ExecutionEngine,
    Executor,
    LocalExecutor,
    ParallelExecutor,
    create_engine,
)
from repro.engine.jobs import SimJob, make_jobs

__all__ = [
    "SimJob",
    "make_jobs",
    "Executor",
    "LocalExecutor",
    "ParallelExecutor",
    "ExecutionEngine",
    "ResultCache",
    "CacheStats",
    "create_engine",
]
