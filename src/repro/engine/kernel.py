"""Grouped kernel dispatch: run interval-job chunks as batched calls.

Every executor funnels its chunks through :func:`run_jobs`, which
detects groups of interval-backend :class:`~repro.engine.jobs.SimJob`\\ s
sharing a workload — same benchmark (and attached workload model, if
any), same trace resolution, same noise setting — and advances each
group through :func:`~repro.uarch.interval_model.simulate_interval_batch`
as **one** stacked kernel call instead of one scalar call per job.  A
design-space sweep is exactly this shape (one benchmark x many
configurations), so in practice a whole chunk collapses into a single
kernel invocation.

Everything around the kernel is unchanged by design:

* **job keys** — grouping happens at execution time, after cache
  lookup/dedup; :attr:`~repro.engine.jobs.KEY_VERSION` and the key
  recipe are untouched, so existing cache entries stay valid
  (``tests/test_kernel_batch.py`` pins golden keys);
* **results** — each job still materializes its own
  :class:`~repro.uarch.simulator.SimulationResult`, bit-identical to
  ``job.run()`` (the batch rows are views into the group's stacked
  matrices; the shm transport copies rows into its arena and the cache
  detaches, exactly as before);
* **ordering** — results align index-for-index with the submitted
  chunk, whatever the grouping.

Detailed-backend jobs group too — same benchmark/workload/resolution.
With JIT enabled the whole group advances through one stacked
:func:`~repro.uarch.pipeline_kernel.step_interval_batch` call per
interval (:func:`~repro.uarch.detailed.run_detailed_group`: per-core
state gains a leading config axis, optionally ``prange``-threaded —
see :func:`detailed_batch_enabled`); otherwise members run one by one
through ``job.run()``, where the win is trace-memo sharing (the
group's members synthesize identical interval traces, so one synthesis
feeds the whole group — see :mod:`repro.workloads.generator`).
Interval jobs with no groupmate in their chunk run through
``job.run()`` as always.
``REPRO_BATCH_KERNEL=0`` disables grouping entirely (the escape hatch;
the scalar path is the same code as a batch of one, so this only
changes speed, not bits).
"""

from __future__ import annotations

import os
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.engine.jobs import SimJob, _canonical
from repro.uarch.simulator import SimulationResult


def batch_kernel_enabled() -> bool:
    """Whether grouped kernel dispatch is on (``REPRO_BATCH_KERNEL``)."""
    return os.environ.get("REPRO_BATCH_KERNEL", "1").strip().lower() \
        not in ("0", "false", "off", "no")


def detailed_batch_enabled() -> bool:
    """Whether detailed groups run through the stacked batch stepper.

    Requires grouped dispatch (``REPRO_BATCH_KERNEL``) *and* an enabled
    JIT: without numba the batched loop calls the same scalar
    interpreter per row, so per-job execution is just as fast and keeps
    the historical dispatch.  Routing only changes speed, never bits —
    :func:`repro.uarch.detailed.run_detailed_group` is pinned
    bit-identical to ``job.run()`` by the golden digests.
    """
    from repro.uarch.jit import jit_enabled

    return batch_kernel_enabled() and jit_enabled()


def group_signature(job: SimJob) -> Optional[Tuple]:
    """Hashable grouping identity, or ``None`` for ungroupable jobs.

    Jobs with equal signatures simulate the same workload at the same
    resolution and noise setting, so they may run as one batched kernel
    call; an attached workload model participates through its canonical
    content (the same form the job key hashes).

    Detailed jobs group on ``("detailed", benchmark, workload,
    n_samples, instructions_per_sample)`` — a distinct shape from the
    interval 4-tuple, so the backends never intermix.  A detailed group
    runs its members sequentially (the cycle-level core is inherently
    serial per config), but groupmates synthesize identical traces, so
    running them consecutively turns the trace memo
    (:mod:`repro.workloads.generator`) into per-group sharing: one
    synthesis pays for the whole group.
    """
    workload = (job.benchmark if job.workload is None
                else _canonical(job.workload))
    if job.backend == "detailed":
        return ("detailed", job.benchmark, workload, job.n_samples,
                job.instructions_per_sample)
    if job.backend != "interval":
        return None
    return (job.benchmark, workload, job.n_samples, job.noise)


def _run_interval_group(group: Sequence[SimJob]) -> List[SimulationResult]:
    """One batched kernel call for jobs sharing a group signature."""
    from repro.uarch.interval_model import simulate_interval_batch
    from repro.uarch.simulator import interval_result_to_simulation
    from repro.workloads.spec2000 import get_benchmark

    lead = group[0]
    workload = (lead.workload if lead.workload is not None
                else get_benchmark(lead.benchmark))
    batch = simulate_interval_batch(
        workload, [job.config for job in group],
        n_samples=lead.n_samples, noise=lead.noise,
    )
    return [interval_result_to_simulation(batch[row])
            for row in range(len(group))]


def plan_groups(jobs: Sequence[SimJob]) -> List[List[int]]:
    """Partition job indices into kernel groups, preserving first-seen
    order.  Ungroupable jobs (and all jobs when the batch kernel is
    disabled) become singleton groups."""
    if len(jobs) < 2 or not batch_kernel_enabled():
        return [[i] for i in range(len(jobs))]
    order: List[List[int]] = []
    groups: Dict[Tuple, List[int]] = {}
    for i, job in enumerate(jobs):
        signature = group_signature(job)
        if signature is None:
            order.append([i])
            continue
        members = groups.get(signature)
        if members is None:
            groups[signature] = members = [i]
            order.append(members)
        else:
            members.append(i)
    return order


def run_group(jobs: Sequence[SimJob], indices: Sequence[int],
              ) -> List[SimulationResult]:
    """Run one planned group; results align with ``indices``."""
    if len(indices) == 1:
        return [jobs[indices[0]].run()]
    if jobs[indices[0]].backend == "detailed":
        if detailed_batch_enabled():
            # One stacked kernel call per interval for the whole group
            # (checkpointing, warmup and result assembly stay per-member
            # inside run_detailed_group, bit-identical to job.run()).
            from repro.uarch.detailed import run_detailed_group

            return run_detailed_group([jobs[i] for i in indices])
        # Sequential fallback: trace-memo sharing is the batching
        # (checkpointing, JIT-vs-interpreter selection and result
        # assembly all live inside job.run(), bit-identical).
        return [jobs[i].run() for i in indices]
    return _run_interval_group([jobs[i] for i in indices])


def run_jobs(jobs: Sequence[SimJob]) -> List[SimulationResult]:
    """Run a chunk of jobs, batching interval groups; results in job
    order.  The chunk runner behind every executor's ``run_batch``."""
    jobs = list(jobs)
    results: List[Optional[SimulationResult]] = [None] * len(jobs)
    for indices in plan_groups(jobs):
        for i, result in zip(indices, run_group(jobs, indices)):
            results[i] = result
    return results  # type: ignore[return-value]


def stream_jobs(jobs: Sequence[SimJob],
                run=run_jobs) -> Iterator[Tuple[int, SimulationResult]]:
    """Group-lazy in-process stream, yielding in job order.

    Each kernel group runs when the consumer pulls its first member
    (the per-group generalization of the historical one-job-at-a-time
    lazy stream); ``run`` lets callers route execution through their
    own ``run_batch`` so instrumented subclasses observe the streaming
    path too.
    """
    jobs = list(jobs)
    group_of: Dict[int, List[int]] = {}
    for indices in plan_groups(jobs):
        for i in indices:
            group_of[i] = indices
    done: Dict[int, SimulationResult] = {}
    for i in range(len(jobs)):
        if i not in done:
            indices = group_of[i]
            for j, result in zip(indices, run([jobs[j] for j in indices])):
                done[j] = result
        yield i, done.pop(i)
