"""Distributed execution: dispatch job chunks to remote worker hosts.

The paper's detailed-simulation training sweeps are the cost that
workload-dynamics models exist to amortize; one machine's cores bound
how fast they finish.  This module adds the third leg of the
Local / Parallel / Distributed executor matrix:

* :class:`WorkerServer` — the ``repro worker serve`` process.  It
  listens on a TCP port (:mod:`multiprocessing.connection`:
  length-prefixed pickle frames behind an HMAC authkey handshake),
  advertises its capacity, and runs each received chunk on a local
  :class:`~concurrent.futures.ProcessPoolExecutor` through the same
  ``job.run()`` path every other executor uses — so remote results are
  bit-identical to local ones.
* :class:`DistributedExecutor` — implements the engine's one-method
  :class:`~repro.engine.executor.Executor` protocol (plus the streaming
  ``submit_batch``).  One feeder thread per remote connection *pulls*
  chunks from a shared cursor, so fast hosts naturally take more work;
  chunk sizes come from the PR-3 :class:`~repro.engine.executor.ChunkTuner`
  keyed per ``(host, backend)`` — a slow machine gets smaller chunks
  than a fast one, and interval chunks stay coarse while detailed
  chunks go fine-grained.

Fault handling: a worker that disconnects mid-chunk has its in-flight
chunks re-queued on the surviving connections, and a serving host whose
simulation process dies reports a re-queueable ``"crash"`` (its pool is
rebuilt; only deterministic job errors are terminal).  Each chunk
retries at most ``max_chunk_retries`` times, then the batch fails with
a structured :class:`~repro.errors.SimulationError`; a batch whose
every worker disappears fails the same way instead of hanging.  Because
jobs are deterministic, a re-run chunk reproduces exactly the results
the lost worker would have sent.

With no hosts configured the executor degrades to a
:class:`~repro.engine.executor.ParallelExecutor`, so
``create_engine(hosts=hosts_from_env())`` is always safe to call.

Security note: the transport pickles jobs and results, and the authkey
(``REPRO_AUTHKEY``) is a shared secret for HMAC connection
authentication, not encryption.  Run workers only on networks you
trust, exactly as you would any simulation job queue.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import AuthenticationError
from multiprocessing.connection import Client, Listener
from queue import SimpleQueue
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import EngineError, SimulationError
from repro.engine.executor import (
    DEFAULT_TARGET_CHUNK_SECONDS,
    ChunkTuner,
    ParallelExecutor,
    carve_chunk,
)
from repro.engine.jobs import SimJob
from repro.uarch.simulator import SimulationResult

#: Bumped when the wire messages change incompatibly; a dispatcher
#: refuses to talk to a worker speaking another version.
PROTOCOL_VERSION = "repro-remote/v1"

#: Default TCP port for ``repro worker serve``.
DEFAULT_PORT = 7821

#: Default shared secret for the HMAC connection handshake.  Override
#: with ``REPRO_AUTHKEY`` whenever workers are reachable by anyone but
#: you; it gates *authentication*, not encryption.
DEFAULT_AUTHKEY = b"repro-workload-dynamics"

#: How many times one chunk may be re-queued after worker disconnects
#: before the batch fails with a structured error.
DEFAULT_MAX_CHUNK_RETRIES = 2

#: Upper bound on connections per host; the host's advertised capacity
#: applies below this.
MAX_CONNECTIONS_PER_HOST = 32

#: Chunks kept in flight per connection.  With one request the serving
#: side idles for a full round trip between chunks; with two, the next
#: request is already buffered on the socket when a reply is sent, so
#: reply transport overlaps the next chunk's simulation.
PIPELINE_DEPTH = 2


def authkey_from_env() -> bytes:
    """The ``REPRO_AUTHKEY`` shared secret (or the built-in default)."""
    raw = os.environ.get("REPRO_AUTHKEY", "")
    return raw.encode("utf8") if raw else DEFAULT_AUTHKEY


@dataclass(frozen=True)
class HostSpec:
    """One remote worker endpoint."""

    host: str
    port: int = DEFAULT_PORT

    @classmethod
    def parse(cls, text: str) -> "HostSpec":
        """Parse ``"host"`` or ``"host:port"`` (IPv4 / hostnames).

        Bare IPv6 literals are rejected outright — ``::1`` would
        otherwise silently parse as host ``:`` port ``1`` and fail
        much later with a baffling connection error.
        """
        text = text.strip()
        if not text:
            raise EngineError("empty worker host specification")
        host, sep, port_text = text.rpartition(":")
        if not sep:
            host = text
        else:
            try:
                port = int(port_text)
            except ValueError:
                raise EngineError(
                    f"invalid worker port in {text!r}: {port_text!r}"
                )
            if not host or not 0 < port < 65536:
                raise EngineError(
                    f"invalid worker host specification {text!r}"
                )
        if ":" in host:
            raise EngineError(
                f"invalid worker host specification {text!r}: IPv6 "
                f"literals are not supported (use an IPv4 address or "
                f"hostname)"
            )
        return cls(host=host) if not sep else cls(host=host, port=port)

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    def __str__(self) -> str:
        return f"{self.host}:{self.port}"


def parse_hosts(text: Optional[str]) -> List[HostSpec]:
    """Parse a comma-separated ``host:port`` list (``None``/"" -> [])."""
    if not text:
        return []
    return [HostSpec.parse(part)
            for part in text.split(",") if part.strip()]


def hosts_from_env() -> List[HostSpec]:
    """Worker hosts from ``REPRO_HOSTS`` (comma-separated host:port)."""
    return parse_hosts(os.environ.get("REPRO_HOSTS", ""))


def _run_chunk_timed(jobs: Sequence[SimJob],
                     ) -> Tuple[List[SimulationResult], float]:
    """Run a chunk in the current process, timing the simulation only.

    The elapsed seconds cover simulation (no queueing, no transport) —
    the dispatcher's per-(host, backend) tuner needs the host's
    intrinsic per-job speed, not its current load.  Interval jobs in
    the chunk run through the batched kernel
    (:func:`repro.engine.kernel.run_jobs`).
    """
    from repro.engine.kernel import run_jobs

    start = time.perf_counter()
    results = run_jobs(jobs)
    return results, time.perf_counter() - start


def _run_chunk_blob(jobs_blob: bytes) -> bytes:
    """Pool-worker entry on the serving host: blob in, blob out.

    Jobs and results cross the wire — and the server's internal pool
    pipe — as opaque pickle blobs, so the serving parent relays bytes
    without ever traversing the result objects: the payload is pickled
    exactly once (here, in the simulation process) and unpickled
    exactly once (in the dispatcher), the same two passes the local
    pickle transport pays.
    """
    results, elapsed = _run_chunk_timed(pickle.loads(jobs_blob))
    return pickle.dumps((results, elapsed), pickle.HIGHEST_PROTOCOL)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
class _PoolCrash(SimulationError):
    """A serving host's simulation process died mid-chunk.

    Reported to the dispatcher as a ``"crash"`` reply — re-queueable,
    unlike a deterministic job error, which would fail identically on
    every retry.
    """


class WorkerServer:
    """Serves simulation chunks to dispatchers over TCP.

    Accepts any number of dispatcher connections; each is handled by a
    thread answering a strict request/reply protocol, and every chunk
    executes on a shared :class:`ProcessPoolExecutor` of
    ``max_workers`` processes (the capacity advertised in the
    handshake).  A crashed pool worker fails only the chunk that
    crashed it — the pool is rebuilt and the server keeps serving.

    Parameters
    ----------
    host, port:
        Bind address.  ``port=0`` picks a free port; read it back from
        :attr:`port` (the CLI prints it, so scripts can scrape it).
    max_workers:
        Simulation processes, and the advertised capacity; defaults to
        the machine's CPU count.
    authkey:
        HMAC shared secret; defaults to ``REPRO_AUTHKEY``.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 max_workers: Optional[int] = None,
                 authkey: Optional[bytes] = None):
        if max_workers is not None and max_workers < 1:
            raise EngineError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        self.max_workers = max_workers or os.cpu_count() or 1
        self._authkey = authkey if authkey is not None else authkey_from_env()
        self._listener = Listener((host, port), family="AF_INET",
                                  authkey=self._authkey)
        self.host, self.port = self._listener.address
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._stop = threading.Event()
        self._accept_thread: Optional[threading.Thread] = None
        self.chunks_served = 0

    # ------------------------------------------------------------------
    def _run_chunk(self, jobs_blob: bytes) -> bytes:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.max_workers)
            pool = self._pool
        try:
            return pool.submit(_run_chunk_blob, jobs_blob).result()
        except BrokenProcessPool as exc:
            # The dead pool cannot serve the next chunk; rebuild lazily
            # so one crashed simulation does not take the whole host
            # down.
            with self._pool_lock:
                if self._pool is pool:
                    self._pool = None
                pool.shutdown(wait=False)
            raise _PoolCrash(
                "simulation process died while running the chunk"
            ) from exc

    def _serve_connection(self, conn) -> None:
        try:
            conn.send(("hello", PROTOCOL_VERSION, self.max_workers))
            while not self._stop.is_set():
                try:
                    message = conn.recv()
                except EOFError:
                    break
                kind = message[0]
                if kind == "run":
                    _, chunk_id, jobs_blob = message
                    try:
                        payload = self._run_chunk(jobs_blob)
                    except _PoolCrash as exc:
                        # Infrastructure failure, not a property of the
                        # jobs: tell the dispatcher so it re-queues the
                        # chunk (bounded retries) instead of failing
                        # the whole batch.
                        conn.send(("crash", chunk_id, str(exc)))
                        continue
                    except Exception as exc:
                        conn.send(("err", chunk_id,
                                   f"{type(exc).__name__}: {exc}"))
                        continue
                    with self._pool_lock:  # counter shared by conn threads
                        self.chunks_served += 1
                    conn.send(("ok", chunk_id, payload))
                elif kind == "ping":
                    conn.send(("pong", self.max_workers))
                elif kind == "bye":
                    break
                else:
                    conn.send(("err", None, f"unknown request {kind!r}"))
        except (OSError, EOFError, BrokenPipeError):
            pass  # dispatcher went away mid-reply; nothing to salvage
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def serve_forever(self) -> None:
        """Accept dispatcher connections until :meth:`shutdown`."""
        while not self._stop.is_set():
            try:
                conn = self._listener.accept()
            except (OSError, EOFError):
                if self._stop.is_set():
                    break
                continue  # failed handshake (wrong authkey, port scan)
            except Exception:
                continue  # AuthenticationError: reject, keep serving
            thread = threading.Thread(target=self._serve_connection,
                                      args=(conn,), daemon=True)
            thread.start()

    def start(self) -> "WorkerServer":
        """Serve on a daemon thread (in-process workers for tests)."""
        self._accept_thread = threading.Thread(target=self.serve_forever,
                                               daemon=True)
        self._accept_thread.start()
        return self

    def shutdown(self) -> None:
        """Stop accepting, close the listener, stop the pool."""
        self._stop.set()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=False)
                self._pool = None
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None


# ----------------------------------------------------------------------
# Dispatcher side
# ----------------------------------------------------------------------
class _Slot:
    """One live connection to a worker host (= one in-flight chunk)."""

    def __init__(self, spec: HostSpec, conn, index: int):
        self.spec = spec
        self.conn = conn
        self.index = index
        self.alive = True

    @property
    def key(self) -> str:
        return str(self.spec)

    def close(self) -> None:
        self.alive = False
        try:
            self.conn.send(("bye",))
        except (OSError, EOFError, BrokenPipeError):
            pass
        try:
            self.conn.close()
        except OSError:
            pass


class _BatchState:
    """Shared dispatch state for one submitted batch.

    Feeder threads pull spans from :meth:`take` — re-queued spans
    first, then fresh spans carved off the cursor at the size the
    tuner plans for that feeder's ``(host, backend)``.  ``take``
    blocks while other feeders still have spans in flight: a feeder
    that ran out of fresh work must stay available to adopt a dying
    sibling's chunk, otherwise a late disconnect could strand it.
    """

    def __init__(self, jobs: List[SimJob], tuner: ChunkTuner,
                 chunk_size: Optional[int], max_retries: int,
                 n_feeders: int):
        self.jobs = jobs
        self.tuner = tuner
        self.chunk_size = chunk_size
        self.max_retries = max_retries
        self.n_feeders = n_feeders
        self.results: "SimpleQueue[Tuple]" = SimpleQueue()
        self.requeues = 0
        self._cond = threading.Condition()
        self._cursor = 0
        self._inflight = 0
        self._requeued: "deque[Tuple[int, int, int]]" = deque()
        self._failed = False

    # ------------------------------------------------------------------
    def take(self, slot: _Slot,
             block: bool = True) -> Optional[Tuple[int, int, int]]:
        """Next ``(start, stop, retries)`` span for ``slot``, or None.

        Blocking mode returns ``None`` only once the batch needs no
        further dispatch (fully carved and nothing in flight, or
        failed); non-blocking mode also returns ``None`` when there is
        simply no span available *right now* — used to top up a
        connection's pipeline without parking the feeder while it
        still has replies to collect.
        """
        jobs = self.jobs
        n = len(jobs)
        with self._cond:
            while True:
                if self._failed:
                    return None
                if self._requeued:
                    self._inflight += 1
                    return self._requeued.popleft()
                if self._cursor < n:
                    start = self._cursor
                    size = self.chunk_size or self.tuner.plan(
                        (slot.key, jobs[start].backend), n, self.n_feeders)
                    stop = carve_chunk(jobs, start, size)
                    self._cursor = stop
                    self._inflight += 1
                    return (start, stop, 0)
                if not block or self._inflight == 0:
                    return None  # drained — or nothing available now
                # Fresh work is exhausted but chunks are in flight on
                # other connections; stay parked in case one comes back.
                self._cond.wait()

    def complete(self, span: Tuple[int, int, int],
                 results: List[SimulationResult]) -> None:
        self.results.put(("ok", span[0], results))
        with self._cond:
            self._inflight -= 1
            self._cond.notify_all()

    def abandon(self, span: Tuple[int, int, int], slot: _Slot) -> None:
        """Re-queue a span lost to a worker failure (bounded retries)."""
        start, stop, retries = span
        with self._cond:
            self._inflight -= 1
            if retries >= self.max_retries:
                self._failed = True
                self.results.put(("err", SimulationError(
                    f"chunk (jobs {start}..{stop} of a "
                    f"{len(self.jobs)}-job batch) was lost to worker "
                    f"failures {retries + 1} times (last host: "
                    f"{slot.key}); giving up after max_chunk_retries="
                    f"{self.max_retries}"
                )))
            else:
                self.requeues += 1
                self._requeued.append((start, stop, retries + 1))
            self._cond.notify_all()

    def fail(self, error: BaseException) -> None:
        """A worker reported a job error: terminal for the batch."""
        with self._cond:
            self._failed = True
            self._inflight -= 1
            self.results.put(("err", error))
            self._cond.notify_all()


class DistributedExecutor:
    """Fans job batches out to ``repro worker serve`` hosts.

    Implements the same ``run_batch`` / ``submit_batch`` surface as
    :class:`~repro.engine.executor.ParallelExecutor`, so
    :class:`~repro.engine.executor.ExecutionEngine` (and therefore
    caching, deduplication, streaming ``BatchHandle`` consumption, and
    every sweep runner) works unchanged on top of a cluster.

    Parameters
    ----------
    hosts:
        ``"host:port"`` strings or :class:`HostSpec` objects.  An empty
        list degrades to a local :class:`ParallelExecutor` — the
        executor is then exactly PR-3's.
    authkey:
        HMAC shared secret (default ``REPRO_AUTHKEY``).
    chunk_size:
        Fixed jobs-per-chunk; disables the per-(host, backend) tuner.
    target_chunk_seconds:
        Tuner's per-chunk wall-time target.
    max_chunk_retries:
        How many times a chunk may be re-queued after disconnects.
    connections_per_host:
        Cap on connections (= concurrent chunks) per host; the host's
        advertised capacity applies below this.
    fallback_jobs, shm:
        Forwarded to the no-hosts :class:`ParallelExecutor` fallback.
    """

    def __init__(self, hosts: Sequence[Union[str, HostSpec]] = (),
                 authkey: Optional[bytes] = None,
                 chunk_size: Optional[int] = None,
                 target_chunk_seconds: float = DEFAULT_TARGET_CHUNK_SECONDS,
                 max_chunk_retries: int = DEFAULT_MAX_CHUNK_RETRIES,
                 connections_per_host: int = MAX_CONNECTIONS_PER_HOST,
                 fallback_jobs: Optional[int] = None,
                 shm: Optional[bool] = None):
        if chunk_size is not None and chunk_size < 1:
            raise EngineError(f"chunk_size must be >= 1, got {chunk_size}")
        if max_chunk_retries < 0:
            raise EngineError(
                f"max_chunk_retries must be >= 0, got {max_chunk_retries}"
            )
        if connections_per_host < 1:
            raise EngineError(
                f"connections_per_host must be >= 1, "
                f"got {connections_per_host}"
            )
        self.hosts: List[HostSpec] = [
            HostSpec.parse(h) if isinstance(h, str) else h for h in hosts
        ]
        self._authkey = authkey if authkey is not None else authkey_from_env()
        self.chunk_size = chunk_size
        self.tuner = ChunkTuner(target_seconds=target_chunk_seconds)
        self.max_chunk_retries = max_chunk_retries
        self.connections_per_host = min(connections_per_host,
                                        MAX_CONNECTIONS_PER_HOST)
        self._fallback_jobs = fallback_jobs
        self._shm = shm
        self._fallback: Optional[ParallelExecutor] = None
        self._slots: List[_Slot] = []
        self._capacity: dict = {}  # host -> advertised capacity
        self._feeders: List[threading.Thread] = []
        #: Chunks re-queued after worker disconnects, across batches.
        self.requeued_chunks = 0

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    def _open_host(self, spec: HostSpec, existing: int = 0) -> List[_Slot]:
        """Open connections to one host, up to its advertised capacity.

        ``existing`` live connections are counted against the capacity,
        so a partially degraded host is topped back up rather than
        duplicated.
        """
        slots: List[_Slot] = []
        # The advertised capacity is only learned from a handshake;
        # remember it so topping up a degraded host never overshoots.
        capacity = self._capacity.get(str(spec), self.connections_per_host)
        while existing + len(slots) < capacity:
            try:
                conn = Client(spec.address, authkey=self._authkey)
                hello = conn.recv()
            except (OSError, EOFError, AuthenticationError) as exc:
                if slots:
                    break  # host accepted some connections: use those
                raise SimulationError(
                    f"cannot connect to worker {spec}: "
                    f"{type(exc).__name__}: {exc}"
                ) from exc
            if hello[0] != "hello" or hello[1] != PROTOCOL_VERSION:
                conn.close()
                raise SimulationError(
                    f"worker {spec} answered the handshake with "
                    f"{hello!r}; this dispatcher speaks {PROTOCOL_VERSION}"
                )
            capacity = min(self.connections_per_host, int(hello[2]))
            self._capacity[str(spec)] = capacity
            slots.append(_Slot(spec, conn, existing + len(slots)))
        return slots

    def _connect(self) -> List[_Slot]:
        """Live slots, (re)connecting or topping up degraded hosts."""
        by_host: dict = {}
        for slot in self._slots:
            if slot.alive:
                by_host.setdefault(slot.key, []).append(slot)
        slots: List[_Slot] = [s for group in by_host.values() for s in group]
        errors: List[str] = []
        for spec in self.hosts:
            existing = by_host.get(str(spec), [])
            try:
                slots.extend(self._open_host(spec, existing=len(existing)))
            except SimulationError as exc:
                # A host with live connections keeps serving at reduced
                # width; a fully unreachable one is reported.
                if not existing:
                    errors.append(str(exc))
        if not slots:
            raise SimulationError(
                "no remote workers reachable: " + "; ".join(errors)
                if errors else "no remote workers configured"
            )
        self._slots = slots
        return slots

    def _get_fallback(self) -> ParallelExecutor:
        if self._fallback is None:
            self._fallback = ParallelExecutor(
                max_workers=self._fallback_jobs, shm=self._shm,
                chunk_size=self.chunk_size)
        return self._fallback

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _feed(self, slot: _Slot, state: _BatchState) -> None:
        """Feeder thread: pull spans, ship them to one connection.

        Keeps up to :data:`PIPELINE_DEPTH` chunks in flight so the
        serving side finds the next request already buffered when it
        finishes a reply; every pending span is re-queued if the
        connection dies.
        """
        pending: "deque[Tuple[int, int, int]]" = deque()
        try:
            try:
                while True:
                    while len(pending) < PIPELINE_DEPTH:
                        span = state.take(slot, block=not pending)
                        if span is None:
                            break
                        pending.append(span)
                        start, stop, _ = span
                        blob = pickle.dumps(state.jobs[start:stop],
                                            pickle.HIGHEST_PROTOCOL)
                        slot.conn.send(("run", start, blob))
                    if not pending:
                        break  # blocking take said the batch is drained
                    reply = slot.conn.recv()
                    span = pending.popleft()
                    start, stop, _ = span
                    if reply[1] != start:
                        # Request/reply desync: this connection can no
                        # longer be trusted to label results correctly.
                        # Treat it like a disconnect so its spans re-run
                        # elsewhere and nothing stale is ever delivered.
                        raise EOFError(
                            f"worker {slot.key} answered chunk "
                            f"{reply[1]!r} to a request for chunk {start}"
                        )
                    if reply[0] == "ok":
                        results, elapsed = pickle.loads(reply[2])
                        if results:
                            state.tuner.record(
                                (slot.key, state.jobs[start].backend),
                                elapsed / len(results))
                        state.complete(span, results)
                    elif reply[0] == "crash":
                        # The host's simulation process died but the
                        # host itself is fine (it rebuilt its pool):
                        # re-queue the chunk with bounded retries and
                        # keep feeding this connection.
                        state.abandon(span, slot)
                    else:
                        # A job error aborts the batch; a reply for this
                        # feeder's second pipelined chunk may still be
                        # inbound, so retire the connection rather than
                        # let the next batch read a stale reply.
                        slot.close()
                        state.fail(SimulationError(
                            f"worker {slot.key} failed jobs "
                            f"{start}..{stop}: {reply[2]}"
                        ))
                        return
            except (OSError, EOFError, BrokenPipeError):
                slot.close()
                for span in pending:
                    state.abandon(span, slot)
                pending.clear()
        except BaseException as exc:  # defensive: never strand the batch
            slot.close()
            state.fail(SimulationError(
                f"dispatcher thread for worker {slot.key} crashed: {exc!r}"
            ))
        finally:
            state.results.put(("done",))

    def submit_batch(self, jobs: Sequence[SimJob],
                     ) -> Iterator[Tuple[int, SimulationResult]]:
        """Dispatch the batch to the worker fleet; stream completions.

        Chunks are dispatched the moment this method returns (feeder
        threads start immediately); results are yielded in completion
        order as ``(job_index, result)`` pairs, exactly like the other
        executors, so ``BatchHandle.as_completed()`` works unchanged.
        """
        jobs = list(jobs)
        if not self.hosts:
            return self._get_fallback().submit_batch(jobs)
        if not jobs:
            return iter(())
        # One batch owns the connections at a time: an abandoned
        # predecessor finishes in the background first.
        for thread in self._feeders:
            thread.join()
        slots = self._connect()
        state = _BatchState(jobs, self.tuner, self.chunk_size,
                            self.max_chunk_retries, n_feeders=len(slots))
        self._feeders = [
            threading.Thread(target=self._feed, args=(slot, state),
                             daemon=True)
            for slot in slots
        ]
        for thread in self._feeders:
            thread.start()
        return self._drain(state)

    def _drain(self, state: _BatchState,
               ) -> Iterator[Tuple[int, SimulationResult]]:
        n = len(state.jobs)
        delivered = 0
        finished_feeders = 0
        try:
            while delivered < n:
                item = state.results.get()
                kind = item[0]
                if kind == "ok":
                    start, results = item[1], item[2]
                    for j, result in enumerate(results):
                        yield start + j, result
                    delivered += len(results)
                elif kind == "err":
                    raise item[1]
                else:  # "done": one feeder exited
                    finished_feeders += 1
                    if finished_feeders >= state.n_feeders:
                        # Every ok/err a feeder produced precedes its
                        # "done" in the FIFO queue, so at this point the
                        # queue held everything there will ever be.
                        raise SimulationError(
                            f"all remote workers disconnected with "
                            f"{n - delivered} of {n} jobs unfinished"
                        )
        finally:
            self.requeued_chunks += state.requeues

    def run_batch(self, jobs: Sequence[SimJob]) -> List[SimulationResult]:
        jobs = list(jobs)
        ordered: List[Optional[SimulationResult]] = [None] * len(jobs)
        for i, result in self.submit_batch(jobs):
            ordered[i] = result
        return ordered  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def ping(self) -> List[Tuple[str, int]]:
        """(host, capacity) for every reachable configured host.

        Waits for any in-flight batch first — connections are not
        thread-safe, and a ping racing a feeder's request/reply cycle
        would desync the stream.
        """
        for thread in self._feeders:
            thread.join()
        self._feeders = []
        reachable = []
        pinged = set()
        for slot in self._connect():
            if slot.key in pinged:
                continue
            pinged.add(slot.key)
            try:
                slot.conn.send(("ping",))
                reply = slot.conn.recv()
            except (OSError, EOFError, BrokenPipeError):
                slot.alive = False
                continue
            reachable.append((slot.key, int(reply[1])))
        return reachable

    def close(self) -> None:
        """Wait for in-flight work, then close every connection."""
        for thread in self._feeders:
            thread.join()
        self._feeders = []
        for slot in self._slots:
            slot.close()
        self._slots = []
        if self._fallback is not None:
            self._fallback.close()
            self._fallback = None

    def __enter__(self) -> "DistributedExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
