"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause
while still being able to distinguish configuration problems from modelling
problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigurationError(ReproError):
    """An invalid machine configuration or design-space definition."""


class WorkloadError(ReproError):
    """An unknown benchmark name or an invalid workload profile."""


class TransformError(ReproError):
    """Invalid input to a wavelet transform (e.g. non power-of-two length)."""


class ModelError(ReproError):
    """A predictive model was mis-configured or used before being fitted."""


class NotFittedError(ModelError):
    """A model's ``predict`` was called before ``fit``."""


class SamplingError(ReproError):
    """Design-space sampling could not satisfy the request."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent state."""


class EngineError(ReproError):
    """The execution engine was mis-configured or fed malformed jobs."""


class ExperimentError(ReproError):
    """An experiment driver was asked for an unknown experiment or option."""
