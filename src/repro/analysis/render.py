"""ASCII rendering of the paper's figures for terminal output.

No plotting backend is available offline, so every figure is rendered
as text: aligned tables, Unicode sparklines for traces, horizontal
boxplots for Figure 8, shade-character heat maps for Figures 7/18 and
spoke tables for the Figure 11 star plots.  Each renderer takes plain
data so it is trivially testable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.metrics import BoxplotStats
from repro.errors import ReproError

#: Eight-level block characters for sparklines and heat maps.
_BLOCKS = " ▁▂▃▄▅▆▇█"
_SHADES = " ░▒▓█"


def render_table(headers: Sequence[str], rows: Sequence[Sequence],
                 float_fmt: str = "{:.2f}") -> str:
    """Fixed-width table with auto-sized columns."""
    def fmt(cell):
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ReproError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def sparkline(values: Sequence[float], lo: Optional[float] = None,
              hi: Optional[float] = None) -> str:
    """One-line Unicode sparkline of a trace."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return ""
    lo = float(arr.min()) if lo is None else lo
    hi = float(arr.max()) if hi is None else hi
    if hi <= lo:
        return _BLOCKS[4] * arr.size
    scaled = np.clip((arr - lo) / (hi - lo) * (len(_BLOCKS) - 2), 0,
                     len(_BLOCKS) - 2)
    return "".join(_BLOCKS[int(s) + 1] for s in scaled)


def render_trace_pair(actual: Sequence[float], predicted: Sequence[float],
                      label: str = "") -> str:
    """Simulation-vs-prediction sparklines on a shared scale (Figure 14)."""
    a = np.asarray(list(actual), dtype=float)
    p = np.asarray(list(predicted), dtype=float)
    lo = float(min(a.min(), p.min()))
    hi = float(max(a.max(), p.max()))
    return (f"{label} simulation  |{sparkline(a, lo, hi)}|\n"
            f"{label} prediction  |{sparkline(p, lo, hi)}|  "
            f"[{lo:.3g}, {hi:.3g}]")


def render_boxplot_rows(stats_by_label: Dict[str, BoxplotStats],
                        width: int = 50,
                        axis_max: Optional[float] = None) -> str:
    """Horizontal ASCII boxplots, one row per label (Figure 8)."""
    if not stats_by_label:
        raise ReproError("no boxplot rows to render")
    hi = axis_max or max(
        max(s.whisker_high, *(s.outliers or (0.0,)))
        for s in stats_by_label.values()
    ) or 1.0

    def col(x: float) -> int:
        return int(np.clip(x / hi * (width - 1), 0, width - 1))

    lines = []
    for label in sorted(stats_by_label):
        s = stats_by_label[label]
        row = [" "] * width
        for x in range(col(s.whisker_low), col(s.whisker_high) + 1):
            row[x] = "-"
        for x in range(col(s.q1), col(s.q3) + 1):
            row[x] = "="
        row[col(s.median)] = "|"
        for out in s.outliers:
            row[col(out)] = "o"
        lines.append(f"{label:>10s} [{''.join(row)}] med {s.median:6.2f}")
    lines.append(f"{'':>10s}  0{'':>{width - 8}}{hi:.1f}")
    return "\n".join(lines)


def render_heatmap(matrix, row_labels: Sequence[str],
                   col_labels: Sequence[str],
                   vmax: Optional[float] = None) -> str:
    """Shade-character heat map (Figures 7 and 18)."""
    m = np.asarray(matrix, dtype=float)
    if m.ndim != 2:
        raise ReproError(f"heatmap needs a 2-D matrix, got shape {m.shape}")
    if len(row_labels) != m.shape[0] or len(col_labels) != m.shape[1]:
        raise ReproError("label counts do not match matrix shape")
    vmax = vmax or (float(m.max()) or 1.0)
    lines = ["      " + " ".join(f"{c[:4]:>4s}" for c in col_labels)]
    for label, row in zip(row_labels, m):
        cells = []
        for v in row:
            shade = _SHADES[int(np.clip(v / vmax * (len(_SHADES) - 1), 0,
                                        len(_SHADES) - 1))]
            cells.append(shade * 4)
        lines.append(f"{label[:5]:>5s} " + " ".join(cells))
    return "\n".join(lines)


def render_star(scores_by_parameter: Dict[str, float], width: int = 30) -> str:
    """Text 'star plot': one spoke row per parameter (Figure 11)."""
    if not scores_by_parameter:
        raise ReproError("no star-plot spokes to render")
    peak = max(scores_by_parameter.values()) or 1.0
    lines = []
    for name, score in scores_by_parameter.items():
        bar = "*" * max(int(score / peak * width), 0)
        lines.append(f"{name:>12s} |{bar:<{width}s}| {score:.2f}")
    return "\n".join(lines)
