"""Agglomerative hierarchical clustering (for Figure 18's dendrograms).

The paper's Figure 18 heat plots carry "a dendrogram added to the top
[whose] U-shaped lines connect ... benchmarks, [with] the height of each
U represent[ing] the distance between the two objects".  This module
implements average-linkage agglomerative clustering from scratch and
derives the dendrogram leaf ordering used to arrange heat-map columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro._validation import as_2d_float_array
from repro.errors import ReproError

#: Supported linkage criteria.
LINKAGES = ("average", "single", "complete")


@dataclass(frozen=True)
class Merge:
    """One merge step: clusters ``left`` and ``right`` join at ``height``.

    Cluster ids < n refer to leaves; ids >= n refer to earlier merges
    (id n + i is the cluster created by merge step ``i``), mirroring the
    SciPy linkage-matrix convention.
    """

    left: int
    right: int
    height: float
    size: int


def _pairwise_distances(X: np.ndarray) -> np.ndarray:
    diff = X[:, None, :] - X[None, :, :]
    return np.sqrt(np.sum(diff * diff, axis=2))


def agglomerative_cluster(data, linkage: str = "average") -> List[Merge]:
    """Cluster rows of ``data`` bottom-up; returns the merge sequence.

    Parameters
    ----------
    data:
        ``(n, d)`` feature matrix (one row per object, e.g. one
        benchmark's per-configuration error vector).
    linkage:
        ``"average"`` (UPGMA, the default), ``"single"`` or
        ``"complete"``.
    """
    if linkage not in LINKAGES:
        raise ReproError(f"linkage must be one of {LINKAGES}, got {linkage!r}")
    X = as_2d_float_array(data, name="data")
    n = X.shape[0]
    if n < 2:
        raise ReproError("clustering needs at least two objects")
    dist = _pairwise_distances(X)
    np.fill_diagonal(dist, np.inf)

    # active[i] -> (cluster id, member count); distances kept in a
    # shrinking matrix indexed by position.
    ids = list(range(n))
    sizes = [1] * n
    merges: List[Merge] = []
    next_id = n
    while len(ids) > 1:
        pos = np.unravel_index(np.argmin(dist), dist.shape)
        i, j = min(pos), max(pos)
        height = float(dist[i, j])
        merges.append(Merge(left=ids[i], right=ids[j], height=height,
                            size=sizes[i] + sizes[j]))
        # Update distances of the merged cluster (placed at position i).
        for k in range(len(ids)):
            if k in (i, j):
                continue
            if linkage == "average":
                new_d = (dist[i, k] * sizes[i] + dist[j, k] * sizes[j]) / (
                    sizes[i] + sizes[j]
                )
            elif linkage == "single":
                new_d = min(dist[i, k], dist[j, k])
            else:
                new_d = max(dist[i, k], dist[j, k])
            dist[i, k] = dist[k, i] = new_d
        sizes[i] += sizes[j]
        ids[i] = next_id
        next_id += 1
        # Remove row/column j.
        dist = np.delete(np.delete(dist, j, axis=0), j, axis=1)
        del ids[j]
        del sizes[j]
    return merges


def leaf_order(merges: Sequence[Merge], n_leaves: int) -> List[int]:
    """Dendrogram left-to-right leaf ordering.

    Similar objects end up adjacent — the ordering used for the heat-map
    columns in Figure 18.
    """
    children = {}
    for step, m in enumerate(merges):
        children[n_leaves + step] = (m.left, m.right)

    def expand(node: int) -> List[int]:
        if node < n_leaves:
            return [node]
        left, right = children[node]
        return expand(left) + expand(right)

    root = n_leaves + len(merges) - 1
    order = expand(root)
    if sorted(order) != list(range(n_leaves)):
        raise ReproError("merge sequence does not cover all leaves")
    return order


def dendrogram_text(merges: Sequence[Merge], labels: Sequence[str],
                    width: int = 60) -> str:
    """A compact text rendering of the merge sequence (heights scaled)."""
    if not merges:
        return ""
    max_h = max(m.height for m in merges) or 1.0
    lines = []
    for m in merges:
        bar = "-" * max(int(m.height / max_h * width), 1)
        left = labels[m.left] if m.left < len(labels) else f"<{m.left}>"
        right = labels[m.right] if m.right < len(labels) else f"<{m.right}>"
        lines.append(f"{left:>12s} + {right:<12s} |{bar} {m.height:.3g}")
    return "\n".join(lines)
