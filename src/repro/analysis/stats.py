"""Aggregation helpers for experiment results.

Bridges raw per-configuration error arrays and the summaries the paper
reports: per-benchmark boxplot statistics (Figure 8), overall medians
("an overall median error across all benchmarks of 2.3 percent") and
tabulated sweeps (Figures 9/10/19).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.metrics import BoxplotStats, boxplot_stats
from repro.errors import ReproError


@dataclass(frozen=True)
class DomainSummary:
    """Per-domain accuracy summary across benchmarks."""

    domain: str
    per_benchmark: Dict[str, BoxplotStats]
    overall_median: float
    overall_max: float

    def benchmark_median(self, benchmark: str) -> float:
        """Median error of one benchmark."""
        if benchmark not in self.per_benchmark:
            raise ReproError(
                f"no data for benchmark {benchmark!r}; have "
                f"{sorted(self.per_benchmark)}"
            )
        return self.per_benchmark[benchmark].median

    @property
    def best_benchmark(self) -> str:
        """Benchmark with the lowest median error."""
        return min(self.per_benchmark, key=lambda b: self.per_benchmark[b].median)

    @property
    def worst_benchmark(self) -> str:
        """Benchmark with the highest median error."""
        return max(self.per_benchmark, key=lambda b: self.per_benchmark[b].median)


def domain_summary(domain: str,
                   errors_by_benchmark: Dict[str, Sequence[float]],
                   ) -> DomainSummary:
    """Summarize per-configuration errors for one metric domain."""
    if not errors_by_benchmark:
        raise ReproError("errors_by_benchmark is empty")
    per_benchmark = {
        bench: boxplot_stats(np.asarray(errors, dtype=float))
        for bench, errors in errors_by_benchmark.items()
    }
    pooled = np.concatenate([
        np.asarray(errors, dtype=float)
        for errors in errors_by_benchmark.values()
    ])
    return DomainSummary(
        domain=domain,
        per_benchmark=per_benchmark,
        overall_median=float(np.median(pooled)),
        overall_max=float(pooled.max()),
    )


def benchmark_table(summary: DomainSummary) -> List[Tuple[str, float, float, float, float]]:
    """Rows ``(benchmark, median, q1, q3, whisker_high)`` for rendering."""
    rows = []
    for bench in sorted(summary.per_benchmark):
        s = summary.per_benchmark[bench]
        rows.append((bench, s.median, s.q1, s.q3, s.whisker_high))
    return rows


def sweep_table(sweep_values: Sequence, medians_by_domain: Dict[str, Sequence[float]],
                ) -> List[Tuple]:
    """Rows for a parameter sweep (Figures 9/10/19): one row per value."""
    n = len(sweep_values)
    for domain, series in medians_by_domain.items():
        if len(series) != n:
            raise ReproError(
                f"domain {domain!r} has {len(series)} entries for "
                f"{n} sweep values"
            )
    domains = sorted(medians_by_domain)
    rows = []
    for i, value in enumerate(sweep_values):
        rows.append(tuple([value] + [medians_by_domain[d][i] for d in domains]))
    return rows
