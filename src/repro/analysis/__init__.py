"""Result analysis and terminal rendering.

``stats``
    Aggregation helpers turning per-configuration errors into the
    paper's boxplot/median summaries.
``cluster``
    From-scratch agglomerative clustering for the Figure 18 heat-map
    dendrograms.
``render``
    ASCII tables, sparklines, boxplots, star plots and heat maps — the
    offline stand-ins for the paper's figures.
"""

from repro.analysis.cluster import agglomerative_cluster, leaf_order
from repro.analysis.stats import domain_summary, benchmark_table
from repro.analysis.render import (
    render_table,
    sparkline,
    render_boxplot_rows,
    render_heatmap,
    render_star,
)

__all__ = [
    "agglomerative_cluster",
    "leaf_order",
    "domain_summary",
    "benchmark_table",
    "render_table",
    "sparkline",
    "render_boxplot_rows",
    "render_heatmap",
    "render_star",
]
