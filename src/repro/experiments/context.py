"""Shared experiment context: datasets and models, built once.

Most figures consume the same underlying data — the 200-train/50-test
sweep per benchmark and the per-domain wavelet neural networks.  The
context builds each piece lazily and caches it, so running every bench
in one pytest session costs one sweep, not fourteen.

Two scales are provided:

``Scale.paper()``
    Exactly the paper's setup: 200 train / 50 test configurations, all
    12 benchmarks everywhere, 128 samples.
``Scale.quick()``
    Identical sampling but trimmed benchmark lists for the two most
    model-hungry sweeps (Figures 9 and 10), keeping a full bench run in
    minutes.  Select with ``REPRO_SCALE=quick|paper`` (default: paper
    for the library, quick for the benches).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.metrics import pooled_nmse_percent
from repro.core.predictor import WaveletNeuralPredictor
from repro.dse.dataset import DynamicsDataset
from repro.dse.runner import SweepPlan, SweepRunner
from repro.dse.space import DesignSpace, paper_design_space
from repro.engine import ExecutionEngine, create_engine
from repro.errors import ExperimentError
from repro.workloads.spec2000 import BENCHMARK_NAMES

#: Domains with predictive models in the evaluation.
EVAL_DOMAINS = ("cpi", "power", "avf")


@dataclass(frozen=True)
class Scale:
    """Scope knobs for experiment execution."""

    name: str
    n_train: int = 200
    n_test: int = 50
    n_samples: int = 128
    n_coefficients: int = 16
    benchmarks: Tuple[str, ...] = BENCHMARK_NAMES
    fig9_benchmarks: Tuple[str, ...] = BENCHMARK_NAMES
    fig10_benchmarks: Tuple[str, ...] = BENCHMARK_NAMES
    seed: int = 0

    @classmethod
    def paper(cls) -> "Scale":
        """The paper's full setup."""
        return cls(name="paper")

    @classmethod
    def quick(cls) -> "Scale":
        """Full fidelity for single-dataset figures; trimmed benchmark
        lists for the coefficient/sampling sweeps."""
        return cls(
            name="quick",
            fig9_benchmarks=("bzip2", "gcc", "mcf", "swim", "twolf", "vpr"),
            fig10_benchmarks=("gcc", "mcf", "swim", "vpr"),
        )

    @classmethod
    def from_env(cls, default: str = "paper") -> "Scale":
        """Scale selected by the ``REPRO_SCALE`` environment variable."""
        name = os.environ.get("REPRO_SCALE", default).lower()
        if name == "paper":
            return cls.paper()
        if name == "quick":
            return cls.quick()
        raise ExperimentError(
            f"REPRO_SCALE must be 'paper' or 'quick', got {name!r}"
        )


def engine_from_env(jobs: Optional[int] = None,
                    cache_dir=None,
                    cache_max_bytes: Optional[int] = None,
                    on_result=None,
                    shm: Optional[bool] = None,
                    hosts=None,
                    checkpoint_every: Optional[int] = None,
                    checkpoint_dir=None) -> ExecutionEngine:
    """Build an engine from environment knobs, with optional overrides.

    ``REPRO_JOBS`` selects the worker-process count (parallel sweep
    execution when > 1), ``REPRO_CACHE_DIR`` enables the on-disk result
    cache, ``REPRO_CACHE_MAX_BYTES`` caps its size (mtime-LRU
    eviction, ties broken by filename), ``REPRO_SHM`` toggles the
    zero-copy shared-memory result transport (default on), and
    ``REPRO_HOSTS`` (comma-separated ``host:port`` of ``repro worker
    serve`` processes) dispatches sweeps to remote machines.  Explicit
    arguments (the CLI's ``--jobs`` / ``--cache-dir`` /
    ``--cache-max-bytes`` / ``--shm`` / ``--hosts`` flags) take
    precedence over the environment.  This function only *reads* the
    environment — checkpoint and host settings are resolved here into
    explicit engine configuration that travels inside the pickled jobs
    (so ``REPRO_CHECKPOINT_EVERY`` works on remote hosts whose own
    environment lacks it), never through ``os.environ`` mutation.
    """
    from repro.engine.remote import hosts_from_env, parse_hosts

    if jobs is None:
        jobs_env = os.environ.get("REPRO_JOBS", "").strip()
        try:
            jobs = int(jobs_env) if jobs_env else None
        except ValueError:
            raise ExperimentError(
                f"REPRO_JOBS must be an integer, got {jobs_env!r}"
            )
    if cache_dir is None:
        cache_dir = os.environ.get("REPRO_CACHE_DIR", "").strip() or None
    if cache_max_bytes is None:
        cap_env = os.environ.get("REPRO_CACHE_MAX_BYTES", "").strip()
        try:
            cache_max_bytes = int(cap_env) if cap_env else None
        except ValueError:
            raise ExperimentError(
                f"REPRO_CACHE_MAX_BYTES must be an integer, got {cap_env!r}"
            )
    if hosts is None:
        hosts = hosts_from_env()
    elif isinstance(hosts, str):
        hosts = parse_hosts(hosts)
    if checkpoint_every is None:
        every_env = os.environ.get("REPRO_CHECKPOINT_EVERY", "").strip()
        if every_env:
            try:
                checkpoint_every = int(every_env)
            except ValueError:
                raise ExperimentError(
                    f"REPRO_CHECKPOINT_EVERY must be an integer, "
                    f"got {every_env!r}"
                )
    if checkpoint_every and checkpoint_dir is None:
        # Pin the directory too: a remote worker must not fall back to
        # its own (different) environment for where snapshots live.
        checkpoint_dir = (os.environ.get("REPRO_CHECKPOINT_DIR", "").strip()
                          or (str(Path(cache_dir) / "checkpoints")
                              if cache_dir else ".repro-checkpoints"))
    return create_engine(jobs=jobs, cache_dir=cache_dir,
                         cache_max_bytes=cache_max_bytes,
                         on_result=on_result, shm=shm, hosts=hosts,
                         checkpoint_every=checkpoint_every,
                         checkpoint_dir=checkpoint_dir)


class ExperimentContext:
    """Lazily-built, cached datasets and models for all experiments.

    Parameters
    ----------
    scale:
        Scope knobs; defaults to the ``REPRO_SCALE`` environment.
    engine:
        Execution engine shared by every sweep this context runs;
        defaults to :func:`engine_from_env` (``REPRO_JOBS`` /
        ``REPRO_CACHE_DIR``).
    """

    def __init__(self, scale: Optional[Scale] = None,
                 engine: Optional[ExecutionEngine] = None):
        self.scale = scale or Scale.from_env()
        self.engine = engine or engine_from_env()
        self.space = paper_design_space()
        self.dvm_space = self.space.with_dvm_parameter()
        self._datasets: Dict[Tuple, Tuple[DynamicsDataset, DynamicsDataset]] = {}
        self._models: Dict[Tuple, WaveletNeuralPredictor] = {}

    # ------------------------------------------------------------------
    # Datasets
    # ------------------------------------------------------------------
    def _dataset_key(self, benchmark: str, n_samples: int, dvm: bool,
                     dvm_threshold: float) -> Tuple:
        return (benchmark, n_samples, dvm, dvm_threshold if dvm else None)

    def dataset(self, benchmark: str, n_samples: Optional[int] = None,
                dvm: bool = False, dvm_threshold: float = 0.3,
                ) -> Tuple[DynamicsDataset, DynamicsDataset]:
        """(train, test) datasets for one benchmark.

        With ``dvm=True`` the design space gains the paper's tenth
        parameter (DVM on/off at the given threshold); test
        configurations are sampled over the extended space too.
        """
        n_samples = n_samples or self.scale.n_samples
        key = self._dataset_key(benchmark, n_samples, dvm, dvm_threshold)
        if key not in self._datasets:
            for _ in self.iter_datasets((benchmark,), n_samples, dvm,
                                        dvm_threshold):
                pass
        return self._datasets[key]

    def prefetch(self, benchmarks: Sequence[str],
                 n_samples: Optional[int] = None, dvm: bool = False,
                 dvm_threshold: float = 0.3) -> None:
        """Build several benchmarks' (train, test) datasets as one batch.

        Figure drivers that iterate benchmarks call this first: all the
        missing sweeps are submitted together, so a parallel engine
        stays saturated across benchmark boundaries instead of draining
        at the tail of each per-benchmark batch.
        """
        for _ in self.iter_datasets(benchmarks, n_samples, dvm,
                                    dvm_threshold):
            pass

    def iter_datasets(self, benchmarks: Sequence[str],
                      n_samples: Optional[int] = None, dvm: bool = False,
                      dvm_threshold: float = 0.3) -> Iterator[str]:
        """Yield benchmark names as their (train, test) datasets land.

        Already-built benchmarks yield first; the rest have their
        train+test sweeps submitted as **one** engine batch and yield in
        sweep-completion order, each one's datasets stored in the
        context before its name is yielded.  Consumers can therefore fit
        models for finished benchmarks while the remaining benchmarks
        are still simulating — the streaming overlap the ROADMAP's
        "async streaming sweeps" item asks for.
        """
        n_samples = n_samples or self.scale.n_samples
        missing: List[str] = []
        for bench in dict.fromkeys(benchmarks):  # de-dup, keep order
            key = self._dataset_key(bench, n_samples, dvm, dvm_threshold)
            if key in self._datasets:
                yield bench
            else:
                missing.append(bench)
        if not missing:
            return
        space = self.dvm_space if dvm else self.space
        plan = SweepPlan(space=space, n_train=self.scale.n_train,
                         n_test=self.scale.n_test, seed=self.scale.seed)
        # Every benchmark shares one sampling plan, so the configuration
        # lists are drawn once and shared across all submitted sweeps.
        train_cfgs, test_cfgs = plan.sample()
        if dvm:
            train_cfgs = [
                c.with_dvm(c.dvm_enabled, dvm_threshold) for c in train_cfgs
            ]
            test_cfgs = [
                c.with_dvm(c.dvm_enabled, dvm_threshold) for c in test_cfgs
            ]
        runner = SweepRunner(n_samples=n_samples, engine=self.engine)
        requests = [(bench, [train_cfgs, test_cfgs]) for bench in missing]
        partial: Dict[int, Dict[int, DynamicsDataset]] = {}
        for request_index, group_index, ds in runner.run_grid_streaming(
                requests, space):
            groups = partial.setdefault(request_index, {})
            groups[group_index] = ds
            if len(groups) == 2:
                bench = missing[request_index]
                key = self._dataset_key(bench, n_samples, dvm, dvm_threshold)
                self._datasets[key] = (groups[0], groups[1])
                yield bench

    # ------------------------------------------------------------------
    # Models
    # ------------------------------------------------------------------
    def model(self, benchmark: str, domain: str,
              n_coefficients: Optional[int] = None,
              n_samples: Optional[int] = None,
              scheme: str = "magnitude", dvm: bool = False,
              dvm_threshold: float = 0.3) -> WaveletNeuralPredictor:
        """A fitted wavelet neural network for (benchmark, domain)."""
        n_coefficients = n_coefficients or self.scale.n_coefficients
        n_samples = n_samples or self.scale.n_samples
        key = (benchmark, domain, n_coefficients, n_samples, scheme,
               dvm, dvm_threshold if dvm else None)
        if key not in self._models:
            train, _ = self.dataset(benchmark, n_samples, dvm, dvm_threshold)
            model = WaveletNeuralPredictor(
                n_coefficients=n_coefficients, scheme=scheme,
            ).fit(train.design_matrix(), train.domain(domain))
            self._models[key] = model
        return self._models[key]

    # ------------------------------------------------------------------
    # Errors (the canonical MSE%)
    # ------------------------------------------------------------------
    def test_errors(self, benchmark: str, domain: str,
                    n_coefficients: Optional[int] = None,
                    n_samples: Optional[int] = None,
                    scheme: str = "magnitude", dvm: bool = False,
                    dvm_threshold: float = 0.3) -> np.ndarray:
        """Per-test-configuration MSE% for one (benchmark, domain)."""
        model = self.model(benchmark, domain, n_coefficients, n_samples,
                           scheme, dvm, dvm_threshold)
        _, test = self.dataset(benchmark, n_samples, dvm, dvm_threshold)
        predicted = model.predict(test.design_matrix())
        return pooled_nmse_percent(test.domain(domain), predicted)

    def errors_by_benchmark(self, domain: str,
                            benchmarks: Optional[Sequence[str]] = None,
                            n_coefficients: Optional[int] = None,
                            n_samples: Optional[int] = None,
                            ) -> Dict[str, np.ndarray]:
        """MSE% arrays per benchmark for one domain.

        All benchmarks' train+test sweeps are submitted as one engine
        batch; each benchmark's models are fitted and scored the moment
        its sweep drains, overlapping fitting with the simulation tail
        of the remaining benchmarks.  The returned dict is keyed in the
        requested benchmark order regardless of completion order.
        """
        benchmarks = tuple(benchmarks or self.scale.benchmarks)
        errors: Dict[str, np.ndarray] = {}
        for bench in self.iter_datasets(benchmarks, n_samples):
            errors[bench] = self.test_errors(bench, domain, n_coefficients,
                                             n_samples)
        return {bench: errors[bench] for bench in benchmarks}


_CONTEXT: Optional[ExperimentContext] = None


def get_context() -> ExperimentContext:
    """The process-wide shared context (created on first use)."""
    global _CONTEXT
    if _CONTEXT is None:
        _CONTEXT = ExperimentContext()
    return _CONTEXT


def reset_context(scale: Optional[Scale] = None) -> ExperimentContext:
    """Replace the shared context (used by tests and benches)."""
    global _CONTEXT
    _CONTEXT = ExperimentContext(scale)
    return _CONTEXT
