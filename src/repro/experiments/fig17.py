"""Figure 17: forecasting DVM success/failure across configurations.

The paper's case study: with the DVM target at IQ AVF = 0.3, the same
policy *succeeds* under one microarchitecture configuration (scenario 1)
and *fails* under another (scenario 2) — and the DVM-aware predictive
models forecast both outcomes without new simulations.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.render import render_trace_pair
from repro.core.metrics import threshold_violation_fraction
from repro.experiments.registry import ExperimentResult, ExperimentTable, register

#: The case study's DVM target.
DVM_TARGET = 0.3

#: A configuration counts as meeting the target when no more than this
#: fraction of samples violates it (short sampling-lag spikes allowed).
SUCCESS_TOLERANCE = 0.05


@register("fig17", "DVM scenario forecasting (gcc)", "Figure 17")
def run_fig17(ctx) -> ExperimentResult:
    """Find success/failure scenarios and check the model forecasts them."""
    train, test = ctx.dataset("gcc", dvm=True, dvm_threshold=DVM_TARGET)
    model = ctx.model("gcc", "iq_avf", dvm=True, dvm_threshold=DVM_TARGET)
    X_test = test.design_matrix()
    actual = test.domain("iq_avf")
    predicted = model.predict(X_test)

    dvm_on = [i for i, c in enumerate(test.configs) if c.dvm_enabled]
    if not dvm_on:
        raise AssertionError("test sample contains no DVM-enabled configs")

    scenarios = []
    for i in dvm_on:
        viol_sim = threshold_violation_fraction(actual[i], DVM_TARGET)
        viol_pred = threshold_violation_fraction(predicted[i], DVM_TARGET)
        scenarios.append((i, viol_sim, viol_pred))
    # Scenario 1: the cleanest success; scenario 2: the clearest failure.
    success = min(scenarios, key=lambda s: s[1])
    failure = max(scenarios, key=lambda s: s[1])

    rows = []
    text = []
    agreements = 0
    for label, (idx, viol_sim, viol_pred) in (("scenario 1 (success)", success),
                                              ("scenario 2 (failure)", failure)):
        sim_ok = viol_sim <= SUCCESS_TOLERANCE
        pred_ok = viol_pred <= SUCCESS_TOLERANCE
        agreements += int(sim_ok == pred_ok)
        cfg = test.configs[idx]
        rows.append([label, idx, viol_sim * 100.0, viol_pred * 100.0,
                     "meets target" if sim_ok else "violates target",
                     "meets target" if pred_ok else "violates target"])
        text.append(
            f"{label}: {cfg.describe()}\n"
            + render_trace_pair(actual[idx], predicted[idx], "IQ AVF")
            + f"\n  DVM target {DVM_TARGET}: simulated violation "
              f"{viol_sim:.1%}, predicted {viol_pred:.1%}"
        )

    # Forecast-quality across every DVM-enabled test configuration.
    correct = sum(
        int((vs <= SUCCESS_TOLERANCE) == (vp <= SUCCESS_TOLERANCE))
        for _, vs, vp in scenarios
    )
    rows.append(["all DVM-on test configs", len(scenarios),
                 float("nan"), float("nan"),
                 f"{correct}/{len(scenarios)} outcomes", "forecast correctly"])

    return ExperimentResult(
        experiment_id="fig17",
        title="Workload-scenario exploration of the IQ DVM policy",
        paper_reference="Figure 17",
        tables=[ExperimentTable(
            title=f"DVM target compliance (target {DVM_TARGET})",
            headers=("scenario", "config #", "sim violation %",
                     "pred violation %", "simulated outcome",
                     "predicted outcome"),
            rows=rows,
        )],
        text=text,
        notes="the predictor forecasts whether the DVM policy meets its "
              "goal under each configuration",
    )
