"""Figure 19: IQ AVF prediction accuracy across DVM thresholds.

"The results suggest that our predictive models work well when
different DVM targets are considered" — IQ AVF MSE stays small for
thresholds 0.2, 0.3 and 0.5.
"""

from __future__ import annotations

import numpy as np

from repro.core.metrics import pooled_nmse_percent
from repro.experiments.registry import ExperimentResult, ExperimentTable, register

#: The paper's threshold sweep.
DVM_THRESHOLDS = (0.2, 0.3, 0.5)


@register("fig19", "IQ AVF accuracy across DVM thresholds", "Figure 19")
def run_fig19(ctx) -> ExperimentResult:
    """Median IQ-AVF error per benchmark per DVM threshold.

    Two conventions are reported: the repository-wide pooled MSE%
    (DVM-clamped traces have little variance, which inflates it) and the
    raw MSE in squared AVF percentage points — the unit the paper's
    Figure 19 axis (0-0.5) corresponds to.
    """
    # Per threshold, all benchmarks' DVM sweeps go up as one engine batch.
    for threshold in DVM_THRESHOLDS:
        ctx.prefetch(ctx.scale.benchmarks, dvm=True, dvm_threshold=threshold)
    rows_pooled = []
    rows_raw = []
    for bench in ctx.scale.benchmarks:
        row_p = [bench]
        row_r = [bench]
        for threshold in DVM_THRESHOLDS:
            model = ctx.model(bench, "iq_avf", dvm=True,
                              dvm_threshold=threshold)
            _, test = ctx.dataset(bench, dvm=True, dvm_threshold=threshold)
            idx = [i for i, c in enumerate(test.configs) if c.dvm_enabled]
            actual = test.domain("iq_avf")[idx]
            predicted = model.predict(test.design_matrix()[idx])
            row_p.append(float(np.median(pooled_nmse_percent(actual, predicted))))
            # MSE of AVF expressed in percentage points (x100), squared.
            raw = np.median(np.mean(((actual - predicted) * 100.0) ** 2,
                                    axis=1))
            row_r.append(float(raw) / 100.0)
        rows_pooled.append(row_p)
        rows_raw.append(row_r)
    headers = ("benchmark",) + tuple(f"thr={t}" for t in DVM_THRESHOLDS)
    return ExperimentResult(
        experiment_id="fig19",
        title="IQ AVF dynamics prediction accuracy across DVM thresholds",
        paper_reference="Figure 19",
        tables=[
            ExperimentTable("Median IQ AVF raw MSE (scaled, paper's axis)",
                            headers, rows_raw),
            ExperimentTable("Median IQ AVF pooled MSE%", headers, rows_pooled),
        ],
        notes="accuracy holds across DVM targets",
    )
