"""Figures 12-13: threshold-based execution scenario classification.

Thresholds Q1/Q2/Q3 sit at quarter points between each trace's min and
max (Figure 12); the directional symmetry (DS) metric counts samples
where prediction and simulation agree on the side of the threshold.
Figure 13 plots the directional *asymmetry* (1-DS), which stays below
~10 % for every benchmark, domain and threshold.
"""

from __future__ import annotations

import numpy as np

from repro.core.metrics import scenario_asymmetries
from repro.experiments.context import EVAL_DOMAINS
from repro.experiments.registry import ExperimentResult, ExperimentTable, register


@register("fig13", "Threshold-based scenario classification", "Figure 13")
def run_fig13(ctx) -> ExperimentResult:
    """Mean directional asymmetry per benchmark/domain/threshold."""
    # All benchmarks' sweeps as one engine batch (keeps a pool saturated).
    ctx.prefetch(ctx.scale.benchmarks)
    tables = []
    worst = 0.0
    for domain in EVAL_DOMAINS:
        rows = []
        for bench in ctx.scale.benchmarks:
            model = ctx.model(bench, domain)
            _, test = ctx.dataset(bench)
            actual = test.domain(domain)
            predicted = model.predict(test.design_matrix())
            asyms = np.array([
                scenario_asymmetries(a, p) for a, p in zip(actual, predicted)
            ])
            means = asyms.mean(axis=0)
            worst = max(worst, float(means.max()))
            rows.append([bench, float(means[0]), float(means[1]),
                         float(means[2])])
        tables.append(ExperimentTable(
            title=f"{domain.upper()} directional asymmetry % (1-DS)",
            headers=("benchmark", "Q1", "Q2", "Q3"),
            rows=rows,
        ))
    return ExperimentResult(
        experiment_id="fig13",
        title="Threshold-based workload execution scenario prediction",
        paper_reference="Figures 12-13",
        tables=tables,
        notes=f"worst mean asymmetry {worst:.1f}% (paper: below ~10% "
              f"everywhere; our piecewise-flat synthetic traces produce a "
              f"heavier tail when a whole phase sits on a threshold — see "
              f"EXPERIMENTS.md)",
    )
