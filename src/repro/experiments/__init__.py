"""Experiment drivers: one module per paper table/figure.

Each experiment registers itself with :mod:`repro.experiments.registry`
and produces an :class:`~repro.experiments.registry.ExperimentResult`
whose tables hold the same rows/series the paper reports.  The
benchmarks under ``benchmarks/`` are thin wrappers that run these
drivers and print their output.

Usage
-----
>>> from repro.experiments import run_experiment
>>> result = run_experiment("fig9")          # doctest: +SKIP
>>> print(result.render())                   # doctest: +SKIP
"""

from repro.experiments.registry import (
    ExperimentResult,
    get_experiment,
    list_experiments,
    run_experiment,
)
from repro.experiments.context import ExperimentContext, Scale, get_context

# Importing the driver modules registers them.
from repro.experiments import (  # noqa: F401  (registration side effect)
    table1_2,
    fig01,
    fig04,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig13,
    fig14,
    fig17,
    fig18,
    fig19,
    ablations,
)

__all__ = [
    "ExperimentResult",
    "ExperimentContext",
    "Scale",
    "get_context",
    "get_experiment",
    "list_experiments",
    "run_experiment",
]
