"""Figure 10: MSE trend with increased sampling resolution.

With the coefficient budget fixed at 16, the paper samples each trace
at 64-1024 points: "As the sampling frequency increases, using the same
amount of wavelet coefficients is less accurate ... the increase of MSE
is not significant."
"""

from __future__ import annotations

import numpy as np

from repro.experiments.context import EVAL_DOMAINS
from repro.experiments.registry import ExperimentResult, ExperimentTable, register

#: The paper's sweep points.
SAMPLE_COUNTS = (64, 128, 256, 512, 1024)


@register("fig10", "MSE vs sampling resolution", "Figure 10")
def run_fig10(ctx) -> ExperimentResult:
    """Sweep trace resolution at k=16."""
    benchmarks = ctx.scale.fig10_benchmarks
    rows = []
    for n_samples in SAMPLE_COUNTS:
        # Per resolution, all benchmarks' sweeps go up as one batch.
        ctx.prefetch(benchmarks, n_samples=n_samples)
        row = [n_samples]
        for domain in EVAL_DOMAINS:
            pooled = np.concatenate([
                ctx.test_errors(bench, domain, n_coefficients=16,
                                n_samples=n_samples)
                for bench in benchmarks
            ])
            row.append(float(np.median(pooled)))
        rows.append(row)
    return ExperimentResult(
        experiment_id="fig10",
        title="MSE trend with increased sampling frequency (k=16)",
        paper_reference="Figure 10",
        tables=[ExperimentTable(
            title=f"Median MSE% across {len(benchmarks)} benchmarks",
            headers=("n_samples",) + tuple(d.upper() for d in EVAL_DOMAINS),
            rows=rows,
        )],
        notes="higher resolutions expose more fine-grain behaviour than 16 "
              "coefficients can carry, but the growth is modest",
    )
