"""Ablations and validation studies beyond the paper's figures.

``abl-selection``
    Magnitude- vs order-based coefficient selection (the paper states
    magnitude "always outperforms" order — Section 3).
``abl-baselines``
    The wavelet neural network against the "existing methods" of
    Sections 1/7: per-coefficient linear regression, the monolithic
    aggregate-only model, and a brute-force per-sample model.
``abl-wavelet``
    Transform choice: the paper's Haar convention vs orthonormal Haar
    vs Daubechies-4.
``val-backend``
    Interval-model vs detailed cycle-level simulator agreement on
    directional config sensitivities (the substitution argument in
    DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from repro.core.baselines import (
    GlobalAggregateModel,
    LinearCoefficientModel,
    PerSampleModel,
)
from repro.core.metrics import pooled_nmse_percent
from repro.core.predictor import WaveletNeuralPredictor
from repro.experiments.registry import ExperimentResult, ExperimentTable, register
from repro.uarch.params import MachineConfig, baseline_config
from repro.uarch.simulator import Simulator

#: Benchmarks used for the heavier ablations.
ABLATION_BENCHMARKS = ("gcc", "mcf", "swim", "crafty")


@register("abl-selection", "Coefficient selection scheme ablation",
          "Section 3 claim")
def run_selection_ablation(ctx) -> ExperimentResult:
    """Magnitude vs order selection at several coefficient budgets."""
    ctx.prefetch(ABLATION_BENCHMARKS)
    rows = []
    wins = 0
    total = 0
    for k in (8, 16, 32):
        for bench in ABLATION_BENCHMARKS:
            med = {}
            for scheme in ("magnitude", "order"):
                errors = ctx.test_errors(bench, "cpi", n_coefficients=k,
                                         scheme=scheme)
                med[scheme] = float(np.median(errors))
            rows.append([k, bench, med["magnitude"], med["order"],
                         "magnitude" if med["magnitude"] <= med["order"]
                         else "order"])
            wins += int(med["magnitude"] <= med["order"])
            total += 1
    return ExperimentResult(
        experiment_id="abl-selection",
        title="Magnitude-based vs order-based coefficient selection (CPI)",
        paper_reference="Section 3",
        tables=[ExperimentTable(
            title="Median MSE% by selection scheme",
            headers=("k", "benchmark", "magnitude", "order", "winner"),
            rows=rows,
        )],
        notes=f"magnitude wins {wins}/{total} cases (paper: always)",
    )


@register("abl-baselines", "Baseline model comparison", "Sections 1/7 claims")
def run_baseline_ablation(ctx) -> ExperimentResult:
    """Wavelet NN vs linear / aggregate-only / per-sample baselines."""
    ctx.prefetch(ABLATION_BENCHMARKS)
    rows = []
    for bench in ABLATION_BENCHMARKS:
        train, test = ctx.dataset(bench)
        Xtr, Xte = train.design_matrix(), test.design_matrix()
        ytr, yte = train.domain("cpi"), test.domain("cpi")
        models = {
            "wavelet-nn (k=16)": WaveletNeuralPredictor(n_coefficients=16),
            "linear coeffs (k=16)": LinearCoefficientModel(n_coefficients=16),
            "global aggregate": GlobalAggregateModel(),
            "per-sample RBF": PerSampleModel(),
        }
        for name, model in models.items():
            model.fit(Xtr, ytr)
            errors = pooled_nmse_percent(yte, model.predict(Xte))
            n_nets = {"wavelet-nn (k=16)": 16, "linear coeffs (k=16)": 0,
                      "global aggregate": 1,
                      "per-sample RBF": ytr.shape[1]}[name]
            rows.append([bench, name, float(np.median(errors)),
                         float(errors.max()), n_nets])
    return ExperimentResult(
        experiment_id="abl-baselines",
        title="Dynamics prediction: wavelet NN vs existing methods (CPI)",
        paper_reference="Sections 1/7",
        tables=[ExperimentTable(
            title="Median/max MSE% and model complexity",
            headers=("benchmark", "model", "median MSE%", "max MSE%",
                     "# networks"),
            rows=rows,
        )],
        notes="the monolithic aggregate model cannot express dynamics; the "
              "per-sample model needs 8x the networks of the wavelet model",
    )


@register("abl-wavelet", "Wavelet family/convention ablation",
          "Section 2.1 design choice")
def run_wavelet_ablation(ctx) -> ExperimentResult:
    """Paper Haar vs orthonormal Haar vs Daubechies-4 at k=16."""
    ctx.prefetch(ABLATION_BENCHMARKS)
    variants = (
        ("haar/paper", dict(wavelet="haar", convention="paper")),
        ("haar/orthonormal", dict(wavelet="haar", convention="orthonormal")),
        ("db4", dict(wavelet="db4", convention="orthonormal")),
    )
    rows = []
    for bench in ABLATION_BENCHMARKS:
        train, test = ctx.dataset(bench)
        Xtr, Xte = train.design_matrix(), test.design_matrix()
        ytr, yte = train.domain("cpi"), test.domain("cpi")
        for name, kwargs in variants:
            model = WaveletNeuralPredictor(n_coefficients=16, **kwargs)
            model.fit(Xtr, ytr)
            errors = pooled_nmse_percent(yte, model.predict(Xte))
            rows.append([bench, name, float(np.median(errors)),
                         float(errors.max())])
    return ExperimentResult(
        experiment_id="abl-wavelet",
        title="Transform choice ablation (CPI, k=16)",
        paper_reference="Section 2.1",
        tables=[ExperimentTable(
            title="Median/max MSE% per wavelet",
            headers=("benchmark", "wavelet", "median MSE%", "max MSE%"),
            rows=rows,
        )],
        notes="the Haar conventions are near-equivalent; db4 trades "
              "edge sharpness for smoothness",
    )


@register("val-backend", "Interval vs detailed backend validation",
          "DESIGN.md substitution argument")
def run_backend_validation(ctx) -> ExperimentResult:
    """Directional agreement between the two simulation backends."""
    weak = MachineConfig(fetch_width=2, rob_size=96, iq_size=32, lsq_size=16,
                         l2_size_kb=256, l2_latency=20, il1_size_kb=8,
                         dl1_size_kb=8, dl1_latency=4)
    strong = MachineConfig(fetch_width=16, rob_size=160, iq_size=128,
                           lsq_size=64, l2_size_kb=4096, l2_latency=8,
                           il1_size_kb=64, dl1_size_kb=64, dl1_latency=1)
    configs = {"weak": weak, "baseline": baseline_config(), "strong": strong}
    interval = Simulator(backend="interval", noise=False)
    detailed = Simulator(backend="detailed")
    rows = []
    agree = 0
    checks = 0
    for bench in ("gcc", "mcf", "swim"):
        means = {}
        for label, cfg in configs.items():
            r_int = interval.run(bench, cfg, n_samples=32)
            r_det = detailed.run(bench, cfg, n_samples=16,
                                 instructions_per_sample=400)
            means[label] = (r_int.aggregate("cpi"), r_det.aggregate("cpi"),
                            r_int.aggregate("power"), r_det.aggregate("power"))
            rows.append([bench, label] + [float(v) for v in means[label]])
        for a, b in (("weak", "baseline"), ("baseline", "strong")):
            checks += 2
            agree += int((means[a][0] > means[b][0])
                         == (means[a][1] > means[b][1]))   # CPI ordering
            agree += int((means[a][2] < means[b][2])
                         == (means[a][3] < means[b][3]))   # power ordering
    return ExperimentResult(
        experiment_id="val-backend",
        title="Interval model vs detailed simulator: directional agreement",
        paper_reference="DESIGN.md",
        tables=[ExperimentTable(
            title="Mean CPI / power per backend",
            headers=("benchmark", "config", "CPI interval", "CPI detailed",
                     "power interval", "power detailed"),
            rows=rows,
        )],
        notes=f"config-ordering agreement: {agree}/{checks} checks",
    )
