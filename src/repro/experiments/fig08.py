"""Figure 8: MSE boxplots of workload dynamics prediction.

The paper's headline accuracy result: per-benchmark boxplots of the
prediction MSE (%) over the 50 test configurations, for the
performance (CPI), power and reliability (AVF) domains.  Reported
reference points: CPI median errors from 0.5 % (swim) to 8.6 % (mcf)
with an overall median of 2.3 % and ~30 % maxima; power slightly less
accurate (overall median 2.6 %, maxima ~35 %); reliability errors much
smaller.
"""

from __future__ import annotations

from repro.analysis.render import render_boxplot_rows
from repro.analysis.stats import benchmark_table, domain_summary
from repro.experiments.context import EVAL_DOMAINS
from repro.experiments.registry import ExperimentResult, ExperimentTable, register


@register("fig8", "MSE boxplots of dynamics prediction", "Figure 8")
def run_fig8(ctx) -> ExperimentResult:
    """Fit and evaluate all (benchmark, domain) models."""
    tables = []
    text = []
    overall_rows = []
    for domain in EVAL_DOMAINS:
        errors = ctx.errors_by_benchmark(domain)
        summary = domain_summary(domain, errors)
        tables.append(ExperimentTable(
            title=f"{domain.upper()} MSE% per benchmark",
            headers=("benchmark", "median", "q1", "q3", "whisker_high"),
            rows=[list(r) for r in benchmark_table(summary)],
        ))
        text.append(f"{domain.upper()} boxplots:\n" + render_boxplot_rows(
            {b: summary.per_benchmark[b] for b in summary.per_benchmark}
        ))
        overall_rows.append([
            domain, summary.overall_median, summary.overall_max,
            summary.best_benchmark, summary.worst_benchmark,
        ])
    tables.insert(0, ExperimentTable(
        title="Overall accuracy per domain",
        headers=("domain", "overall median MSE%", "max MSE%",
                 "best benchmark", "worst benchmark"),
        rows=overall_rows,
    ))
    return ExperimentResult(
        experiment_id="fig8",
        title="Workload dynamics prediction accuracy (MSE% boxplots)",
        paper_reference="Figure 8",
        tables=tables,
        text=text,
        notes="paper reference: CPI medians 0.5-8.6% (overall 2.3%, max 30%); "
              "power overall 2.6% (max 35%); AVF much smaller",
    )
