"""Tables 1 and 2: the simulated machine and the design space."""

from __future__ import annotations

from repro.dse.space import table2_rows
from repro.experiments.registry import ExperimentResult, ExperimentTable, register
from repro.uarch.params import TABLE1_ROWS


@register("table1", "Simulated machine configuration", "Table 1")
def run_table1(ctx) -> ExperimentResult:
    """Emit the baseline machine configuration rows."""
    return ExperimentResult(
        experiment_id="table1",
        title="Simulated machine configuration",
        paper_reference="Table 1",
        tables=[ExperimentTable(
            title="Baseline machine",
            headers=("Parameter", "Configuration"),
            rows=[list(r) for r in TABLE1_ROWS],
        )],
    )


@register("table2", "Microarchitectural parameter ranges", "Table 2")
def run_table2(ctx) -> ExperimentResult:
    """Emit the train/test level sets of the 9-parameter space."""
    rows = table2_rows(ctx.space)
    return ExperimentResult(
        experiment_id="table2",
        title="Microarchitectural parameter ranges (train/test)",
        paper_reference="Table 2",
        tables=[ExperimentTable(
            title="Design space",
            headers=("Parameter", "Train levels", "Test levels", "# levels"),
            rows=[list(r) for r in rows],
        )],
        notes=f"train grid size {ctx.space.size('train')}, "
              f"test grid size {ctx.space.size('test')}",
    )
