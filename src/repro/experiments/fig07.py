"""Figure 7: stability of the magnitude-based coefficient ranking.

The magnitude-based selection scheme is only usable at unseen design
points if "the significance of the selected wavelet coefficients do[es]
not change drastically across the design space".  The paper's Figure 7
colour-maps the per-configuration magnitude ranks of gcc's 128
coefficients over 50 configurations; we reproduce the map and add the
quantitative top-k Jaccard stability.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.render import render_heatmap
from repro.core.selection import rank_map, ranking_stability
from repro.core.wavelets import dwt_batch
from repro.experiments.registry import ExperimentResult, ExperimentTable, register


@register("fig7", "Magnitude-based ranking stability", "Figure 7")
def run_fig7(ctx) -> ExperimentResult:
    """Rank maps and stability for gcc (plus summary for all benches)."""
    # All benchmarks' sweeps as one engine batch (keeps a pool saturated).
    ctx.prefetch(ctx.scale.benchmarks)
    _, test = ctx.dataset("gcc")
    coeffs = dwt_batch(test.domain("cpi"))
    ranks = rank_map(coeffs)

    stability_rows = []
    for bench in ctx.scale.benchmarks:
        _, btest = ctx.dataset(bench)
        bcoeffs = dwt_batch(btest.domain("cpi"))
        stability_rows.append([
            bench,
            ranking_stability(bcoeffs, 16),
            ranking_stability(bcoeffs, 32),
        ])

    # Render the gcc rank map with important (low-rank) coefficients dark.
    inverted = ranks.max() - ranks
    heat = render_heatmap(inverted[:, :32],
                          [f"c{i}" for i in range(ranks.shape[0])][:ranks.shape[0]],
                          [str(j) for j in range(32)])
    return ExperimentResult(
        experiment_id="fig7",
        title="Magnitude-based ranking of wavelet coefficients across configs",
        paper_reference="Figure 7",
        tables=[ExperimentTable(
            title="Top-k ranking stability (mean pairwise Jaccard)",
            headers=("benchmark", "top-16 stability", "top-32 stability"),
            rows=stability_rows,
        )],
        text=["gcc rank map (first 32 coefficient indices; dark = high rank):",
              heat],
        notes="top-ranked coefficients remain largely consistent across "
              "processor configurations",
    )
