"""Figure 9: MSE trend with the number of wavelet coefficients.

"A set of wavelet coefficients with a size of 16 combine[s] good
accuracy with low model complexity; increasing the number of wavelet
coefficients beyond this point improves error at a lower rate."
"""

from __future__ import annotations

import numpy as np

from repro.experiments.context import EVAL_DOMAINS
from repro.experiments.registry import ExperimentResult, ExperimentTable, register

#: The paper's sweep points.
COEFFICIENT_COUNTS = (16, 32, 64, 96, 128)


@register("fig9", "MSE vs number of wavelet coefficients", "Figure 9")
def run_fig9(ctx) -> ExperimentResult:
    """Sweep k over the paper's counts; average MSE% across benchmarks."""
    benchmarks = ctx.scale.fig9_benchmarks
    # One engine batch covers every benchmark (k only affects fitting).
    ctx.prefetch(benchmarks)
    rows = []
    for k in COEFFICIENT_COUNTS:
        row = [k]
        for domain in EVAL_DOMAINS:
            pooled = np.concatenate([
                ctx.test_errors(bench, domain, n_coefficients=k)
                for bench in benchmarks
            ])
            row.append(float(np.median(pooled)))
        rows.append(row)
    return ExperimentResult(
        experiment_id="fig9",
        title="MSE trend with increasing wavelet coefficient count",
        paper_reference="Figure 9",
        tables=[ExperimentTable(
            title=f"Median MSE% across {len(benchmarks)} benchmarks",
            headers=("n_coefficients",) + tuple(d.upper() for d in EVAL_DOMAINS),
            rows=rows,
        )],
        notes="errors decrease with k, with diminishing returns past 16 "
              "(the paper's chosen operating point)",
    )
