"""Figure 14: detailed scenario predictions on bzip2.

Simulation and prediction traces side by side: "The predicted results
closely track the varied program dynamic behavior in different
domains."
"""

from __future__ import annotations

import numpy as np

from repro.analysis.render import render_trace_pair
from repro.core.metrics import (
    directional_symmetry,
    pooled_nmse_percent,
    quartile_thresholds,
)
from repro.experiments.context import EVAL_DOMAINS
from repro.experiments.registry import ExperimentResult, ExperimentTable, register


@register("fig14", "Scenario prediction traces (bzip2)", "Figure 14")
def run_fig14(ctx) -> ExperimentResult:
    """Pick a representative test configuration and render the traces."""
    rows = []
    text = []
    for domain in EVAL_DOMAINS:
        model = ctx.model("bzip2", domain)
        _, test = ctx.dataset("bzip2")
        actual = test.domain(domain)
        predicted = model.predict(test.design_matrix())
        errors = pooled_nmse_percent(actual, predicted)
        # The median-accuracy configuration is the fair "typical" example.
        idx = int(np.argsort(errors)[len(errors) // 2])
        a, p = actual[idx], predicted[idx]
        q1, q2, q3 = quartile_thresholds(a)
        rows.append([
            domain, idx, float(errors[idx]),
            100.0 * directional_symmetry(a, p, q2),
        ])
        text.append(render_trace_pair(a, p, f"bzip2 {domain:>5s}"))
    return ExperimentResult(
        experiment_id="fig14",
        title="Workload execution scenario predictions on bzip2",
        paper_reference="Figure 14",
        tables=[ExperimentTable(
            title="Representative test-configuration traces",
            headers=("domain", "test config #", "MSE%", "DS@Q2 %"),
            rows=rows,
        )],
        text=text,
        notes="predicted traces closely track the simulated dynamics",
    )
