"""Figure 18: heat plots of prediction accuracy with DVM enabled.

Per-benchmark, per-test-configuration MSE of the IQ AVF and power
dynamics when the DVM policy is active, arranged as heat maps with a
dendrogram ordering the benchmarks by error-profile similarity.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.cluster import agglomerative_cluster, dendrogram_text, leaf_order
from repro.analysis.render import render_heatmap
from repro.core.metrics import pooled_nmse_percent
from repro.experiments.registry import ExperimentResult, ExperimentTable, register

#: Domains shown in the paper's two heat plots.
HEAT_DOMAINS = ("iq_avf", "power")


@register("fig18", "Accuracy heat plots with DVM enabled", "Figure 18")
def run_fig18(ctx) -> ExperimentResult:
    """Per-config error maps, clustered by benchmark similarity."""
    benches = list(ctx.scale.benchmarks)
    # All benchmarks' DVM sweeps as one engine batch.
    ctx.prefetch(benches, dvm=True)
    tables = []
    text = []
    for domain in HEAT_DOMAINS:
        error_rows = []
        for bench in benches:
            model = ctx.model(bench, domain, dvm=True)
            _, test = ctx.dataset(bench, dvm=True)
            idx = [i for i, c in enumerate(test.configs) if c.dvm_enabled]
            actual = test.domain(domain)[idx]
            predicted = model.predict(test.design_matrix()[idx])
            error_rows.append(pooled_nmse_percent(actual, predicted))
        errors = np.vstack(error_rows)            # (bench, config)

        merges = agglomerative_cluster(errors)
        order = leaf_order(merges, len(benches))
        ordered_names = [benches[i] for i in order]
        tables.append(ExperimentTable(
            title=f"{domain} MSE% with DVM (dendrogram order)",
            headers=("benchmark", "median", "max", "min"),
            rows=[[benches[i], float(np.median(errors[i])),
                   float(errors[i].max()), float(errors[i].min())]
                  for i in order],
        ))
        text.append(
            f"{domain} heat map (rows = configs in test order, "
            f"cols = benchmarks in dendrogram order):\n"
            + render_heatmap(errors[order].T[:20],
                             [f"c{i}" for i in range(min(errors.shape[1], 20))],
                             ordered_names)
        )
        text.append(f"{domain} dendrogram:\n"
                    + dendrogram_text(merges, benches))
    return ExperimentResult(
        experiment_id="fig18",
        title="IQ AVF and power prediction accuracy with DVM enabled",
        paper_reference="Figure 18",
        tables=tables,
        text=text,
        notes="power-domain accuracy is more uniform across benchmarks "
              "and configurations than IQ AVF, as in the paper",
    )
