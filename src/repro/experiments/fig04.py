"""Figures 2-4: the Haar transform example and truncated reconstruction.

Figure 2 works the Haar DWT on ``{3, 4, 20, 25, 15, 5, 20, 3}``;
Figures 3/4 sample gcc's behaviour at 64 points and resynthesize it
from the first 1, 2, 4, 8, 16 and all 64 wavelet coefficients with
increasing fidelity.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.render import render_trace_pair
from repro.core.metrics import nmse_percent
from repro.core.selection import energy_captured
from repro.core.wavelets import MultiresolutionAnalysis, haar_dwt
from repro.experiments.registry import ExperimentResult, ExperimentTable, register
from repro.uarch.params import baseline_config
from repro.uarch.simulator import Simulator

#: The paper's Figure 2 worked example.
FIGURE2_DATA = (3.0, 4.0, 20.0, 25.0, 15.0, 5.0, 20.0, 3.0)

#: Coefficient counts of Figure 4's panels (a)-(f).
FIGURE4_COUNTS = (1, 2, 4, 8, 16, 64)


@register("fig4", "Reconstruction from wavelet coefficient subsets",
          "Figures 2-4")
def run_fig4(ctx) -> ExperimentResult:
    """Verify the Figure 2 example and rebuild gcc from k coefficients."""
    coeffs = haar_dwt(FIGURE2_DATA)
    fig2_rows = [["input", ", ".join(f"{v:g}" for v in FIGURE2_DATA)],
                 ["coefficients", ", ".join(f"{v:g}" for v in coeffs)]]

    trace = Simulator().run("gcc", baseline_config(), 64).trace("ipc")
    mra = MultiresolutionAnalysis(trace)
    rows = []
    text = []
    for k in FIGURE4_COUNTS:
        approx = mra.reconstruct(range(k))  # first-k, as in Figure 4
        rows.append([
            k,
            nmse_percent(trace, approx),
            100.0 * energy_captured(mra.coefficients, k, "order"),
        ])
        if k in (4, 64):
            text.append(render_trace_pair(trace, approx, f"gcc k={k:>2d}"))
    return ExperimentResult(
        experiment_id="fig4",
        title="Workload dynamics synthesized from wavelet coefficient subsets",
        paper_reference="Figures 2-4",
        tables=[
            ExperimentTable("Figure 2 worked example",
                            ("item", "values"), fig2_rows),
            ExperimentTable(
                "gcc reconstruction fidelity vs coefficient count",
                ("k coefficients", "reconstruction MSE% (trace var)",
                 "energy captured %"),
                rows,
            ),
        ],
        text=text,
        notes="error decreases monotonically; all 64 coefficients restore "
              "the signal exactly",
    )
