"""Figure 1: variation of workload dynamics across configurations.

The paper's opening figure shows gap's CPI, crafty's power and vpr's
AVF traces under several machine configurations: the same code base
manifests widely different dynamics as the configuration changes.  We
reproduce the three panels with three contrasting configurations each
and report the per-configuration trace ranges.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.render import sparkline
from repro.experiments.registry import ExperimentResult, ExperimentTable, register
from repro.uarch.params import MachineConfig, baseline_config
from repro.uarch.simulator import Simulator

#: The paper's three panels: (benchmark, domain).
PANELS = (("gap", "cpi"), ("crafty", "power"), ("vpr", "avf"))


def _contrasting_configs():
    """Three configurations spanning the Table 2 space."""
    weak = MachineConfig(fetch_width=2, rob_size=96, iq_size=32, lsq_size=16,
                         l2_size_kb=256, l2_latency=20, il1_size_kb=8,
                         dl1_size_kb=8, dl1_latency=4)
    strong = MachineConfig(fetch_width=16, rob_size=160, iq_size=128,
                           lsq_size=64, l2_size_kb=4096, l2_latency=8,
                           il1_size_kb=64, dl1_size_kb=64, dl1_latency=1)
    return {"weak": weak, "baseline": baseline_config(), "strong": strong}


@register("fig1", "Variation of workload dynamics", "Figure 1")
def run_fig1(ctx) -> ExperimentResult:
    """Simulate each panel's benchmark under contrasting configs."""
    sim = Simulator()
    configs = _contrasting_configs()
    rows = []
    text = []
    for bench, domain in PANELS:
        lines = [f"{bench} / {domain}:"]
        for label, cfg in configs.items():
            trace = sim.run(bench, cfg, ctx.scale.n_samples).trace(domain)
            rows.append([bench, domain, label, float(trace.min()),
                         float(trace.mean()), float(trace.max())])
            lines.append(f"  {label:>9s} |{sparkline(trace)}| "
                         f"mean {trace.mean():.3g}")
        text.append("\n".join(lines))
    return ExperimentResult(
        experiment_id="fig1",
        title="Variation of workload performance/power/reliability dynamics",
        paper_reference="Figure 1",
        tables=[ExperimentTable(
            title="Trace ranges per configuration",
            headers=("benchmark", "domain", "config", "min", "mean", "max"),
            rows=rows,
        )],
        text=text,
        notes="the same code base manifests widely different dynamics "
              "across configurations",
    )
