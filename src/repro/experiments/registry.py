"""Experiment registry and result container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ExperimentError
from repro.analysis.render import render_table


@dataclass
class ExperimentTable:
    """One table of an experiment's output."""

    title: str
    headers: Sequence[str]
    rows: List[Sequence]

    def render(self) -> str:
        return f"{self.title}\n{render_table(self.headers, self.rows)}"


@dataclass
class ExperimentResult:
    """Everything an experiment produced.

    ``tables`` hold the numeric rows (what EXPERIMENTS.md records);
    ``text`` holds free-form renderings (sparklines, star plots, ...).
    """

    experiment_id: str
    title: str
    paper_reference: str
    tables: List[ExperimentTable] = field(default_factory=list)
    text: List[str] = field(default_factory=list)
    notes: str = ""

    def table(self, title_fragment: str) -> ExperimentTable:
        """Look a table up by a fragment of its title."""
        for t in self.tables:
            if title_fragment.lower() in t.title.lower():
                return t
        raise ExperimentError(
            f"{self.experiment_id}: no table matching {title_fragment!r}"
        )

    def render(self) -> str:
        """Full text rendering (benches print this)."""
        parts = [f"=== {self.experiment_id}: {self.title} "
                 f"({self.paper_reference}) ==="]
        for t in self.tables:
            parts.append(t.render())
        parts.extend(self.text)
        if self.notes:
            parts.append(f"notes: {self.notes}")
        return "\n\n".join(parts)


@dataclass(frozen=True)
class _Registration:
    experiment_id: str
    title: str
    paper_reference: str
    runner: Callable


_REGISTRY: Dict[str, _Registration] = {}


def register(experiment_id: str, title: str, paper_reference: str):
    """Decorator registering an experiment runner.

    The runner receives an
    :class:`~repro.experiments.context.ExperimentContext` and returns an
    :class:`ExperimentResult`.
    """
    def decorator(fn: Callable):
        if experiment_id in _REGISTRY:
            raise ExperimentError(f"duplicate experiment id {experiment_id!r}")
        _REGISTRY[experiment_id] = _Registration(
            experiment_id=experiment_id, title=title,
            paper_reference=paper_reference, runner=fn,
        )
        return fn
    return decorator


def list_experiments() -> List[str]:
    """Registered experiment ids, sorted."""
    return sorted(_REGISTRY)


def get_experiment(experiment_id: str) -> _Registration:
    """Look up a registration."""
    if experiment_id not in _REGISTRY:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; "
            f"have {list_experiments()}"
        )
    return _REGISTRY[experiment_id]


def run_experiment(experiment_id: str, context=None) -> ExperimentResult:
    """Run one experiment (with a fresh default context if none given)."""
    from repro.experiments.context import get_context

    reg = get_experiment(experiment_id)
    ctx = context if context is not None else get_context()
    result = reg.runner(ctx)
    if not isinstance(result, ExperimentResult):
        raise ExperimentError(
            f"experiment {experiment_id!r} returned {type(result).__name__}, "
            f"expected ExperimentResult"
        )
    return result
