"""Figure 11: star plots of parameter roles in dynamics prediction.

Per (benchmark, domain), the regression trees behind the coefficient
models rank the nine parameters by (a) split order and (b) split
frequency.  The paper reads its gcc example as: "Fetch, dl1 and LSQ
have significant roles in predicting dynamic behavior in performance
domain while ROB, Fetch and dl1_lat largely affect reliability domain
... the most frequently involved ... are ROB, LSQ, L2 and L2_lat in
performance domain."
"""

from __future__ import annotations

from repro.analysis.render import render_star
from repro.dse.importance import importance_star
from repro.experiments.context import EVAL_DOMAINS
from repro.experiments.registry import ExperimentResult, ExperimentTable, register


@register("fig11", "Parameter importance star plots", "Figure 11")
def run_fig11(ctx) -> ExperimentResult:
    """Star-plot scores per benchmark, domain and measure."""
    # All benchmarks' sweeps as one engine batch (keeps a pool saturated).
    ctx.prefetch(ctx.scale.benchmarks)
    tables = []
    text = []
    names = ctx.space.names
    for measure in ("order", "frequency"):
        rows = []
        for bench in ctx.scale.benchmarks:
            for domain in EVAL_DOMAINS:
                star = importance_star(ctx.model(bench, domain), names,
                                       bench, domain, measure)
                rows.append([bench, domain] + [float(s) for s in star.scores])
                if bench == "gcc":
                    text.append(
                        f"gcc / {domain} / by split {measure}:\n"
                        + render_star(star.as_dict())
                    )
        tables.append(ExperimentTable(
            title=f"Importance by split {measure}",
            headers=("benchmark", "domain") + names,
            rows=rows,
        ))
    return ExperimentResult(
        experiment_id="fig11",
        title="Roles of design parameters in predicting workload dynamics",
        paper_reference="Figure 11",
        tables=tables,
        text=text,
        notes="memory-hierarchy parameters dominate performance dynamics of "
              "memory-bound benchmarks; width/window parameters matter for "
              "reliability dynamics",
    )
