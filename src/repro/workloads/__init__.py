"""Synthetic SPEC CPU 2000 workload models.

The paper simulates one SimPoint region (200M instructions) of twelve
SPEC CPU 2000 benchmarks.  Without SPEC binaries and SimpleScalar we
substitute *statistical workload models* (Eeckhout-style statistical
simulation): each benchmark is a set of phase profiles — instruction mix,
inherent ILP, branch predictability, reuse-distance footprint mixture,
memory-level parallelism, ACE fraction — plus a deterministic phase
schedule giving the benchmark its characteristic time-varying behaviour.

``phases``
    :class:`~repro.workloads.phases.PhaseProfile`,
    :class:`~repro.workloads.phases.WorkloadModel` and schedule builders.
``spec2000``
    The twelve benchmark definitions (bzip2 ... vpr).
``generator``
    Concrete instruction-trace synthesis for the detailed simulator.
``simpoint``
    BBV + k-means representative-interval selection.
"""

from repro.workloads.phases import PhaseProfile, WorkloadModel, NoiseModel
from repro.workloads.spec2000 import get_benchmark, list_benchmarks, BENCHMARK_NAMES

__all__ = [
    "PhaseProfile",
    "WorkloadModel",
    "NoiseModel",
    "get_benchmark",
    "list_benchmarks",
    "BENCHMARK_NAMES",
]
