"""SimPoint-style representative-interval selection (BBV + k-means).

The paper "use[s] the Simpoint tool to pick the most representative
simulation point for each benchmark" (Section 3, citing Sherwood et
al.).  This module implements the same idea at our synthetic scale:

1. build a Basic Block Vector (BBV) per execution interval — here the
   phase-occupancy vector doubles as the BBV, exactly the role basic
   block frequencies play for real binaries;
2. cluster the interval vectors with k-means (random restarts,
   Lloyd's algorithm in pure numpy);
3. pick the interval closest to the largest cluster's centroid as the
   representative simulation point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro._validation import as_2d_float_array, rng_from_seed
from repro.errors import WorkloadError
from repro.workloads.phases import WorkloadModel


def kmeans(data, k: int, n_restarts: int = 5, max_iter: int = 100,
           seed=0) -> Tuple[np.ndarray, np.ndarray, float]:
    """Plain Lloyd's k-means with restarts.

    Returns ``(labels, centroids, inertia)`` of the best restart.
    """
    X = as_2d_float_array(data, name="data")
    n = X.shape[0]
    if not 1 <= k <= n:
        raise WorkloadError(f"k must be in [1, {n}], got {k}")
    rng = rng_from_seed(seed)
    best = None
    for _ in range(n_restarts):
        centroids = X[rng.choice(n, size=k, replace=False)].copy()
        labels = np.zeros(n, dtype=int)
        for _ in range(max_iter):
            dists = np.linalg.norm(X[:, None, :] - centroids[None, :, :], axis=2)
            new_labels = np.argmin(dists, axis=1)
            if np.array_equal(new_labels, labels) and _ > 0:
                break
            labels = new_labels
            for j in range(k):
                members = X[labels == j]
                if members.size:
                    centroids[j] = members.mean(axis=0)
                else:  # re-seed empty cluster at the farthest point
                    far = int(np.argmax(np.min(dists, axis=1)))
                    centroids[j] = X[far]
        inertia = float(np.sum(
            (X - centroids[labels]) ** 2
        ))
        if best is None or inertia < best[2]:
            best = (labels.copy(), centroids.copy(), inertia)
    return best


def bayesian_information_criterion(data, labels, centroids) -> float:
    """Schwarz BIC score used by SimPoint to pick the cluster count.

    Higher is better (likelihood reward minus parameter penalty).
    """
    X = as_2d_float_array(data, name="data")
    n, d = X.shape
    k = centroids.shape[0]
    rss = float(np.sum((X - centroids[labels]) ** 2))
    variance = max(rss / max(n - k, 1), 1e-12)
    log_likelihood = -0.5 * n * np.log(2 * np.pi * variance) - 0.5 * (n - k)
    n_params = k * (d + 1)
    return float(log_likelihood - 0.5 * n_params * np.log(n))


@dataclass(frozen=True)
class SimPointResult:
    """Outcome of representative-interval selection."""

    representative_interval: int
    n_clusters: int
    labels: np.ndarray
    cluster_weights: np.ndarray

    @property
    def dominant_cluster(self) -> int:
        """Index of the most-populated cluster."""
        return int(np.argmax(self.cluster_weights))


def pick_simpoint(workload: WorkloadModel, n_intervals: int = 64,
                  max_clusters: int = 6, seed: int = 0,
                  n_clusters: Optional[int] = None) -> SimPointResult:
    """Select the representative interval of a workload.

    Parameters
    ----------
    workload:
        The workload model; its phase-occupancy vectors per interval
        serve as BBVs.
    n_intervals:
        Number of execution intervals considered.
    max_clusters:
        Upper bound for the BIC search over cluster counts.
    n_clusters:
        Fix the cluster count instead of BIC-searching.
    """
    bbv = workload.phase_weights(n_intervals)
    if n_clusters is not None:
        labels, centroids, _ = kmeans(bbv, n_clusters, seed=seed)
        k = n_clusters
    else:
        best_score, best_fit, k = -np.inf, None, 1
        for kk in range(1, min(max_clusters, n_intervals) + 1):
            labels, centroids, _ = kmeans(bbv, kk, seed=seed)
            score = bayesian_information_criterion(bbv, labels, centroids)
            if score > best_score:
                best_score, best_fit, k = score, (labels, centroids), kk
        labels, centroids = best_fit
    weights = np.bincount(labels, minlength=k).astype(float) / n_intervals
    dominant = int(np.argmax(weights))
    members = np.nonzero(labels == dominant)[0]
    dists = np.linalg.norm(bbv[members] - centroids[dominant], axis=1)
    representative = int(members[np.argmin(dists)])
    return SimPointResult(
        representative_interval=representative,
        n_clusters=k,
        labels=labels,
        cluster_weights=weights,
    )
