"""Statistical instruction-trace synthesis.

Turns a :class:`~repro.workloads.phases.WorkloadModel` into a concrete
:class:`~repro.uarch.trace.InstructionTrace` for the detailed simulator —
the classic *statistical simulation* methodology (Eeckhout et al.): the
synthetic stream matches the model's per-phase instruction mix,
dependence-distance distribution (ILP), branch bias mixture and
footprint-based memory reuse, so the detailed pipeline manifests the
same phase-by-phase behaviour the interval model computes analytically.
"""

from __future__ import annotations

import hashlib
import os
from collections import OrderedDict
from typing import Optional

import numpy as np

from repro._validation import rng_from_seed, stable_hash
from repro.errors import WorkloadError
from repro.uarch.trace import InstructionTrace, OpClass
from repro.workloads.phases import WorkloadModel

#: Bytes of address space given to each footprint component per phase.
_LINE_BYTES = 64
_PAGE_BYTES = 4096

#: LRU memo of synthesized intervals, keyed by workload *content* plus
#: the full synthesis arguments.  Synthesis is sequential (the RNG draws
#: are data-dependent), so repeated detailed runs of the same benchmark
#: — a fresh-vs-resumed comparison, an interpreter-vs-JIT benchmark, or
#: a grouped engine dispatch — would otherwise re-pay it per run.  A
#: 400-instruction interval is a few KB of arrays, so the default cap is
#: generous without being unbounded.  Set ``REPRO_TRACE_MEMO=0`` to
#: disable.  Memoized traces are frozen read-only: callers share them.
_TRACE_MEMO_CAP = 512
_TRACE_MEMO: "OrderedDict[tuple, InstructionTrace]" = OrderedDict()


def _memo_enabled() -> bool:
    raw = os.environ.get("REPRO_TRACE_MEMO", "").strip().lower()
    return raw not in ("0", "false", "off", "no")


def clear_trace_memo() -> None:
    """Drop all memoized intervals (mainly for tests)."""
    _TRACE_MEMO.clear()


def _workload_token(workload: WorkloadModel) -> str:
    """Content digest of everything synthesis reads from the workload.

    Cached on the (frozen) workload instance; ``noise`` and
    ``description`` are excluded because they do not influence the
    synthesized stream.
    """
    token = getattr(workload, "_content_token", None)
    if token is None:
        digest = hashlib.sha256()
        digest.update(workload.name.encode("utf8"))
        digest.update(repr(workload.phases).encode("utf8"))
        digest.update(np.ascontiguousarray(workload.schedule).tobytes())
        token = digest.hexdigest()
        object.__setattr__(workload, "_content_token", token)
    return token


def _dependence_distances(n: int, mean_distance: float,
                          rng: np.random.Generator) -> np.ndarray:
    """Geometric dependence distances with the given mean (>= 1)."""
    p = min(1.0 / max(mean_distance, 1.0), 1.0)
    return rng.geometric(p, size=n).astype(np.int64)


def synthesize_interval(workload: WorkloadModel, sample_index: int,
                        n_samples: int, n_instructions: int,
                        seed: Optional[int] = None) -> InstructionTrace:
    """Synthesize the instruction stream of one trace interval.

    The interval's statistics come from the workload's phase weights at
    ``sample_index`` (of ``n_samples``); the stream is deterministic
    given (workload, interval, length).
    """
    if n_instructions < 1:
        raise WorkloadError(f"n_instructions must be >= 1, got {n_instructions}")
    if seed is None:
        seed = stable_hash(workload.name, sample_index, n_samples, n_instructions)
    memo_key = None
    if _memo_enabled():
        memo_key = (_workload_token(workload), sample_index, n_samples,
                    n_instructions, seed)
        cached = _TRACE_MEMO.get(memo_key)
        if cached is not None:
            _TRACE_MEMO.move_to_end(memo_key)
            return cached
    rng = rng_from_seed(seed)

    weights = workload.phase_weights(n_samples)[sample_index]
    # Per-instruction phase assignment follows the interval's occupancy.
    phase_ids = rng.choice(workload.n_phases, size=n_instructions, p=weights)

    f_load = workload.phase_vector("f_load")[phase_ids]
    f_store = workload.phase_vector("f_store")[phase_ids]
    f_branch = workload.phase_vector("f_branch")[phase_ids]
    f_fp = workload.phase_vector("f_fp")[phase_ids]

    u = rng.uniform(size=n_instructions)
    op = np.full(n_instructions, int(OpClass.INT_ALU), dtype=np.int8)
    op[u < f_load] = int(OpClass.LOAD)
    mask = (u >= f_load) & (u < f_load + f_store)
    op[mask] = int(OpClass.STORE)
    mask = (u >= f_load + f_store) & (u < f_load + f_store + f_branch)
    op[mask] = int(OpClass.BRANCH)
    mask = ((u >= f_load + f_store + f_branch)
            & (u < f_load + f_store + f_branch + f_fp))
    op[mask] = int(OpClass.FP_ALU)

    # Dependence distances: ILP maps to how far away producers sit.  A
    # phase with high inherent ILP draws long distances (independent
    # work nearby); serial phases draw short ones.
    ilp = workload.phase_vector("ilp_limit")[phase_ids]
    mean_dist = np.maximum(ilp * 2.0, 1.2)
    src1 = np.minimum(_dependence_distances(n_instructions, float(mean_dist.mean()), rng),
                      512)
    src2 = np.minimum(_dependence_distances(n_instructions, float(mean_dist.mean()) * 2.0,
                                            rng), 512)
    # Roughly a third of instructions are single-source.
    src2[rng.uniform(size=n_instructions) < 0.33] = 0

    # Memory addresses: pick a footprint component per access (by its
    # weight), then a line within it with *log-uniform popularity* —
    # P(line <= x) = ln(x)/ln(N) — so a cache holding C of the N lines
    # hits roughly a ln(C)/ln(N) share of references.  This gives the
    # smooth log-capacity miss curves the interval model assumes, with
    # O(1) generation (an independent-reference Zipf-like stream).  The
    # remainder of accesses hits a tiny hot region (stack/globals).
    fp_log2, fp_w = workload.footprint_components()
    address = np.zeros(n_instructions, dtype=np.int64)
    is_mem = (op == OpClass.LOAD) | (op == OpClass.STORE)
    mem_idx = np.nonzero(is_mem)[0]
    for i in mem_idx:
        ph = phase_ids[i]
        r = rng.uniform()
        acc = 0.0
        chosen = -1
        for k in range(fp_w.shape[1]):
            acc += fp_w[ph, k]
            if r < acc:
                chosen = k
                break
        if chosen < 0:
            # Hot region: 4 KB of stack/global data.
            base = 0x1000_0000
            n_lines = 4096 // _LINE_BYTES
            line = int(rng.integers(n_lines))
        else:
            base = 0x4000_0000 + (int(fp_log2[ph, chosen] * 8) << 24) \
                + (ph << 20)
            n_lines = max(int(2 ** fp_log2[ph, chosen] * 1024) // _LINE_BYTES, 1)
            line = int(n_lines ** rng.uniform()) - 1
        address[i] = base + line * _LINE_BYTES

    # Instruction addresses: sequential runs with phase-dependent spans;
    # the run length sets IL1 locality.
    inst_fp = workload.phase_vector("inst_footprint_log2kb")[phase_ids]
    pc = np.zeros(n_instructions, dtype=np.int64)
    current = 0x0040_0000
    for i in range(n_instructions):
        if rng.uniform() < 0.06:  # jump somewhere in the code footprint
            span = int(2 ** inst_fp[i] * 1024)
            current = 0x0040_0000 + (int(rng.integers(max(span // 4, 1))) * 4)
        else:
            current += 4
        pc[i] = current

    # Branch outcomes: a mixture of strongly-biased sites (predictable)
    # and weakly-biased sites whose share is set by the phase's intrinsic
    # misprediction rate under the Table 1 gshare.
    taken = np.zeros(n_instructions, dtype=bool)
    br_idx = np.nonzero(op == OpClass.BRANCH)[0]
    mispredict = workload.phase_vector("branch_mispredict")[phase_ids]
    for i in br_idx:
        # A weakly-biased branch (p ~ 0.5) mispredicts ~50% of the time;
        # mixing fraction 2*m of such branches yields ~m overall.
        if rng.uniform() < 2.0 * mispredict[i]:
            taken[i] = rng.uniform() < 0.5
        else:
            taken[i] = rng.uniform() < 0.95

    ace_frac = workload.phase_vector("ace_fraction")[phase_ids]
    ace = rng.uniform(size=n_instructions) < ace_frac

    trace = InstructionTrace(op=op, src1_dist=src1, src2_dist=src2,
                             address=address, pc=pc, taken=taken, ace=ace)
    if memo_key is not None:
        # Shared between callers: freeze so accidental in-place writes
        # fail loudly instead of corrupting every later resident reuse.
        for arr in (op, src1, src2, address, pc, taken, ace):
            arr.setflags(write=False)
        _TRACE_MEMO[memo_key] = trace
        if len(_TRACE_MEMO) > _TRACE_MEMO_CAP:
            _TRACE_MEMO.popitem(last=False)
    return trace


def synthesize_trace(workload: WorkloadModel, n_samples: int,
                     instructions_per_sample: int,
                     seed: Optional[int] = None) -> InstructionTrace:
    """Synthesize a full multi-interval trace (concatenated intervals)."""
    parts = [
        synthesize_interval(workload, i, n_samples, instructions_per_sample,
                            seed=None if seed is None else seed + i)
        for i in range(n_samples)
    ]
    return InstructionTrace(
        op=np.concatenate([p.op for p in parts]),
        src1_dist=np.concatenate([p.src1_dist for p in parts]),
        src2_dist=np.concatenate([p.src2_dist for p in parts]),
        address=np.concatenate([p.address for p in parts]),
        pc=np.concatenate([p.pc for p in parts]),
        taken=np.concatenate([p.taken for p in parts]),
        ace=np.concatenate([p.ace for p in parts]),
    )
