"""The twelve synthetic SPEC CPU 2000 benchmark models.

The paper evaluates on ``bzip2, crafty, eon, gap, gcc, mcf, parser,
perlbmk, twolf, swim, vortex, vpr`` (Section 3).  Each model below is a
statistical stand-in whose phase parameters follow the literature's
qualitative characterization of the real benchmark (memory-boundedness,
branchiness, inherent ILP, working-set sizes, phase complexity), and
whose schedule gives it distinctive time-varying behaviour:

* **mcf** is deeply memory-bound with multi-megabyte working sets and
  spiky dynamics — the hardest benchmark to predict (highest MSE in the
  paper's Figure 8).
* **swim** is a regular FP stencil with smooth periodic dynamics — the
  easiest (0.5 % median CPI MSE in the paper).
* **gcc** has many short irregular phases (the paper uses it for its
  Figure 3/4 wavelet illustrations and the Figure 17 DVM case study).
* **gap**'s interpreter work alternates with garbage-collection-like
  bursts, producing the wide CPI swings of Figure 1.
* **vpr**/**twolf** anneal: their behaviour drifts slowly as the
  acceptance rate cools, giving the AVF dynamics of Figure 1.

Working-set footprints are chosen to straddle the Table 2 cache ranges
(DL1 8–64 KB, L2 256 KB–4 MB) so capacity changes move the dynamics —
the effect the predictive models must learn.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.phases import (
    NoiseModel,
    PhaseProfile,
    WorkloadModel,
    block_schedule,
    overlay_bursts,
    overlay_drift,
    overlay_periodic,
)

#: Benchmark names in the paper's order.
BENCHMARK_NAMES = (
    "bzip2", "crafty", "eon", "gap", "gcc", "mcf",
    "parser", "perlbmk", "swim", "twolf", "vortex", "vpr",
)


def _bzip2() -> WorkloadModel:
    """Integer compression: block-sorting phases alternating with
    entropy coding; medium working sets that fit in larger L2s."""
    phases = (
        PhaseProfile("sort", f_load=0.28, f_store=0.12, f_branch=0.13,
                     f_fp=0.0, ilp_limit=3.6, ilp_halfwindow=30,
                     branch_mispredict=0.055,
                     data_footprints=((4.5, 0.10), (9.5, 0.08)),
                     dl1_compulsory=0.004, mlp=2.2, ace_fraction=0.58,
                     load_use_weight=0.40),
        PhaseProfile("entropy", f_load=0.22, f_store=0.08, f_branch=0.18,
                     f_fp=0.0, ilp_limit=4.4, ilp_halfwindow=22,
                     branch_mispredict=0.075,
                     data_footprints=((3.5, 0.08), (7.0, 0.05)),
                     dl1_compulsory=0.003, mlp=1.6, ace_fraction=0.52,
                     load_use_weight=0.30),
        PhaseProfile("move", f_load=0.34, f_store=0.20, f_branch=0.07,
                     f_fp=0.0, ilp_limit=5.2, ilp_halfwindow=16,
                     branch_mispredict=0.02,
                     data_footprints=((5.5, 0.06), (10.0, 0.10)),
                     dl1_compulsory=0.002, l2_stream_fraction=0.02,
                     mlp=3.0, ace_fraction=0.48, load_use_weight=0.25),
    )
    sched = block_schedule([(0, 0.4), (1, 0.35), (0, 0.25)])
    sched = overlay_periodic(sched, 2, period=512, duty=0.25, offset=0)
    return WorkloadModel("bzip2", phases, sched,
                         NoiseModel(cpi=0.09, power=0.088, avf=0.015),
                         "block-sorting compressor, periodic sort/code/move")


def _crafty() -> WorkloadModel:
    """Chess search: extremely branchy, small working set, spiky power
    as evaluation bursts alternate with move generation."""
    phases = (
        PhaseProfile("search", f_load=0.24, f_store=0.07, f_branch=0.21,
                     f_fp=0.0, ilp_limit=3.4, ilp_halfwindow=26,
                     branch_mispredict=0.095,
                     data_footprints=((4.0, 0.09),),
                     dl1_compulsory=0.004, mlp=1.3, ace_fraction=0.62,
                     load_use_weight=0.42),
        PhaseProfile("evaluate", f_load=0.30, f_store=0.05, f_branch=0.15,
                     f_fp=0.0, ilp_limit=5.0, ilp_halfwindow=18,
                     branch_mispredict=0.05,
                     data_footprints=((5.5, 0.12),),
                     dl1_compulsory=0.003, mlp=1.8, ace_fraction=0.55,
                     load_use_weight=0.35),
        PhaseProfile("hash_probe", f_load=0.36, f_store=0.10, f_branch=0.12,
                     f_fp=0.0, ilp_limit=2.8, ilp_halfwindow=40,
                     branch_mispredict=0.06,
                     data_footprints=((6.5, 0.10), (10.5, 0.07)),
                     dl1_compulsory=0.005, mlp=1.9, ace_fraction=0.60,
                     load_use_weight=0.45),
    )
    sched = block_schedule([(0, 0.5), (1, 0.3), (0, 0.2)])
    sched = overlay_periodic(sched, 1, period=512, duty=0.5, offset=0)
    sched = overlay_bursts(sched, 2, positions=(0.2, 0.62), width=0.05)
    return WorkloadModel("crafty", phases, sched,
                         NoiseModel(cpi=0.10, power=0.104, avf=0.015),
                         "chess search, branchy with hash-probe bursts")


def _eon() -> WorkloadModel:
    """C++ probabilistic ray tracer: small working set, predictable
    branches, high ILP — steady behaviour with mild per-ray periodicity."""
    phases = (
        PhaseProfile("trace_rays", f_load=0.30, f_store=0.09, f_branch=0.13,
                     f_fp=0.14, ilp_limit=4.2, ilp_halfwindow=28,
                     branch_mispredict=0.032,
                     data_footprints=((5.5, 0.10), (9.0, 0.05)),
                     dl1_compulsory=0.003, mlp=1.6, ace_fraction=0.54,
                     load_use_weight=0.34),
        PhaseProfile("shade", f_load=0.22, f_store=0.12, f_branch=0.08,
                     f_fp=0.36, ilp_limit=6.6, ilp_halfwindow=18,
                     branch_mispredict=0.008,
                     data_footprints=((3.5, 0.04),),
                     dl1_compulsory=0.002, mlp=2.0, ace_fraction=0.44,
                     load_use_weight=0.22),
    )
    sched = block_schedule([(0, 0.55), (1, 0.45)])
    sched = overlay_periodic(sched, 1, period=512, duty=0.5, offset=0)
    return WorkloadModel("eon", phases, sched,
                         NoiseModel(cpi=0.06, power=0.064, avf=0.015),
                         "ray tracer, steady high-ILP FP work")


def _gap() -> WorkloadModel:
    """Group-theory interpreter: long algebra phases over medium/large
    working sets punctuated by garbage-collection sweeps — wide CPI
    swings (the paper's Figure 1 performance example)."""
    phases = (
        PhaseProfile("interpret", f_load=0.26, f_store=0.09, f_branch=0.17,
                     f_fp=0.0, ilp_limit=3.8, ilp_halfwindow=28,
                     branch_mispredict=0.06,
                     data_footprints=((4.0, 0.08), (8.5, 0.07)),
                     dl1_compulsory=0.003, mlp=1.7, ace_fraction=0.56,
                     load_use_weight=0.36),
        PhaseProfile("algebra", f_load=0.32, f_store=0.12, f_branch=0.08,
                     f_fp=0.04, ilp_limit=4.8, ilp_halfwindow=20,
                     branch_mispredict=0.03,
                     data_footprints=((5.5, 0.07), (11.0, 0.09)),
                     dl1_compulsory=0.003, mlp=2.6, ace_fraction=0.52,
                     load_use_weight=0.30),
        PhaseProfile("gc_sweep", f_load=0.38, f_store=0.18, f_branch=0.10,
                     f_fp=0.0, ilp_limit=2.6, ilp_halfwindow=48,
                     branch_mispredict=0.045,
                     data_footprints=((6.0, 0.06), (12.0, 0.12)),
                     dl1_compulsory=0.005, l2_stream_fraction=0.04,
                     mlp=2.4, ace_fraction=0.64, load_use_weight=0.40),
    )
    sched = block_schedule([(0, 0.3), (1, 0.45), (0, 0.25)])
    sched = overlay_bursts(sched, 2, positions=(0.25, 0.7), width=0.08)
    return WorkloadModel("gap", phases, sched,
                         NoiseModel(cpi=0.08, power=0.088, avf=0.015),
                         "group-theory interpreter with GC bursts")


def _gcc() -> WorkloadModel:
    """Compiler: many short irregular phases (parse, optimize, allocate,
    emit) over mixed working sets — the most phase-complex benchmark."""
    phases = (
        PhaseProfile("parse", f_load=0.27, f_store=0.10, f_branch=0.20,
                     f_fp=0.0, ilp_limit=3.2, ilp_halfwindow=30,
                     branch_mispredict=0.08,
                     data_footprints=((4.5, 0.10), (8.0, 0.06)),
                     dl1_compulsory=0.005, mlp=1.5, ace_fraction=0.60,
                     load_use_weight=0.40),
        PhaseProfile("optimize", f_load=0.31, f_store=0.11, f_branch=0.15,
                     f_fp=0.0, ilp_limit=3.9, ilp_halfwindow=34,
                     branch_mispredict=0.06,
                     data_footprints=((5.5, 0.09), (10.5, 0.08)),
                     dl1_compulsory=0.004, mlp=2.0, ace_fraction=0.57,
                     load_use_weight=0.38),
        PhaseProfile("regalloc", f_load=0.29, f_store=0.13, f_branch=0.13,
                     f_fp=0.0, ilp_limit=2.9, ilp_halfwindow=44,
                     branch_mispredict=0.07,
                     data_footprints=((6.0, 0.08), (11.0, 0.09)),
                     dl1_compulsory=0.005, mlp=1.8, ace_fraction=0.63,
                     load_use_weight=0.42),
        PhaseProfile("emit", f_load=0.24, f_store=0.16, f_branch=0.12,
                     f_fp=0.0, ilp_limit=4.6, ilp_halfwindow=18,
                     branch_mispredict=0.035,
                     data_footprints=((4.0, 0.06),),
                     dl1_compulsory=0.003, l2_stream_fraction=0.02,
                     mlp=2.2, ace_fraction=0.50, load_use_weight=0.28),
    )
    sched = block_schedule([(0, 0.2), (1, 0.3), (2, 0.25), (1, 0.1), (3, 0.15)])
    sched = overlay_periodic(sched, 0, period=512, duty=0.25, offset=0)
    sched = overlay_bursts(sched, 3, positions=(0.42, 0.86), width=0.04)
    return WorkloadModel("gcc", phases, sched,
                         NoiseModel(cpi=0.11, power=0.096, avf=0.015),
                         "compiler with many irregular phases")


def _mcf() -> WorkloadModel:
    """Network simplex: pointer chasing over multi-megabyte working sets
    that overflow every Table 2 L2 — deeply memory-bound, spiky, the
    hardest benchmark for the predictive models (as in the paper)."""
    phases = (
        PhaseProfile("pricing", f_load=0.37, f_store=0.08, f_branch=0.11,
                     f_fp=0.0, ilp_limit=1.9, ilp_halfwindow=70,
                     branch_mispredict=0.045,
                     data_footprints=((9.5, 0.08), (13.0, 0.16)),
                     dl1_compulsory=0.006, mlp=2.8, ace_fraction=0.68,
                     load_use_weight=0.50),
        PhaseProfile("simplex", f_load=0.33, f_store=0.11, f_branch=0.13,
                     f_fp=0.0, ilp_limit=2.3, ilp_halfwindow=55,
                     branch_mispredict=0.055,
                     data_footprints=((8.0, 0.07), (12.5, 0.12)),
                     dl1_compulsory=0.005, mlp=2.2, ace_fraction=0.66,
                     load_use_weight=0.48),
        PhaseProfile("refresh", f_load=0.28, f_store=0.14, f_branch=0.10,
                     f_fp=0.0, ilp_limit=3.4, ilp_halfwindow=30,
                     branch_mispredict=0.03,
                     data_footprints=((5.0, 0.07), (11.0, 0.06)),
                     dl1_compulsory=0.004, mlp=2.0, ace_fraction=0.58,
                     load_use_weight=0.35),
    )
    sched = block_schedule([(0, 0.45), (1, 0.35), (0, 0.2)])
    sched = overlay_periodic(sched, 1, period=512, duty=0.5, offset=0)
    sched = overlay_bursts(sched, 2, positions=(0.34, 0.8), width=0.05)
    return WorkloadModel("mcf", phases, sched,
                         NoiseModel(cpi=0.33, power=0.136, avf=0.015),
                         "memory-bound network simplex, spiky dynamics")


def _parser() -> WorkloadModel:
    """Natural-language parser: dictionary lookups and backtracking,
    quasi-periodic sentence-by-sentence structure."""
    phases = (
        PhaseProfile("tokenize", f_load=0.26, f_store=0.09, f_branch=0.18,
                     f_fp=0.0, ilp_limit=3.6, ilp_halfwindow=24,
                     branch_mispredict=0.065,
                     data_footprints=((4.0, 0.08),),
                     dl1_compulsory=0.004, mlp=1.4, ace_fraction=0.55,
                     load_use_weight=0.36),
        PhaseProfile("link", f_load=0.31, f_store=0.08, f_branch=0.16,
                     f_fp=0.0, ilp_limit=2.9, ilp_halfwindow=38,
                     branch_mispredict=0.08,
                     data_footprints=((5.5, 0.10), (10.0, 0.06)),
                     dl1_compulsory=0.005, mlp=1.6, ace_fraction=0.61,
                     load_use_weight=0.44),
        PhaseProfile("dict_walk", f_load=0.35, f_store=0.07, f_branch=0.13,
                     f_fp=0.0, ilp_limit=2.5, ilp_halfwindow=46,
                     branch_mispredict=0.05,
                     data_footprints=((6.0, 0.09), (11.0, 0.07)),
                     dl1_compulsory=0.005, mlp=1.8, ace_fraction=0.63,
                     load_use_weight=0.46),
    )
    sched = block_schedule([(0, 0.25), (1, 0.5), (2, 0.25)])
    sched = overlay_periodic(sched, 0, period=512, duty=0.25, offset=0)
    return WorkloadModel("parser", phases, sched,
                         NoiseModel(cpi=0.09, power=0.088, avf=0.015),
                         "NL parser, sentence-periodic with dictionary walks")


def _perlbmk() -> WorkloadModel:
    """Perl interpreter: opcode dispatch with regex bursts and hash
    working sets; branchy with moderate phase variety."""
    phases = (
        PhaseProfile("dispatch", f_load=0.28, f_store=0.10, f_branch=0.19,
                     f_fp=0.0, ilp_limit=3.3, ilp_halfwindow=28,
                     branch_mispredict=0.07,
                     data_footprints=((4.5, 0.09), (9.0, 0.07)),
                     dl1_compulsory=0.004, mlp=1.5, ace_fraction=0.58,
                     load_use_weight=0.38),
        PhaseProfile("regex", f_load=0.24, f_store=0.06, f_branch=0.22,
                     f_fp=0.0, ilp_limit=4.1, ilp_halfwindow=20,
                     branch_mispredict=0.055,
                     data_footprints=((3.5, 0.07),),
                     dl1_compulsory=0.003, mlp=1.3, ace_fraction=0.54,
                     load_use_weight=0.32),
        PhaseProfile("hash_ops", f_load=0.33, f_store=0.14, f_branch=0.12,
                     f_fp=0.0, ilp_limit=3.0, ilp_halfwindow=36,
                     branch_mispredict=0.04,
                     data_footprints=((5.5, 0.08), (10.5, 0.07)),
                     dl1_compulsory=0.004, mlp=1.9, ace_fraction=0.60,
                     load_use_weight=0.40),
    )
    sched = block_schedule([(0, 0.45), (2, 0.3), (0, 0.25)])
    sched = overlay_periodic(sched, 1, period=512, duty=0.25, offset=0)
    sched = overlay_bursts(sched, 2, positions=(0.5, 0.77), width=0.06)
    return WorkloadModel("perlbmk", phases, sched,
                         NoiseModel(cpi=0.09, power=0.088, avf=0.015),
                         "perl interpreter with regex bursts")


def _swim() -> WorkloadModel:
    """Shallow-water FP stencil: long vectorizable loops streaming large
    arrays — smooth, strongly periodic, the easiest benchmark to
    predict (as in the paper's Figure 8)."""
    phases = (
        PhaseProfile("stencil_u", f_load=0.34, f_store=0.14, f_branch=0.02,
                     f_fp=0.38, ilp_limit=6.8, ilp_halfwindow=14,
                     branch_mispredict=0.008,
                     data_footprints=((5.0, 0.04), (12.5, 0.03)),
                     dl1_compulsory=0.002, l2_stream_fraction=0.025,
                     mlp=3.6, ace_fraction=0.44, load_use_weight=0.20),
        PhaseProfile("stencil_v", f_load=0.36, f_store=0.16, f_branch=0.02,
                     f_fp=0.34, ilp_limit=6.2, ilp_halfwindow=16,
                     branch_mispredict=0.008,
                     data_footprints=((5.5, 0.05), (12.5, 0.04)),
                     dl1_compulsory=0.002, l2_stream_fraction=0.035,
                     mlp=3.4, ace_fraction=0.46, load_use_weight=0.22),
        PhaseProfile("boundary", f_load=0.26, f_store=0.12, f_branch=0.08,
                     f_fp=0.22, ilp_limit=4.4, ilp_halfwindow=22,
                     branch_mispredict=0.02,
                     data_footprints=((4.0, 0.04),),
                     dl1_compulsory=0.002, mlp=2.0, ace_fraction=0.48,
                     load_use_weight=0.26),
    )
    sched = block_schedule([(0, 0.5), (1, 0.5)])
    sched = overlay_periodic(sched, 1, period=512, duty=0.5, offset=0)
    sched = overlay_periodic(sched, 2, period=512, duty=0.08, offset=128)
    return WorkloadModel("swim", phases, sched,
                         NoiseModel(cpi=0.05, power=0.056, avf=0.015),
                         "FP stencil, smooth periodic streaming loops")


def _twolf() -> WorkloadModel:
    """Standard-cell place & route: annealing with random small-object
    accesses; behaviour drifts as the temperature cools."""
    phases = (
        PhaseProfile("move_eval", f_load=0.29, f_store=0.10, f_branch=0.15,
                     f_fp=0.02, ilp_limit=3.1, ilp_halfwindow=32,
                     branch_mispredict=0.075,
                     data_footprints=((5.0, 0.10), (9.5, 0.06)),
                     dl1_compulsory=0.005, mlp=1.5, ace_fraction=0.59,
                     load_use_weight=0.40),
        PhaseProfile("accept", f_load=0.26, f_store=0.14, f_branch=0.13,
                     f_fp=0.02, ilp_limit=3.7, ilp_halfwindow=26,
                     branch_mispredict=0.06,
                     data_footprints=((5.5, 0.09), (10.0, 0.06)),
                     dl1_compulsory=0.004, mlp=1.7, ace_fraction=0.56,
                     load_use_weight=0.36),
        PhaseProfile("reject_fast", f_load=0.22, f_store=0.06, f_branch=0.18,
                     f_fp=0.01, ilp_limit=4.3, ilp_halfwindow=20,
                     branch_mispredict=0.05,
                     data_footprints=((4.5, 0.07),),
                     dl1_compulsory=0.003, mlp=1.3, ace_fraction=0.50,
                     load_use_weight=0.30),
    )
    sched = block_schedule([(0, 0.6), (1, 0.4)])
    sched = overlay_periodic(sched, 1, period=512, duty=0.5, offset=0)
    sched = overlay_drift(sched, 1, 2)
    return WorkloadModel("twolf", phases, sched,
                         NoiseModel(cpi=0.10, power=0.096, avf=0.015),
                         "annealing placer, drifting accept/reject mix")


def _vortex() -> WorkloadModel:
    """Object-oriented database: transaction blocks over medium-large
    working sets, fairly steady with commit bursts."""
    phases = (
        PhaseProfile("lookup", f_load=0.32, f_store=0.09, f_branch=0.16,
                     f_fp=0.0, ilp_limit=3.5, ilp_halfwindow=30,
                     branch_mispredict=0.045,
                     data_footprints=((5.5, 0.09), (11.0, 0.07)),
                     dl1_compulsory=0.004, mlp=1.9, ace_fraction=0.58,
                     load_use_weight=0.38),
        PhaseProfile("insert", f_load=0.28, f_store=0.16, f_branch=0.13,
                     f_fp=0.0, ilp_limit=3.9, ilp_halfwindow=26,
                     branch_mispredict=0.04,
                     data_footprints=((6.0, 0.08), (10.5, 0.06)),
                     dl1_compulsory=0.004, mlp=2.1, ace_fraction=0.55,
                     load_use_weight=0.34),
        PhaseProfile("commit", f_load=0.25, f_store=0.20, f_branch=0.10,
                     f_fp=0.0, ilp_limit=4.4, ilp_halfwindow=20,
                     branch_mispredict=0.03,
                     data_footprints=((5.0, 0.06), (12.0, 0.05)),
                     dl1_compulsory=0.003, l2_stream_fraction=0.03,
                     mlp=2.5, ace_fraction=0.52, load_use_weight=0.28),
    )
    sched = block_schedule([(0, 0.5), (1, 0.35), (0, 0.15)])
    sched = overlay_bursts(sched, 2, positions=(0.3, 0.72), width=0.08)
    return WorkloadModel("vortex", phases, sched,
                         NoiseModel(cpi=0.08, power=0.08, avf=0.015),
                         "OO database, transaction blocks with commit bursts")


def _vpr() -> WorkloadModel:
    """FPGA place & route (annealing): slowly drifting acceptance rate
    plus route ripups — the paper's Figure 1 reliability (AVF) example."""
    phases = (
        PhaseProfile("try_swap", f_load=0.28, f_store=0.09, f_branch=0.14,
                     f_fp=0.06, ilp_limit=3.3, ilp_halfwindow=30,
                     branch_mispredict=0.065,
                     data_footprints=((5.0, 0.09), (9.0, 0.08)),
                     dl1_compulsory=0.004, mlp=1.6, ace_fraction=0.62,
                     load_use_weight=0.38),
        PhaseProfile("timing", f_load=0.30, f_store=0.08, f_branch=0.11,
                     f_fp=0.12, ilp_limit=4.0, ilp_halfwindow=26,
                     branch_mispredict=0.04,
                     data_footprints=((5.5, 0.08), (10.5, 0.07)),
                     dl1_compulsory=0.004, mlp=1.9, ace_fraction=0.57,
                     load_use_weight=0.34),
        PhaseProfile("ripup", f_load=0.34, f_store=0.13, f_branch=0.12,
                     f_fp=0.04, ilp_limit=2.7, ilp_halfwindow=42,
                     branch_mispredict=0.055,
                     data_footprints=((6.0, 0.08), (11.0, 0.08)),
                     dl1_compulsory=0.005, mlp=2.2, ace_fraction=0.66,
                     load_use_weight=0.42),
    )
    sched = block_schedule([(0, 0.55), (1, 0.45)])
    sched = overlay_drift(sched, 0, 1)
    sched = overlay_bursts(sched, 2, positions=(0.35, 0.78), width=0.07)
    return WorkloadModel("vpr", phases, sched,
                         NoiseModel(cpi=0.09, power=0.08, avf=0.015),
                         "annealing placer/router, drifting AVF dynamics")


_FACTORIES: Dict[str, Callable[[], WorkloadModel]] = {
    "bzip2": _bzip2,
    "crafty": _crafty,
    "eon": _eon,
    "gap": _gap,
    "gcc": _gcc,
    "mcf": _mcf,
    "parser": _parser,
    "perlbmk": _perlbmk,
    "swim": _swim,
    "twolf": _twolf,
    "vortex": _vortex,
    "vpr": _vpr,
}

#: Aliases matching the paper's figure labels.
_ALIASES = {"bzip": "bzip2", "perl": "perlbmk", "vortext": "vortex"}

_CACHE: Dict[str, WorkloadModel] = {}


def get_benchmark(name: str) -> WorkloadModel:
    """Look up a benchmark model by name (``"bzip"``/``"perl"`` aliases ok)."""
    canonical = _ALIASES.get(name, name)
    if canonical not in _FACTORIES:
        raise WorkloadError(
            f"unknown benchmark {name!r}; choose from {sorted(_FACTORIES)}"
        )
    if canonical not in _CACHE:
        _CACHE[canonical] = _FACTORIES[canonical]()
    return _CACHE[canonical]


def list_benchmarks() -> List[WorkloadModel]:
    """All twelve benchmark models, in the paper's order."""
    return [get_benchmark(name) for name in BENCHMARK_NAMES]
