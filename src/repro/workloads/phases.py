"""Phase profiles and phase schedules for synthetic workloads.

A *phase* is a statistically homogeneous stretch of program execution,
described by :class:`PhaseProfile`.  A :class:`WorkloadModel` is a set of
phases plus a deterministic fine-grained *schedule* (which phase is
active in each of :data:`FINE_RESOLUTION` execution slots).  Sampling a
workload at ``n`` points (the paper uses 128 by default, 64–1024 in its
Figure 10 sweep) averages the schedule within each of ``n`` equal
buckets, yielding a per-sample *phase weight matrix* — any per-phase
quantity (instruction mix, miss-rate curve value, ILP parameter, ...)
then becomes a per-sample trace via one matrix product.

The schedules are built from composable primitives (blocks, periodic
overlays, bursts) so each synthetic benchmark gets distinctive, fully
reproducible dynamics with energy concentrated in a modest number of
wavelet coefficients — the property the paper's Figure 4/9 analysis
relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

import numpy as np

from repro._validation import is_power_of_two
from repro.errors import WorkloadError

#: Number of fine-grained schedule slots per workload.  All supported
#: sampling resolutions (64..1024, Figure 10) divide this evenly.
FINE_RESOLUTION = 1024

#: Per-phase scalar attributes exposed to the simulators.
SCALAR_ATTRIBUTES = (
    "f_load",
    "f_store",
    "f_branch",
    "f_fp",
    "ilp_limit",
    "ilp_halfwindow",
    "branch_mispredict",
    "dl1_compulsory",
    "l2_stream_fraction",
    "inst_footprint_log2kb",
    "mlp",
    "ace_fraction",
    "load_use_weight",
)


@dataclass(frozen=True)
class PhaseProfile:
    """Statistical description of one execution phase.

    Attributes
    ----------
    f_load, f_store, f_branch, f_fp:
        Dynamic instruction mix fractions (the remainder is plain integer
        ALU work).
    ilp_limit:
        Inherent instructions-per-cycle with an unbounded window.
    ilp_halfwindow:
        Window size (instructions) at which half of ``ilp_limit`` is
        achieved; larger values mean longer dependence chains that need a
        big ROB/IQ to extract parallelism.
    branch_mispredict:
        Per-branch misprediction probability under the fixed Table 1
        gshare predictor.
    data_footprints:
        Reuse mixture ``((log2_kb, weight), ...)``: ``weight`` of the data
        accesses reuse a working set of ``2**log2_kb`` KB.  An access
        misses a cache of capacity C when its working set exceeds C
        (smoothed); weights must sum to <= 1, the remainder always hits.
    dl1_compulsory:
        Floor miss rate (cold/conflict misses) for the L1 data cache.
    l2_stream_fraction:
        Fraction of data accesses that stream past any L2 (compulsory
        L2 misses), e.g. stencil sweeps in swim.
    inst_footprint_log2kb:
        Instruction working set (log2 KB) against the IL1.
    mlp:
        Intrinsic memory-level parallelism — overlapping long-latency
        misses, given sufficient window/LSQ.
    ace_fraction:
        Fraction of in-flight state that is ACE (Architecturally Correct
        Execution) bits for AVF accounting.
    load_use_weight:
        Probability that a load feeds the critical path (sensitivity to
        DL1 latency).
    """

    name: str
    f_load: float = 0.25
    f_store: float = 0.10
    f_branch: float = 0.15
    f_fp: float = 0.05
    ilp_limit: float = 4.0
    ilp_halfwindow: float = 32.0
    branch_mispredict: float = 0.05
    data_footprints: Tuple[Tuple[float, float], ...] = ((5.0, 0.05),)
    dl1_compulsory: float = 0.003
    l2_stream_fraction: float = 0.0
    inst_footprint_log2kb: float = 3.5
    mlp: float = 1.5
    ace_fraction: float = 0.55
    load_use_weight: float = 0.35

    def __post_init__(self):
        for frac_name in ("f_load", "f_store", "f_branch", "f_fp",
                          "branch_mispredict", "dl1_compulsory",
                          "l2_stream_fraction", "ace_fraction",
                          "load_use_weight"):
            value = getattr(self, frac_name)
            if not 0.0 <= value <= 1.0:
                raise WorkloadError(
                    f"phase {self.name}: {frac_name} must be in [0, 1], got {value}"
                )
        if self.f_load + self.f_store + self.f_branch + self.f_fp > 1.0:
            raise WorkloadError(
                f"phase {self.name}: instruction mix fractions exceed 1"
            )
        if self.ilp_limit <= 0 or self.ilp_halfwindow <= 0 or self.mlp < 1.0:
            raise WorkloadError(
                f"phase {self.name}: ilp_limit/ilp_halfwindow must be positive "
                f"and mlp >= 1"
            )
        total_w = sum(w for _, w in self.data_footprints)
        if total_w > 1.0 + 1e-9:
            raise WorkloadError(
                f"phase {self.name}: data footprint weights sum to {total_w} > 1"
            )

    @property
    def f_mem(self) -> float:
        """Fraction of memory instructions (loads + stores)."""
        return self.f_load + self.f_store


# ----------------------------------------------------------------------
# Schedule builders
# ----------------------------------------------------------------------
def block_schedule(blocks: Sequence[Tuple[int, float]],
                   resolution: int = FINE_RESOLUTION) -> np.ndarray:
    """Concatenate phase blocks: ``[(phase_index, fraction), ...]``.

    Fractions are normalized to sum to 1; the final block absorbs
    rounding.
    """
    if not blocks:
        raise WorkloadError("block_schedule requires at least one block")
    fracs = np.array([f for _, f in blocks], dtype=float)
    if np.any(fracs <= 0):
        raise WorkloadError("block fractions must be positive")
    fracs = fracs / fracs.sum()
    out = np.empty(resolution, dtype=int)
    start = 0
    for (phase_idx, _), frac in zip(blocks, fracs):
        length = int(round(frac * resolution))
        out[start:start + length] = phase_idx
        start += length
    out[start:] = blocks[-1][0]
    return out


def overlay_periodic(schedule: np.ndarray, phase_index: int, period: int,
                     duty: float = 0.5, offset: int = 0) -> np.ndarray:
    """Replace a periodic duty-cycle portion of ``schedule`` with a phase.

    Models loop-level alternation (e.g. compress/reorder in bzip2).
    Returns a new array.
    """
    if period < 2:
        raise WorkloadError(f"period must be >= 2, got {period}")
    if not 0.0 < duty < 1.0:
        raise WorkloadError(f"duty must be in (0, 1), got {duty}")
    out = schedule.copy()
    pos = (np.arange(out.size) + offset) % period
    out[pos < duty * period] = phase_index
    return out


def overlay_bursts(schedule: np.ndarray, phase_index: int,
                   positions: Sequence[float], width: float) -> np.ndarray:
    """Insert short bursts of a phase at fractional positions.

    Models garbage-collection pauses, context refills, or the thermal
    spikes that motivate scenario-driven optimization.  Returns a new
    array.
    """
    if not 0.0 < width < 1.0:
        raise WorkloadError(f"width must be in (0, 1), got {width}")
    out = schedule.copy()
    n = out.size
    half = max(int(width * n / 2), 1)
    for pos in positions:
        if not 0.0 <= pos <= 1.0:
            raise WorkloadError(f"burst position must be in [0, 1], got {pos}")
        center = int(pos * (n - 1))
        out[max(center - half, 0):min(center + half, n)] = phase_index
    return out


def overlay_drift(schedule: np.ndarray, phase_a: int, phase_b: int) -> np.ndarray:
    """Gradually shift slots of ``phase_a`` toward ``phase_b`` over time.

    Models slowly-converging computations (e.g. vpr's simulated
    annealing, where late execution behaves differently from early).
    Returns a new array.
    """
    out = schedule.copy()
    n = out.size
    # Deterministic low-discrepancy "probability" ramp: slot i flips when
    # (i * golden_ratio) mod 1 < i/n, giving a smooth density gradient.
    golden = 0.6180339887498949
    ramp = (np.arange(n) * golden) % 1.0
    flips = (out == phase_a) & (ramp < np.arange(n) / n)
    out[flips] = phase_b
    return out


@dataclass(frozen=True)
class NoiseModel:
    """Deterministic per-domain measurement texture.

    Real simulations contain effects a config->trace model cannot see
    (OS interference, replacement nondeterminism, sampling skew).  Each
    (benchmark, configuration) pair receives seeded Gaussian texture
    whose standard deviation is the given fraction of the trace's own
    temporal standard deviation.
    """

    cpi: float = 0.10
    power: float = 0.11
    avf: float = 0.06

    def level(self, domain: str) -> float:
        """Noise fraction for a metric domain."""
        if domain in ("cpi", "ipc"):
            return self.cpi
        if domain == "power":
            return self.power
        if domain in ("avf", "iq_avf"):
            return self.avf
        raise WorkloadError(f"unknown noise domain {domain!r}")


@dataclass(frozen=True)
class WorkloadModel:
    """A synthetic benchmark: phases + schedule + noise texture.

    Attributes
    ----------
    name:
        Benchmark name (e.g. ``"gcc"``).
    phases:
        The phase profiles; schedule entries index into this tuple.
    schedule:
        Length-:data:`FINE_RESOLUTION` integer array of phase indices.
    noise:
        Per-domain measurement-texture levels.
    description:
        One-line characterization used in docs and reports.
    """

    name: str
    phases: Tuple[PhaseProfile, ...]
    schedule: np.ndarray
    noise: NoiseModel = field(default_factory=NoiseModel)
    description: str = ""

    def __post_init__(self):
        if len(self.phases) == 0:
            raise WorkloadError(f"workload {self.name}: needs at least one phase")
        sched = np.asarray(self.schedule, dtype=int)
        if sched.ndim != 1 or sched.size != FINE_RESOLUTION:
            raise WorkloadError(
                f"workload {self.name}: schedule must be 1-D with "
                f"{FINE_RESOLUTION} entries, got shape {sched.shape}"
            )
        if sched.min() < 0 or sched.max() >= len(self.phases):
            raise WorkloadError(
                f"workload {self.name}: schedule indexes phase "
                f"{sched.max()} but only {len(self.phases)} phases exist"
            )
        object.__setattr__(self, "schedule", sched)

    @property
    def n_phases(self) -> int:
        return len(self.phases)

    def phase_weights(self, n_samples: int, smooth: bool = True) -> np.ndarray:
        """Per-sample phase occupancy, shape ``(n_samples, n_phases)``.

        Each row sums to 1 and gives the fraction of the sample interval
        spent in each phase.  ``n_samples`` must be a power of two
        dividing :data:`FINE_RESOLUTION`.

        With ``smooth=True`` (default) a short [1/4, 1/2, 1/4] kernel is
        applied along time: phase transitions bleed into neighbouring
        sampling intervals the way they do in real measurements (an
        interval straddling a phase change reports blended statistics).
        This also keeps the sampled dynamics energy concentrated at the
        coarser wavelet scales, matching the compressibility the paper
        demonstrates in its Figures 4 and 9.
        """
        if not is_power_of_two(n_samples) or n_samples > FINE_RESOLUTION:
            raise WorkloadError(
                f"n_samples must be a power of two <= {FINE_RESOLUTION}, "
                f"got {n_samples}"
            )
        bucket = FINE_RESOLUTION // n_samples
        onehot = np.zeros((FINE_RESOLUTION, self.n_phases), dtype=float)
        onehot[np.arange(FINE_RESOLUTION), self.schedule] = 1.0
        weights = onehot.reshape(n_samples, bucket, self.n_phases).mean(axis=1)
        if smooth and n_samples >= 4:
            padded = np.vstack([weights[:1], weights, weights[-1:]])
            weights = (0.25 * padded[:-2] + 0.5 * padded[1:-1]
                       + 0.25 * padded[2:])
        return weights

    def phase_vector(self, attribute: str) -> np.ndarray:
        """Per-phase values of a scalar attribute, shape ``(n_phases,)``."""
        if attribute not in SCALAR_ATTRIBUTES:
            raise WorkloadError(
                f"unknown scalar attribute {attribute!r}; "
                f"choose from {SCALAR_ATTRIBUTES}"
            )
        return np.array([getattr(p, attribute) for p in self.phases])

    def attribute_trace(self, attribute: str, n_samples: int) -> np.ndarray:
        """Per-sample trace of a scalar attribute (phase-weighted mean)."""
        return self.phase_weights(n_samples) @ self.phase_vector(attribute)

    def attributes(self, n_samples: int) -> Dict[str, np.ndarray]:
        """All scalar attribute traces at the given resolution."""
        weights = self.phase_weights(n_samples)
        return {
            name: weights @ self.phase_vector(name)
            for name in SCALAR_ATTRIBUTES
        }

    def footprint_components(self):
        """Stacked data-footprint mixtures for vectorized miss-rate math.

        Returns ``(log2kb, weight)`` arrays of shape
        ``(n_phases, max_components)``; phases with fewer components are
        zero-weight padded.
        """
        max_k = max(len(p.data_footprints) for p in self.phases)
        log2kb = np.zeros((self.n_phases, max_k))
        weight = np.zeros((self.n_phases, max_k))
        for i, p in enumerate(self.phases):
            for j, (fp, w) in enumerate(p.data_footprints):
                log2kb[i, j] = fp
                weight[i, j] = w
        return log2kb, weight
