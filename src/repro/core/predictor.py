"""The paper's hybrid neuro-wavelet dynamics predictor (Figure 6).

Pipeline (Section 2.3):

1. *Decompose* every training trace with the discrete wavelet transform.
2. *Select* a small set of important coefficients (magnitude-based by
   default; the ranking is taken from the consensus over the training
   configurations, which Figure 7 shows to be stable).
3. *Fit one RBF network per retained coefficient*, each mapping the full
   microarchitecture design vector to that coefficient's value.
4. *Predict* unseen configurations coefficient-by-coefficient, zero the
   unmodelled coefficients, and *reconstruct* the time-domain dynamics
   with the inverse wavelet transform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro._validation import (
    as_2d_float_array,
    resolve_settings,
    rng_from_seed,
)
from repro.errors import ModelError, NotFittedError
from repro.core import metrics as _metrics
from repro.core.rbf import RBFNetwork
from repro.core.selection import SCHEMES, consensus_ranking
from repro.core.wavelets import (
    CONVENTIONS,
    WAVELETS,
    dwt_batch,
    idwt_batch,
)


@dataclass(frozen=True)
class PredictorSettings:
    """Hyper-parameters of :class:`WaveletNeuralPredictor`.

    ``n_coefficients=16`` is the paper's cost/accuracy sweet spot
    (Figure 9); ``scheme="magnitude"`` is the selection scheme the paper
    adopts (Section 3).
    """

    n_coefficients: int = 16
    scheme: str = "magnitude"
    wavelet: str = "haar"
    convention: str = "paper"
    standardize_targets: bool = True
    # RBF hyper-parameters tuned on the paper's design space: broad,
    # strongly-overlapping units (radius_scale 4 on [0,1]-normalized
    # inputs) with GCV-ridge regularization generalize much better on
    # 200-point training sets than tight per-box radii.
    rbf_max_depth: int = 8
    rbf_min_samples_leaf: int = 3
    rbf_radius_scale: float = 4.0
    rbf_solver: str = "ridge_gcv"

    def validate(self) -> None:
        if self.n_coefficients < 1:
            raise ModelError(
                f"n_coefficients must be >= 1, got {self.n_coefficients}"
            )
        if self.scheme not in SCHEMES:
            raise ModelError(
                f"scheme must be one of {SCHEMES}, got {self.scheme!r}"
            )
        if self.wavelet not in WAVELETS:
            raise ModelError(
                f"wavelet must be one of {WAVELETS}, got {self.wavelet!r}"
            )
        if self.convention not in CONVENTIONS:
            raise ModelError(
                f"convention must be one of {CONVENTIONS}, got {self.convention!r}"
            )


class WaveletNeuralPredictor:
    """Predict workload dynamics at unexplored design points.

    Parameters
    ----------
    settings:
        A :class:`PredictorSettings`; keyword arguments may be passed
        directly instead.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(1)
    >>> X = rng.uniform(size=(64, 3))
    >>> t = np.linspace(0, 1, 32)
    >>> traces = np.array([np.sin(6 * t + 2 * x[0]) * (1 + x[1]) for x in X])
    >>> model = WaveletNeuralPredictor(n_coefficients=8).fit(X, traces)
    >>> pred = model.predict(X[:2])
    >>> pred.shape
    (2, 32)
    """

    def __init__(self, settings: Optional[PredictorSettings] = None, **kwargs):
        self.settings = resolve_settings(PredictorSettings, settings,
                                         kwargs, ModelError)
        # Fitted state
        self.selected_indices_: Optional[np.ndarray] = None
        self.models_: Dict[int, RBFNetwork] = {}
        self.n_samples_: Optional[int] = None
        self.n_features_: Optional[int] = None
        self._target_mean: Dict[int, float] = {}
        self._target_scale: Dict[int, float] = {}

    # ------------------------------------------------------------------
    def fit(self, X, traces, coefficients=None) -> "WaveletNeuralPredictor":
        """Fit per-coefficient RBF networks.

        Parameters
        ----------
        X:
            ``(n_configs, n_params)`` design matrix (normalized parameter
            encodings; see :meth:`repro.dse.space.DesignSpace.encode`).
        traces:
            ``(n_configs, n_samples)`` observed dynamics; ``n_samples``
            must be a power of two.
        coefficients:
            Optional precomputed ``dwt_batch(traces)`` under this
            predictor's wavelet settings, same shape as ``traces``.  The
            DWT is row-wise, so a caller fitting many predictors on
            row-subsets of one trace matrix (the bootstrap ensemble) can
            transform once and pass gathered rows — the transform of a
            gather equals the gather of the transform, bit for bit.
        """
        X = as_2d_float_array(X, name="X")
        traces = as_2d_float_array(traces, name="traces")
        if X.shape[0] != traces.shape[0]:
            raise ModelError(
                f"X and traces disagree on configuration count: "
                f"{X.shape[0]} != {traces.shape[0]}"
            )
        s = self.settings
        n_samples = traces.shape[1]
        if s.n_coefficients > n_samples:
            raise ModelError(
                f"n_coefficients={s.n_coefficients} exceeds trace length {n_samples}"
            )
        if coefficients is None:
            # One vectorized transform of the whole (n_configs, n_samples)
            # matrix instead of a per-row Python loop + vstack.
            coeffs = dwt_batch(traces, wavelet=s.wavelet,
                               convention=s.convention)
        else:
            coeffs = as_2d_float_array(coefficients, name="coefficients")
            if coeffs.shape != traces.shape:
                raise ModelError(
                    f"coefficients shape {coeffs.shape} does not match "
                    f"traces shape {traces.shape}"
                )
        if s.scheme == "order":
            selected = np.arange(s.n_coefficients)
        else:
            selected = np.sort(consensus_ranking(coeffs)[:s.n_coefficients])
        self.selected_indices_ = selected
        self.n_samples_ = n_samples
        self.n_features_ = X.shape[1]
        self.models_ = {}
        self._target_mean = {}
        self._target_scale = {}
        for idx in selected:
            y = coeffs[:, idx]
            mean, scale = 0.0, 1.0
            if s.standardize_targets:
                mean = float(y.mean())
                scale = float(y.std())
                if scale < 1e-12:
                    scale = 1.0
            net = RBFNetwork(
                max_depth=s.rbf_max_depth,
                min_samples_leaf=s.rbf_min_samples_leaf,
                radius_scale=s.rbf_radius_scale,
                solver=s.rbf_solver,
            ).fit(X, (y - mean) / scale)
            self.models_[int(idx)] = net
            self._target_mean[int(idx)] = mean
            self._target_scale[int(idx)] = scale
        return self

    # ------------------------------------------------------------------
    def predict_coefficients(self, X) -> np.ndarray:
        """Predicted full coefficient vectors (unmodelled entries zero)."""
        self._check_fitted()
        X = as_2d_float_array(X, name="X")
        if X.shape[1] != self.n_features_:
            raise ModelError(
                f"X has {X.shape[1]} features, model was fitted with {self.n_features_}"
            )
        out = np.zeros((X.shape[0], self.n_samples_), dtype=float)
        for idx, net in self.models_.items():
            out[:, idx] = net.predict(X) * self._target_scale[idx] + self._target_mean[idx]
        return out

    def predict(self, X) -> np.ndarray:
        """Predicted dynamics, shape ``(n_configs, n_samples)``."""
        s = self.settings
        coeffs = self.predict_coefficients(X)
        return idwt_batch(coeffs, wavelet=s.wavelet, convention=s.convention)

    def predict_one(self, x) -> np.ndarray:
        """Predicted dynamics for a single design vector."""
        return self.predict(np.asarray(x, dtype=float).reshape(1, -1))[0]

    # ------------------------------------------------------------------
    def score(self, X, traces,
              metric: Callable[[Sequence[float], Sequence[float]], float] = _metrics.nmse_percent,
              ) -> np.ndarray:
        """Per-configuration prediction errors under ``metric``.

        Defaults to the canonical MSE% (variance-normalized); the result
        feeds the Figure 8 boxplots directly.
        """
        traces = as_2d_float_array(traces, name="traces")
        preds = self.predict(X)
        if preds.shape != traces.shape:
            raise ModelError(
                f"traces shape {traces.shape} does not match predictions {preds.shape}"
            )
        return np.array([metric(a, p) for a, p in zip(traces, preds)])

    def split_importance(self) -> Dict[str, np.ndarray]:
        """Aggregate regression-tree importance over the coefficient models.

        Returns ``{"order": ..., "frequency": ...}`` — per-feature scores
        averaged over the retained coefficients' trees, weighting each
        tree equally.  This is the per-(benchmark, domain) input to the
        Figure 11 star plots.
        """
        self._check_fitted()
        order = np.zeros(self.n_features_, dtype=float)
        freq = np.zeros(self.n_features_, dtype=float)
        for net in self.models_.values():
            order += net.tree_.split_order_scores()
            freq += net.tree_.split_counts()
        n = max(len(self.models_), 1)
        order /= n
        total = freq.sum()
        if total > 0:
            freq = freq / total
        return {"order": order, "frequency": freq}

    @property
    def n_networks(self) -> int:
        """Number of fitted per-coefficient RBF networks."""
        self._check_fitted()
        return len(self.models_)

    def _check_fitted(self) -> None:
        if self.selected_indices_ is None:
            raise NotFittedError("WaveletNeuralPredictor used before fit")


class WaveletPredictorEnsemble:
    """Bootstrap ensemble of :class:`WaveletNeuralPredictor` models.

    The single predictor gives a point estimate of a configuration's
    dynamics; the active-learning loop (:mod:`repro.dse.active`)
    additionally needs to know *where the model is unsure* so it can
    spend its simulation budget there.  This class fits ``n_members``
    predictors — the first on the full training set (so point
    predictions never lose data), the rest on bootstrap resamples — and
    exposes the spread of their predictions as a per-sample uncertainty
    estimate.

    Parameters
    ----------
    n_members:
        Ensemble size ``K`` (>= 2; the variance of a single member is
        identically zero).
    settings:
        Shared :class:`PredictorSettings` for every member; keyword
        arguments may be passed directly instead.
    seed:
        Seed for the bootstrap resampling.  Fitting is fully
        deterministic given ``(seed, X, traces)``.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(3)
    >>> X = rng.uniform(size=(48, 3))
    >>> t = np.linspace(0, 1, 32)
    >>> traces = np.array([np.sin(5 * t + x[0]) * (1 + x[2]) for x in X])
    >>> ens = WaveletPredictorEnsemble(n_members=3, n_coefficients=8,
    ...                                seed=0).fit(X, traces)
    >>> mean, std = ens.predict_with_std(X[:4])
    >>> mean.shape == std.shape == (4, 32)
    True
    >>> bool(np.all(std >= 0.0))
    True
    """

    def __init__(self, n_members: int = 4,
                 settings: Optional[PredictorSettings] = None,
                 seed: int = 0, **kwargs):
        if n_members < 2:
            raise ModelError(
                f"n_members must be >= 2 for a variance estimate, got "
                f"{n_members}"
            )
        self.n_members = n_members
        self.settings = resolve_settings(PredictorSettings, settings,
                                         kwargs, ModelError)
        self.seed = seed
        self.members_: List[WaveletNeuralPredictor] = []

    # ------------------------------------------------------------------
    def fit(self, X, traces) -> "WaveletPredictorEnsemble":
        """Fit every member; bootstrap indices are drawn from ``seed``.

        Member 0 always sees the full ``(X, traces)``; members ``1..K-1``
        see size-``n`` resamples drawn with replacement.  Refitting with
        the same seed and data reproduces the ensemble exactly.
        """
        X = as_2d_float_array(X, name="X")
        traces = as_2d_float_array(traces, name="traces")
        if X.shape[0] != traces.shape[0]:
            raise ModelError(
                f"X and traces disagree on configuration count: "
                f"{X.shape[0]} != {traces.shape[0]}"
            )
        rng = rng_from_seed(self.seed)
        n = X.shape[0]
        # One stacked transform for the whole ensemble: the DWT is
        # row-wise, so every bootstrap member's coefficient matrix is a
        # row-gather of this one (bit-identical to transforming the
        # member's resampled traces directly), and K member refits pay
        # for a single dwt_batch.
        s = self.settings
        coeffs = dwt_batch(traces, wavelet=s.wavelet,
                           convention=s.convention)
        members = []
        for member in range(self.n_members):
            if member == 0:
                Xm, tm, cm = X, traces, coeffs
            else:
                idx = rng.integers(0, n, size=n)
                Xm, tm, cm = X[idx], traces[idx], coeffs[idx]
            members.append(
                WaveletNeuralPredictor(self.settings).fit(
                    Xm, tm, coefficients=cm))
        self.members_ = members
        return self

    # ------------------------------------------------------------------
    @property
    def selected_indices_(self):
        """Member 0's retained coefficient indices (``None`` pre-fit).

        Mirrors the single-predictor attribute so an ensemble can stand
        in for a :class:`WaveletNeuralPredictor` wherever only point
        predictions are consumed (e.g.
        :class:`repro.dse.explorer.PredictiveExplorer`).
        """
        if not self.members_:
            return None
        return self.members_[0].selected_indices_

    def member_predictions(self, X) -> np.ndarray:
        """Every member's predicted dynamics, shape ``(K, n, samples)``."""
        self._check_fitted()
        return np.stack([m.predict(X) for m in self.members_])

    def predict(self, X) -> np.ndarray:
        """Ensemble-mean dynamics, shape ``(n, samples)``."""
        return self.member_predictions(X).mean(axis=0)

    def predict_with_std(self, X):
        """``(mean, std)`` dynamics across members, each ``(n, samples)``.

        The standard deviation is taken across the ``K`` member
        predictions per (configuration, sample) — the bootstrap estimate
        of model uncertainty the acquisition functions consume.
        """
        preds = self.member_predictions(X)
        return preds.mean(axis=0), preds.std(axis=0)

    def _check_fitted(self) -> None:
        if not self.members_:
            raise NotFittedError("WaveletPredictorEnsemble used before fit")
