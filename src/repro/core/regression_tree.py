"""CART regression trees.

The paper trains its RBF networks with "a regression tree based method"
(Section 2.2, citing Orr et al. 2000): the tree recursively partitions the
design space, every node contributes one candidate RBF unit (center and
radius from the node's bounding box), and the split structure doubles as a
parameter-importance measure —

    "The microarchitecture parameters which cause the most output
    variation tend to be split earliest and most often in the constructed
    regression tree."  (Section 4, Figure 11)

This module implements the tree with exact variance-reduction splitting,
records per-feature *first-split depth* and *split frequency*, and exposes
every node's bounding box for RBF center extraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro._validation import as_2d_float_array
from repro.errors import ModelError, NotFittedError


@dataclass
class TreeNode:
    """One node of a fitted regression tree.

    Attributes
    ----------
    depth:
        Root is depth 0.
    value:
        Mean of the training targets reaching this node (the prediction
        for leaves).
    n_samples:
        Number of training rows reaching this node.
    sse:
        Sum of squared errors of ``value`` over those rows.
    lower, upper:
        The node's axis-aligned bounding box in input space.  The root box
        is the full training-data range; children inherit their parent's
        box cut at the split threshold.
    feature, threshold:
        Split definition (``None`` for leaves); rows with
        ``x[feature] <= threshold`` go left.
    """

    depth: int
    value: float
    n_samples: int
    sse: float
    lower: np.ndarray
    upper: np.ndarray
    feature: Optional[int] = None
    threshold: Optional[float] = None
    left: Optional["TreeNode"] = None
    right: Optional["TreeNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


@dataclass(frozen=True)
class SplitRecord:
    """Bookkeeping for one split, in construction (breadth-first) order."""

    position: int
    depth: int
    feature: int
    threshold: float
    improvement: float


def _best_split(X: np.ndarray, y: np.ndarray, min_leaf: int):
    """Exact best (feature, threshold) by SSE reduction, or ``None``.

    For every feature the candidate thresholds are midpoints between
    consecutive distinct sorted values; prefix sums give each candidate's
    two-sided SSE in O(n) after the sort.
    """
    n, d = X.shape
    if n < 2 * min_leaf:
        return None
    total_sse = float(np.sum((y - y.mean()) ** 2))
    best = None
    for feat in range(d):
        order = np.argsort(X[:, feat], kind="stable")
        xs = X[order, feat]
        ys = y[order]
        csum = np.cumsum(ys)
        csum2 = np.cumsum(ys * ys)
        total_sum, total_sum2 = csum[-1], csum2[-1]
        # Split after position i (1-based count i+1 on the left).
        counts = np.arange(1, n)
        left_sum = csum[:-1]
        left_sse = csum2[:-1] - left_sum ** 2 / counts
        right_cnt = n - counts
        right_sum = total_sum - left_sum
        right_sse = (total_sum2 - csum2[:-1]) - right_sum ** 2 / right_cnt
        sse = left_sse + right_sse
        valid = (counts >= min_leaf) & (right_cnt >= min_leaf) & (xs[:-1] < xs[1:])
        if not np.any(valid):
            continue
        sse = np.where(valid, sse, np.inf)
        i = int(np.argmin(sse))
        improvement = total_sse - float(sse[i])
        if best is None or improvement > best[0] + 1e-12:
            threshold = 0.5 * (xs[i] + xs[i + 1])
            best = (improvement, feat, float(threshold))
    return best


class RegressionTree:
    """Least-squares CART regression tree.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (root = 0).
    min_samples_leaf:
        Minimum training rows in each child of a split.
    min_samples_split:
        Minimum rows required to consider splitting a node.
    min_impurity_decrease:
        Minimum absolute SSE reduction for a split to be accepted.

    Examples
    --------
    >>> import numpy as np
    >>> X = np.linspace(0, 1, 64).reshape(-1, 1)
    >>> y = (X[:, 0] > 0.5).astype(float)
    >>> tree = RegressionTree(max_depth=2, min_samples_leaf=4).fit(X, y)
    >>> round(float(tree.predict([[0.9]])[0]), 6)
    1.0
    """

    def __init__(self, max_depth: int = 6, min_samples_leaf: int = 5,
                 min_samples_split: int = 10,
                 min_impurity_decrease: float = 1e-10):
        if max_depth < 0:
            raise ModelError(f"max_depth must be >= 0, got {max_depth}")
        if min_samples_leaf < 1:
            raise ModelError(f"min_samples_leaf must be >= 1, got {min_samples_leaf}")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_samples_split = max(min_samples_split, 2 * min_samples_leaf)
        self.min_impurity_decrease = min_impurity_decrease
        self._root: Optional[TreeNode] = None
        self._n_features: Optional[int] = None
        self._splits: List[SplitRecord] = []

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, X, y) -> "RegressionTree":
        """Fit the tree on ``X`` of shape (n, d) and targets ``y`` of shape (n,)."""
        X = as_2d_float_array(X, name="X")
        y = np.asarray(y, dtype=float)
        if y.ndim != 1 or y.size != X.shape[0]:
            raise ModelError(
                f"y must be 1-D with len(y) == X.shape[0], got {y.shape} vs {X.shape}"
            )
        self._n_features = X.shape[1]
        self._splits = []
        lower = X.min(axis=0)
        upper = X.max(axis=0)
        # Breadth-first construction so SplitRecord.position reflects the
        # order in which the most significant partitions were made.
        root = self._make_node(y, 0, lower.copy(), upper.copy())
        queue: List[tuple] = [(root, X, y)]
        while queue:
            node, Xn, yn = queue.pop(0)
            if node.depth >= self.max_depth or yn.size < self.min_samples_split:
                continue
            found = _best_split(Xn, yn, self.min_samples_leaf)
            if found is None:
                continue
            improvement, feat, thr = found
            if improvement < self.min_impurity_decrease:
                continue
            mask = Xn[:, feat] <= thr
            node.feature, node.threshold = feat, thr
            self._splits.append(SplitRecord(
                position=len(self._splits), depth=node.depth,
                feature=feat, threshold=thr, improvement=improvement,
            ))
            lo_l, up_l = node.lower.copy(), node.upper.copy()
            up_l[feat] = thr
            lo_r, up_r = node.lower.copy(), node.upper.copy()
            lo_r[feat] = thr
            node.left = self._make_node(yn[mask], node.depth + 1, lo_l, up_l)
            node.right = self._make_node(yn[~mask], node.depth + 1, lo_r, up_r)
            queue.append((node.left, Xn[mask], yn[mask]))
            queue.append((node.right, Xn[~mask], yn[~mask]))
        self._root = root
        return self

    @staticmethod
    def _make_node(y: np.ndarray, depth: int,
                   lower: np.ndarray, upper: np.ndarray) -> TreeNode:
        value = float(y.mean())
        return TreeNode(
            depth=depth,
            value=value,
            n_samples=int(y.size),
            sse=float(np.sum((y - value) ** 2)),
            lower=lower,
            upper=upper,
        )

    # ------------------------------------------------------------------
    # Prediction and introspection
    # ------------------------------------------------------------------
    @property
    def root(self) -> TreeNode:
        """The fitted root node."""
        self._check_fitted()
        return self._root

    @property
    def n_features(self) -> int:
        """Number of input features seen at fit time."""
        self._check_fitted()
        return self._n_features

    def predict(self, X) -> np.ndarray:
        """Predict targets for rows of ``X``.

        Routing is batched per node: every row reaching a split is
        partitioned with one vectorized comparison, so prediction costs
        O(n_nodes) numpy operations instead of a Python loop over rows
        — the explorer evaluates candidate batches of thousands of
        configurations through this path.
        """
        self._check_fitted()
        X = as_2d_float_array(X, name="X")
        if X.shape[1] != self._n_features:
            raise ModelError(
                f"X has {X.shape[1]} features, tree was fitted with {self._n_features}"
            )
        out = np.empty(X.shape[0], dtype=float)
        stack = [(self._root, np.arange(X.shape[0]))]
        while stack:
            node, rows = stack.pop()
            if rows.size == 0:
                continue
            if node.is_leaf:
                out[rows] = node.value
                continue
            goes_left = X[rows, node.feature] <= node.threshold
            stack.append((node.left, rows[goes_left]))
            stack.append((node.right, rows[~goes_left]))
        return out

    def nodes(self) -> Iterator[TreeNode]:
        """Yield every node, breadth-first from the root."""
        self._check_fitted()
        queue = [self._root]
        while queue:
            node = queue.pop(0)
            yield node
            if not node.is_leaf:
                queue.append(node.left)
                queue.append(node.right)

    def leaves(self) -> Iterator[TreeNode]:
        """Yield the leaf nodes."""
        return (n for n in self.nodes() if n.is_leaf)

    @property
    def n_nodes(self) -> int:
        """Total node count."""
        return sum(1 for _ in self.nodes())

    @property
    def depth(self) -> int:
        """Maximum depth over all nodes (0 for a stump)."""
        return max(n.depth for n in self.nodes())

    @property
    def splits(self) -> List[SplitRecord]:
        """Splits in construction (breadth-first) order."""
        self._check_fitted()
        return list(self._splits)

    # ------------------------------------------------------------------
    # Parameter-importance measures (Figure 11)
    # ------------------------------------------------------------------
    def split_counts(self) -> np.ndarray:
        """Number of splits on each feature ("split frequency")."""
        self._check_fitted()
        counts = np.zeros(self._n_features, dtype=int)
        for rec in self._splits:
            counts[rec.feature] += 1
        return counts

    def first_split_positions(self) -> np.ndarray:
        """Breadth-first position of each feature's earliest split.

        Features that are never split get position ``n_splits`` (i.e.,
        strictly after every real split), so lower is more important.
        """
        self._check_fitted()
        pos = np.full(self._n_features, len(self._splits), dtype=int)
        for rec in self._splits:
            if rec.position < pos[rec.feature]:
                pos[rec.feature] = rec.position
        return pos

    def split_order_scores(self) -> np.ndarray:
        """Importance in ``[0, 1]`` derived from first-split position.

        Features split earliest score near 1; never-split features score 0
        — the quantity visualised by spoke length in the paper's Figure
        11(a) star plots.
        """
        self._check_fitted()
        n = len(self._splits)
        if n == 0:
            return np.zeros(self._n_features)
        pos = self.first_split_positions().astype(float)
        return np.clip(1.0 - pos / n, 0.0, 1.0)

    def importance_by_improvement(self) -> np.ndarray:
        """Total SSE reduction attributed to each feature, normalized to sum 1."""
        self._check_fitted()
        gain = np.zeros(self._n_features, dtype=float)
        for rec in self._splits:
            gain[rec.feature] += rec.improvement
        total = gain.sum()
        return gain / total if total > 0 else gain

    def _check_fitted(self) -> None:
        if self._root is None:
            raise NotFittedError("RegressionTree.predict called before fit")
