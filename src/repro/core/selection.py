"""Wavelet coefficient selection schemes.

Section 3 of the paper: "we opt to only predict a small set of important
wavelet coefficients", comparing two schemes —

``magnitude``
    keep the ``k`` largest-magnitude coefficients, approximate the rest
    with zero (the scheme the paper adopts, since "it always outperforms
    the order-based scheme");
``order``
    keep the first ``k`` coefficients in coarse-to-fine order.

For magnitude-based selection to be usable at *unseen* configurations the
identity of the important coefficients must be stable across the design
space (the paper's Figure 7).  :func:`consensus_ranking` derives the
model-wide coefficient set from the training traces, and
:func:`ranking_stability` quantifies how consistent per-configuration
rankings are.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro._validation import as_1d_float_array, as_2d_float_array
from repro.errors import ModelError

#: Supported selection schemes.
SCHEMES = ("magnitude", "order")


def _check_scheme(scheme: str) -> None:
    if scheme not in SCHEMES:
        raise ModelError(f"unknown selection scheme {scheme!r}; choose from {SCHEMES}")


def _check_k(k: int, n: int) -> None:
    if not 1 <= k <= n:
        raise ModelError(f"k must be in [1, {n}], got {k}")


def rank_by_magnitude(coeffs: Sequence[float]) -> np.ndarray:
    """Indices of coefficients sorted by decreasing absolute magnitude.

    Ties break toward the lower (coarser) index so rankings are
    deterministic.
    """
    arr = as_1d_float_array(coeffs, name="coeffs")
    # argsort of (-|c|, index) — stable sort keeps lower indices first on ties.
    return np.argsort(-np.abs(arr), kind="stable")


def magnitude_ranks(coeffs: Sequence[float]) -> np.ndarray:
    """Per-coefficient rank (0 = largest magnitude).

    The inverse permutation of :func:`rank_by_magnitude`; this is the
    quantity plotted per configuration in the paper's Figure 7 colour map.
    """
    order = rank_by_magnitude(coeffs)
    ranks = np.empty(order.size, dtype=int)
    ranks[order] = np.arange(order.size)
    return ranks


def select_coefficients(coeffs: Sequence[float], k: int,
                        scheme: str = "magnitude") -> Tuple[np.ndarray, np.ndarray]:
    """Select ``k`` coefficients under the given scheme.

    Returns
    -------
    (indices, values):
        ``indices`` are sorted ascending (coarse-to-fine positions in the
        coefficient vector), ``values`` the corresponding coefficients.
    """
    _check_scheme(scheme)
    arr = as_1d_float_array(coeffs, name="coeffs")
    _check_k(k, arr.size)
    if scheme == "order":
        idx = np.arange(k)
    else:
        idx = np.sort(rank_by_magnitude(arr)[:k])
    return idx, arr[idx]


def truncate_coefficients(coeffs: Sequence[float], k: int,
                          scheme: str = "magnitude") -> np.ndarray:
    """Zero all but the selected ``k`` coefficients.

    The result feeds the inverse transform to produce the paper's
    truncated-reconstruction approximations (Figure 4).
    """
    arr = as_1d_float_array(coeffs, name="coeffs")
    idx, _ = select_coefficients(arr, k, scheme)
    out = np.zeros_like(arr)
    out[idx] = arr[idx]
    return out


def consensus_ranking(coeff_matrix) -> np.ndarray:
    """Design-space-wide coefficient importance ranking.

    Parameters
    ----------
    coeff_matrix:
        Array of shape ``(n_configurations, n_coefficients)`` — one DWT
        coefficient vector per training configuration.

    Returns
    -------
    numpy.ndarray
        Coefficient indices ordered by decreasing mean absolute magnitude
        across configurations.  The predictor uses the top-``k`` of this
        ordering as its retained coefficient set, which is legitimate
        because the per-configuration rankings are stable (Figure 7).
    """
    mat = as_2d_float_array(coeff_matrix, name="coeff_matrix")
    mean_abs = np.mean(np.abs(mat), axis=0)
    return np.argsort(-mean_abs, kind="stable")


def ranking_stability(coeff_matrix, k: int) -> float:
    """Mean pairwise Jaccard overlap of per-configuration top-``k`` sets.

    Returns a value in ``[0, 1]``; ``1`` means every configuration agrees
    exactly on which ``k`` coefficients matter.  This is the quantitative
    summary of the paper's Figure 7 claim ("the top ranked wavelet
    coefficients largely remain consistent across different processor
    configurations").
    """
    mat = as_2d_float_array(coeff_matrix, name="coeff_matrix")
    n_cfg, n_coef = mat.shape
    _check_k(k, n_coef)
    top = np.zeros((n_cfg, n_coef), dtype=bool)
    for i in range(n_cfg):
        top[i, rank_by_magnitude(mat[i])[:k]] = True
    if n_cfg < 2:
        return 1.0
    # Pairwise Jaccard via boolean algebra, vectorized over pairs.
    inter = top.astype(int) @ top.astype(int).T          # |A ∩ B|
    sizes = top.sum(axis=1)
    union = sizes[:, None] + sizes[None, :] - inter       # |A ∪ B|
    iu = np.triu_indices(n_cfg, 1)
    return float(np.mean(inter[iu] / union[iu]))


def rank_map(coeff_matrix) -> np.ndarray:
    """Per-configuration magnitude ranks — the raw data of Figure 7.

    Returns an ``(n_configurations, n_coefficients)`` integer array where
    entry ``(i, j)`` is the rank (0 = most important) of coefficient ``j``
    under configuration ``i``.
    """
    mat = as_2d_float_array(coeff_matrix, name="coeff_matrix")
    return np.vstack([magnitude_ranks(row) for row in mat])


def energy_captured(coeffs: Sequence[float], k: int,
                    scheme: str = "magnitude") -> float:
    """Fraction of coefficient energy captured by the selected subset."""
    arr = as_1d_float_array(coeffs, name="coeffs")
    total = float(np.sum(arr * arr))
    if total == 0.0:
        return 1.0
    _, vals = select_coefficients(arr, k, scheme)
    return float(np.sum(vals * vals)) / total
