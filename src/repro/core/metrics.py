"""Accuracy metrics for workload-dynamics prediction.

The paper reports prediction quality as "MSE (%)" (Section 4) and
classifies workload execution scenarios with the directional symmetry
(DS) metric against the quartile thresholds of Figure 12.

Metric conventions
------------------
The paper's MSE formula is the plain mean squared error, but its reported
values (medians of 0.5–8.6 %) are clearly normalized.  We adopt
*pooled-variance-normalized MSE* as the canonical "MSE (%)"::

    MSE%(config) = 100 * mean((x_hat - x)**2) / Var_pooled

where ``Var_pooled`` is the variance of all samples of all evaluated
traces for that (benchmark, domain) — i.e. each configuration's raw MSE
expressed as a percentage of the benchmark's overall dynamics variance.
This convention is scale-free across CPI / Watts / AVF, robust for
near-flat traces (eon), and empirically lands in the paper's reported
bands (CPI overall median ~2.3 %, per-benchmark medians 0.5–8.6 %,
maxima ~30 %).  Per-trace-variance and mean-square-normalized variants
are provided for sensitivity studies (:func:`nmse_percent`,
:func:`signal_nmse_percent`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro._validation import as_1d_float_array
from repro.errors import ModelError


def _paired(actual: Sequence[float], predicted: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    a = as_1d_float_array(actual, name="actual")
    p = as_1d_float_array(predicted, name="predicted")
    if a.size != p.size:
        raise ModelError(
            f"actual and predicted must have equal length, got {a.size} != {p.size}"
        )
    return a, p


def mse(actual: Sequence[float], predicted: Sequence[float]) -> float:
    """Plain mean squared error (the paper's Section 4 formula)."""
    a, p = _paired(actual, predicted)
    return float(np.mean((a - p) ** 2))


def rmse(actual: Sequence[float], predicted: Sequence[float]) -> float:
    """Root mean squared error."""
    return float(np.sqrt(mse(actual, predicted)))


def mae(actual: Sequence[float], predicted: Sequence[float]) -> float:
    """Mean absolute error."""
    a, p = _paired(actual, predicted)
    return float(np.mean(np.abs(a - p)))


def nmse_percent(actual: Sequence[float], predicted: Sequence[float]) -> float:
    """Variance-normalized MSE in percent — the canonical "MSE (%)".

    ``100 * mean((x_hat - x)^2) / var(x)``.  When the actual trace is
    constant (zero variance) the mean square of the trace is used as the
    normalizer instead, so flat traces predicted perfectly still score 0.
    """
    a, p = _paired(actual, predicted)
    err = float(np.mean((a - p) ** 2))
    denom = float(np.var(a))
    if denom == 0.0:
        denom = float(np.mean(a * a))
    if denom == 0.0:
        return 0.0 if err == 0.0 else float("inf")
    return 100.0 * err / denom


def signal_nmse_percent(actual: Sequence[float], predicted: Sequence[float]) -> float:
    """MSE normalized by the mean square of the actual trace, in percent."""
    a, p = _paired(actual, predicted)
    denom = float(np.mean(a * a))
    if denom == 0.0:
        return 0.0 if np.allclose(a, p) else float("inf")
    return 100.0 * float(np.mean((a - p) ** 2)) / denom


def mean_relative_error_percent(actual: Sequence[float], predicted: Sequence[float],
                                eps: float = 1e-12) -> float:
    """Mean absolute relative error in percent."""
    a, p = _paired(actual, predicted)
    return 100.0 * float(np.mean(np.abs(a - p) / np.maximum(np.abs(a), eps)))


def pooled_nmse_percent(actual_traces, predicted_traces) -> np.ndarray:
    """Canonical "MSE (%)": per-configuration pooled-normalized errors.

    Parameters
    ----------
    actual_traces, predicted_traces:
        Arrays of shape ``(n_configs, n_samples)``.

    Returns
    -------
    numpy.ndarray
        One error per configuration: ``100 * mse(config) / Var_pooled``
        with ``Var_pooled`` the variance over *all* samples of *all*
        actual traces (the benchmark's overall dynamics variance).
    """
    actual = np.asarray(actual_traces, dtype=float)
    predicted = np.asarray(predicted_traces, dtype=float)
    if actual.ndim != 2 or actual.shape != predicted.shape:
        raise ModelError(
            f"expected matching 2-D trace matrices, got {actual.shape} "
            f"vs {predicted.shape}"
        )
    pooled_var = float(np.var(actual))
    if pooled_var == 0.0:
        pooled_var = float(np.mean(actual * actual))
    if pooled_var == 0.0:
        return np.where(np.all(actual == predicted, axis=1), 0.0, np.inf)
    per_config_mse = np.mean((actual - predicted) ** 2, axis=1)
    return 100.0 * per_config_mse / pooled_var


def quartile_thresholds(trace: Sequence[float]) -> Tuple[float, float, float]:
    """The paper's Figure 12 threshold levels Q1, Q2, Q3.

    ``Qk = min + (max - min) * k / 4`` computed from the *actual* trace.
    """
    t = as_1d_float_array(trace, name="trace")
    lo, hi = float(t.min()), float(t.max())
    span = hi - lo
    return (lo + span * 0.25, lo + span * 0.50, lo + span * 0.75)


def directional_symmetry(actual: Sequence[float], predicted: Sequence[float],
                         threshold: float) -> float:
    """Fraction of samples where prediction and truth agree on the side
    of ``threshold`` (the paper's DS metric, in ``[0, 1]``)."""
    a, p = _paired(actual, predicted)
    return float(np.mean((a >= threshold) == (p >= threshold)))


def directional_asymmetry_percent(actual: Sequence[float], predicted: Sequence[float],
                                  threshold: float) -> float:
    """``(1 - DS)`` in percent — the quantity plotted in Figure 13."""
    return 100.0 * (1.0 - directional_symmetry(actual, predicted, threshold))


def scenario_asymmetries(actual: Sequence[float], predicted: Sequence[float]) -> Tuple[float, float, float]:
    """Directional asymmetry (%) at the trace's Q1, Q2 and Q3 thresholds."""
    q1, q2, q3 = quartile_thresholds(actual)
    return (
        directional_asymmetry_percent(actual, predicted, q1),
        directional_asymmetry_percent(actual, predicted, q2),
        directional_asymmetry_percent(actual, predicted, q3),
    )


def threshold_violation_fraction(trace: Sequence[float], threshold: float) -> float:
    """Fraction of samples at or above ``threshold``.

    Used by the DVM case study to check whether a policy keeps a trace
    under its target during execution.
    """
    t = as_1d_float_array(trace, name="trace")
    return float(np.mean(t >= threshold))


@dataclass(frozen=True)
class BoxplotStats:
    """Five-number boxplot summary matching the paper's Figure 8 plots.

    Whiskers extend to the most extreme data point within 1.5 IQR of the
    nearer hinge; points beyond are reported as outliers.
    """

    median: float
    q1: float
    q3: float
    whisker_low: float
    whisker_high: float
    mean: float
    outliers: Tuple[float, ...] = field(default_factory=tuple)

    @property
    def iqr(self) -> float:
        """Interquartile range."""
        return self.q3 - self.q1


def boxplot_stats(values: Sequence[float]) -> BoxplotStats:
    """Compute :class:`BoxplotStats` for a set of per-configuration errors."""
    v = as_1d_float_array(values, name="values")
    q1, med, q3 = (float(q) for q in np.percentile(v, [25, 50, 75]))
    iqr = q3 - q1
    lo_fence, hi_fence = q1 - 1.5 * iqr, q3 + 1.5 * iqr
    inliers = v[(v >= lo_fence) & (v <= hi_fence)]
    outliers = tuple(float(x) for x in np.sort(v[(v < lo_fence) | (v > hi_fence)]))
    return BoxplotStats(
        median=med,
        q1=q1,
        q3=q3,
        whisker_low=float(inliers.min()) if inliers.size else med,
        whisker_high=float(inliers.max()) if inliers.size else med,
        mean=float(v.mean()),
        outliers=outliers,
    )


def summarize_errors(per_config_errors: Sequence[float]) -> dict:
    """Dictionary summary (median/mean/max/boxplot) of a set of errors."""
    v = as_1d_float_array(per_config_errors, name="per_config_errors")
    stats = boxplot_stats(v)
    return {
        "median": stats.median,
        "mean": stats.mean,
        "max": float(v.max()),
        "min": float(v.min()),
        "q1": stats.q1,
        "q3": stats.q3,
        "n": int(v.size),
        "boxplot": stats,
    }


def overall_median(per_benchmark_errors: List[Sequence[float]]) -> float:
    """Median across the pooled per-configuration errors of all benchmarks.

    The paper quotes "an overall median error across all benchmarks of
    2.3 percent" — this helper reproduces that aggregation.
    """
    pooled = np.concatenate([as_1d_float_array(e, name="errors") for e in per_benchmark_errors])
    return float(np.median(pooled))
