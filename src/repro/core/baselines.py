"""Baseline predictive models the paper positions itself against.

Section 1 and Section 7 of the paper contrast the wavelet neural network
with two families of "existing methods":

* **linear regression models** (Joseph et al. HPCA'06) — "usually
  inadequate for modeling the non-linear dynamics of real-world
  workloads";
* **monolithic global neural networks** (Ipek et al. ASPLOS'06, Joseph et
  al. MICRO'06) — accurate for *aggregated* statistics (e.g. whole-run
  CPI) but "incapable of capturing and revealing program dynamics".

Three baselines are provided with the same ``fit(X, traces)`` /
``predict(X)`` interface as
:class:`~repro.core.predictor.WaveletNeuralPredictor`, so the ablation
benchmarks can swap them in directly:

:class:`LinearCoefficientModel`
    The paper's pipeline with every RBF network replaced by ordinary
    least squares — isolates the value of non-linear modelling.
:class:`GlobalAggregateModel`
    One RBF network predicting only the aggregate (trace mean); its
    "dynamics" prediction is a flat line — the monolithic global model.
:class:`PerSampleModel`
    One RBF network per *time sample* (no wavelet domain) — the naive
    dynamic extension of global models; costs ``n_samples`` networks and
    chases unpredictable high-frequency content.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro._validation import as_2d_float_array
from repro.errors import ModelError, NotFittedError
from repro.core import metrics as _metrics
from repro.core.rbf import RBFNetwork
from repro.core.selection import consensus_ranking
from repro.core.wavelets import dwt, idwt


class _DynamicsModel:
    """Shared scoring helper for all dynamics models."""

    def predict(self, X) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def score(self, X, traces,
              metric: Callable[[Sequence[float], Sequence[float]], float] = _metrics.nmse_percent,
              ) -> np.ndarray:
        """Per-configuration errors under ``metric`` (default MSE%)."""
        traces = as_2d_float_array(traces, name="traces")
        preds = self.predict(X)
        if preds.shape != traces.shape:
            raise ModelError(
                f"traces shape {traces.shape} does not match predictions {preds.shape}"
            )
        return np.array([metric(a, p) for a, p in zip(traces, preds)])


class LinearCoefficientModel(_DynamicsModel):
    """Wavelet pipeline with per-coefficient *linear* regression.

    Identical decomposition / selection / reconstruction to the paper's
    model, but each retained coefficient is fitted with ordinary least
    squares (plus intercept).  Whatever accuracy gap remains versus
    :class:`~repro.core.predictor.WaveletNeuralPredictor` is attributable
    to non-linearity in the config-to-coefficient response.
    """

    def __init__(self, n_coefficients: int = 16, wavelet: str = "haar",
                 convention: str = "paper", ridge: float = 1e-8):
        if n_coefficients < 1:
            raise ModelError(f"n_coefficients must be >= 1, got {n_coefficients}")
        self.n_coefficients = n_coefficients
        self.wavelet = wavelet
        self.convention = convention
        self.ridge = ridge
        self.selected_indices_: Optional[np.ndarray] = None
        self.coef_: Optional[np.ndarray] = None       # (k, n_features + 1)
        self.n_samples_: Optional[int] = None
        self.n_features_: Optional[int] = None

    def fit(self, X, traces) -> "LinearCoefficientModel":
        X = as_2d_float_array(X, name="X")
        traces = as_2d_float_array(traces, name="traces")
        if X.shape[0] != traces.shape[0]:
            raise ModelError("X and traces disagree on configuration count")
        coeffs = np.vstack([
            dwt(row, wavelet=self.wavelet, convention=self.convention)
            for row in traces
        ])
        self.n_samples_ = traces.shape[1]
        self.n_features_ = X.shape[1]
        self.selected_indices_ = np.sort(
            consensus_ranking(coeffs)[:min(self.n_coefficients, self.n_samples_)]
        )
        design = np.hstack([X, np.ones((X.shape[0], 1))])
        gram = design.T @ design + self.ridge * np.eye(design.shape[1])
        targets = coeffs[:, self.selected_indices_]
        self.coef_ = np.linalg.solve(gram, design.T @ targets).T
        return self

    def predict(self, X) -> np.ndarray:
        if self.coef_ is None:
            raise NotFittedError("LinearCoefficientModel used before fit")
        X = as_2d_float_array(X, name="X")
        design = np.hstack([X, np.ones((X.shape[0], 1))])
        predicted = design @ self.coef_.T
        out = np.zeros((X.shape[0], self.n_samples_), dtype=float)
        out[:, self.selected_indices_] = predicted
        return np.vstack([
            idwt(row, wavelet=self.wavelet, convention=self.convention)
            for row in out
        ])


class GlobalAggregateModel(_DynamicsModel):
    """Monolithic global model: predicts only the aggregate statistic.

    One RBF network maps the design vector to the trace *mean*; the
    dynamics "prediction" is that mean replicated across all samples.
    This is what Section 1 calls the "global model" whose inability to
    reveal fine-grain behaviour motivates the paper.
    """

    def __init__(self, rbf_max_depth: int = 8, rbf_min_samples_leaf: int = 3,
                 rbf_radius_scale: float = 4.0):
        self.rbf_max_depth = rbf_max_depth
        self.rbf_min_samples_leaf = rbf_min_samples_leaf
        self.rbf_radius_scale = rbf_radius_scale
        self.net_: Optional[RBFNetwork] = None
        self.n_samples_: Optional[int] = None

    def fit(self, X, traces) -> "GlobalAggregateModel":
        X = as_2d_float_array(X, name="X")
        traces = as_2d_float_array(traces, name="traces")
        if X.shape[0] != traces.shape[0]:
            raise ModelError("X and traces disagree on configuration count")
        self.n_samples_ = traces.shape[1]
        self.net_ = RBFNetwork(
            max_depth=self.rbf_max_depth,
            min_samples_leaf=self.rbf_min_samples_leaf,
            radius_scale=self.rbf_radius_scale,
        ).fit(X, traces.mean(axis=1))
        return self

    def predict(self, X) -> np.ndarray:
        if self.net_ is None:
            raise NotFittedError("GlobalAggregateModel used before fit")
        agg = self.net_.predict(X)
        return np.repeat(agg[:, None], self.n_samples_, axis=1)

    def predict_aggregate(self, X) -> np.ndarray:
        """The aggregate (mean) predictions themselves."""
        if self.net_ is None:
            raise NotFittedError("GlobalAggregateModel used before fit")
        return self.net_.predict(X)


class PerSampleModel(_DynamicsModel):
    """One RBF network per time sample, no wavelet domain.

    The brute-force way to extend global models to dynamics.  Compared to
    the wavelet predictor it needs ``n_samples`` networks instead of
    ``k=16`` and regresses every sample's noise individually.
    """

    def __init__(self, rbf_max_depth: int = 4, rbf_min_samples_leaf: int = 8,
                 rbf_radius_scale: float = 4.0):
        self.rbf_max_depth = rbf_max_depth
        self.rbf_min_samples_leaf = rbf_min_samples_leaf
        self.rbf_radius_scale = rbf_radius_scale
        self.nets_: Optional[list] = None

    def fit(self, X, traces) -> "PerSampleModel":
        X = as_2d_float_array(X, name="X")
        traces = as_2d_float_array(traces, name="traces")
        if X.shape[0] != traces.shape[0]:
            raise ModelError("X and traces disagree on configuration count")
        self.nets_ = [
            RBFNetwork(
                max_depth=self.rbf_max_depth,
                min_samples_leaf=self.rbf_min_samples_leaf,
                radius_scale=self.rbf_radius_scale,
            ).fit(X, traces[:, j])
            for j in range(traces.shape[1])
        ]
        return self

    def predict(self, X) -> np.ndarray:
        if self.nets_ is None:
            raise NotFittedError("PerSampleModel used before fit")
        X = as_2d_float_array(X, name="X")
        return np.column_stack([net.predict(X) for net in self.nets_])

    @property
    def n_networks(self) -> int:
        """Number of fitted networks (equals the trace length)."""
        if self.nets_ is None:
            raise NotFittedError("PerSampleModel used before fit")
        return len(self.nets_)
