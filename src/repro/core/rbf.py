"""Tree-seeded Gaussian radial basis function networks.

Implements the paper's Section 2.2 model: an RBF network

    f(x) = sum_i w_i * phi_i(||(x - mu_i) / theta_i||)

with Gaussian basis functions, whose centers ``mu_i`` and radius vectors
``theta_i`` come from the nodes of a regression tree (the strategy of Orr
et al. 2000, the paper's reference [16]): every tree node contributes one
candidate unit centered at its bounding-box midpoint with radii
proportional to the box widths.  The output weights are then solved by
ridge regression with the regularization strength chosen by Generalized
Cross-Validation (GCV), or alternatively by greedy forward selection of
units.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro._validation import as_2d_float_array
from repro.errors import ModelError, NotFittedError
from repro.core.regression_tree import RegressionTree

#: Weight-solving strategies.
SOLVERS = ("ridge_gcv", "forward")

#: Default grid of ridge penalties scanned by GCV.
DEFAULT_LAMBDA_GRID = tuple(float(x) for x in np.logspace(-8, 2, 21))


def _design_matrix(X: np.ndarray, centers: np.ndarray,
                   radii: np.ndarray) -> np.ndarray:
    """Gaussian activations: Phi[i, j] = exp(-sum_d ((x_id - mu_jd)/theta_jd)^2)."""
    # (n, 1, d) - (1, m, d) -> (n, m, d)
    z = (X[:, None, :] - centers[None, :, :]) / radii[None, :, :]
    return np.exp(-np.sum(z * z, axis=2))


def _gcv_ridge(phi: np.ndarray, y: np.ndarray,
               lambda_grid: Sequence[float]):
    """Ridge weights with lambda chosen by GCV, via SVD of ``phi``.

    Returns ``(weights, best_lambda, gcv_score)``.
    """
    n = phi.shape[0]
    u, s, vt = np.linalg.svd(phi, full_matrices=False)
    uty = u.T @ y
    y_norm2 = float(y @ y)
    best = None
    for lam in lambda_grid:
        shrink = s * s / (s * s + lam)           # diagonal of the hat matrix core
        fitted_norm2 = float(np.sum((shrink * uty) ** 2))
        cross = float(np.sum(shrink * uty * uty))
        rss = max(y_norm2 - 2.0 * cross + fitted_norm2, 0.0)
        trace_s = float(np.sum(shrink))
        denom = max(n - trace_s, 1e-9)
        gcv = n * rss / denom ** 2
        if best is None or gcv < best[2]:
            coef = vt.T @ ((s / (s * s + lam)) * uty)
            best = (coef, lam, gcv)
    return best


class RBFNetwork:
    """Gaussian RBF network with regression-tree center selection.

    Parameters
    ----------
    max_depth, min_samples_leaf:
        Passed to the underlying :class:`~repro.core.regression_tree.RegressionTree`.
    radius_scale:
        Multiplier applied to each node's half box widths to obtain the
        per-dimension radii; larger values give smoother interpolants.
    min_radius:
        Floor applied to every radius so degenerate (zero-width) box
        dimensions still produce finite activations.
    solver:
        ``"ridge_gcv"`` (default) solves weights over all candidate units
        with GCV-selected ridge penalty; ``"forward"`` greedily adds units
        while GCV improves (Orr's forward-selection variant).
    lambda_grid:
        Ridge penalties scanned by GCV.
    include_bias:
        Add a constant unit so the network can express the output mean
        directly.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> X = rng.uniform(size=(80, 2))
    >>> y = np.sin(3 * X[:, 0]) + X[:, 1] ** 2
    >>> net = RBFNetwork(max_depth=4, min_samples_leaf=4).fit(X, y)
    >>> float(np.abs(net.predict(X) - y).mean()) < 0.2
    True
    """

    def __init__(self, max_depth: int = 6, min_samples_leaf: int = 5,
                 radius_scale: float = 1.5, min_radius: float = 0.05,
                 solver: str = "ridge_gcv",
                 lambda_grid: Sequence[float] = DEFAULT_LAMBDA_GRID,
                 include_bias: bool = True):
        if solver not in SOLVERS:
            raise ModelError(f"unknown solver {solver!r}; choose from {SOLVERS}")
        if radius_scale <= 0:
            raise ModelError(f"radius_scale must be positive, got {radius_scale}")
        if min_radius <= 0:
            raise ModelError(f"min_radius must be positive, got {min_radius}")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.radius_scale = radius_scale
        self.min_radius = min_radius
        self.solver = solver
        self.lambda_grid = tuple(lambda_grid)
        self.include_bias = include_bias
        # Fitted state
        self.tree_: Optional[RegressionTree] = None
        self.centers_: Optional[np.ndarray] = None
        self.radii_: Optional[np.ndarray] = None
        self.weights_: Optional[np.ndarray] = None
        self.bias_: float = 0.0
        self.lambda_: Optional[float] = None
        self.gcv_: Optional[float] = None

    # ------------------------------------------------------------------
    def fit(self, X, y) -> "RBFNetwork":
        """Fit tree, derive candidate units, solve output weights."""
        X = as_2d_float_array(X, name="X")
        y = np.asarray(y, dtype=float)
        if y.ndim != 1 or y.size != X.shape[0]:
            raise ModelError(
                f"y must be 1-D with len(y) == X.shape[0], got {y.shape} vs {X.shape}"
            )
        self.tree_ = RegressionTree(
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
        ).fit(X, y)
        centers, radii = self._units_from_tree()
        self.centers_, self.radii_ = centers, radii
        # Work on centred targets; the intercept absorbs the mean, which
        # keeps the ridge penalty from shrinking the overall level.
        self.bias_ = float(y.mean())
        resid = y - self.bias_
        phi = _design_matrix(X, centers, radii)
        if self.include_bias:
            phi = np.hstack([phi, np.ones((phi.shape[0], 1))])
        if self.solver == "ridge_gcv":
            coef, lam, gcv = _gcv_ridge(phi, resid, self.lambda_grid)
            self.weights_, self.lambda_, self.gcv_ = coef, lam, gcv
        else:
            self.weights_, self.lambda_, self.gcv_ = self._forward_select(phi, resid)
        return self

    def _units_from_tree(self):
        """Candidate centers/radii from every tree node's bounding box."""
        centers, radii = [], []
        for node in self.tree_.nodes():
            mid = (node.lower + node.upper) / 2.0
            half = (node.upper - node.lower) / 2.0
            rad = np.maximum(half * self.radius_scale, self.min_radius)
            centers.append(mid)
            radii.append(rad)
        return np.vstack(centers), np.vstack(radii)

    def _forward_select(self, phi: np.ndarray, y: np.ndarray):
        """Greedy forward selection of columns of ``phi`` minimizing GCV."""
        n, m = phi.shape
        selected: list = []
        remaining = list(range(m))
        best_overall = None
        lam = 1e-6
        while remaining:
            best_step = None
            for j in remaining:
                cols = selected + [j]
                sub = phi[:, cols]
                coef, _, gcv = _gcv_ridge(sub, y, (lam,))
                if best_step is None or gcv < best_step[2]:
                    best_step = (j, coef, gcv)
            j, coef, gcv = best_step
            if best_overall is not None and gcv >= best_overall[2] - 1e-12:
                break
            selected.append(j)
            remaining.remove(j)
            best_overall = (list(selected), coef, gcv)
            if len(selected) >= min(n // 2, m):
                break
        cols, coef, gcv = best_overall
        weights = np.zeros(m)
        weights[cols] = coef
        return weights, lam, gcv

    # ------------------------------------------------------------------
    @property
    def n_units(self) -> int:
        """Number of candidate RBF units (excluding the bias column)."""
        self._check_fitted()
        return self.centers_.shape[0]

    def predict(self, X) -> np.ndarray:
        """Evaluate the network at rows of ``X``."""
        self._check_fitted()
        X = as_2d_float_array(X, name="X")
        if X.shape[1] != self.centers_.shape[1]:
            raise ModelError(
                f"X has {X.shape[1]} features, network was fitted with "
                f"{self.centers_.shape[1]}"
            )
        phi = _design_matrix(X, self.centers_, self.radii_)
        if self.include_bias:
            phi = np.hstack([phi, np.ones((phi.shape[0], 1))])
        return phi @ self.weights_ + self.bias_

    def _check_fitted(self) -> None:
        if self.weights_ is None:
            raise NotFittedError("RBFNetwork.predict called before fit")
