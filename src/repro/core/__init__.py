"""The paper's primary contribution: wavelet neural networks for
predicting workload dynamics across a microarchitecture design space.

Submodules
----------
``wavelets``
    Haar discrete wavelet transform in the paper's average/half-difference
    convention, the orthonormal convention, multilevel analysis, partial
    reconstruction, and a Daubechies-4 extension.
``selection``
    Magnitude- and order-based wavelet coefficient selection (Section 3 of
    the paper) plus ranking-stability analysis (Figure 7).
``regression_tree``
    CART regression trees used both to seed RBF centers (Orr et al. 2000)
    and to derive parameter importance (Figure 11).
``rbf``
    Tree-seeded Gaussian radial basis function networks.
``predictor``
    :class:`~repro.core.predictor.WaveletNeuralPredictor` — one RBF network
    per retained wavelet coefficient, inverse transform to synthesize the
    predicted dynamics (Figure 6 pipeline).
``baselines``
    The "existing methods" the paper contrasts with: linear models and
    monolithic/aggregate-only neural models.
``metrics``
    MSE%, directional symmetry, threshold scenarios, boxplot statistics.
"""

from repro.core.wavelets import (
    dwt,
    idwt,
    haar_dwt,
    haar_idwt,
    MultiresolutionAnalysis,
)
from repro.core.selection import (
    rank_by_magnitude,
    select_coefficients,
    truncate_coefficients,
    consensus_ranking,
)
from repro.core.regression_tree import RegressionTree
from repro.core.rbf import RBFNetwork
from repro.core.predictor import WaveletNeuralPredictor
from repro.core.metrics import (
    mse,
    nmse_percent,
    directional_symmetry,
    quartile_thresholds,
)

__all__ = [
    "dwt",
    "idwt",
    "haar_dwt",
    "haar_idwt",
    "MultiresolutionAnalysis",
    "rank_by_magnitude",
    "select_coefficients",
    "truncate_coefficients",
    "consensus_ranking",
    "RegressionTree",
    "RBFNetwork",
    "WaveletNeuralPredictor",
    "mse",
    "nmse_percent",
    "directional_symmetry",
    "quartile_thresholds",
]
