"""Discrete wavelet transforms for workload-dynamics analysis.

The paper (Section 2.1) decomposes each sampled workload trace with the
Haar discrete wavelet transform, using the *average / half-difference*
convention of its Figure 2 example: at every scale, adjacent pairs
``(a, b)`` become an approximation ``(a + b) / 2`` and a detail
``(a - b) / 2``.  The full transform of a length-``n`` (power of two)
series is the vector::

    [overall average,
     detail at the coarsest scale          (1 value),
     details at the next finer scale       (2 values),
     ...,
     details at the finest scale           (n/2 values)]

which matches the paper's worked example: ``{3, 4, 20, 25, 15, 5, 20, 3}``
transforms to ``[11.875, 1.125, -9.5, -0.75, -0.5, -2.5, 5, 8.5]``.

Two conventions are supported:

``"paper"``
    Average / half-difference as above.  Not energy preserving, but this
    is what the paper's figures use and what the magnitude-based
    coefficient ranking operates on.
``"orthonormal"``
    The standard orthonormal Haar filter pair ``(a + b) / sqrt(2)``,
    ``(a - b) / sqrt(2)``.  Energy preserving (Parseval), used when an
    energy-compaction argument must hold exactly.

A periodic Daubechies-4 transform is provided as an extension (the paper
notes wavelet analysis "allows one to choose the pair of scaling and
wavelet filters from numerous functions").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro._validation import (
    as_1d_float_array,
    as_2d_float_array,
    is_power_of_two,
    require_power_of_two,
)
from repro.errors import TransformError

#: Supported transform conventions.
CONVENTIONS = ("paper", "orthonormal")

#: Supported wavelet families.
WAVELETS = ("haar", "db4")

# Daubechies-4 scaling filter taps (orthonormal).
_SQRT3 = math.sqrt(3.0)
_D4_NORM = 4.0 * math.sqrt(2.0)
_D4_H = np.array(
    [
        (1.0 + _SQRT3) / _D4_NORM,
        (3.0 + _SQRT3) / _D4_NORM,
        (3.0 - _SQRT3) / _D4_NORM,
        (1.0 - _SQRT3) / _D4_NORM,
    ]
)
# Wavelet (high-pass) filter via the quadrature mirror relation.
_D4_G = np.array([_D4_H[3], -_D4_H[2], _D4_H[1], -_D4_H[0]])


def _haar_step(data: np.ndarray, convention: str) -> tuple:
    """One Haar analysis step: return (approximation, detail) halves.

    Operates on the last axis, so a whole ``(n_traces, n_samples)``
    matrix transforms in one vectorized pass.
    """
    even = data[..., 0::2]
    odd = data[..., 1::2]
    if convention == "paper":
        approx = (even + odd) / 2.0
        detail = (even - odd) / 2.0
    else:  # orthonormal
        approx = (even + odd) / math.sqrt(2.0)
        detail = (even - odd) / math.sqrt(2.0)
    return approx, detail


def _haar_unstep(approx: np.ndarray, detail: np.ndarray, convention: str) -> np.ndarray:
    """One Haar synthesis step: interleave pairs back together."""
    out = np.empty(approx.shape[:-1] + (approx.shape[-1] * 2,), dtype=float)
    if convention == "paper":
        out[..., 0::2] = approx + detail
        out[..., 1::2] = approx - detail
    else:
        out[..., 0::2] = (approx + detail) / math.sqrt(2.0)
        out[..., 1::2] = (approx - detail) / math.sqrt(2.0)
    return out


def haar_dwt(data: Sequence[float], convention: str = "paper") -> np.ndarray:
    """Full Haar DWT of a power-of-two-length series.

    Parameters
    ----------
    data:
        One-dimensional series whose length is a power of two.
    convention:
        ``"paper"`` (average / half-difference, the paper's Figure 2) or
        ``"orthonormal"``.

    Returns
    -------
    numpy.ndarray
        Coefficients ordered coarse-to-fine:
        ``[approximation, detail_level_1, detail_level_2, ..., detail_level_log2(n)]``
        where detail level ``j`` holds ``2**(j-1)`` values.
    """
    _check_convention(convention)
    arr = as_1d_float_array(data)
    require_power_of_two(arr.size)
    return _haar_dwt_any(arr, convention)


def _haar_dwt_any(arr: np.ndarray, convention: str) -> np.ndarray:
    """Haar analysis along the last axis (1-D series or trace matrix)."""
    details: List[np.ndarray] = []
    approx = arr
    while approx.shape[-1] > 1:
        approx, detail = _haar_step(approx, convention)
        details.append(detail)
    # details were collected fine-to-coarse; output is coarse-to-fine.
    out = [approx]
    out.extend(reversed(details))
    return np.concatenate(out, axis=-1)


def haar_idwt(coeffs: Sequence[float], convention: str = "paper") -> np.ndarray:
    """Inverse of :func:`haar_dwt`; exact for the full coefficient vector."""
    _check_convention(convention)
    arr = as_1d_float_array(coeffs, name="coeffs")
    require_power_of_two(arr.size, name="coeffs length")
    return _haar_idwt_any(arr, convention)


def _haar_idwt_any(arr: np.ndarray, convention: str) -> np.ndarray:
    """Haar synthesis along the last axis (1-D series or trace matrix)."""
    approx = arr[..., :1]
    pos = 1
    while pos < arr.shape[-1]:
        width = approx.shape[-1]
        detail = arr[..., pos:pos + width]
        approx = _haar_unstep(approx, detail, convention)
        pos += width
    return approx


def _d4_step(data: np.ndarray) -> tuple:
    """One periodic Daubechies-4 analysis step (vectorized on the last axis)."""
    n = data.shape[-1]
    idx = np.arange(0, n, 2)
    taps = np.stack([np.roll(data, -k, axis=-1)[..., idx] for k in range(4)],
                    axis=-1)
    approx = taps @ _D4_H
    detail = taps @ _D4_G
    return approx, detail


def _d4_unstep(approx: np.ndarray, detail: np.ndarray) -> np.ndarray:
    """One periodic Daubechies-4 synthesis step (transpose of analysis)."""
    n = approx.shape[-1] * 2
    out = np.zeros(approx.shape[:-1] + (n,), dtype=float)
    idx = np.arange(0, n, 2)
    # For a fixed shift k the target indices (idx + k) % n are distinct
    # (idx is even-spaced and n >= 4 here), so fancy-indexed += is exact.
    for k in range(4):
        out[..., (idx + k) % n] += approx * _D4_H[k] + detail * _D4_G[k]
    return out


def _d4_dwt(data: np.ndarray) -> np.ndarray:
    details: List[np.ndarray] = []
    approx = data
    while approx.shape[-1] > 1:
        if approx.shape[-1] < 4:
            # Fall back to the orthonormal Haar step for the last level(s):
            # periodic D4 needs at least 4 samples per step.
            approx, detail = _haar_step(approx, "orthonormal")
        else:
            approx, detail = _d4_step(approx)
        details.append(detail)
    out = [approx]
    out.extend(reversed(details))
    return np.concatenate(out, axis=-1)


def _d4_idwt(coeffs: np.ndarray) -> np.ndarray:
    approx = coeffs[..., :1]
    pos = 1
    while pos < coeffs.shape[-1]:
        width = approx.shape[-1]
        detail = coeffs[..., pos:pos + width]
        if width < 2:
            approx = _haar_unstep(approx, detail, "orthonormal")
        else:
            approx = _d4_unstep(approx, detail)
        pos += width
    return approx


def dwt(data: Sequence[float], wavelet: str = "haar",
        convention: str = "paper") -> np.ndarray:
    """Discrete wavelet transform with a selectable wavelet family.

    ``wavelet="haar"`` honours ``convention``; ``wavelet="db4"`` is always
    orthonormal (the ``convention`` argument is ignored for it).
    """
    if wavelet not in WAVELETS:
        raise TransformError(f"unknown wavelet {wavelet!r}; choose from {WAVELETS}")
    if wavelet == "haar":
        return haar_dwt(data, convention)
    arr = as_1d_float_array(data)
    require_power_of_two(arr.size)
    return _d4_dwt(arr)


def idwt(coeffs: Sequence[float], wavelet: str = "haar",
         convention: str = "paper") -> np.ndarray:
    """Inverse discrete wavelet transform matching :func:`dwt`."""
    if wavelet not in WAVELETS:
        raise TransformError(f"unknown wavelet {wavelet!r}; choose from {WAVELETS}")
    if wavelet == "haar":
        return haar_idwt(coeffs, convention)
    arr = as_1d_float_array(coeffs, name="coeffs")
    require_power_of_two(arr.size, name="coeffs length")
    return _d4_idwt(arr)


def dwt_batch(traces, wavelet: str = "haar",
              convention: str = "paper") -> np.ndarray:
    """DWT of every row of a ``(n_traces, n_samples)`` matrix at once.

    One vectorized pass over the whole matrix — numerically identical,
    row for row, to calling :func:`dwt` in a Python loop, but without
    the per-row transform and ``np.vstack`` overhead the predictor's
    fit/predict hot path used to pay.
    """
    if wavelet not in WAVELETS:
        raise TransformError(f"unknown wavelet {wavelet!r}; choose from {WAVELETS}")
    arr = as_2d_float_array(traces, name="traces")
    require_power_of_two(arr.shape[1], name="n_samples")
    if wavelet == "haar":
        _check_convention(convention)
        return _haar_dwt_any(arr, convention)
    return _d4_dwt(arr)


def idwt_batch(coeffs, wavelet: str = "haar",
               convention: str = "paper") -> np.ndarray:
    """Inverse of :func:`dwt_batch`, row for row."""
    if wavelet not in WAVELETS:
        raise TransformError(f"unknown wavelet {wavelet!r}; choose from {WAVELETS}")
    arr = as_2d_float_array(coeffs, name="coeffs")
    require_power_of_two(arr.shape[1], name="coeffs length")
    if wavelet == "haar":
        _check_convention(convention)
        return _haar_idwt_any(arr, convention)
    return _d4_idwt(arr)


def coefficient_levels(n: int) -> np.ndarray:
    """Map each coefficient index to its scale level.

    Level ``0`` is the overall approximation; level ``1`` the coarsest
    detail; level ``log2(n)`` the finest detail.  Useful when analysing
    which time scales carry a trace's energy.
    """
    require_power_of_two(n)
    levels = np.zeros(n, dtype=int)
    pos, level, width = 1, 1, 1
    while pos < n:
        levels[pos:pos + width] = level
        pos += width
        width *= 2
        level += 1
    return levels


def energy(coeffs: Sequence[float]) -> float:
    """Total energy (sum of squares) of a coefficient vector."""
    arr = as_1d_float_array(coeffs, name="coeffs")
    return float(np.sum(arr * arr))


def pad_to_power_of_two(data: Sequence[float], mode: str = "edge") -> np.ndarray:
    """Right-pad a series to the next power-of-two length.

    Traces produced by simulation are power-of-two sized by construction,
    but external traces may not be; ``mode`` follows :func:`numpy.pad`.
    """
    arr = as_1d_float_array(data)
    if is_power_of_two(arr.size):
        return arr.copy()
    target = 1 << (arr.size - 1).bit_length()
    return np.pad(arr, (0, target - arr.size), mode=mode)


@dataclass(frozen=True)
class DecompositionLevel:
    """One scale of a multiresolution decomposition."""

    level: int
    approximation: np.ndarray
    detail: np.ndarray


class MultiresolutionAnalysis:
    """Structured multilevel Haar analysis of a workload trace.

    Where :func:`haar_dwt` returns the flat coefficient vector the
    predictive models consume, this class retains every intermediate
    approximation so callers can inspect a trace at any scale — the
    multiresolution property Section 2.1 of the paper illustrates.

    Parameters
    ----------
    data:
        Power-of-two length series.
    convention:
        Transform convention, see module docstring.

    Examples
    --------
    >>> mra = MultiresolutionAnalysis([3, 4, 20, 25, 15, 5, 20, 3])
    >>> mra.coefficients.tolist()
    [11.875, 1.125, -9.5, -0.75, -0.5, -2.5, 5.0, 8.5]
    >>> mra.approximation_at(scale=2).tolist()
    [3.5, 22.5, 10.0, 11.5]
    """

    def __init__(self, data: Sequence[float], convention: str = "paper"):
        _check_convention(convention)
        self._data = as_1d_float_array(data)
        require_power_of_two(self._data.size)
        self._convention = convention
        self._levels: List[DecompositionLevel] = []
        approx = self._data
        level = 1
        while approx.size > 1:
            approx, detail = _haar_step(approx, convention)
            self._levels.append(DecompositionLevel(level, approx.copy(), detail))
            level += 1

    @property
    def data(self) -> np.ndarray:
        """The original series (copy)."""
        return self._data.copy()

    @property
    def convention(self) -> str:
        """The transform convention in use."""
        return self._convention

    @property
    def n_levels(self) -> int:
        """Number of detail scales, ``log2(len(data))``."""
        return len(self._levels)

    @property
    def coefficients(self) -> np.ndarray:
        """Flat coefficient vector, identical to :func:`haar_dwt`."""
        out = [self._levels[-1].approximation]
        for lvl in reversed(self._levels):
            out.append(lvl.detail)
        return np.concatenate(out)

    def approximation_at(self, scale: int) -> np.ndarray:
        """The smoothed series after ``log2(n) - log2(scale_len)`` steps.

        ``scale`` counts analysis steps: ``approximation_at(1)`` is the
        original data, ``approximation_at(2)`` the length-``n/2``
        approximation, and so on (matching the paper's "scale 1 is the
        finest representation" phrasing).
        """
        if scale < 1 or scale > self.n_levels + 1:
            raise TransformError(
                f"scale must be in [1, {self.n_levels + 1}], got {scale}"
            )
        if scale == 1:
            return self._data.copy()
        return self._levels[scale - 2].approximation.copy()

    def detail_at(self, scale: int) -> np.ndarray:
        """Detail coefficients produced by analysis step ``scale`` (1-based)."""
        if scale < 1 or scale > self.n_levels:
            raise TransformError(
                f"scale must be in [1, {self.n_levels}], got {scale}"
            )
        return self._levels[scale - 1].detail.copy()

    def reconstruct(self, keep: Optional[Sequence[int]] = None) -> np.ndarray:
        """Inverse transform using all or a subset of coefficients.

        Parameters
        ----------
        keep:
            Indices (into the flat coefficient vector) to retain; all other
            coefficients are zeroed.  ``None`` reconstructs exactly.

        This implements the paper's Figure 4: approximating the trace with
        the first 1, 2, 4, ... coefficients (or any other subset, e.g. the
        largest-magnitude ones).
        """
        coeffs = self.coefficients
        if keep is not None:
            keep_idx = np.asarray(list(keep), dtype=int)
            if keep_idx.size and (keep_idx.min() < 0 or keep_idx.max() >= coeffs.size):
                raise TransformError(
                    f"keep indices must be in [0, {coeffs.size}), got "
                    f"range [{keep_idx.min()}, {keep_idx.max()}]"
                )
            mask = np.zeros(coeffs.size, dtype=bool)
            mask[keep_idx] = True
            coeffs = np.where(mask, coeffs, 0.0)
        return haar_idwt(coeffs, self._convention)

    def reconstruction_error(self, keep: Sequence[int]) -> float:
        """Mean squared error of a partial reconstruction against the data."""
        approx = self.reconstruct(keep)
        return float(np.mean((approx - self._data) ** 2))


def _check_convention(convention: str) -> None:
    if convention not in CONVENTIONS:
        raise TransformError(
            f"unknown convention {convention!r}; choose from {CONVENTIONS}"
        )
