"""Wattch-style architectural power modelling.

The paper's framework "uses a Wattch-based power model" (Section 3,
citing Brooks et al. ISCA 2000).  This package follows the same modelling
idea: per-access energies for each microarchitectural structure, scaled
with the structure's size, multiplied by activity counts, with
conditional clock gating and a leakage floor.
"""

from repro.power.wattch import (
    WattchModel,
    leakage_power,
    structure_energies,
)

__all__ = ["WattchModel", "leakage_power", "structure_energies"]
