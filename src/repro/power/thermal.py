"""Thermal dynamics and Dynamic Thermal Management (DTM).

The paper's introduction motivates workload-dynamics prediction with
exactly this scenario: "instead of designing packaging that can meet the
cooling capacity for worst-case scenarios, architects can examine how
the workload thermal dynamics behave across different architecture
configurations and deploy appropriate dynamic thermal management (DTM)
policies to mitigate thermal emergencies" (citing Brooks & Martonosi,
HPCA 2001).

This module closes that loop as an extension: a lumped RC thermal model
turns the Wattch power traces into die-temperature dynamics (another
time series the wavelet neural networks can predict), and a
:class:`DTMPolicy` models the classic fetch-throttling response.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro._validation import as_1d_float_array
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ThermalModel:
    """Lumped RC package model: ``RC dT/dt = P*R - (T - T_amb)``.

    Attributes
    ----------
    r_thermal:
        Junction-to-ambient thermal resistance (K/W).
    time_constant_intervals:
        The RC time constant expressed in sampling intervals; heat
        integrates over many intervals, which is what gives thermal
        traces their characteristic low-pass texture.
    t_ambient:
        Ambient (heatsink inlet) temperature, Celsius.
    """

    r_thermal: float = 0.45
    time_constant_intervals: float = 8.0
    t_ambient: float = 45.0

    def __post_init__(self):
        if self.r_thermal <= 0 or self.time_constant_intervals <= 0:
            raise ConfigurationError(
                "r_thermal and time_constant_intervals must be positive"
            )

    @property
    def alpha(self) -> float:
        """Discrete-time update gain, ``dt / RC`` clipped for stability."""
        return min(1.0 / self.time_constant_intervals, 1.0)

    def steady_state(self, power: float) -> float:
        """Equilibrium temperature under constant power."""
        return self.t_ambient + self.r_thermal * power

    def temperature_trace(self, power_trace,
                          t_initial: float = None) -> np.ndarray:
        """Integrate a per-interval power trace into die temperature.

        Parameters
        ----------
        power_trace:
            Power (W) per sampling interval.
        t_initial:
            Starting temperature; defaults to the steady state of the
            first interval's power (warmed-up die).
        """
        power = as_1d_float_array(power_trace, name="power_trace")
        temp = np.empty_like(power)
        t = self.steady_state(power[0]) if t_initial is None else float(t_initial)
        a = self.alpha
        for i, p in enumerate(power):
            t = t + a * (self.steady_state(p) - t)
            temp[i] = t
        return temp


@dataclass(frozen=True)
class DTMPolicy:
    """Fetch-throttling dynamic thermal management.

    When die temperature crosses ``trigger``, the front end is throttled
    by ``throttle_factor`` (power drops proportionally, performance
    degrades by the same factor at worst) until temperature drops below
    ``trigger - hysteresis``.
    """

    trigger: float = 85.0
    hysteresis: float = 2.0
    throttle_factor: float = 0.6

    def __post_init__(self):
        if not 0.0 < self.throttle_factor < 1.0:
            raise ConfigurationError(
                f"throttle_factor must be in (0, 1), got {self.throttle_factor}"
            )
        if self.hysteresis < 0:
            raise ConfigurationError("hysteresis must be non-negative")

    def apply(self, power_trace, thermal: ThermalModel,
              ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Simulate the DTM feedback loop over a power trace.

        Returns ``(temperature, managed_power, throttled)`` where
        ``throttled`` is a boolean mask of intervals spent throttled.
        The loop is stateful: throttling in interval *i* reduces the heat
        driving interval *i+1* — the feedback the paper's "false alarms
        ... can trigger responses too frequently" remark is about.
        """
        power = as_1d_float_array(power_trace, name="power_trace")
        temp = np.empty_like(power)
        managed = np.empty_like(power)
        throttled = np.zeros(power.size, dtype=bool)
        # DTM was active before the window too: the die never settled
        # above the trigger, so start from the capped steady state.
        t = min(thermal.steady_state(power[0]), self.trigger)
        a = thermal.alpha
        active = False
        for i, p in enumerate(power):
            if active and t < self.trigger - self.hysteresis:
                active = False
            elif not active and t >= self.trigger:
                active = True
            managed[i] = p * self.throttle_factor if active else p
            throttled[i] = active
            t = t + a * (thermal.steady_state(managed[i]) - t)
            temp[i] = t
        return temp, managed, throttled

    def worst_case_headroom(self, power_trace, thermal: ThermalModel) -> float:
        """Trigger margin of the *unmanaged* trace (negative = emergency).

        This is the quantity a designer reads off predicted dynamics to
        decide whether a cheaper package plus DTM suffices — the paper's
        scenario-driven-design argument.
        """
        temp = thermal.temperature_trace(power_trace)
        return float(self.trigger - temp.max())
