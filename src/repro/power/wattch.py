"""Per-structure activity-based power model (Wattch-style).

Power in Watts is ``P = f * sum_s E_s * A_s  +  P_clock + P_leak`` where
``E_s`` is the per-access energy (nJ) of structure ``s`` — scaled with
its configured size the way Wattch's array/CAM models scale — and
``A_s`` the per-cycle access count derived from IPC and instruction mix.
The clock tree is conditionally gated (its activity factor tracks
utilization), and leakage grows with total configured state.

Two entry points:

* :meth:`WattchModel.power_trace` — vectorized over trace samples, used
  by the interval simulation backend;
* :meth:`WattchModel.power_from_counters` — event-counter based, used by
  the detailed cycle-level simulator.

The absolute calibration targets the paper's Figure 1 range (tens of
Watts, roughly 20–140 W across the Table 2 design space at 3 GHz).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Mapping, Tuple

import numpy as np

from repro.uarch.params import MachineConfig

#: Structures with dynamic-energy accounting.
STRUCTURES = (
    "fetch_il1", "rename", "issue_queue", "rob", "regfile",
    "alu_int", "alu_fp", "lsq", "dl1", "l2",
)


def structure_energies(config: MachineConfig) -> Dict[str, float]:
    """Per-access energies (nJ), scaled with configured sizes.

    RAM-like arrays scale roughly with the square root of capacity
    (bitline/wordline growth); the issue queue's wakeup CAM scales
    linearly with entry count (every entry compares every result tag);
    per-width structures (rename, register file) grow superlinearly with
    machine width because of port counts.
    """
    width = config.fetch_width / 8.0
    return {
        "fetch_il1": 0.45 * (config.il1_size_kb / 32.0) ** 0.5 * width ** 0.3,
        "rename": 0.30 * width ** 1.1,
        "issue_queue": 1.15 * (config.iq_size / 96.0) * width ** 0.4,
        "rob": 0.45 * (config.rob_size / 96.0) ** 0.5,
        "regfile": 0.85 * width ** 1.3,
        "alu_int": 0.80,
        "alu_fp": 2.0,
        "lsq": 0.60 * (config.lsq_size / 48.0) ** 0.7,
        "dl1": 0.75 * (config.dl1_size_kb / 64.0) ** 0.5,
        "l2": 4.5 * (config.l2_size_kb / 2048.0) ** 0.45,
    }


def leakage_power(config: MachineConfig) -> float:
    """Static power (W): grows with total configured state."""
    return (
        6.0
        + 4.0 * (config.l2_size_kb / 2048.0)
        + 1.0 * (config.dl1_size_kb / 64.0)
        + 0.6 * (config.il1_size_kb / 32.0)
        + 0.9 * (config.iq_size / 96.0)
        + 0.9 * (config.rob_size / 96.0)
        + 0.5 * (config.lsq_size / 48.0)
        + 2.2 * (config.fetch_width / 8.0)
    )


def clock_peak(config: MachineConfig) -> float:
    """Peak clock-tree power (W) for a configuration."""
    return 9.0 + 14.0 * (config.fetch_width / 8.0) ** 0.8


@lru_cache(maxsize=4096)
def _interval_constants(config: MachineConfig,
                        ) -> Tuple[Tuple[float, ...], float, float]:
    """Per-config ``(energies by STRUCTURES, clock peak, leakage)``.

    The scalar constants :meth:`WattchModel.power_from_counters` needs
    every interval, computed once per configuration through the public
    functions above (so the cache can never drift from them).
    :class:`~repro.uarch.params.MachineConfig` is frozen, hence a valid
    cache key.
    """
    energies = structure_energies(config)
    return (tuple(energies[s] for s in STRUCTURES), clock_peak(config),
            leakage_power(config))


def clock_power(config: MachineConfig, utilization) -> np.ndarray:
    """Clock-tree power (W) with conditional gating.

    ``utilization`` is IPC / width in [0, 1]; an idle machine still burns
    a 25 % un-gateable floor, matching Wattch's "cc3" clock-gating style.
    """
    peak = clock_peak(config)
    activity = 0.25 + 0.75 * np.clip(utilization, 0.0, 1.0)
    return peak * activity


def _activities(ipc, mix: Mapping[str, np.ndarray], dl1_miss_rate,
                il1_misses_per_inst, width) -> Dict[str, np.ndarray]:
    """Per-cycle access counts for each structure (width-parameterized).

    The shared body behind :meth:`WattchModel.activities_per_cycle` and
    the batched :func:`power_trace_batch`: ``width`` is a scalar for the
    former and a ``(batch, 1)`` column for the latter, and every
    expression broadcasts identically either way.
    """
    ipc = np.asarray(ipc, dtype=float)
    f_mem = np.asarray(mix["f_load"]) + np.asarray(mix["f_store"])
    f_fp = np.asarray(mix["f_fp"])
    return {
        # Fetch probes the IL1 every fetch block; mispredicted paths
        # keep it busy even when dispatch stalls.
        "fetch_il1": 0.25 * ipc + 0.06 * width,
        "rename": ipc,
        # Wakeup broadcast on every completing instruction plus
        # selection logic each cycle.
        "issue_queue": 1.1 * ipc + 0.12 * width,
        "rob": 2.0 * ipc,                      # insert + commit
        "regfile": 2.2 * ipc,                  # ~2.2 operands per inst
        "alu_int": ipc * np.clip(1.0 - f_mem - f_fp, 0.0, 1.0),
        "alu_fp": ipc * f_fp,
        "lsq": 1.5 * ipc * f_mem,              # allocate + search
        "dl1": 1.1 * ipc * f_mem,
        "l2": ipc * (f_mem * np.asarray(dl1_miss_rate)
                     + np.asarray(il1_misses_per_inst)),
    }


def power_trace_batch(batch, ipc, mix: Mapping[str, np.ndarray],
                      dl1_miss_rate, il1_misses_per_inst) -> np.ndarray:
    """Total power (W) for a whole config batch: ``(batch, samples)``.

    The batched counterpart of :meth:`WattchModel.power_trace`.
    ``batch`` is a :class:`~repro.uarch.params.ConfigBatch`; ``ipc``,
    ``dl1_miss_rate`` and ``il1_misses_per_inst`` are ``(batch,
    samples)`` matrices and ``mix`` holds shared per-sample vectors.
    Per-config scalars whose float arithmetic is not broadcast-stable
    (the ``**``-heavy energy/leakage/clock-peak expressions) are
    evaluated with the exact scalar code per member and stacked into
    columns, so every output row is bit-identical to the scalar
    ``power_trace`` of that row's configuration.
    """
    per_config = [structure_energies(config) for config in batch.configs]
    energies = {
        s: np.asarray([[e[s]] for e in per_config]) for s in STRUCTURES
    }
    activities = _activities(ipc, mix, dl1_miss_rate, il1_misses_per_inst,
                             batch.fetch_width)
    dynamic = sum(
        energies[s] * activities[s] for s in STRUCTURES
    ) * batch.frequency_ghz
    utilization = np.asarray(ipc, dtype=float) / batch.fetch_width
    clock = batch.map_scalar(clock_peak) \
        * (0.25 + 0.75 * np.clip(utilization, 0.0, 1.0))
    return dynamic + clock + batch.map_scalar(leakage_power)


@dataclass(frozen=True)
class WattchModel:
    """Power model bound to one machine configuration."""

    config: MachineConfig

    def activities_per_cycle(self, ipc, mix: Mapping[str, np.ndarray],
                             dl1_miss_rate, il1_misses_per_inst) -> Dict[str, np.ndarray]:
        """Per-cycle access counts for each structure.

        Parameters
        ----------
        ipc:
            Instructions per cycle (scalar or per-sample array).
        mix:
            Instruction-mix fractions (``f_load``, ``f_store``,
            ``f_branch``, ``f_fp``).
        dl1_miss_rate:
            DL1 misses per data access.
        il1_misses_per_inst:
            IL1 misses per instruction.
        """
        return _activities(ipc, mix, dl1_miss_rate, il1_misses_per_inst,
                           self.config.fetch_width)

    def power_trace(self, ipc, mix: Mapping[str, np.ndarray],
                    dl1_miss_rate, il1_misses_per_inst) -> np.ndarray:
        """Total power (W) per trace sample, vectorized."""
        energies = structure_energies(self.config)
        activities = self.activities_per_cycle(
            ipc, mix, dl1_miss_rate, il1_misses_per_inst
        )
        dynamic = sum(
            energies[s] * activities[s] for s in STRUCTURES
        ) * self.config.frequency_ghz
        utilization = np.asarray(ipc, dtype=float) / self.config.fetch_width
        return dynamic + clock_power(self.config, utilization) + leakage_power(self.config)

    def power_from_counters(self, counters: Mapping[str, float],
                            cycles: float) -> float:
        """Average power (W) over an interval from raw event counters.

        ``counters`` maps structure names to access counts; unknown
        structures are ignored so the detailed simulator can pass its
        full counter set.  Called once per simulated interval per core,
        so the per-config constants (the ``**``-heavy energy, leakage
        and clock-peak expressions) are memoized — the cached values
        come from the exact public functions, so the result stays
        bit-identical to computing them inline.
        """
        energies, peak, leakage = _interval_constants(self.config)
        if cycles <= 0:
            return leakage
        nj = sum(e * counters.get(s, 0.0)
                 for s, e in zip(STRUCTURES, energies))
        dynamic = nj / cycles * self.config.frequency_ghz
        ipc = counters.get("instructions", 0.0) / cycles
        util = ipc / self.config.fetch_width
        clock = peak * (0.25 + 0.75 * np.clip(util, 0.0, 1.0))
        return float(dynamic + clock + leakage)

    def peak_power(self) -> float:
        """Rough all-structures-busy power (W) for sanity checks."""
        mix = {"f_load": np.array(0.3), "f_store": np.array(0.15),
               "f_fp": np.array(0.3), "f_branch": np.array(0.1)}
        return float(self.power_trace(
            np.array(float(self.config.fetch_width)), mix,
            np.array(0.3), np.array(0.05),
        ))
