"""Architecture Vulnerability Factor (ACE) analysis.

A structure's AVF over an interval is::

    AVF = (sum over cycles of resident ACE bits) / (bits * cycles)

The detailed simulator counts resident ACE instructions per cycle
directly (:meth:`AVFModel.avf_from_counters`).  The interval backend
derives occupancy from queueing arguments (:meth:`AVFModel.avf_traces`):
long-latency cache misses pile instructions up in the IQ/ROB/LSQ, so
occupancy — and with it AVF — tracks the memory-stall fraction of
execution, which is exactly the mechanism that makes AVF vary with both
workload phase and machine configuration in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

import numpy as np

from repro.uarch.params import MachineConfig

#: Bits of architecturally-exposed state per entry, per structure.
#: (payload + tags + status; coarse but proportionate.)
STRUCTURE_BITS = {
    "iq": 80,        # opcode, operands/tags, immediate, status
    "rob": 76,       # result, dest tag, PC fragment, status
    "lsq": 100,      # address, data, tags
    "regfile": 64,   # data bits per register
}

#: Fixed register count (not varied in Table 2).  Only the physical
#: registers holding committed or in-flight architectural state are
#: counted (the rest are un-ACE by construction).
REGFILE_ENTRIES = 128


def structure_capacity_bits(config: MachineConfig) -> Dict[str, float]:
    """Total bit capacity of each tracked structure for this config."""
    return {
        "iq": STRUCTURE_BITS["iq"] * config.iq_size,
        "rob": STRUCTURE_BITS["rob"] * config.rob_size,
        "lsq": STRUCTURE_BITS["lsq"] * config.lsq_size,
        "regfile": STRUCTURE_BITS["regfile"] * REGFILE_ENTRIES,
    }


@dataclass(frozen=True)
class AVFModel:
    """AVF estimation bound to one machine configuration."""

    config: MachineConfig

    # ------------------------------------------------------------------
    # Interval (occupancy) backend
    # ------------------------------------------------------------------
    def occupancy_traces(self, ipc, mem_stall_frac, ace_fraction,
                         f_mem, window, waiting_frac=0.0) -> Dict[str, np.ndarray]:
        """Per-sample occupancy fraction of each structure.

        Parameters
        ----------
        ipc:
            Achieved instructions per cycle.
        mem_stall_frac:
            Fraction of cycles stalled on L2/memory misses; while
            stalled, dispatch keeps filling the queues toward full.
        ace_fraction:
            Workload's ACE fraction (per sample).
        f_mem:
            Memory-instruction fraction (loads + stores).
        window:
            Effective in-flight window (instructions), already limited by
            ROB/IQ/LSQ.
        waiting_frac:
            Fraction of dispatched instructions waiting (not yet ready to
            issue) in steady state — the fetch-vs-ILP imbalance.  Wide
            machines running low-ILP code keep the issue queue full of
            waiting instructions even without cache misses.
        """
        cfg = self.config
        ipc = np.asarray(ipc, dtype=float)
        stall = np.clip(np.asarray(mem_stall_frac, dtype=float), 0.0, 1.0)
        f_mem = np.asarray(f_mem, dtype=float)
        window = np.asarray(window, dtype=float)
        waiting = np.clip(np.asarray(waiting_frac, dtype=float), 0.0, 1.0)

        # IQ: a residency floor, plus waiting-instruction pressure, plus
        # load-to-use serialization; misses drive it toward full.  The
        # waiting-pressure term dominates the configuration dependence:
        # wide fetch engines running low-ILP code keep the queue full
        # (the paper's Figure 1 shows AVF spanning roughly 0.1-0.35
        # across configurations for the same code).
        base_iq = np.clip(
            0.06
            + 0.75 * waiting
            + 0.06 * (cfg.dl1_latency - 1)
            + np.clip(2.0 * ipc / cfg.iq_size, 0.0, 0.2),
            0.0, 0.95,
        )
        occ_iq = base_iq * (1.0 - stall) + 0.95 * stall

        base_rob = np.clip(0.25 + 0.55 * waiting
                           + 0.35 * window / cfg.rob_size, 0.0, 0.95)
        occ_rob = base_rob * (1.0 - stall) + 0.97 * stall

        base_lsq = np.clip(0.9 * f_mem * window / cfg.lsq_size
                           + 0.3 * waiting, 0.0, 0.95)
        occ_lsq = base_lsq * (1.0 - stall) + 0.92 * stall

        # Live architectural state in the register file grows with the
        # in-flight window and with stall pile-ups.
        occ_rf = np.clip(0.35 + 0.25 * window / 160.0 + 0.25 * waiting,
                         0.0, 0.9) + 0.1 * stall

        return {
            "iq": np.clip(occ_iq, 0.02, 0.98),
            "rob": np.clip(occ_rob, 0.02, 0.98),
            "lsq": np.clip(occ_lsq, 0.02, 0.98),
            "regfile": np.clip(occ_rf, 0.02, 0.98),
        }

    def avf_traces(self, ipc, mem_stall_frac, ace_fraction,
                   f_mem, window, waiting_frac=0.0) -> Dict[str, np.ndarray]:
        """Per-sample AVF of each structure plus the processor average.

        Structure AVF = occupancy x ACE fraction (occupied entries whose
        bits are ACE).  The processor AVF weights structures by bit
        capacity; the register file contributes a lower ACE share since
        many registers hold dead values (Mukherjee et al.'s un-ACE
        arguments).
        """
        ace = np.asarray(ace_fraction, dtype=float)
        occ = self.occupancy_traces(ipc, mem_stall_frac, ace_fraction,
                                    f_mem, window, waiting_frac)
        # Resident populations are *enriched* in ACE state: dynamically
        # dead (un-ACE) instructions have no consumers to wait for and
        # drain quickly, while ACE instructions linger on operand
        # dependences.  The superlinear exponent models that enrichment
        # (residency-weighted ACE share), making queue AVF roughly twice
        # as sensitive to the workload's ACE fraction as a static count.
        ace_resident = ace ** 1.9
        avf = {
            "iq": np.clip(occ["iq"] * ace_resident * 1.85, 0.0, 1.0),
            "rob": np.clip(occ["rob"] * ace_resident * 1.6, 0.0, 1.0),
            "lsq": np.clip(occ["lsq"] * ace_resident * 1.5, 0.0, 1.0),
            "regfile": np.clip(occ["regfile"] * ace * 0.45, 0.0, 1.0),
        }
        bits = structure_capacity_bits(self.config)
        total_bits = sum(bits.values())
        avf["processor"] = sum(avf[s] * bits[s] for s in bits) / total_bits
        return avf

    # ------------------------------------------------------------------
    # Detailed (counter) backend
    # ------------------------------------------------------------------
    def avf_from_counters(self, ace_bit_cycles: Mapping[str, float],
                          cycles: float) -> Dict[str, float]:
        """AVF per structure from accumulated ACE-bit residency counters.

        ``ace_bit_cycles[s]`` is ``sum over cycles of resident ACE bits``
        for structure ``s`` (what the detailed simulator accumulates);
        dividing by ``capacity_bits * cycles`` gives the Mukherjee AVF.
        """
        bits = structure_capacity_bits(self.config)
        if cycles <= 0:
            return {s: 0.0 for s in list(bits) + ["processor"]}
        out = {}
        for s, capacity in bits.items():
            out[s] = float(np.clip(
                ace_bit_cycles.get(s, 0.0) / (capacity * cycles), 0.0, 1.0
            ))
        total_bits = sum(bits.values())
        out["processor"] = sum(out[s] * bits[s] for s in bits) / total_bits
        return out
