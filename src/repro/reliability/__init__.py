"""Soft-error reliability analysis: AVF computation and DVM.

Implements the paper's Architecture Vulnerability Factor methodology
(Section 3, citing Mukherjee et al. MICRO'03 and Biswas et al. ISCA'05):
a structure's AVF is the fraction of its bits that hold ACE
(Architecturally Correct Execution) state, averaged over time — the
probability that a transient fault becomes a user-visible error.

``avf``
    Occupancy-based AVF traces (interval backend) and counter-based AVF
    (detailed backend).
``dvm``
    The Section 5 Dynamic Vulnerability Management policy: throttle
    dispatch on L2 misses and adapt the waiting/ready ``wq_ratio`` to
    keep IQ AVF under a target.
"""

from repro.reliability.avf import AVFModel, STRUCTURE_BITS
from repro.reliability.dvm import DVMPolicy

__all__ = ["AVFModel", "STRUCTURE_BITS", "DVMPolicy"]
