"""Dynamic Vulnerability Management (the paper's Section 5 case study).

The paper's DVM policy (its Figure 16 pseudocode) manages runtime
instruction-queue soft-error vulnerability:

* the online IQ AVF estimate is compared against a trigger threshold;
* on an L2 miss, instruction dispatch is stalled (misses are what pile
  ACE state up in the IQ);
* every ``sample_interval / 5`` cycles, a ``wq_ratio`` knob — the allowed
  ratio of waiting to ready instructions in the IQ — is halved when the
  AVF estimate exceeds the trigger and incremented otherwise ("slow
  increases and rapid decreases");
* dispatch also stalls whenever the waiting/ready ratio exceeds
  ``wq_ratio``.

Two implementations are provided:

:class:`DVMPolicy` + :class:`DVMController`
    The literal mechanism, used by the detailed cycle-level simulator.
:meth:`DVMPolicy.apply_interval_effect`
    A first-order model of the same feedback loop for the vectorized
    interval backend: the controller soft-clamps IQ AVF toward the
    threshold, with an *effectiveness* that collapses when memory stalls
    dominate (the queue refills faster than throttling drains it) — that
    saturation is what makes DVM *fail* under weak configurations, the
    paper's Figure 17 scenario 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.uarch.params import MachineConfig


@dataclass(frozen=True)
class DVMPolicy:
    """DVM policy parameters (defaults follow the paper's pseudocode)."""

    threshold: float = 0.3
    sample_divisor: int = 5     # AVF sampled every interval/5 cycles
    wq_initial: float = 2.0
    wq_increase: float = 1.0    # slow additive increase
    wq_decrease: float = 0.5    # rapid multiplicative decrease (halving)
    wq_max: float = 16.0

    def __post_init__(self):
        if not 0.0 < self.threshold < 1.0:
            raise ConfigurationError(
                f"DVM threshold must be in (0, 1), got {self.threshold}"
            )
        if self.sample_divisor < 1:
            raise ConfigurationError(
                f"sample_divisor must be >= 1, got {self.sample_divisor}"
            )
        if not 0.0 < self.wq_decrease < 1.0:
            raise ConfigurationError(
                f"wq_decrease must be a fraction in (0, 1), got {self.wq_decrease}"
            )

    # ------------------------------------------------------------------
    # Interval-model effect
    # ------------------------------------------------------------------
    def effectiveness(self, config: MachineConfig, mem_stall_frac) -> np.ndarray:
        """Fraction of above-threshold IQ AVF the mechanism removes.

        Throttling dispatch can only drain what the front end controls:
        when execution is dominated by memory stalls the IQ refills with
        ACE state as fast as the throttle releases it, so effectiveness
        decays with the memory-stall fraction.  Wider fetch engines also
        refill the queue faster after every throttle window, and small
        LSQs leave less slack to absorb the stall.
        """
        stall = np.clip(np.asarray(mem_stall_frac, dtype=float), 0.0, 1.0)
        base = 0.95 - 2.2 * np.clip(stall - 0.45, 0.0, 1.0)
        width_penalty = 0.05 * (config.fetch_width / 16.0)
        lsq_bonus = 0.06 * np.clip(config.lsq_size / 64.0, 0.0, 1.0)
        return np.clip(base - width_penalty + lsq_bonus, 0.05, 0.95)

    def apply_interval_effect(self, iq_avf, cpi, config: MachineConfig,
                              mem_stall_frac,
                              threshold=None) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """First-order DVM effect on per-sample IQ AVF and CPI.

        Returns ``(iq_avf_managed, cpi_managed, engaged)`` where
        ``engaged`` is 1.0 on samples where the trigger fired.  The
        managed AVF approaches the threshold from above by the
        effectiveness fraction; the residual excess survives (and can
        violate the target — Figure 17 scenario 2).  Throttling costs
        performance in proportion to how much occupancy it removed.

        ``threshold`` overrides the policy's own trigger threshold —
        the batched kernel passes a ``(batch, 1)`` column of per-config
        ``dvm_threshold`` values here (``config`` may likewise be a
        :class:`~repro.uarch.params.ConfigBatch`); scalar callers leave
        it ``None``.
        """
        if threshold is None:
            threshold = self.threshold
        avf = np.asarray(iq_avf, dtype=float)
        cpi = np.asarray(cpi, dtype=float)
        excess = np.maximum(avf - threshold, 0.0)
        engaged = (excess > 0.0).astype(float)
        eta = self.effectiveness(config, mem_stall_frac)
        removed = excess * eta
        # An effective controller overshoots *below* the trigger: the
        # halved wq_ratio keeps throttling until occupancy clearly drops
        # (the paper's "rapid decreases").  The residual excess survives
        # where the mechanism saturates; the finite AVF sampling rate
        # (interval/5) leaves a small ripple on top.
        undershoot = 0.15 * eta * threshold
        ripple = excess * eta * (0.25 / self.sample_divisor)
        avf_managed = np.minimum(
            threshold - undershoot + excess * (1.0 - eta) + ripple,
            avf,
        )
        avf_managed = np.clip(avf_managed, 0.0, 1.0)
        # Dispatch throttling converts removed occupancy into lost issue
        # slots; the relative slowdown tracks the removed share of
        # in-flight state.
        rel_removed = removed / np.maximum(avf, 1e-9)
        cpi_managed = cpi * (1.0 + 0.35 * rel_removed * engaged)
        return avf_managed, cpi_managed, engaged


class DVMController:
    """Cycle-accurate wq_ratio controller (the Figure 16 pseudocode).

    Used by the detailed simulator: call :meth:`on_sample` at every AVF
    sampling point and consult :meth:`should_throttle` at dispatch.
    """

    def __init__(self, policy: DVMPolicy):
        self.policy = policy
        self.wq_ratio = policy.wq_initial
        self.trigger_count = 0
        self.sample_count = 0

    def on_sample(self, online_iq_avf: float) -> None:
        """Fine-grained AVF sample: adapt wq_ratio (halve fast, grow slow)."""
        self.sample_count += 1
        if online_iq_avf > self.policy.threshold:
            self.wq_ratio = max(self.wq_ratio * self.policy.wq_decrease, 0.25)
            self.trigger_count += 1
        else:
            self.wq_ratio = min(self.wq_ratio + self.policy.wq_increase,
                                self.policy.wq_max)

    def should_throttle(self, waiting: int, ready: int,
                        l2_miss_outstanding: bool) -> bool:
        """Dispatch gate: stall on outstanding L2 misses or when the
        waiting/ready ratio exceeds the adapted wq_ratio."""
        if l2_miss_outstanding:
            return True
        if ready <= 0:
            return waiting > self.wq_ratio
        return (waiting / ready) > self.wq_ratio
