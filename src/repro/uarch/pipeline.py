"""Cycle-level out-of-order pipeline model.

A trace-driven superscalar core with the Table 1 organization: wide
fetch with gshare/BTB/RAS and IL1 bubbles, register renaming implied by
dependence distances, a unified issue queue with wakeup/select, a
load/store queue, per-class functional units, a reorder buffer with
in-order commit, and miss-driven back-pressure through the two-level
cache hierarchy.

The model is *trace-driven*: mispredicted branches charge a front-end
redirect penalty (fetch resumes ``pipeline_depth`` cycles after the
branch resolves) rather than executing wrong-path instructions — the
standard trace-driven approximation.

Per-cycle ACE-bit residency counters implement the Mukherjee AVF
methodology exactly; per-structure event counters feed the Wattch power
model.  The optional :class:`~repro.reliability.dvm.DVMController`
gates dispatch per the paper's Figure 16 pseudocode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import SimulationError
from repro.reliability.avf import STRUCTURE_BITS
from repro.reliability.dvm import DVMController
from repro.uarch.branch import FrontEnd
from repro.uarch.caches import CacheHierarchy
from repro.uarch.params import MachineConfig
from repro.uarch.trace import EXEC_LATENCY, InstructionTrace, OpClass

#: Safety valve: abort an interval that exceeds this many cycles per
#: instruction (indicates a deadlocked model, which is a bug).
_MAX_CPI = 400


class _InFlight:
    """One in-flight instruction (ROB entry)."""

    __slots__ = ("index", "op", "ace", "is_mem", "issued", "ready_cycle",
                 "mispredict", "src1", "src2")

    def __init__(self, index: int, op: int, ace: bool, src1: int, src2: int):
        self.index = index
        self.op = op
        self.ace = ace
        self.is_mem = op in (OpClass.LOAD, OpClass.STORE)
        self.issued = False
        self.ready_cycle: Optional[int] = None   # set when issued
        self.mispredict = False
        self.src1 = src1
        self.src2 = src2


@dataclass
class IntervalStats:
    """Raw statistics for one simulated trace interval."""

    instructions: int = 0
    cycles: int = 0
    counters: Dict[str, float] = field(default_factory=dict)
    ace_bit_cycles: Dict[str, float] = field(default_factory=dict)
    branch_mispredicts: int = 0
    dvm_throttled_cycles: int = 0

    @property
    def cpi(self) -> float:
        """Cycles per committed instruction."""
        if self.instructions == 0:
            raise SimulationError("interval committed no instructions")
        return self.cycles / self.instructions


class OutOfOrderCore:
    """The detailed core; state (caches, predictor) persists across
    intervals so later intervals see warmed structures, like the paper's
    contiguous 200M-instruction simulations."""

    def __init__(self, config: MachineConfig,
                 dvm: Optional[DVMController] = None):
        self.config = config
        self.hierarchy = CacheHierarchy(config)
        self.front_end = FrontEnd(config)
        self.dvm = dvm
        # Completion cycle of every producer seen so far (absolute trace
        # index -> cycle its result is available).  The cycle counter is
        # global across intervals so cross-interval dependences resolve
        # in the same time base.
        self._complete_cycle: Dict[int, int] = {}
        self._global_index = 0
        self._cycle = 0
        # DVM online-AVF bookkeeping.
        self._dvm_window_ace = 0.0
        self._dvm_window_cycles = 0
        self._dvm_sample_period = 200
        self._last_waiting = 0
        self._last_ready = 0

    # ------------------------------------------------------------------
    def run_interval(self, trace: InstructionTrace) -> IntervalStats:
        """Simulate one interval; returns its raw statistics."""
        cfg = self.config
        stats = IntervalStats(instructions=len(trace))
        counters = {k: 0.0 for k in (
            "fetch_il1", "rename", "issue_queue", "rob", "regfile",
            "alu_int", "alu_fp", "lsq", "dl1", "l2", "instructions",
        )}
        ace_cycles = {"iq": 0.0, "rob": 0.0, "lsq": 0.0, "regfile": 0.0}

        rob: List[_InFlight] = []
        iq: List[_InFlight] = []
        lsq_count = 0
        iq_ace = rob_ace = lsq_ace = 0

        n = len(trace)
        fetch_ptr = 0          # next trace index to fetch
        dispatch_ptr = 0       # next fetched-but-not-dispatched index
        fetch_stall_until = 0
        last_fetch_line = -1
        outstanding_l2_misses: List[int] = []  # completion cycles
        start_cycle = self._cycle
        cycle = self._cycle
        committed = 0
        max_cycles = start_cycle + max(n * _MAX_CPI, 10_000)

        while committed < n:
            cycle += 1
            if cycle > max_cycles:
                raise SimulationError(
                    f"interval exceeded {_MAX_CPI} CPI — model deadlock"
                )

            # ---------------- commit ---------------------------------
            commits = 0
            while rob and commits < cfg.fetch_width:
                head = rob[0]
                if not head.issued or head.ready_cycle > cycle:
                    break
                rob.pop(0)
                rob_ace -= head.ace
                if head.is_mem:
                    lsq_count -= 1
                    lsq_ace -= head.ace
                if head.mispredict:
                    stats.branch_mispredicts += 1
                commits += 1
                committed += 1
                counters["rob"] += 1.0
                counters["instructions"] += 1.0

            # ---------------- issue ----------------------------------
            outstanding_l2_misses = [c for c in outstanding_l2_misses
                                     if c > cycle]
            fu_free = {OpClass.INT_ALU: cfg.int_alu, OpClass.FP_ALU: cfg.fp_alu,
                       OpClass.BRANCH: cfg.int_alu, OpClass.LOAD: cfg.mem_ports,
                       OpClass.STORE: cfg.mem_ports}
            issued = 0
            ready_count = 0
            still_waiting: List[_InFlight] = []
            for entry in iq:
                if issued >= cfg.fetch_width:
                    still_waiting.append(entry)
                    continue
                src_ready = True
                for dist, producer in ((entry.src1, entry.index - entry.src1),
                                       (entry.src2, entry.index - entry.src2)):
                    if dist > 0 and producer >= 0:
                        done = self._complete_cycle.get(producer)
                        if done is not None and done > cycle:
                            src_ready = False
                            break
                if not src_ready:
                    still_waiting.append(entry)
                    continue
                ready_count += 1
                op = OpClass(entry.op)
                if fu_free[op] <= 0:
                    still_waiting.append(entry)
                    continue
                fu_free[op] -= 1
                latency = EXEC_LATENCY[op]
                if op == OpClass.LOAD:
                    result = self.hierarchy.data_access(
                        int(trace.address[entry.index - self._global_index])
                    )
                    latency += result.latency
                    counters["dl1"] += 1.0
                    if not result.dl1_hit:
                        counters["l2"] += 1.0
                    if result.goes_to_memory:
                        outstanding_l2_misses.append(cycle + latency)
                elif op == OpClass.STORE:
                    result = self.hierarchy.data_access(
                        int(trace.address[entry.index - self._global_index])
                    )
                    counters["dl1"] += 1.0
                    if not result.dl1_hit:
                        counters["l2"] += 1.0
                    latency += 1  # stores retire from the LSQ post-commit
                elif op == OpClass.BRANCH:
                    local = entry.index - self._global_index
                    mispredicted = self.front_end.resolve_branch(
                        int(trace.pc[local]), bool(trace.taken[local])
                    )
                    if mispredicted:
                        entry.mispredict = True
                        fetch_stall_until = max(
                            fetch_stall_until,
                            cycle + latency + cfg.pipeline_depth,
                        )
                entry.issued = True
                entry.ready_cycle = cycle + latency
                self._complete_cycle[entry.index] = cycle + latency
                issued += 1
                iq_ace -= entry.ace
                counters["issue_queue"] += 1.0
                counters["regfile"] += 2.0
                if op in (OpClass.INT_ALU, OpClass.BRANCH):
                    counters["alu_int"] += 1.0
                elif op == OpClass.FP_ALU:
                    counters["alu_fp"] += 1.0
                if entry.is_mem:
                    counters["lsq"] += 1.0
            iq = still_waiting
            self._last_waiting = len(iq) - ready_count if len(iq) > ready_count else 0
            self._last_ready = ready_count

            # ---------------- dispatch -------------------------------
            throttled = False
            if self.dvm is not None:
                throttled = self.dvm.should_throttle(
                    self._last_waiting, self._last_ready,
                    bool(outstanding_l2_misses),
                )
                if throttled:
                    stats.dvm_throttled_cycles += 1
            if not throttled:
                dispatched = 0
                while (dispatched < cfg.fetch_width
                       and dispatch_ptr < fetch_ptr
                       and len(rob) < cfg.rob_size
                       and len(iq) < cfg.iq_size):
                    local = dispatch_ptr
                    op = int(trace.op[local])
                    is_mem = op in (OpClass.LOAD, OpClass.STORE)
                    if is_mem and lsq_count >= cfg.lsq_size:
                        break
                    entry = _InFlight(
                        self._global_index + local, op, bool(trace.ace[local]),
                        int(trace.src1_dist[local]), int(trace.src2_dist[local]),
                    )
                    rob.append(entry)
                    iq.append(entry)
                    rob_ace += entry.ace
                    iq_ace += entry.ace
                    if is_mem:
                        lsq_count += 1
                        lsq_ace += entry.ace
                    dispatch_ptr += 1
                    dispatched += 1
                    counters["rename"] += 1.0
                    counters["rob"] += 1.0

            # ---------------- fetch ----------------------------------
            if cycle >= fetch_stall_until:
                fetched = 0
                while (fetched < cfg.fetch_width and fetch_ptr < n
                       and fetch_ptr - dispatch_ptr < 2 * cfg.fetch_width):
                    line = int(trace.pc[fetch_ptr]) // cfg.il1_line_bytes
                    if line != last_fetch_line:
                        bubble = self.hierarchy.inst_access(int(trace.pc[fetch_ptr]))
                        counters["fetch_il1"] += 1.0
                        last_fetch_line = line
                        if bubble:
                            fetch_stall_until = cycle + bubble
                            break
                    is_taken_branch = (trace.op[fetch_ptr] == OpClass.BRANCH
                                       and trace.taken[fetch_ptr])
                    fetch_ptr += 1
                    fetched += 1
                    if is_taken_branch:
                        break  # taken branch ends the fetch block

            # ---------------- AVF residency --------------------------
            ace_cycles["iq"] += iq_ace * STRUCTURE_BITS["iq"]
            ace_cycles["rob"] += rob_ace * STRUCTURE_BITS["rob"]
            ace_cycles["lsq"] += lsq_ace * STRUCTURE_BITS["lsq"]
            # Live architectural registers scale with in-flight window.
            ace_cycles["regfile"] += (32 + 0.5 * len(rob)) * STRUCTURE_BITS["regfile"] * 0.45

            # ---------------- DVM sampling ---------------------------
            if self.dvm is not None:
                self._dvm_window_ace += iq_ace
                self._dvm_window_cycles += 1
                if self._dvm_window_cycles >= self._dvm_sample_period:
                    online_avf = (self._dvm_window_ace
                                  / (self._dvm_window_cycles * cfg.iq_size))
                    self.dvm.on_sample(online_avf)
                    self._dvm_window_ace = 0.0
                    self._dvm_window_cycles = 0

        self._global_index += n
        self._cycle = cycle
        stats.cycles = cycle - start_cycle
        stats.counters = counters
        stats.ace_bit_cycles = ace_cycles
        # Old producers can never be read again once the window passed.
        if len(self._complete_cycle) > 4096:
            horizon = self._global_index - 1024
            self._complete_cycle = {
                k: v for k, v in self._complete_cycle.items() if k >= horizon
            }
        return stats
