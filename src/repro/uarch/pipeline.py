"""Cycle-level out-of-order pipeline model.

A trace-driven superscalar core with the Table 1 organization: wide
fetch with gshare/BTB/RAS and IL1 bubbles, register renaming implied by
dependence distances, a unified issue queue with wakeup/select, a
load/store queue, per-class functional units, a reorder buffer with
in-order commit, and miss-driven back-pressure through the two-level
cache hierarchy.

The model is *trace-driven*: mispredicted branches charge a front-end
redirect penalty (fetch resumes ``pipeline_depth`` cycles after the
branch resolves) rather than executing wrong-path instructions — the
standard trace-driven approximation.

Per-cycle ACE-bit residency counters implement the Mukherjee AVF
methodology exactly; per-structure event counters feed the Wattch power
model.  The optional :class:`~repro.reliability.dvm.DVMController`
gates dispatch per the paper's Figure 16 pseudocode.

Two bit-identical execution engines advance an interval:

``"python"``
    The interpreter below — object caches
    (:class:`~repro.uarch.caches.CacheHierarchy`,
    :class:`~repro.uarch.branch.FrontEnd`) plus a :class:`deque` ROB
    and a min-heap of outstanding L2 misses.  Always available.
``"kernel"``
    The struct-of-arrays kernel (:mod:`repro.uarch.pipeline_kernel`),
    compiled with ``numba.njit`` when JIT is enabled and numba is
    importable (``REPRO_JIT`` / ``--jit`` / :func:`repro.uarch.jit.\
set_jit`), and runnable uncompiled for parity testing.

Both engines produce identical cycle / counter / ACE / mispredict /
throttle streams (``tests/test_detailed_kernel.py`` pins golden sha256
digests); the core converts its microarchitectural state between the
two representations through one canonical snapshot format
(:meth:`OutOfOrderCore.snapshot_state`), which is also what detailed
checkpointing persists.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import SimulationError
from repro.reliability.avf import STRUCTURE_BITS
from repro.reliability.dvm import DVMController
from repro.uarch.branch import FrontEnd
from repro.uarch.caches import CacheHierarchy
from repro.uarch.jit import jit_enabled
from repro.uarch.params import MachineConfig
from repro.uarch.trace import EXEC_LATENCY, InstructionTrace, OpClass

#: Safety valve: abort an interval that exceeds this many cycles per
#: instruction (indicates a deadlocked model, which is a bug).
_MAX_CPI = 400

#: Execution latency by integer op class (mirrors ``EXEC_LATENCY``).
_EXEC_LAT = tuple(EXEC_LATENCY[OpClass(i)] for i in range(len(EXEC_LATENCY)))

#: Wattch counter names, in the order the counters dict is assembled.
COUNTER_KEYS = ("fetch_il1", "rename", "issue_queue", "rob", "regfile",
                "alu_int", "alu_fp", "lsq", "dl1", "l2", "instructions")

#: Scalar integer state captured by :meth:`OutOfOrderCore.snapshot_state`.
SNAPSHOT_INT_FIELDS = (
    "global_index", "cycle",
    "il1_hits", "il1_misses", "dl1_hits", "dl1_misses",
    "l2_hits", "l2_misses", "itlb_hits", "itlb_misses",
    "dtlb_hits", "dtlb_misses", "btb_hits", "btb_misses",
    "gshare_history", "gshare_lookups", "gshare_mispredicts",
    "dvm_window_cycles", "last_waiting", "last_ready",
    "dvm_trigger_count", "dvm_sample_count", "has_dvm",
)

#: Scalar float state captured by :meth:`OutOfOrderCore.snapshot_state`.
SNAPSHOT_FLOAT_FIELDS = ("dvm_window_ace", "wq_ratio")


class _InFlight:
    """One in-flight instruction (ROB entry)."""

    __slots__ = ("index", "op", "ace", "is_mem", "issued", "ready_cycle",
                 "mispredict", "src1", "src2")

    def __init__(self, index: int, op: int, ace: bool, src1: int, src2: int):
        self.index = index
        self.op = op
        self.ace = ace
        self.is_mem = op in (OpClass.LOAD, OpClass.STORE)
        self.issued = False
        self.ready_cycle: Optional[int] = None   # set when issued
        self.mispredict = False
        self.src1 = src1
        self.src2 = src2


@dataclass
class IntervalStats:
    """Raw statistics for one simulated trace interval."""

    instructions: int = 0
    cycles: int = 0
    counters: Dict[str, float] = field(default_factory=dict)
    ace_bit_cycles: Dict[str, float] = field(default_factory=dict)
    branch_mispredicts: int = 0
    dvm_throttled_cycles: int = 0

    @property
    def cpi(self) -> float:
        """Cycles per committed instruction."""
        if self.instructions == 0:
            raise SimulationError("interval committed no instructions")
        return self.cycles / self.instructions


class OutOfOrderCore:
    """The detailed core; state (caches, predictor) persists across
    intervals so later intervals see warmed structures, like the paper's
    contiguous 200M-instruction simulations.

    Producer completion times are tracked *per interval*: every
    instruction of an interval commits before the next interval starts,
    so a producer from an earlier interval is always complete by the
    time a consumer looks it up — cross-interval dependences are
    resolved dependences by construction.
    """

    def __init__(self, config: MachineConfig,
                 dvm: Optional[DVMController] = None):
        self.config = config
        self.hierarchy = CacheHierarchy(config)
        self.front_end = FrontEnd(config)
        self.dvm = dvm
        self._global_index = 0
        self._cycle = 0
        # DVM online-AVF bookkeeping.
        self._dvm_window_ace = 0.0
        self._dvm_window_cycles = 0
        self._dvm_sample_period = 200
        self._last_waiting = 0
        self._last_ready = 0
        # Array-kernel mirror of the microarchitectural state; ``None``
        # while the object representation (hierarchy/front_end) is
        # authoritative.  See _enter_kernel_mode/_leave_kernel_mode.
        self._kernel_state = None

    # ------------------------------------------------------------------
    # Engine dispatch
    # ------------------------------------------------------------------
    def run_interval(self, trace: InstructionTrace,
                     engine: Optional[str] = None) -> IntervalStats:
        """Simulate one interval; returns its raw statistics.

        ``engine`` selects the execution engine: ``None`` (default)
        auto-selects the compiled array kernel when JIT is enabled and
        numba is available, else the interpreter; ``"python"`` forces
        the interpreter; ``"kernel"`` forces the array kernel (compiled
        when possible); ``"kernel-interp"`` forces the array kernel
        executed as plain Python (the parity-test configuration).  All
        engines are bit-identical.
        """
        if engine is None:
            engine = "kernel" if jit_enabled() else "python"
        if engine == "python":
            self._leave_kernel_mode()
            return self._run_interval_python(trace)
        if engine in ("kernel", "kernel-interp"):
            return self._run_interval_kernel(
                trace, compiled=(engine == "kernel"))
        raise SimulationError(
            f"unknown pipeline engine {engine!r}; choose from "
            f"(None, 'python', 'kernel', 'kernel-interp')"
        )

    # ------------------------------------------------------------------
    # State representation conversion
    # ------------------------------------------------------------------
    def _enter_kernel_mode(self):
        """Build the array mirror from the object state (idempotent)."""
        if self._kernel_state is None:
            from repro.uarch import pipeline_kernel

            self._kernel_state = pipeline_kernel.KernelState(
                self.config, self.snapshot_state())
        return self._kernel_state

    def _leave_kernel_mode(self) -> None:
        """Fold the array mirror back into the object state (idempotent)."""
        if self._kernel_state is not None:
            snapshot = self.snapshot_state()
            self._kernel_state = None
            self.restore_state(snapshot)

    # ------------------------------------------------------------------
    # Canonical state snapshot (checkpoint format v2)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, np.ndarray]:
        """The core's microarchitectural state as plain numpy arrays.

        The canonical, engine-independent representation: every cache /
        BTB set as its way tags in LRU order (oldest first, ``-1``
        padding), TLBs as resident pages in LRU order, the gshare
        counter table, and two scalar vectors (``ints`` ordered per
        :data:`SNAPSHOT_INT_FIELDS`, ``floats`` per
        :data:`SNAPSHOT_FLOAT_FIELDS`).  Checkpoint format v2 stores
        exactly these arrays (no pickling); both engines can export and
        import it, which is what proves snapshot round-trips are
        bit-identical (``tests/test_detailed_kernel.py``).
        """
        if self._kernel_state is not None:
            snap = self._kernel_state.export_structures()
            scalars = self._kernel_state.export_scalars()
        else:
            hier, fe = self.hierarchy, self.front_end
            snap = {
                "il1_lru": hier.il1.lru_table(),
                "dl1_lru": hier.dl1.lru_table(),
                "l2_lru": hier.l2.lru_table(),
                "btb_lru": fe.btb.lru_table(),
                "itlb_lru": hier.itlb.lru_pages(),
                "dtlb_lru": hier.dtlb.lru_pages(),
                "gshare_counters": fe.gshare._counters.copy(),
            }
            scalars = {
                "il1_hits": hier.il1.hits, "il1_misses": hier.il1.misses,
                "dl1_hits": hier.dl1.hits, "dl1_misses": hier.dl1.misses,
                "l2_hits": hier.l2.hits, "l2_misses": hier.l2.misses,
                "itlb_hits": hier.itlb.hits, "itlb_misses": hier.itlb.misses,
                "dtlb_hits": hier.dtlb.hits, "dtlb_misses": hier.dtlb.misses,
                "btb_hits": fe.btb.hits, "btb_misses": fe.btb.misses,
                "gshare_history": fe.gshare._history,
                "gshare_lookups": fe.gshare.lookups,
                "gshare_mispredicts": fe.gshare.mispredicts,
            }
        scalars.update({
            "global_index": self._global_index,
            "cycle": self._cycle,
            "dvm_window_cycles": self._dvm_window_cycles,
            "last_waiting": self._last_waiting,
            "last_ready": self._last_ready,
            "dvm_trigger_count": (self.dvm.trigger_count if self.dvm else 0),
            "dvm_sample_count": (self.dvm.sample_count if self.dvm else 0),
            "has_dvm": int(self.dvm is not None),
        })
        snap["ints"] = np.array(
            [int(scalars[name]) for name in SNAPSHOT_INT_FIELDS],
            dtype=np.int64)
        snap["floats"] = np.array(
            [self._dvm_window_ace,
             (self.dvm.wq_ratio if self.dvm else 0.0)], dtype=np.float64)
        return snap

    def restore_state(self, snapshot: Dict[str, np.ndarray]) -> None:
        """Load a :meth:`snapshot_state` dict (object mode authoritative)."""
        self._kernel_state = None
        hier, fe = self.hierarchy, self.front_end
        hier.il1.load_lru_table(snapshot["il1_lru"])
        hier.dl1.load_lru_table(snapshot["dl1_lru"])
        hier.l2.load_lru_table(snapshot["l2_lru"])
        fe.btb.load_lru_table(snapshot["btb_lru"])
        hier.itlb.load_lru_pages(snapshot["itlb_lru"])
        hier.dtlb.load_lru_pages(snapshot["dtlb_lru"])
        counters = np.asarray(snapshot["gshare_counters"], dtype=np.int8)
        if counters.shape != fe.gshare._counters.shape:
            raise SimulationError(
                "snapshot gshare table does not match the configuration")
        fe.gshare._counters[:] = counters
        ints = {name: int(value) for name, value in
                zip(SNAPSHOT_INT_FIELDS, np.asarray(snapshot["ints"]))}
        floats = np.asarray(snapshot["floats"], dtype=np.float64)
        hier.il1.hits, hier.il1.misses = ints["il1_hits"], ints["il1_misses"]
        hier.dl1.hits, hier.dl1.misses = ints["dl1_hits"], ints["dl1_misses"]
        hier.l2.hits, hier.l2.misses = ints["l2_hits"], ints["l2_misses"]
        hier.itlb.hits = ints["itlb_hits"]
        hier.itlb.misses = ints["itlb_misses"]
        hier.dtlb.hits = ints["dtlb_hits"]
        hier.dtlb.misses = ints["dtlb_misses"]
        fe.btb.hits, fe.btb.misses = ints["btb_hits"], ints["btb_misses"]
        fe.gshare._history = ints["gshare_history"]
        fe.gshare.lookups = ints["gshare_lookups"]
        fe.gshare.mispredicts = ints["gshare_mispredicts"]
        self._global_index = ints["global_index"]
        self._cycle = ints["cycle"]
        self._dvm_window_cycles = ints["dvm_window_cycles"]
        self._last_waiting = ints["last_waiting"]
        self._last_ready = ints["last_ready"]
        self._dvm_window_ace = float(floats[0])
        if self.dvm is not None and ints["has_dvm"]:
            self.dvm.wq_ratio = float(floats[1])
            self.dvm.trigger_count = ints["dvm_trigger_count"]
            self.dvm.sample_count = ints["dvm_sample_count"]

    # ------------------------------------------------------------------
    # Array-kernel engine
    # ------------------------------------------------------------------
    def _run_interval_kernel(self, trace: InstructionTrace,
                             compiled: bool) -> IntervalStats:
        from repro.uarch import pipeline_kernel

        state = self._enter_kernel_mode()
        return pipeline_kernel.run_interval_on_state(self, state, trace,
                                                     compiled=compiled)

    # ------------------------------------------------------------------
    # Interpreter engine
    # ------------------------------------------------------------------
    def _run_interval_python(self, trace: InstructionTrace) -> IntervalStats:
        cfg = self.config
        stats = IntervalStats(instructions=len(trace))
        # Counters and ACE accumulators as locals (dicts are assembled
        # once at the end): every increment is an exact float add, so
        # the totals are bit-identical to the historical dict-based
        # accumulation.
        c_fetch_il1 = c_rename = c_issue_queue = c_rob = c_regfile = 0.0
        c_alu_int = c_alu_fp = c_lsq = c_dl1 = c_l2 = c_instructions = 0.0
        a_iq = a_rob = a_lsq = a_regfile = 0.0
        bits_iq = STRUCTURE_BITS["iq"]
        bits_rob = STRUCTURE_BITS["rob"]
        bits_lsq = STRUCTURE_BITS["lsq"]
        bits_regfile = STRUCTURE_BITS["regfile"]

        n = len(trace)
        # Plain-list views of the trace: one C-level conversion up front
        # instead of a numpy scalar box per element access.
        t_op = trace.op.tolist()
        t_src1 = trace.src1_dist.tolist()
        t_src2 = trace.src2_dist.tolist()
        t_addr = trace.address.tolist()
        t_pc = trace.pc.tolist()
        t_taken = trace.taken.tolist()
        t_ace = trace.ace.tolist()

        fetch_width = cfg.fetch_width
        rob_size = cfg.rob_size
        iq_size = cfg.iq_size
        lsq_size = cfg.lsq_size
        il1_line_bytes = cfg.il1_line_bytes
        depth = cfg.pipeline_depth
        exec_lat = _EXEC_LAT
        data_access = self.hierarchy.data_access
        inst_access = self.hierarchy.inst_access
        resolve_branch = self.front_end.resolve_branch
        dvm = self.dvm

        rob: "deque[_InFlight]" = deque()
        iq: List[_InFlight] = []
        # Per-interval completion times, indexed by local trace index.
        # Producers from earlier intervals are complete by construction
        # (the interval only ends once everything commits), matching the
        # historical global completion dict bit-for-bit.
        comp_cycle = [0] * n
        comp_issued = bytearray(n)
        lsq_count = 0
        iq_ace = rob_ace = lsq_ace = 0

        fetch_ptr = 0          # next trace index to fetch
        dispatch_ptr = 0       # next fetched-but-not-dispatched index
        fetch_stall_until = 0
        last_fetch_line = -1
        miss_heap: List[int] = []   # outstanding L2-miss completion cycles
        start_cycle = self._cycle
        cycle = self._cycle
        committed = 0
        mispredicts = 0
        throttled_cycles = 0
        dvm_window_ace = self._dvm_window_ace
        dvm_window_cycles = self._dvm_window_cycles
        dvm_sample_period = self._dvm_sample_period
        max_cycles = start_cycle + max(n * _MAX_CPI, 10_000)

        while committed < n:
            cycle += 1
            if cycle > max_cycles:
                raise SimulationError(
                    f"interval exceeded {_MAX_CPI} CPI — model deadlock"
                )

            # ---------------- commit ---------------------------------
            commits = 0
            while rob and commits < fetch_width:
                head = rob[0]
                if not head.issued or head.ready_cycle > cycle:
                    break
                rob.popleft()
                rob_ace -= head.ace
                if head.is_mem:
                    lsq_count -= 1
                    lsq_ace -= head.ace
                if head.mispredict:
                    mispredicts += 1
                commits += 1
                committed += 1
                c_rob += 1.0
                c_instructions += 1.0

            # ---------------- issue ----------------------------------
            while miss_heap and miss_heap[0] <= cycle:
                heapq.heappop(miss_heap)
            # Independent per-class FU budgets, indexed by op value
            # (INT_ALU, FP_ALU, LOAD, STORE, BRANCH).
            fu_free = [cfg.int_alu, cfg.fp_alu, cfg.mem_ports,
                       cfg.mem_ports, cfg.int_alu]
            issued = 0
            ready_count = 0
            still_waiting: List[_InFlight] = []
            for entry in iq:
                if issued >= fetch_width:
                    still_waiting.append(entry)
                    continue
                li = entry.index
                src_ready = True
                dist = entry.src1
                if dist > 0:
                    producer = li - dist
                    if producer >= 0 and comp_issued[producer] \
                            and comp_cycle[producer] > cycle:
                        src_ready = False
                if src_ready:
                    dist = entry.src2
                    if dist > 0:
                        producer = li - dist
                        if producer >= 0 and comp_issued[producer] \
                                and comp_cycle[producer] > cycle:
                            src_ready = False
                if not src_ready:
                    still_waiting.append(entry)
                    continue
                ready_count += 1
                op = entry.op
                if fu_free[op] <= 0:
                    still_waiting.append(entry)
                    continue
                fu_free[op] -= 1
                latency = exec_lat[op]
                if op == 2:      # LOAD
                    result = data_access(t_addr[li])
                    latency += result.latency
                    c_dl1 += 1.0
                    if not result.dl1_hit:
                        c_l2 += 1.0
                    if result.goes_to_memory:
                        heapq.heappush(miss_heap, cycle + latency)
                elif op == 3:    # STORE
                    result = data_access(t_addr[li])
                    c_dl1 += 1.0
                    if not result.dl1_hit:
                        c_l2 += 1.0
                    latency += 1  # stores retire from the LSQ post-commit
                elif op == 4:    # BRANCH
                    if resolve_branch(t_pc[li], t_taken[li]):
                        entry.mispredict = True
                        stall = cycle + latency + depth
                        if stall > fetch_stall_until:
                            fetch_stall_until = stall
                entry.issued = True
                entry.ready_cycle = cycle + latency
                comp_issued[li] = 1
                comp_cycle[li] = cycle + latency
                issued += 1
                iq_ace -= entry.ace
                c_issue_queue += 1.0
                c_regfile += 2.0
                if op == 0 or op == 4:
                    c_alu_int += 1.0
                elif op == 1:
                    c_alu_fp += 1.0
                if entry.is_mem:
                    c_lsq += 1.0
            iq = still_waiting
            waiting = len(iq) - ready_count if len(iq) > ready_count else 0

            # ---------------- dispatch -------------------------------
            throttled = False
            if dvm is not None:
                throttled = dvm.should_throttle(waiting, ready_count,
                                                bool(miss_heap))
                if throttled:
                    throttled_cycles += 1
            if not throttled:
                dispatched = 0
                while (dispatched < fetch_width
                       and dispatch_ptr < fetch_ptr
                       and len(rob) < rob_size
                       and len(iq) < iq_size):
                    local = dispatch_ptr
                    op = t_op[local]
                    is_mem = op == 2 or op == 3
                    if is_mem and lsq_count >= lsq_size:
                        break
                    entry = _InFlight(local, op, t_ace[local],
                                      t_src1[local], t_src2[local])
                    rob.append(entry)
                    iq.append(entry)
                    rob_ace += entry.ace
                    iq_ace += entry.ace
                    if is_mem:
                        lsq_count += 1
                        lsq_ace += entry.ace
                    dispatch_ptr += 1
                    dispatched += 1
                    c_rename += 1.0
                    c_rob += 1.0

            # ---------------- fetch ----------------------------------
            if cycle >= fetch_stall_until:
                fetched = 0
                while (fetched < fetch_width and fetch_ptr < n
                       and fetch_ptr - dispatch_ptr < 2 * fetch_width):
                    line = t_pc[fetch_ptr] // il1_line_bytes
                    if line != last_fetch_line:
                        bubble = inst_access(t_pc[fetch_ptr])
                        c_fetch_il1 += 1.0
                        last_fetch_line = line
                        if bubble:
                            fetch_stall_until = cycle + bubble
                            break
                    is_taken_branch = (t_op[fetch_ptr] == 4
                                       and t_taken[fetch_ptr])
                    fetch_ptr += 1
                    fetched += 1
                    if is_taken_branch:
                        break  # taken branch ends the fetch block

            # ---------------- AVF residency --------------------------
            a_iq += iq_ace * bits_iq
            a_rob += rob_ace * bits_rob
            a_lsq += lsq_ace * bits_lsq
            # Live architectural registers scale with in-flight window.
            a_regfile += (32 + 0.5 * len(rob)) * bits_regfile * 0.45

            # ---------------- DVM sampling ---------------------------
            if dvm is not None:
                dvm_window_ace += iq_ace
                dvm_window_cycles += 1
                if dvm_window_cycles >= dvm_sample_period:
                    online_avf = dvm_window_ace / (dvm_window_cycles
                                                   * iq_size)
                    dvm.on_sample(online_avf)
                    dvm_window_ace = 0.0
                    dvm_window_cycles = 0

        self._global_index += n
        self._cycle = cycle
        self._last_waiting = waiting
        self._last_ready = ready_count
        self._dvm_window_ace = dvm_window_ace
        self._dvm_window_cycles = dvm_window_cycles
        stats.cycles = cycle - start_cycle
        stats.branch_mispredicts = mispredicts
        stats.dvm_throttled_cycles = throttled_cycles
        stats.counters = {
            "fetch_il1": c_fetch_il1, "rename": c_rename,
            "issue_queue": c_issue_queue, "rob": c_rob,
            "regfile": c_regfile, "alu_int": c_alu_int,
            "alu_fp": c_alu_fp, "lsq": c_lsq, "dl1": c_dl1, "l2": c_l2,
            "instructions": c_instructions,
        }
        stats.ace_bit_cycles = {"iq": a_iq, "rob": a_rob, "lsq": a_lsq,
                                "regfile": a_regfile}
        return stats
