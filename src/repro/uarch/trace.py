"""Synthetic instruction traces for the detailed simulator.

A trace is a struct-of-arrays container: per-instruction opcode class,
register dependence distances, memory address, branch outcome and
ACE flag.  Struct-of-arrays keeps generation vectorizable and the
pipeline's per-instruction reads cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

import numpy as np

from repro.errors import WorkloadError


class OpClass(IntEnum):
    """Instruction classes distinguished by the pipeline."""

    INT_ALU = 0
    FP_ALU = 1
    LOAD = 2
    STORE = 3
    BRANCH = 4


#: Execution latency (cycles) per op class, excluding memory time.
EXEC_LATENCY = {
    OpClass.INT_ALU: 1,
    OpClass.FP_ALU: 4,
    OpClass.LOAD: 0,     # memory latency added by the cache hierarchy
    OpClass.STORE: 1,
    OpClass.BRANCH: 1,
}


@dataclass
class InstructionTrace:
    """Struct-of-arrays instruction stream.

    Attributes
    ----------
    op:
        ``int8`` opcode class per instruction (:class:`OpClass` values).
    src1_dist, src2_dist:
        Register dependence distances: instruction ``i`` reads the
        results of instructions ``i - src1_dist[i]`` and
        ``i - src2_dist[i]`` (0 means no dependence on an in-flight
        producer).
    address:
        Byte address for loads/stores (0 otherwise).
    pc:
        Instruction address (drives IL1 and branch predictor indexing).
    taken:
        Branch outcome (False for non-branches).
    ace:
        Whether the instruction carries ACE state (its corruption would
        change the program output).
    """

    op: np.ndarray
    src1_dist: np.ndarray
    src2_dist: np.ndarray
    address: np.ndarray
    pc: np.ndarray
    taken: np.ndarray
    ace: np.ndarray

    def __post_init__(self):
        n = self.op.size
        for field_name in ("src1_dist", "src2_dist", "address", "pc",
                           "taken", "ace"):
            arr = getattr(self, field_name)
            if arr.size != n:
                raise WorkloadError(
                    f"trace field {field_name} has {arr.size} entries, "
                    f"expected {n}"
                )

    def __len__(self) -> int:
        return int(self.op.size)

    def slice(self, start: int, stop: int) -> "InstructionTrace":
        """A view-based sub-trace covering ``[start, stop)``."""
        if not 0 <= start <= stop <= len(self):
            raise WorkloadError(
                f"invalid slice [{start}, {stop}) for trace of length {len(self)}"
            )
        return InstructionTrace(
            op=self.op[start:stop],
            src1_dist=self.src1_dist[start:stop],
            src2_dist=self.src2_dist[start:stop],
            address=self.address[start:stop],
            pc=self.pc[start:stop],
            taken=self.taken[start:stop],
            ace=self.ace[start:stop],
        )

    def mix_fractions(self) -> dict:
        """Observed dynamic instruction-mix fractions."""
        n = max(len(self), 1)
        return {
            "f_load": float(np.mean(self.op == OpClass.LOAD)),
            "f_store": float(np.mean(self.op == OpClass.STORE)),
            "f_branch": float(np.mean(self.op == OpClass.BRANCH)),
            "f_fp": float(np.mean(self.op == OpClass.FP_ALU)),
        }
