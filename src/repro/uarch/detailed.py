"""Detailed simulation driver: trace synthesis + pipeline + models.

Runs the cycle-level :class:`~repro.uarch.pipeline.OutOfOrderCore` over a
synthesized instruction stream, producing the same per-interval
CPI / power / AVF / IQ-AVF traces as the interval backend — the ground
truth used for mechanism studies (the DVM case study) and for validating
the interval model's first-order equations.

Detailed jobs cost seconds each (the engine's dominant expense), so
:meth:`DetailedSimulator.run` supports **per-interval checkpointing**:
every ``checkpoint_every`` intervals it atomically snapshots the core's
full microarchitectural state (caches, predictor, DVM controller, the
cross-interval dependence window) plus the traces measured so far into
an ``.npz`` file.  A re-run with the same arguments resumes from the
snapshot and produces a **bit-identical**
:class:`~repro.uarch.simulator.SimulationResult` — a killed sweep
restarts mid-benchmark instead of from scratch.  The engine keys
checkpoint files by job content hash under the cache directory (see
:func:`checkpoint_settings_from_env` and
:meth:`repro.engine.jobs.SimJob.run`).
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import time
from pathlib import Path
from typing import Optional, Tuple, Union

import numpy as np

from repro.errors import SimulationError
from repro.power.wattch import WattchModel
from repro.reliability.avf import AVFModel
from repro.reliability.dvm import DVMController, DVMPolicy
from repro.uarch.params import MachineConfig
from repro.workloads.generator import synthesize_interval
from repro.workloads.phases import WorkloadModel
from repro.workloads.spec2000 import get_benchmark

#: Bump when checkpoint contents change incompatibly: old snapshots are
#: then ignored (and deleted) instead of mis-resumed.  v2 replaced the
#: pickled core blob with the engine-independent array snapshot
#: (:meth:`repro.uarch.pipeline.OutOfOrderCore.snapshot_state`) stored
#: as plain ``state_*`` arrays — no pickling on either side, and either
#: execution engine can resume it.  v1 files fail the meta digest (the
#: version participates) and are deleted, never mis-resumed.
CHECKPOINT_VERSION = "ckpt/v2"

#: Trace arrays a snapshot carries, in a fixed order.
_TRACE_FIELDS = ("cpi", "power", "avf", "iq_avf", "mispredicts", "throttled")


def _default_checkpoint_dir() -> str:
    """Directory snapshots land in when none is configured explicitly:
    ``$REPRO_CHECKPOINT_DIR``, else ``$REPRO_CACHE_DIR/checkpoints``
    when a cache directory is configured, else ``.repro-checkpoints``.
    """
    directory = os.environ.get("REPRO_CHECKPOINT_DIR", "").strip()
    if directory:
        return directory
    cache_dir = os.environ.get("REPRO_CACHE_DIR", "").strip()
    return (str(Path(cache_dir) / "checkpoints") if cache_dir
            else ".repro-checkpoints")


def resolve_checkpoint_settings(every: Optional[int] = None,
                                directory: Optional[str] = None,
                                ) -> Tuple[int, Optional[str]]:
    """Effective ``(checkpoint_every, checkpoint_dir)`` for one run.

    Explicit arguments — the values a :class:`~repro.engine.jobs.SimJob`
    carries — win; the ``REPRO_CHECKPOINT_EVERY`` /
    ``REPRO_CHECKPOINT_DIR`` environment only fills the gaps, so
    checkpoint settings normally travel *inside* jobs (to pool workers
    and remote hosts alike) and the environment is never mutated to
    transport them.
    """
    if every is None:
        raw = os.environ.get("REPRO_CHECKPOINT_EVERY", "").strip()
        if not raw:
            return 0, None
        try:
            every = int(raw)
        except ValueError:
            raise SimulationError(
                f"REPRO_CHECKPOINT_EVERY must be an integer, got {raw!r}"
            )
    if every <= 0:
        return 0, None
    return every, (directory or _default_checkpoint_dir())


def checkpoint_settings_from_env() -> Tuple[int, Optional[str]]:
    """The ``(checkpoint_every, checkpoint_dir)`` environment knobs.

    Kept for library users who configure checkpointing through the
    environment; equivalent to :func:`resolve_checkpoint_settings` with
    no explicit overrides.
    """
    return resolve_checkpoint_settings(None, None)


def _checkpoint_meta(workload: WorkloadModel, config: MachineConfig,
                     n_samples: int, instructions_per_sample: int,
                     warmup: bool,
                     dvm_controller: Optional[DVMController]) -> str:
    """Digest identifying which run a snapshot belongs to.

    A snapshot resumed under any different argument would silently
    produce wrong traces; the digest makes such mismatches detectable
    (stale files are ignored and deleted).  The workload and any DVM
    policy participate by *content*, not name, so editing a custom
    :class:`WorkloadModel` — or overriding ``dvm_policy`` — between
    runs invalidates old snapshots too.
    """
    from repro.engine.jobs import _canonical

    policy = _canonical(dvm_controller.policy) if dvm_controller else None
    parts = (CHECKPOINT_VERSION, _canonical(workload), n_samples,
             instructions_per_sample, bool(warmup), config.key(), policy)
    return hashlib.sha256(repr(parts).encode("utf8")).hexdigest()


def _save_checkpoint(path: Path, meta: str, next_interval: int,
                     core, traces) -> None:
    """Atomically snapshot ``core`` + measured traces (tmp + replace)."""
    payload = {"meta": np.array(meta), "next": np.array(next_interval),
               "state_version": np.array(CHECKPOINT_VERSION)}
    for name, arr in core.snapshot_state().items():
        payload["state_" + name] = arr
    for name, arr in zip(_TRACE_FIELDS, traces):
        payload[name] = arr[:next_interval]
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), prefix=path.stem,
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez(handle, **payload)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def _load_checkpoint(path: Path, meta: str, n_samples: int,
                     config: MachineConfig,
                     dvm_controller: Optional[DVMController]):
    """``(core, traces, next_interval)`` from a snapshot, or ``None``.

    Corrupt, stale-version, or wrong-run snapshots are deleted and
    treated as absent — the run then starts from interval 0.  The core
    is rebuilt from ``config`` and the ``state_*`` arrays are loaded
    through :meth:`~repro.uarch.pipeline.OutOfOrderCore.restore_state`
    — no unpickling of executable state ever happens.
    """
    from repro.uarch.pipeline import OutOfOrderCore

    if not path.exists():
        return None
    try:
        with np.load(path, allow_pickle=False) as data:
            if ("state_version" not in data.files
                    or str(data["state_version"]) != CHECKPOINT_VERSION):
                raise ValueError("checkpoint from an incompatible version")
            if str(data["meta"]) != meta:
                raise ValueError("checkpoint belongs to a different run")
            next_interval = int(data["next"])
            if not 0 < next_interval < n_samples:
                raise ValueError("checkpoint interval out of range")
            traces = []
            for name in _TRACE_FIELDS:
                arr = np.empty(n_samples)
                arr[:next_interval] = data[name]
                traces.append(arr)
            core = OutOfOrderCore(config, dvm=dvm_controller)
            core.restore_state({
                key[len("state_"):]: data[key]
                for key in data.files
                if key.startswith("state_") and key != "state_version"
            })
        return core, traces, next_interval
    except Exception:
        try:
            path.unlink()
        except OSError:
            pass
        return None


def sweep_checkpoints(directory: Union[str, Path],
                      ttl_seconds: float = 7 * 24 * 3600,
                      now: Optional[float] = None) -> Tuple[int, int]:
    """Remove orphaned checkpoint snapshots under ``directory``.

    Returns ``(files_removed, bytes_reclaimed)``.  A snapshot is swept
    when it is a leftover ``*.tmp`` from a crashed atomic save, an
    ``*.npz`` that is unreadable or from another checkpoint version
    (pre-v2 pickled snapshots have no ``state_version`` field), or an
    ``*.npz`` older than ``ttl_seconds`` (completed runs delete their
    snapshot, so an old one belongs to a sweep nobody resumed).
    ``repro cache gc`` calls this for the cache's checkpoint directory.
    """
    root = Path(directory)
    if not root.is_dir():
        return 0, 0
    if now is None:
        now = time.time()
    removed = 0
    reclaimed = 0
    for path in sorted(root.rglob("*")):
        if not path.is_file():
            continue
        name = path.name
        if name.endswith(".tmp"):
            stale = True
        elif name.endswith(".npz"):
            try:
                stale = now - path.stat().st_mtime > ttl_seconds
            except OSError:
                continue
            if not stale:
                try:
                    with np.load(path, allow_pickle=False) as data:
                        stale = ("state_version" not in data.files
                                 or str(data["state_version"])
                                 != CHECKPOINT_VERSION)
                except Exception:
                    stale = True
        else:
            continue
        if not stale:
            continue
        try:
            size = path.stat().st_size
            path.unlink()
        except OSError:
            continue
        removed += 1
        reclaimed += size
    return removed, reclaimed


class DetailedSimulator:
    """Cycle-level simulation of one machine configuration.

    Parameters
    ----------
    config:
        The machine to simulate; when ``config.dvm_enabled`` a
        :class:`DVMController` with ``config.dvm_threshold`` gates
        dispatch (the paper's Figure 16 policy).
    dvm_policy:
        Optional explicit policy overriding the config-derived one.
    """

    def __init__(self, config: MachineConfig,
                 dvm_policy: Optional[DVMPolicy] = None):
        self.config = config
        if config.dvm_enabled:
            policy = dvm_policy or DVMPolicy(threshold=config.dvm_threshold)
            self.dvm_controller: Optional[DVMController] = DVMController(policy)
        else:
            self.dvm_controller = None

    def run(self, workload: Union[str, WorkloadModel], n_samples: int = 64,
            instructions_per_sample: int = 1000, warmup: bool = True,
            checkpoint_every: Optional[int] = None,
            checkpoint_path=None):
        """Simulate ``n_samples`` intervals and assemble the result.

        With ``warmup=True`` an extra unmeasured copy of the first
        interval is simulated first, standing in for the paper's
        fast-forward to the SimPoint region (caches and predictor warm).

        With ``checkpoint_every`` and ``checkpoint_path`` set, the full
        simulation state is snapshotted every ``checkpoint_every``
        measured intervals; a matching snapshot found at
        ``checkpoint_path`` resumes the run mid-benchmark, bit-identical
        to an uninterrupted one.  The snapshot is removed once the run
        completes.

        Returns a :class:`~repro.uarch.simulator.SimulationResult`
        (imported lazily to avoid a module cycle).
        """
        from repro.uarch.pipeline import OutOfOrderCore
        from repro.uarch.simulator import SimulationResult

        if isinstance(workload, str):
            workload = get_benchmark(workload)
        if n_samples < 1 or instructions_per_sample < 1:
            raise SimulationError(
                "n_samples and instructions_per_sample must be >= 1"
            )
        checkpointing = (checkpoint_path is not None
                         and checkpoint_every is not None
                         and checkpoint_every > 0)
        if checkpointing:
            checkpoint_path = Path(checkpoint_path)
            meta = _checkpoint_meta(workload, self.config, n_samples,
                                    instructions_per_sample, warmup,
                                    self.dvm_controller)

        start_interval = 0
        core = None
        if checkpointing:
            resumed = _load_checkpoint(checkpoint_path, meta, n_samples,
                                       self.config, self.dvm_controller)
            if resumed is not None:
                core, traces, start_interval = resumed
                (cpi, power, avf, iq_avf, mispredicts, throttled) = traces
        if core is None:
            core = OutOfOrderCore(self.config, dvm=self.dvm_controller)
            if warmup:
                core.run_interval(
                    synthesize_interval(workload, 0, n_samples,
                                        instructions_per_sample, seed=1)
                )
            cpi = np.empty(n_samples)
            power = np.empty(n_samples)
            avf = np.empty(n_samples)
            iq_avf = np.empty(n_samples)
            mispredicts = np.empty(n_samples)
            throttled = np.empty(n_samples)

        power_model = WattchModel(self.config)
        avf_model = AVFModel(self.config)

        for i in range(start_interval, n_samples):
            trace = synthesize_interval(workload, i, n_samples,
                                        instructions_per_sample)
            stats = core.run_interval(trace)
            cpi[i] = stats.cpi
            power[i] = power_model.power_from_counters(stats.counters,
                                                       stats.cycles)
            structure_avf = avf_model.avf_from_counters(stats.ace_bit_cycles,
                                                        stats.cycles)
            avf[i] = structure_avf["processor"]
            iq_avf[i] = structure_avf["iq"]
            mispredicts[i] = stats.branch_mispredicts / stats.instructions
            throttled[i] = stats.dvm_throttled_cycles / stats.cycles
            if (checkpointing and (i + 1) % checkpoint_every == 0
                    and i + 1 < n_samples):
                _save_checkpoint(checkpoint_path, meta, i + 1, core,
                                 (cpi, power, avf, iq_avf, mispredicts,
                                  throttled))

        if checkpointing:
            try:
                checkpoint_path.unlink()  # the run completed; snapshot stale
            except OSError:
                pass

        return SimulationResult(
            benchmark=workload.name,
            config=self.config,
            n_samples=n_samples,
            backend="detailed",
            traces={"cpi": cpi, "power": power, "avf": avf,
                    "iq_avf": iq_avf},
            components={"mispredict_rate": mispredicts,
                        "dvm_throttled_frac": throttled},
        )


def run_detailed_group(jobs, engine: Optional[str] = None):
    """Run a group of detailed jobs sharing one workload signature as
    one batched interval stream.

    The batched twin of ``[job.run() for job in jobs]``: every member's
    core state is stacked into one
    :class:`~repro.uarch.pipeline_kernel.BatchKernelState` and each
    interval advances the whole group through a single
    :func:`~repro.uarch.pipeline_kernel.step_interval_batch` call
    against the group's one synthesized trace.  Everything *around* the
    kernel stays per-member and exactly mirrors
    :meth:`DetailedSimulator.run`: checkpoint resolution/resume/save
    uses each job's own settings and content-hash path in the unchanged
    ``ckpt/v2`` format (a member's :class:`KernelState` arrays are
    views into the stacked batch, so its per-core snapshot slices out
    unchanged), warmup runs only for members starting fresh (resumed
    members sit out via the ``active`` mask — ragged groups are the
    normal case after a partial crash), and power / AVF / mispredict
    post-processing calls the exact scalar model code per member.

    ``engine`` selects the stepper: ``None``/``"auto"`` and ``"batch"``
    use the compiled ``prange`` kernel when numba is importable (plain
    loop otherwise); ``"batch-interp"`` forces the plain loop (the
    parity-test configuration); ``"per-job"`` bypasses batching
    entirely.  All engines are bit-identical.  Results align with
    ``jobs``.
    """
    from repro.uarch.pipeline import COUNTER_KEYS, OutOfOrderCore
    from repro.uarch.pipeline_kernel import (
        ACE_IQ, ACE_LSQ, ACE_REGFILE, ACE_ROB, OI_MISPREDICTS, OI_THROTTLED,
        BatchKernelState, run_interval_on_batch)
    from repro.uarch.simulator import SimulationResult

    jobs = list(jobs)
    if engine in (None, "auto"):
        engine = "batch"
    if engine == "per-job":
        return [job.run() for job in jobs]
    if engine not in ("batch", "batch-interp"):
        raise SimulationError(
            f"unknown detailed group engine {engine!r}; choose from "
            f"(None, 'auto', 'batch', 'batch-interp', 'per-job')"
        )
    compiled = engine == "batch"
    if not jobs:
        return []

    lead = jobs[0]
    n_samples = lead.n_samples
    ips = lead.instructions_per_sample
    for job in jobs:
        if (job.backend != "detailed" or job.benchmark != lead.benchmark
                or job.n_samples != n_samples
                or job.instructions_per_sample != ips):
            raise SimulationError(
                "detailed group members must share benchmark, n_samples "
                "and instructions_per_sample"
            )
    workload = (lead.workload if lead.workload is not None
                else get_benchmark(lead.benchmark))

    members = []
    for job in jobs:
        dvm = DetailedSimulator(job.config).dvm_controller
        every, directory = resolve_checkpoint_settings(
            job.checkpoint_every, job.checkpoint_dir)
        path = meta = None
        if every:
            path = Path(directory) / f"{job.key()}.ckpt.npz"
            meta = _checkpoint_meta(workload, job.config, n_samples, ips,
                                    True, dvm)
        core = None
        start = 0
        if path is not None:
            resumed = _load_checkpoint(path, meta, n_samples, job.config, dvm)
            if resumed is not None:
                core, traces, start = resumed
        if core is None:
            core = OutOfOrderCore(job.config, dvm=dvm)
            traces = [np.empty(n_samples) for _ in _TRACE_FIELDS]
        members.append({
            "job": job, "core": core, "traces": traces, "start": start,
            "every": every, "path": path, "meta": meta,
            "power": WattchModel(job.config), "avf": AVFModel(job.config),
        })

    cores = [member["core"] for member in members]
    batch = BatchKernelState([core._enter_kernel_mode() for core in cores])

    # Unmeasured warmup interval — fresh members only (resumed cores
    # already warmed before their snapshot was taken).
    fresh = np.array([1 if member["start"] == 0 else 0
                      for member in members], dtype=np.uint8)
    if fresh.any():
        warm = synthesize_interval(workload, 0, n_samples, ips, seed=1)
        run_interval_on_batch(cores, batch, warm, fresh, compiled=compiled)

    first = min(member["start"] for member in members)
    for i in range(first, n_samples):
        trace = synthesize_interval(workload, i, n_samples, ips)
        active = np.array([1 if member["start"] <= i else 0
                           for member in members], dtype=np.uint8)
        out_counters, out_ace, out_ints, cycles = run_interval_on_batch(
            cores, batch, trace, active, compiled=compiled)
        n_instr = len(trace)
        for b, member in enumerate(members):
            if not active[b]:
                continue
            counters = {key: float(out_counters[b, index])
                        for index, key in enumerate(COUNTER_KEYS)}
            ace = {"iq": float(out_ace[b, ACE_IQ]),
                   "rob": float(out_ace[b, ACE_ROB]),
                   "lsq": float(out_ace[b, ACE_LSQ]),
                   "regfile": float(out_ace[b, ACE_REGFILE])}
            n_cycles = int(cycles[b])
            cpi, power, avf, iq_avf, mispredicts, throttled = member["traces"]
            cpi[i] = n_cycles / n_instr
            power[i] = member["power"].power_from_counters(counters, n_cycles)
            structure_avf = member["avf"].avf_from_counters(ace, n_cycles)
            avf[i] = structure_avf["processor"]
            iq_avf[i] = structure_avf["iq"]
            mispredicts[i] = int(out_ints[b, OI_MISPREDICTS]) / n_instr
            throttled[i] = int(out_ints[b, OI_THROTTLED]) / n_cycles
            if (member["every"] and (i + 1) % member["every"] == 0
                    and i + 1 < n_samples):
                _save_checkpoint(member["path"], member["meta"], i + 1,
                                 member["core"], tuple(member["traces"]))

    results = []
    for member in members:
        if member["path"] is not None:
            try:
                member["path"].unlink()  # the run completed; snapshot stale
            except OSError:
                pass
        cpi, power, avf, iq_avf, mispredicts, throttled = member["traces"]
        results.append(SimulationResult(
            benchmark=workload.name,
            config=member["job"].config,
            n_samples=n_samples,
            backend="detailed",
            traces={"cpi": cpi, "power": power, "avf": avf,
                    "iq_avf": iq_avf},
            components={"mispredict_rate": mispredicts,
                        "dvm_throttled_frac": throttled},
        ))
    return results
