"""Detailed simulation driver: trace synthesis + pipeline + models.

Runs the cycle-level :class:`~repro.uarch.pipeline.OutOfOrderCore` over a
synthesized instruction stream, producing the same per-interval
CPI / power / AVF / IQ-AVF traces as the interval backend — the ground
truth used for mechanism studies (the DVM case study) and for validating
the interval model's first-order equations.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.errors import SimulationError
from repro.power.wattch import WattchModel
from repro.reliability.avf import AVFModel
from repro.reliability.dvm import DVMController, DVMPolicy
from repro.uarch.params import MachineConfig
from repro.workloads.generator import synthesize_interval
from repro.workloads.phases import WorkloadModel
from repro.workloads.spec2000 import get_benchmark


class DetailedSimulator:
    """Cycle-level simulation of one machine configuration.

    Parameters
    ----------
    config:
        The machine to simulate; when ``config.dvm_enabled`` a
        :class:`DVMController` with ``config.dvm_threshold`` gates
        dispatch (the paper's Figure 16 policy).
    dvm_policy:
        Optional explicit policy overriding the config-derived one.
    """

    def __init__(self, config: MachineConfig,
                 dvm_policy: Optional[DVMPolicy] = None):
        self.config = config
        if config.dvm_enabled:
            policy = dvm_policy or DVMPolicy(threshold=config.dvm_threshold)
            self.dvm_controller: Optional[DVMController] = DVMController(policy)
        else:
            self.dvm_controller = None

    def run(self, workload: Union[str, WorkloadModel], n_samples: int = 64,
            instructions_per_sample: int = 1000, warmup: bool = True):
        """Simulate ``n_samples`` intervals and assemble the result.

        With ``warmup=True`` an extra unmeasured copy of the first
        interval is simulated first, standing in for the paper's
        fast-forward to the SimPoint region (caches and predictor warm).

        Returns a :class:`~repro.uarch.simulator.SimulationResult`
        (imported lazily to avoid a module cycle).
        """
        from repro.uarch.pipeline import OutOfOrderCore
        from repro.uarch.simulator import SimulationResult

        if isinstance(workload, str):
            workload = get_benchmark(workload)
        if n_samples < 1 or instructions_per_sample < 1:
            raise SimulationError(
                "n_samples and instructions_per_sample must be >= 1"
            )

        core = OutOfOrderCore(self.config, dvm=self.dvm_controller)
        if warmup:
            core.run_interval(
                synthesize_interval(workload, 0, n_samples,
                                    instructions_per_sample, seed=1)
            )
        power_model = WattchModel(self.config)
        avf_model = AVFModel(self.config)

        cpi = np.empty(n_samples)
        power = np.empty(n_samples)
        avf = np.empty(n_samples)
        iq_avf = np.empty(n_samples)
        mispredicts = np.empty(n_samples)
        throttled = np.empty(n_samples)

        for i in range(n_samples):
            trace = synthesize_interval(workload, i, n_samples,
                                        instructions_per_sample)
            stats = core.run_interval(trace)
            cpi[i] = stats.cpi
            power[i] = power_model.power_from_counters(stats.counters,
                                                       stats.cycles)
            structure_avf = avf_model.avf_from_counters(stats.ace_bit_cycles,
                                                        stats.cycles)
            avf[i] = structure_avf["processor"]
            iq_avf[i] = structure_avf["iq"]
            mispredicts[i] = stats.branch_mispredicts / stats.instructions
            throttled[i] = stats.dvm_throttled_cycles / stats.cycles

        return SimulationResult(
            benchmark=workload.name,
            config=self.config,
            n_samples=n_samples,
            backend="detailed",
            traces={"cpi": cpi, "power": power, "avf": avf,
                    "iq_avf": iq_avf},
            components={"mispredict_rate": mispredicts,
                        "dvm_throttled_frac": throttled},
        )
