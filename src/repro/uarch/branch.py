"""Branch prediction: gshare + BTB + return address stack (Table 1).

The Table 1 front end: a 2K-entry gshare predictor with 10 bits of
global history, a 2K-entry 4-way BTB and a 32-entry RAS.  The paper's
design space does not vary the predictor, but its accuracy interacts
with every configuration through the misprediction penalty.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.errors import ConfigurationError
from repro.uarch.params import MachineConfig


class GsharePredictor:
    """Classic gshare: PC xor global-history indexes 2-bit counters."""

    def __init__(self, entries: int = 2048, history_bits: int = 10):
        if entries <= 0 or (entries & (entries - 1)):
            raise ConfigurationError(
                f"gshare entries must be a positive power of two, got {entries}"
            )
        if not 0 < history_bits <= 20:
            raise ConfigurationError(
                f"history_bits must be in (0, 20], got {history_bits}"
            )
        self.entries = entries
        self.history_bits = history_bits
        self._mask = entries - 1
        self._history_mask = (1 << history_bits) - 1
        self._counters = np.ones(entries, dtype=np.int8)  # weakly not-taken
        self._history = 0
        self.lookups = 0
        self.mispredicts = 0

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & self._mask

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc``."""
        return bool(self._counters[self._index(pc)] >= 2)

    def update(self, pc: int, taken: bool) -> bool:
        """Train on the resolved outcome; returns True on mispredict."""
        idx = self._index(pc)
        prediction = self._counters[idx] >= 2
        if taken and self._counters[idx] < 3:
            self._counters[idx] += 1
        elif not taken and self._counters[idx] > 0:
            self._counters[idx] -= 1
        self._history = ((self._history << 1) | int(taken)) & self._history_mask
        self.lookups += 1
        mispredicted = prediction != taken
        if mispredicted:
            self.mispredicts += 1
        return mispredicted

    @property
    def mispredict_rate(self) -> float:
        """Observed misprediction rate."""
        return self.mispredicts / self.lookups if self.lookups else 0.0


class BranchTargetBuffer:
    """Set-associative BTB; misses on taken branches cost a bubble.

    Like :class:`~repro.uarch.caches.SetAssociativeCache`, each set is
    an LRU-ordered dict — one hash lookup per taken branch instead of a
    scan over the ways, with an identical hit/miss stream.
    """

    def __init__(self, entries: int = 2048, assoc: int = 4):
        if entries <= 0 or entries % assoc:
            raise ConfigurationError(
                f"BTB entries ({entries}) must be a positive multiple of "
                f"assoc ({assoc})"
            )
        self.n_sets = entries // assoc
        self.assoc = assoc
        self._sets = [OrderedDict() for _ in range(self.n_sets)]
        self.hits = 0
        self.misses = 0

    def access(self, pc: int) -> bool:
        """Look up (and allocate) the target entry for a taken branch."""
        tag = pc >> 2
        ways = self._sets[tag % self.n_sets]
        if tag in ways:
            ways.move_to_end(tag)
            self.hits += 1
            return True
        if len(ways) >= self.assoc:
            ways.popitem(last=False)
        ways[tag] = None
        self.misses += 1
        return False

    def lru_table(self) -> np.ndarray:
        """Contents as ``(n_sets, assoc)`` tags, LRU order, ``-1`` pad."""
        table = np.full((self.n_sets, self.assoc), -1, dtype=np.int64)
        for index, ways in enumerate(self._sets):
            for way, tag in enumerate(ways):
                table[index, way] = tag
        return table

    def load_lru_table(self, table: np.ndarray) -> None:
        """Replace the contents from a :meth:`lru_table` array."""
        table = np.asarray(table)
        if table.shape != (self.n_sets, self.assoc):
            raise ConfigurationError(
                f"BTB snapshot shape {table.shape} does not match "
                f"({self.n_sets}, {self.assoc})"
            )
        for index in range(self.n_sets):
            ways = OrderedDict()
            for way in range(self.assoc):
                tag = int(table[index, way])
                if tag != -1:
                    ways[tag] = None
            self._sets[index] = ways


class ReturnAddressStack:
    """Bounded call/return stack (overflows wrap, as in hardware)."""

    def __init__(self, entries: int = 32):
        if entries <= 0:
            raise ConfigurationError(f"RAS entries must be positive, got {entries}")
        self.entries = entries
        self._stack = []
        self.pushes = 0
        self.mispops = 0

    def push(self, return_pc: int) -> None:
        """Record a call's return address."""
        if len(self._stack) >= self.entries:
            self._stack.pop(0)
        self._stack.append(return_pc)
        self.pushes += 1

    def pop(self, actual_return_pc: int) -> bool:
        """Pop on return; returns True when the prediction was correct."""
        if not self._stack:
            self.mispops += 1
            return False
        predicted = self._stack.pop()
        if predicted != actual_return_pc:
            self.mispops += 1
            return False
        return True


class FrontEnd:
    """Convenience bundle of the Table 1 branch hardware."""

    def __init__(self, config: MachineConfig):
        self.gshare = GsharePredictor(config.branch_predictor_entries,
                                      config.branch_history_bits)
        self.btb = BranchTargetBuffer(config.btb_entries, config.btb_assoc)
        self.ras = ReturnAddressStack(config.ras_entries)

    def resolve_branch(self, pc: int, taken: bool) -> bool:
        """Predict + train on one conditional branch; True on mispredict."""
        mispredicted = self.gshare.update(pc, taken)
        if taken:
            self.btb.access(pc)
        return mispredicted
