"""Optional numba acceleration for the kernel's scalar recurrences.

The batched interval kernel (:mod:`repro.uarch.interval_model`) is
NumPy end-to-end except for one genuinely sequential piece: the
persistence-smoothing EWMA scan, whose time steps depend on each other.
The batch path already amortizes it across configs (one vector op per
time step instead of one Python iteration per element), but for very
large batches a compiled scan still wins.  This module provides that
scan with three interchangeable implementations:

* a **numba** ``@njit`` kernel (used when numba is importable *and* JIT
  is enabled) — compiled without ``fastmath``, so IEEE semantics are
  preserved and the output is bit-identical to the NumPy path;
* the **NumPy** fallback (one vector op across batch rows per time
  step) — always available, used whenever numba is absent or JIT is
  off;
* both proven bit-identical in ``tests/test_kernel_batch.py``.

JIT is opt-in, resolved in priority order:

1. an explicit ``jit=`` argument to :func:`ewma_scan`;
2. the process-wide override set by :func:`set_jit` (the CLI's
   ``--jit`` flag uses this — the environment is never mutated);
3. the ``REPRO_JIT`` environment variable (``1``/``true``/``on``).

numba is an *optional* dependency: when it is not installed every path
silently uses the NumPy fallback, and requesting JIT is a no-op rather
than an error (``jit_available()`` reports which case you are in).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional

import numpy as np

#: Process-wide JIT override set by :func:`set_jit` (``None`` = consult
#: the ``REPRO_JIT`` environment).
_JIT_OVERRIDE: Optional[bool] = None

#: Process-wide thread-count override set by :func:`set_jit_threads`
#: (``None`` = consult the ``REPRO_JIT_THREADS`` environment).
_THREADS_OVERRIDE: Optional[int] = None

#: Lazily-resolved compiled scan: ``None`` = not attempted yet,
#: ``False`` = numba unavailable (or compilation failed), otherwise the
#: dispatcher-wrapped function.
_NUMBA_SCAN = None

_TRUE_STRINGS = ("1", "true", "on", "yes")


def set_jit(enabled: Optional[bool]) -> None:
    """Set the process-wide JIT preference (``None`` restores env lookup).

    Used by the CLI's ``--jit`` flag so enabling JIT never mutates
    ``os.environ`` (pool workers inherit the environment; an in-process
    override keeps the decision local to the dispatching process, and
    jobs shipped to workers re-resolve it from *their* environment).
    """
    global _JIT_OVERRIDE
    _JIT_OVERRIDE = enabled if enabled is None else bool(enabled)


def _env_enabled() -> bool:
    return os.environ.get("REPRO_JIT", "").strip().lower() in _TRUE_STRINGS


def jit_requested() -> bool:
    """Whether JIT is *requested* (override or environment), ignoring
    whether numba can actually honor the request."""
    if _JIT_OVERRIDE is not None:
        return _JIT_OVERRIDE
    return _env_enabled()


def set_jit_threads(n: Optional[int]) -> None:
    """Set the process-wide kernel thread count (``None`` restores env
    lookup).

    Used by the CLI's ``--jit-threads`` flag; like :func:`set_jit`, this
    is module state rather than an environment mutation, so the decision
    stays local to the dispatching process and never leaks into pool
    workers (which re-resolve ``REPRO_JIT_THREADS`` from *their*
    environment).
    """
    global _THREADS_OVERRIDE
    if n is None:
        _THREADS_OVERRIDE = None
        return
    n = int(n)
    if n < 1:
        raise ValueError(f"jit threads must be >= 1, got {n}")
    _THREADS_OVERRIDE = n


def jit_threads() -> int:
    """Threads the batched detailed kernel may ``prange`` across.

    Resolution order: :func:`set_jit_threads` override, then the
    ``REPRO_JIT_THREADS`` environment, then **1**.  The conservative
    default matters: executors already run one worker per CPU, so a
    worker quietly spawning a thread team would oversubscribe the
    machine — multi-threaded stepping is for single-process batched
    runs that ask for it.  Thread count never changes results: batch
    rows are fully independent (see
    :mod:`repro.uarch.pipeline_kernel`), so this is a speed knob only.
    """
    if _THREADS_OVERRIDE is not None:
        return _THREADS_OVERRIDE
    raw = os.environ.get("REPRO_JIT_THREADS", "").strip()
    if not raw:
        return 1
    try:
        n = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_JIT_THREADS must be an integer >= 1, got {raw!r}"
        )
    return max(1, n)


def apply_jit_threads() -> int:
    """Apply :func:`jit_threads` to numba's runtime; returns the count
    actually in force (clamped to numba's launch-time maximum, 1 when
    numba is absent)."""
    n = jit_threads()
    try:
        import numba

        n = max(1, min(n, int(numba.config.NUMBA_NUM_THREADS)))
        numba.set_num_threads(n)
        return n
    except Exception:
        return 1


def jit_cache_dir() -> Optional[str]:
    """Directory for numba's persistent on-disk compilation cache.

    ``REPRO_JIT_CACHE_DIR`` wins; else ``$REPRO_CACHE_DIR/numba-cache``
    when a result-cache root is configured; else ``None`` (in-memory
    compilation only).  With a directory pinned, every process —
    including forked pool workers — loads the detailed-pipeline
    mega-function from disk instead of recompiling it, which is the
    difference between milliseconds and tens of seconds of warm-up per
    worker.
    """
    explicit = os.environ.get("REPRO_JIT_CACHE_DIR", "").strip()
    if explicit:
        return explicit
    cache_dir = os.environ.get("REPRO_CACHE_DIR", "").strip()
    return str(Path(cache_dir) / "numba-cache") if cache_dir else None


#: Compiled-dispatcher cache for :func:`compile_njit`, keyed by
#: ``(function, jit flags)`` — one compilation per distinct signature,
#: however often engines alternate or :func:`set_jit` toggles.
_NJIT_CACHE: dict = {}


def compile_njit(fn, parallel: bool = False):
    """``numba.njit(fn)``, compiled lazily once per ``(fn, flags)``.

    Returns the dispatcher-wrapped function, or ``False`` when numba is
    not importable (or compilation fails) — callers then run ``fn``
    itself, which is by construction the same arithmetic.  Compiled
    without ``fastmath`` so IEEE ordering (and therefore bit-identical
    output) is preserved; shared by the EWMA scan and the detailed
    pipeline kernel (:mod:`repro.uarch.pipeline_kernel`).

    The dispatcher is memoized under ``(fn, parallel)``: engine
    alternation and :func:`set_jit` toggling only change *dispatch*,
    never re-trigger compilation.  When :func:`jit_cache_dir` resolves
    a directory, compilation also lands in numba's on-disk cache there
    (``cache=True``), so fresh processes skip the compile entirely.
    """
    key = (fn, parallel)
    cached = _NJIT_CACHE.get(key)
    if cached is None:
        try:
            import numba

            cache_dir = jit_cache_dir()
            use_cache = False
            if cache_dir:
                try:
                    Path(cache_dir).mkdir(parents=True, exist_ok=True)
                    # Programmatic pin (numba reads this at cache-file
                    # resolution time); the environment is never mutated.
                    numba.config.CACHE_DIR = cache_dir
                    use_cache = True
                except OSError:
                    pass  # unwritable cache root: compile in memory
            cached = numba.njit(cache=use_cache, parallel=parallel)(fn)
        except Exception:
            cached = False
        _NJIT_CACHE[key] = cached
    return cached


def _resolve_numba_scan():
    """Compile the scan once through :func:`compile_njit`."""
    global _NUMBA_SCAN
    if _NUMBA_SCAN is None:
        # No fastmath: the compiled loop must keep strict IEEE
        # ordering so its output is bit-identical to the NumPy scan.
        _NUMBA_SCAN = compile_njit(_ewma_scan_loop)
    return _NUMBA_SCAN


def jit_available() -> bool:
    """Whether the compiled scan can be used (numba importable)."""
    return bool(_resolve_numba_scan())


def jit_enabled(jit: Optional[bool] = None) -> bool:
    """Resolve the effective JIT decision for one call."""
    requested = jit_requested() if jit is None else bool(jit)
    return requested and jit_available()


def _ewma_scan_loop(traces, alpha):
    """Reference scan: row-wise first-order IIR, strict IEEE ordering.

    Plain nested loops on purpose — this exact function body is what
    numba compiles, so the JIT and no-JIT paths share one definition of
    the arithmetic (``alpha * x + (1 - alpha) * acc`` per element, in
    time order).
    """
    n_rows, n_cols = traces.shape
    out = np.empty_like(traces)
    beta = 1.0 - alpha
    for row in range(n_rows):
        acc = traces[row, 0]
        for col in range(n_cols):
            acc = alpha * traces[row, col] + beta * acc
            out[row, col] = acc
    return out


def _ewma_scan_numpy(traces: np.ndarray, alpha: float) -> np.ndarray:
    """NumPy scan: one vector op across batch rows per time step.

    Bit-identical to :func:`_ewma_scan_loop`: every element sees the
    same ``alpha * x + (1 - alpha) * acc`` float64 operations in the
    same order; only the loop structure (time-major instead of
    row-major) differs.
    """
    out = np.empty_like(traces)
    acc = traces[:, 0].copy()
    beta = 1.0 - alpha
    for col in range(traces.shape[1]):
        acc = alpha * traces[:, col] + beta * acc
        out[:, col] = acc
    return out


def ewma_scan(traces: np.ndarray, alpha: float,
              jit: Optional[bool] = None) -> np.ndarray:
    """Forward EWMA scan over the last axis of a ``(rows, samples)`` array.

    ``out[r, t] = alpha * traces[r, t] + (1 - alpha) * out[r, t-1]``
    with the accumulator seeded from ``traces[r, 0]`` (matching the
    interval model's historical per-element loop).  Dispatches to the
    numba kernel when JIT is enabled and available, else to the NumPy
    fallback; the two are bit-identical.
    """
    traces = np.asarray(traces)
    if traces.ndim != 2:
        raise ValueError(
            f"ewma_scan expects a (rows, samples) array, got shape "
            f"{traces.shape}"
        )
    if traces.shape[1] == 0:
        return np.empty_like(traces)
    if jit_enabled(jit):
        compiled = _resolve_numba_scan()
        if compiled:
            return compiled(np.ascontiguousarray(traces), alpha)
    return _ewma_scan_numpy(traces, alpha)
