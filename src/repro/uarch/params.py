"""Machine configuration: the paper's Table 1 baseline and Table 2 knobs.

The nine *varied* parameters (Table 2) are ``fetch_width``, ``rob_size``,
``iq_size``, ``lsq_size``, ``l2_size_kb``, ``l2_latency``, ``il1_size_kb``,
``dl1_size_kb`` and ``dl1_latency``.  Everything else is fixed at the
Table 1 baseline (branch predictor, TLBs, functional units, memory
latency, ...).

The DVM case study (Section 5) adds dynamic vulnerability management as a
tenth design parameter — represented here by ``dvm_enabled`` and
``dvm_threshold``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Callable, Dict, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

#: Names of the 9 design-space parameters, in Table 2 order.
VARIED_PARAMETERS: Tuple[str, ...] = (
    "fetch_width",
    "rob_size",
    "iq_size",
    "lsq_size",
    "l2_size_kb",
    "l2_latency",
    "il1_size_kb",
    "dl1_size_kb",
    "dl1_latency",
)


@dataclass(frozen=True)
class MachineConfig:
    """A superscalar machine configuration.

    Field defaults are the paper's Table 1 baseline.  The processor is
    ``fetch_width``-wide at fetch/issue/commit (the paper's 8-wide
    baseline ties the three widths together, and Table 2 varies them as
    one "Fetch_width" knob).
    """

    # --- Table 2 varied parameters -----------------------------------
    fetch_width: int = 8
    rob_size: int = 96
    iq_size: int = 96
    lsq_size: int = 48
    l2_size_kb: int = 2048
    l2_latency: int = 12
    il1_size_kb: int = 32
    dl1_size_kb: int = 64
    dl1_latency: int = 1

    # --- Table 1 fixed baseline --------------------------------------
    branch_predictor_entries: int = 2048     # gshare
    branch_history_bits: int = 10
    btb_entries: int = 2048
    btb_assoc: int = 4
    ras_entries: int = 32
    itlb_entries: int = 128
    dtlb_entries: int = 256
    tlb_miss_latency: int = 200
    il1_assoc: int = 2
    il1_line_bytes: int = 32
    dl1_assoc: int = 4
    dl1_line_bytes: int = 64
    l2_assoc: int = 4
    l2_line_bytes: int = 128
    memory_latency: int = 200
    int_alu: int = 8
    int_mul: int = 4
    fp_alu: int = 8
    fp_mul: int = 4
    mem_ports: int = 2
    frequency_ghz: float = 3.0

    # --- DVM (Section 5's tenth design parameter) --------------------
    dvm_enabled: bool = False
    dvm_threshold: float = 0.3

    def __post_init__(self):
        for name in VARIED_PARAMETERS:
            value = getattr(self, name)
            if not isinstance(value, (int,)) or value <= 0:
                raise ConfigurationError(
                    f"{name} must be a positive integer, got {value!r}"
                )
        if self.lsq_size > self.rob_size:
            raise ConfigurationError(
                f"lsq_size ({self.lsq_size}) cannot exceed rob_size "
                f"({self.rob_size}): every in-flight memory op occupies a "
                f"ROB entry"
            )
        if not 0.0 < self.dvm_threshold < 1.0:
            raise ConfigurationError(
                f"dvm_threshold must be in (0, 1), got {self.dvm_threshold}"
            )

    # ------------------------------------------------------------------
    def varied_values(self) -> Dict[str, int]:
        """The 9 Table 2 parameter values as a dict."""
        return {name: getattr(self, name) for name in VARIED_PARAMETERS}

    def key(self) -> Tuple:
        """Hashable identity used for caching and seeding.

        Memoized: the batched kernel derives one noise seed per config
        per call, and the engine keys every cache lookup off it.
        """
        cached = self.__dict__.get("_key")
        if cached is None:
            cached = tuple(getattr(self, f.name) for f in fields(self))
            object.__setattr__(self, "_key", cached)
        return cached

    def with_dvm(self, enabled: bool = True, threshold: float = None) -> "MachineConfig":
        """Copy of this config with the DVM design parameter changed."""
        kwargs = {"dvm_enabled": enabled}
        if threshold is not None:
            kwargs["dvm_threshold"] = threshold
        return replace(self, **kwargs)

    def describe(self) -> str:
        """Readable multi-line summary of the varied parameters."""
        lines = [f"{name:>12s} = {getattr(self, name)}" for name in VARIED_PARAMETERS]
        if self.dvm_enabled:
            lines.append(f"{'dvm':>12s} = enabled (threshold {self.dvm_threshold})")
        return "\n".join(lines)

    @property
    def pipeline_depth(self) -> int:
        """Front-end depth in cycles, growing gently with machine width.

        Wider machines need deeper front ends; this scaling sets the
        branch misprediction penalty base.
        """
        width = self.fetch_width
        depth = 10
        while width > 2:
            depth += 2
            width //= 2
        return depth


class ConfigBatch:
    """A stack of :class:`MachineConfig` objects as broadcastable columns.

    The batched interval kernel (:func:`repro.uarch.interval_model.\
simulate_interval_batch`) evaluates the model equations for many
    configurations at once on ``(batch, samples)`` matrices.  All the
    per-config quantities those equations touch are exposed here as
    ``(batch, 1)`` NumPy columns — one attribute per
    :class:`MachineConfig` field, plus the derived ``pipeline_depth`` —
    so an expression written against a scalar config broadcasts
    unchanged against a batch: ``config.mem_ports / f_mem`` becomes
    ``(B, 1) / (S,) -> (B, S)`` with bit-identical per-element results.

    A ``ConfigBatch`` therefore *duck-types* as a ``MachineConfig`` for
    the vectorized formulas in :mod:`repro.uarch.interval_model`,
    :mod:`repro.reliability.avf`, :mod:`repro.reliability.dvm` and
    :mod:`repro.power.wattch`.  Integer fields keep integer columns
    (``int64``) so int-vs-float promotion matches the scalar
    expressions exactly.
    """

    def __init__(self, configs: Sequence[MachineConfig]):
        configs = tuple(configs)
        if not configs:
            raise ConfigurationError(
                "ConfigBatch needs at least one configuration"
            )
        self.configs: Tuple[MachineConfig, ...] = configs
        n = len(configs)
        for f in fields(MachineConfig):
            values = [getattr(config, f.name) for config in configs]
            setattr(self, f.name, np.asarray(values).reshape(n, 1))
        self.pipeline_depth = np.asarray(
            [config.pipeline_depth for config in configs]
        ).reshape(n, 1)

    def __len__(self) -> int:
        return len(self.configs)

    def __getitem__(self, index: int) -> MachineConfig:
        return self.configs[index]

    def map_scalar(self, fn: Callable[[MachineConfig], float]) -> np.ndarray:
        """Evaluate a scalar-config function per member, as a column.

        Used for expressions whose float arithmetic would *not* be
        bit-stable under column broadcasting (e.g. Python-float ``**``
        in the Wattch energy model): the existing scalar code runs once
        per config and the results stack into a ``(batch, 1)`` column.
        """
        return np.asarray(
            [fn(config) for config in self.configs], dtype=float
        ).reshape(len(self.configs), 1)


def baseline_config(**overrides) -> MachineConfig:
    """The Table 1 simulated machine configuration (optionally overridden)."""
    return MachineConfig(**overrides)


#: Table 1 rendered as (parameter, configuration) rows for reports.
TABLE1_ROWS: Tuple[Tuple[str, str], ...] = (
    ("Processor Width", "8-wide fetch/issue/commit"),
    ("Issue Queue", "96"),
    ("ITLB", "128 entries, 4-way, 200 cycle miss"),
    ("Branch Predictor", "2K entries Gshare, 10-bit global history"),
    ("BTB", "2K entries, 4-way"),
    ("Return Address", "32 entries RAS"),
    ("L1 Instruction Cache", "32K, 2-way, 32 Byte/line, 2 ports, 1 cycle access"),
    ("ROB Size", "96 entries"),
    ("Load/Store", "48 entries"),
    ("Integer ALU", "8 I-ALU, 4 I-MUL/DIV, 4 Load/Store"),
    ("FP ALU", "8 FP-ALU, 4 FP-MUL/DIV/SQRT"),
    ("DTLB", "256 entries, 4-way, 200 cycle miss"),
    ("L1 Data Cache", "64KB, 4-way, 64 Byte/line, 2 ports, 1 cycle"),
    ("L2 Cache", "unified 2MB, 4-way, 128 Byte/line, 12 cycle access"),
    ("Memory Access", "64 bit wide, 200 cycles access latency"),
)
