"""Processor microarchitecture substrate.

The paper runs "a heavily modified and extended version of the
SimpleScalar tool set" modelling pipelined, multiple-issue, out-of-order
microprocessors with multi-level caches.  This package provides the
equivalent substrate:

``params``
    :class:`~repro.uarch.params.MachineConfig` — the Table 1 baseline
    machine plus the 9 varied parameters of Table 2.
``caches`` / ``branch`` / ``trace`` / ``pipeline`` / ``detailed``
    A detailed cycle-level out-of-order simulator executing synthetic
    statistical instruction traces.
``interval_model``
    A fast, vectorized first-order superscalar model used for the
    3,000-run design-space sweeps (calibrated against the detailed
    simulator; see DESIGN.md for the substitution rationale).
``simulator``
    A facade selecting either backend.
"""

from repro.uarch.params import MachineConfig, baseline_config
from repro.uarch.simulator import Simulator, SimulationResult

__all__ = [
    "MachineConfig",
    "baseline_config",
    "Simulator",
    "SimulationResult",
]
