"""numba-compiled twin of :func:`repro.uarch.pipeline_kernel.step_interval_batch`.

Importing this module requires numba: it compiles the scalar
:func:`~repro.uarch.pipeline_kernel.step_interval` into a module-level
dispatcher and then compiles a ``prange`` loop over the config axis
that calls it.  Both live at module scope on purpose — numba resolves
globals of the enclosing module at compile time, which is the one
reliable way to call one jitted function from another parallel one
(closures over dispatchers are not).

``step_batch`` is reached only through
:func:`repro.uarch.pipeline_kernel.compiled_batch_step`, which treats
any import failure here (numba absent, compilation error) as "no
compiled batch stepper" and falls back to the plain-``range``
interpreter twin.  The loop body below must stay line-for-line
equivalent to that fallback: same row slicing, same ``active`` test
(no ``continue`` — parfors dislike it), same argument order.  Rows are
fully independent (each iteration touches only row ``b`` plus the
shared read-only trace, and ``step_interval`` allocates its scratch
per call, i.e. thread-locally), so the prange schedule cannot affect
results: output is bit-identical to the serial loop at any thread
count.
"""

from __future__ import annotations

from numba import prange  # noqa: F401  (resolved inside the jitted loop)

from repro.uarch import pipeline_kernel as _pk
from repro.uarch.jit import compile_njit

#: Compiled scalar stepper, shared with the scalar kernel path (same
#: ``(fn, flags)`` memo key in :func:`compile_njit`, so no recompile).
_step = compile_njit(_pk.step_interval)
if not _step:
    raise ImportError("numba unavailable: no compiled batch stepper")

LEN_IL1 = _pk.LEN_IL1
LEN_DL1 = _pk.LEN_DL1
LEN_L2 = _pk.LEN_L2
LEN_BTB = _pk.LEN_BTB
LEN_ITLB = _pk.LEN_ITLB
LEN_DTLB = _pk.LEN_DTLB
LEN_GSHARE = _pk.LEN_GSHARE
LEN_ROB = _pk.LEN_ROB
LEN_IQ = _pk.LEN_IQ
LEN_MISS = _pk.LEN_MISS


def _batch_loop(t_op, t_src1, t_src2, t_addr, t_pc, t_taken, t_ace,
                active, lens, cfg_i, cfg_f,
                il1_tags, il1_stamps, dl1_tags, dl1_stamps,
                l2_tags, l2_stamps, btb_tags, btb_stamps,
                itlb_pages, itlb_stamps, dtlb_pages, dtlb_stamps,
                gshare_counters,
                rob_local, rob_op, rob_ace, rob_ismem, rob_issued,
                rob_ready, rob_misp, iq_slots, miss_until,
                sc, fc, out_counters, out_ace, out_ints):
    for b in prange(active.shape[0]):
        if active[b] == 1:
            _step(
                t_op, t_src1, t_src2, t_addr, t_pc, t_taken, t_ace,
                cfg_i[b], cfg_f[b],
                il1_tags[b, :lens[b, LEN_IL1]],
                il1_stamps[b, :lens[b, LEN_IL1]],
                dl1_tags[b, :lens[b, LEN_DL1]],
                dl1_stamps[b, :lens[b, LEN_DL1]],
                l2_tags[b, :lens[b, LEN_L2]],
                l2_stamps[b, :lens[b, LEN_L2]],
                btb_tags[b, :lens[b, LEN_BTB]],
                btb_stamps[b, :lens[b, LEN_BTB]],
                itlb_pages[b, :lens[b, LEN_ITLB]],
                itlb_stamps[b, :lens[b, LEN_ITLB]],
                dtlb_pages[b, :lens[b, LEN_DTLB]],
                dtlb_stamps[b, :lens[b, LEN_DTLB]],
                gshare_counters[b, :lens[b, LEN_GSHARE]],
                rob_local[b, :lens[b, LEN_ROB]],
                rob_op[b, :lens[b, LEN_ROB]],
                rob_ace[b, :lens[b, LEN_ROB]],
                rob_ismem[b, :lens[b, LEN_ROB]],
                rob_issued[b, :lens[b, LEN_ROB]],
                rob_ready[b, :lens[b, LEN_ROB]],
                rob_misp[b, :lens[b, LEN_ROB]],
                iq_slots[b, :lens[b, LEN_IQ]],
                miss_until[b, :lens[b, LEN_MISS]],
                sc[b], fc[b], out_counters[b], out_ace[b], out_ints[b])


step_batch = compile_njit(_batch_loop, parallel=True)
if not step_batch:
    raise ImportError("numba unavailable: batch loop did not compile")
