"""Struct-of-arrays kernel for the detailed out-of-order pipeline.

The array-backed twin of the interpreter in
:mod:`repro.uarch.pipeline`: all microarchitectural state lives in
preallocated numpy arrays —

* circular ROB (parallel ``rob_*`` arrays indexed by slot) and an
  order-preserving issue-queue slot list compacted in place;
* set-associative caches / BTB / TLBs as flat ``tags`` + ``stamps``
  arrays (monotonic LRU stamps: the min-stamp way is the LRU victim,
  exactly the OrderedDict ``popitem(last=False)`` choice);
* the gshare counter table as an int8 array;
* per-interval producer completion times in a local array (every
  instruction of an interval commits before the next interval starts,
  so cross-interval producers are complete by construction);
* outstanding L2 misses in a bounded array (an outstanding miss pins
  its load in the LSQ, so occupancy is bounded by ``lsq_size``);

— so :func:`step_interval` advances one whole interval in a single
call.  The function body is deliberately plain scalar code over these
arrays: it runs unmodified under CPython (the parity-test
configuration) and compiles with ``numba.njit`` via
:func:`repro.uarch.jit.compile_njit` (no ``fastmath``, strict IEEE
ordering), producing bit-identical cycle / counter / ACE / mispredict /
throttle streams in all three modes.  Golden digests are pinned in
``tests/test_detailed_kernel.py``.

:class:`KernelState` owns the persistent arrays and converts to/from
the canonical snapshot format of
:meth:`repro.uarch.pipeline.OutOfOrderCore.snapshot_state` (per-set way
tags in LRU order), which is also checkpoint format v2.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.errors import SimulationError
from repro.reliability.avf import STRUCTURE_BITS
from repro.uarch.jit import compile_njit
from repro.uarch.params import MachineConfig

# ----------------------------------------------------------------------
# Packed-argument layouts (module-level ints are compile-time constants
# for numba).
# ----------------------------------------------------------------------

# cfg_i: int64 configuration vector.
CFG_FETCH_WIDTH = 0
CFG_ROB_SIZE = 1
CFG_IQ_SIZE = 2
CFG_LSQ_SIZE = 3
CFG_INT_ALU = 4
CFG_FP_ALU = 5
CFG_MEM_PORTS = 6
CFG_IL1_LINE_BYTES = 7
CFG_DL1_LATENCY = 8
CFG_L2_LATENCY = 9
CFG_MEMORY_LATENCY = 10
CFG_TLB_MISS_LATENCY = 11
CFG_PIPELINE_DEPTH = 12
CFG_IL1_SET_MASK = 13
CFG_IL1_LINE_SHIFT = 14
CFG_IL1_ASSOC = 15
CFG_DL1_SET_MASK = 16
CFG_DL1_LINE_SHIFT = 17
CFG_DL1_ASSOC = 18
CFG_L2_SET_MASK = 19
CFG_L2_LINE_SHIFT = 20
CFG_L2_ASSOC = 21
CFG_BTB_N_SETS = 22
CFG_BTB_ASSOC = 23
CFG_GSHARE_MASK = 24
CFG_GSHARE_HISTORY_MASK = 25
CFG_DVM_ENABLED = 26
CFG_DVM_SAMPLE_PERIOD = 27
CFG_MAX_CPI = 28
N_CFG_I = 29

# cfg_f: float64 configuration vector.
CFGF_BITS_IQ = 0
CFGF_BITS_ROB = 1
CFGF_BITS_LSQ = 2
CFGF_BITS_REGFILE = 3
CFGF_DVM_THRESHOLD = 4
CFGF_WQ_INCREASE = 5
CFGF_WQ_DECREASE = 6
CFGF_WQ_MAX = 7
N_CFG_F = 8

# sc: int64 mutable scalar state (persistent between intervals).
SC_CYCLE = 0
SC_IL1_HITS = 1
SC_IL1_MISSES = 2
SC_DL1_HITS = 3
SC_DL1_MISSES = 4
SC_L2_HITS = 5
SC_L2_MISSES = 6
SC_ITLB_HITS = 7
SC_ITLB_MISSES = 8
SC_DTLB_HITS = 9
SC_DTLB_MISSES = 10
SC_BTB_HITS = 11
SC_BTB_MISSES = 12
SC_GSHARE_HISTORY = 13
SC_GSHARE_LOOKUPS = 14
SC_GSHARE_MISPREDICTS = 15
SC_IL1_STAMP = 16
SC_DL1_STAMP = 17
SC_L2_STAMP = 18
SC_BTB_STAMP = 19
SC_ITLB_STAMP = 20
SC_DTLB_STAMP = 21
SC_DVM_WINDOW_CYCLES = 22
SC_LAST_WAITING = 23
SC_LAST_READY = 24
SC_DVM_TRIGGERS = 25
SC_DVM_SAMPLES = 26
N_SC = 27

# fc: float64 mutable scalar state.
FC_DVM_WINDOW_ACE = 0
FC_WQ_RATIO = 1
N_FC = 2

# out_ints layout.
OI_MISPREDICTS = 0
OI_THROTTLED = 1
OI_STATUS = 2          # 0 = ok, 1 = deadlock (> MAX_CPI cycles)
N_OI = 3

# out_counters layout — must match pipeline.COUNTER_KEYS order.
CTR_FETCH_IL1 = 0
CTR_RENAME = 1
CTR_ISSUE_QUEUE = 2
CTR_ROB = 3
CTR_REGFILE = 4
CTR_ALU_INT = 5
CTR_ALU_FP = 6
CTR_LSQ = 7
CTR_DL1 = 8
CTR_L2 = 9
CTR_INSTRUCTIONS = 10
N_CTR = 11

# out_ace layout: iq, rob, lsq, regfile.
ACE_IQ = 0
ACE_ROB = 1
ACE_LSQ = 2
ACE_REGFILE = 3
N_ACE = 4

#: TLB page shift (4 KB pages, matching :class:`repro.uarch.caches.TLB`).
_PAGE_SHIFT = 12


def step_interval(t_op, t_src1, t_src2, t_addr, t_pc, t_taken, t_ace,
                  cfg_i, cfg_f,
                  il1_tags, il1_stamps, dl1_tags, dl1_stamps,
                  l2_tags, l2_stamps, btb_tags, btb_stamps,
                  itlb_pages, itlb_stamps, dtlb_pages, dtlb_stamps,
                  gshare_counters,
                  rob_local, rob_op, rob_ace, rob_ismem, rob_issued,
                  rob_ready, rob_misp, iq_slots, miss_until,
                  sc, fc, out_counters, out_ace, out_ints):
    """Advance one interval over the array state; the njit-able body.

    Mirrors ``OutOfOrderCore._run_interval_python`` statement for
    statement (same per-cycle phase order, same arithmetic expression
    order), so the emitted statistic streams are bit-identical.  The
    five inlined tags/stamps blocks implement true-LRU set lookup:
    min-stamp eviction picks the same victim an oldest-first
    OrderedDict pop does, and sets never develop holes (a miss fills
    either the first empty way or the evicted way).
    """
    n = t_op.shape[0]

    fetch_width = cfg_i[CFG_FETCH_WIDTH]
    rob_size = cfg_i[CFG_ROB_SIZE]
    iq_size = cfg_i[CFG_IQ_SIZE]
    lsq_size = cfg_i[CFG_LSQ_SIZE]
    n_int_alu = cfg_i[CFG_INT_ALU]
    n_fp_alu = cfg_i[CFG_FP_ALU]
    n_mem_ports = cfg_i[CFG_MEM_PORTS]
    il1_line_bytes = cfg_i[CFG_IL1_LINE_BYTES]
    dl1_latency = cfg_i[CFG_DL1_LATENCY]
    l2_latency = cfg_i[CFG_L2_LATENCY]
    memory_latency = cfg_i[CFG_MEMORY_LATENCY]
    tlb_miss_latency = cfg_i[CFG_TLB_MISS_LATENCY]
    depth = cfg_i[CFG_PIPELINE_DEPTH]
    il1_set_mask = cfg_i[CFG_IL1_SET_MASK]
    il1_shift = cfg_i[CFG_IL1_LINE_SHIFT]
    il1_assoc = cfg_i[CFG_IL1_ASSOC]
    dl1_set_mask = cfg_i[CFG_DL1_SET_MASK]
    dl1_shift = cfg_i[CFG_DL1_LINE_SHIFT]
    dl1_assoc = cfg_i[CFG_DL1_ASSOC]
    l2_set_mask = cfg_i[CFG_L2_SET_MASK]
    l2_shift = cfg_i[CFG_L2_LINE_SHIFT]
    l2_assoc = cfg_i[CFG_L2_ASSOC]
    btb_n_sets = cfg_i[CFG_BTB_N_SETS]
    btb_assoc = cfg_i[CFG_BTB_ASSOC]
    gshare_mask = cfg_i[CFG_GSHARE_MASK]
    history_mask = cfg_i[CFG_GSHARE_HISTORY_MASK]
    dvm_enabled = cfg_i[CFG_DVM_ENABLED]
    dvm_sample_period = cfg_i[CFG_DVM_SAMPLE_PERIOD]
    max_cpi = cfg_i[CFG_MAX_CPI]

    bits_iq = cfg_f[CFGF_BITS_IQ]
    bits_rob = cfg_f[CFGF_BITS_ROB]
    bits_lsq = cfg_f[CFGF_BITS_LSQ]
    bits_regfile = cfg_f[CFGF_BITS_REGFILE]
    dvm_threshold = cfg_f[CFGF_DVM_THRESHOLD]
    wq_increase = cfg_f[CFGF_WQ_INCREASE]
    wq_decrease = cfg_f[CFGF_WQ_DECREASE]
    wq_max = cfg_f[CFGF_WQ_MAX]

    il1_stamp = sc[SC_IL1_STAMP]
    dl1_stamp = sc[SC_DL1_STAMP]
    l2_stamp = sc[SC_L2_STAMP]
    btb_stamp = sc[SC_BTB_STAMP]
    itlb_stamp = sc[SC_ITLB_STAMP]
    dtlb_stamp = sc[SC_DTLB_STAMP]
    itlb_entries = itlb_pages.shape[0]
    dtlb_entries = dtlb_pages.shape[0]
    history = sc[SC_GSHARE_HISTORY]

    c_fetch_il1 = 0.0
    c_rename = 0.0
    c_issue_queue = 0.0
    c_rob = 0.0
    c_regfile = 0.0
    c_alu_int = 0.0
    c_alu_fp = 0.0
    c_lsq = 0.0
    c_dl1 = 0.0
    c_l2 = 0.0
    c_instructions = 0.0
    a_iq = 0.0
    a_rob = 0.0
    a_lsq = 0.0
    a_regfile = 0.0

    # Per-interval producer completion times (local trace indices).
    comp_cycle = np.zeros(n, np.int64)
    comp_issued = np.zeros(n, np.uint8)
    fu_free = np.zeros(5, np.int64)

    rob_head = 0
    rob_count = 0
    iq_n = 0
    miss_count = 0
    lsq_count = 0
    iq_ace = 0
    rob_ace_total = 0
    lsq_ace = 0
    fetch_ptr = 0
    dispatch_ptr = 0
    fetch_stall_until = 0
    last_fetch_line = -1
    start_cycle = sc[SC_CYCLE]
    cycle = start_cycle
    committed = 0
    mispredicts = 0
    throttled_cycles = 0
    waiting = sc[SC_LAST_WAITING]
    ready_count = sc[SC_LAST_READY]
    dvm_window_ace = fc[FC_DVM_WINDOW_ACE]
    dvm_window_cycles = sc[SC_DVM_WINDOW_CYCLES]
    wq_ratio = fc[FC_WQ_RATIO]
    dvm_triggers = sc[SC_DVM_TRIGGERS]
    dvm_samples = sc[SC_DVM_SAMPLES]
    limit = n * max_cpi
    if limit < 10000:
        limit = 10000
    max_cycles = start_cycle + limit

    while committed < n:
        cycle += 1
        if cycle > max_cycles:
            out_ints[OI_STATUS] = 1
            return

        # ---------------- commit -------------------------------------
        commits = 0
        while rob_count > 0 and commits < fetch_width:
            slot = rob_head
            if rob_issued[slot] == 0 or rob_ready[slot] > cycle:
                break
            rob_head += 1
            if rob_head == rob_size:
                rob_head = 0
            rob_count -= 1
            ace = int(rob_ace[slot])
            rob_ace_total -= ace
            if rob_ismem[slot] == 1:
                lsq_count -= 1
                lsq_ace -= ace
            if rob_misp[slot] == 1:
                mispredicts += 1
            commits += 1
            committed += 1
            c_rob += 1.0
            c_instructions += 1.0

        # ---------------- issue --------------------------------------
        keep = 0
        for j in range(miss_count):
            if miss_until[j] > cycle:
                miss_until[keep] = miss_until[j]
                keep += 1
        miss_count = keep
        # Independent per-class FU budgets indexed by op value
        # (INT_ALU, FP_ALU, LOAD, STORE, BRANCH).
        fu_free[0] = n_int_alu
        fu_free[1] = n_fp_alu
        fu_free[2] = n_mem_ports
        fu_free[3] = n_mem_ports
        fu_free[4] = n_int_alu
        issued = 0
        ready_count = 0
        write = 0
        for j in range(iq_n):
            slot = iq_slots[j]
            if issued >= fetch_width:
                iq_slots[write] = slot
                write += 1
                continue
            li = rob_local[slot]
            src_ready = True
            dist = t_src1[li]
            if dist > 0:
                producer = li - dist
                if producer >= 0 and comp_issued[producer] == 1 \
                        and comp_cycle[producer] > cycle:
                    src_ready = False
            if src_ready:
                dist = t_src2[li]
                if dist > 0:
                    producer = li - dist
                    if producer >= 0 and comp_issued[producer] == 1 \
                            and comp_cycle[producer] > cycle:
                        src_ready = False
            if not src_ready:
                iq_slots[write] = slot
                write += 1
                continue
            ready_count += 1
            op = rob_op[slot]
            if fu_free[op] <= 0:
                iq_slots[write] = slot
                write += 1
                continue
            fu_free[op] -= 1
            if op == 0 or op == 3 or op == 4:
                latency = 1      # INT_ALU / STORE / BRANCH
            elif op == 1:
                latency = 4      # FP_ALU
            else:
                latency = 0      # LOAD: pure cache latency
            if op == 2:          # LOAD
                addr = t_addr[li]
                # dtlb ------------------------------------------------
                page = addr >> _PAGE_SHIFT
                tlb_hit = False
                empty = -1
                for w in range(dtlb_entries):
                    tag = dtlb_pages[w]
                    if tag == page:
                        dtlb_stamps[w] = dtlb_stamp
                        dtlb_stamp += 1
                        tlb_hit = True
                        break
                    if tag == -1 and empty < 0:
                        empty = w
                if tlb_hit:
                    sc[SC_DTLB_HITS] += 1
                else:
                    if empty < 0:
                        victim = 0
                        best = dtlb_stamps[0]
                        for w in range(1, dtlb_entries):
                            if dtlb_stamps[w] < best:
                                best = dtlb_stamps[w]
                                victim = w
                        empty = victim
                    dtlb_pages[empty] = page
                    dtlb_stamps[empty] = dtlb_stamp
                    dtlb_stamp += 1
                    sc[SC_DTLB_MISSES] += 1
                # dl1 -------------------------------------------------
                line = addr >> dl1_shift
                base = (line & dl1_set_mask) * dl1_assoc
                dl1_hit = False
                empty = -1
                for w in range(dl1_assoc):
                    tag = dl1_tags[base + w]
                    if tag == line:
                        dl1_stamps[base + w] = dl1_stamp
                        dl1_stamp += 1
                        dl1_hit = True
                        break
                    if tag == -1 and empty < 0:
                        empty = w
                if dl1_hit:
                    sc[SC_DL1_HITS] += 1
                    latency += dl1_latency
                    goes_to_memory = False
                else:
                    if empty < 0:
                        victim = 0
                        best = dl1_stamps[base]
                        for w in range(1, dl1_assoc):
                            if dl1_stamps[base + w] < best:
                                best = dl1_stamps[base + w]
                                victim = w
                        empty = victim
                    dl1_tags[base + empty] = line
                    dl1_stamps[base + empty] = dl1_stamp
                    dl1_stamp += 1
                    sc[SC_DL1_MISSES] += 1
                    # l2 ----------------------------------------------
                    l2_line = addr >> l2_shift
                    l2_base = (l2_line & l2_set_mask) * l2_assoc
                    l2_hit = False
                    empty = -1
                    for w in range(l2_assoc):
                        tag = l2_tags[l2_base + w]
                        if tag == l2_line:
                            l2_stamps[l2_base + w] = l2_stamp
                            l2_stamp += 1
                            l2_hit = True
                            break
                        if tag == -1 and empty < 0:
                            empty = w
                    if l2_hit:
                        sc[SC_L2_HITS] += 1
                        latency += dl1_latency + l2_latency
                    else:
                        if empty < 0:
                            victim = 0
                            best = l2_stamps[l2_base]
                            for w in range(1, l2_assoc):
                                if l2_stamps[l2_base + w] < best:
                                    best = l2_stamps[l2_base + w]
                                    victim = w
                            empty = victim
                        l2_tags[l2_base + empty] = l2_line
                        l2_stamps[l2_base + empty] = l2_stamp
                        l2_stamp += 1
                        sc[SC_L2_MISSES] += 1
                        latency += dl1_latency + l2_latency + memory_latency
                    goes_to_memory = not l2_hit
                if not tlb_hit:
                    latency += tlb_miss_latency
                c_dl1 += 1.0
                if not dl1_hit:
                    c_l2 += 1.0
                if goes_to_memory:
                    miss_until[miss_count] = cycle + latency
                    miss_count += 1
            elif op == 3:        # STORE: access side effects, fixed latency
                addr = t_addr[li]
                # dtlb ------------------------------------------------
                page = addr >> _PAGE_SHIFT
                tlb_hit = False
                empty = -1
                for w in range(dtlb_entries):
                    tag = dtlb_pages[w]
                    if tag == page:
                        dtlb_stamps[w] = dtlb_stamp
                        dtlb_stamp += 1
                        tlb_hit = True
                        break
                    if tag == -1 and empty < 0:
                        empty = w
                if tlb_hit:
                    sc[SC_DTLB_HITS] += 1
                else:
                    if empty < 0:
                        victim = 0
                        best = dtlb_stamps[0]
                        for w in range(1, dtlb_entries):
                            if dtlb_stamps[w] < best:
                                best = dtlb_stamps[w]
                                victim = w
                        empty = victim
                    dtlb_pages[empty] = page
                    dtlb_stamps[empty] = dtlb_stamp
                    dtlb_stamp += 1
                    sc[SC_DTLB_MISSES] += 1
                # dl1 -------------------------------------------------
                line = addr >> dl1_shift
                base = (line & dl1_set_mask) * dl1_assoc
                dl1_hit = False
                empty = -1
                for w in range(dl1_assoc):
                    tag = dl1_tags[base + w]
                    if tag == line:
                        dl1_stamps[base + w] = dl1_stamp
                        dl1_stamp += 1
                        dl1_hit = True
                        break
                    if tag == -1 and empty < 0:
                        empty = w
                if dl1_hit:
                    sc[SC_DL1_HITS] += 1
                else:
                    if empty < 0:
                        victim = 0
                        best = dl1_stamps[base]
                        for w in range(1, dl1_assoc):
                            if dl1_stamps[base + w] < best:
                                best = dl1_stamps[base + w]
                                victim = w
                        empty = victim
                    dl1_tags[base + empty] = line
                    dl1_stamps[base + empty] = dl1_stamp
                    dl1_stamp += 1
                    sc[SC_DL1_MISSES] += 1
                    # l2 ----------------------------------------------
                    l2_line = addr >> l2_shift
                    l2_base = (l2_line & l2_set_mask) * l2_assoc
                    l2_hit = False
                    empty = -1
                    for w in range(l2_assoc):
                        tag = l2_tags[l2_base + w]
                        if tag == l2_line:
                            l2_stamps[l2_base + w] = l2_stamp
                            l2_stamp += 1
                            l2_hit = True
                            break
                        if tag == -1 and empty < 0:
                            empty = w
                    if not l2_hit:
                        if empty < 0:
                            victim = 0
                            best = l2_stamps[l2_base]
                            for w in range(1, l2_assoc):
                                if l2_stamps[l2_base + w] < best:
                                    best = l2_stamps[l2_base + w]
                                    victim = w
                            empty = victim
                        l2_tags[l2_base + empty] = l2_line
                        l2_stamps[l2_base + empty] = l2_stamp
                        l2_stamp += 1
                        sc[SC_L2_MISSES] += 1
                    else:
                        sc[SC_L2_HITS] += 1
                c_dl1 += 1.0
                if not dl1_hit:
                    c_l2 += 1.0
                latency += 1     # stores retire from the LSQ post-commit
            elif op == 4:        # BRANCH
                pc = t_pc[li]
                taken = int(t_taken[li])
                idx = ((pc >> 2) ^ history) & gshare_mask
                counter = int(gshare_counters[idx])
                prediction = counter >= 2
                if taken == 1 and counter < 3:
                    gshare_counters[idx] = counter + 1
                elif taken == 0 and counter > 0:
                    gshare_counters[idx] = counter - 1
                history = ((history << 1) | taken) & history_mask
                sc[SC_GSHARE_LOOKUPS] += 1
                mispredicted = prediction != (taken == 1)
                if mispredicted:
                    sc[SC_GSHARE_MISPREDICTS] += 1
                if taken == 1:
                    btag = pc >> 2
                    bbase = (btag % btb_n_sets) * btb_assoc
                    btb_hit = False
                    empty = -1
                    for w in range(btb_assoc):
                        tag = btb_tags[bbase + w]
                        if tag == btag:
                            btb_stamps[bbase + w] = btb_stamp
                            btb_stamp += 1
                            btb_hit = True
                            break
                        if tag == -1 and empty < 0:
                            empty = w
                    if btb_hit:
                        sc[SC_BTB_HITS] += 1
                    else:
                        if empty < 0:
                            victim = 0
                            best = btb_stamps[bbase]
                            for w in range(1, btb_assoc):
                                if btb_stamps[bbase + w] < best:
                                    best = btb_stamps[bbase + w]
                                    victim = w
                            empty = victim
                        btb_tags[bbase + empty] = btag
                        btb_stamps[bbase + empty] = btb_stamp
                        btb_stamp += 1
                        sc[SC_BTB_MISSES] += 1
                if mispredicted:
                    rob_misp[slot] = 1
                    stall = cycle + latency + depth
                    if stall > fetch_stall_until:
                        fetch_stall_until = stall
            rob_issued[slot] = 1
            rob_ready[slot] = cycle + latency
            comp_issued[li] = 1
            comp_cycle[li] = cycle + latency
            issued += 1
            iq_ace -= int(rob_ace[slot])
            c_issue_queue += 1.0
            c_regfile += 2.0
            if op == 0 or op == 4:
                c_alu_int += 1.0
            elif op == 1:
                c_alu_fp += 1.0
            if rob_ismem[slot] == 1:
                c_lsq += 1.0
        iq_n = write
        if iq_n > ready_count:
            waiting = iq_n - ready_count
        else:
            waiting = 0

        # ---------------- dispatch -----------------------------------
        throttled = False
        if dvm_enabled == 1:
            if miss_count > 0:
                throttled = True
            elif ready_count <= 0:
                throttled = waiting > wq_ratio
            else:
                throttled = (waiting / ready_count) > wq_ratio
            if throttled:
                throttled_cycles += 1
        if not throttled:
            dispatched = 0
            while (dispatched < fetch_width and dispatch_ptr < fetch_ptr
                   and rob_count < rob_size and iq_n < iq_size):
                local = dispatch_ptr
                op = t_op[local]
                is_mem = op == 2 or op == 3
                if is_mem and lsq_count >= lsq_size:
                    break
                slot = rob_head + rob_count
                if slot >= rob_size:
                    slot -= rob_size
                ace = int(t_ace[local])
                rob_local[slot] = local
                rob_op[slot] = op
                rob_ace[slot] = ace
                rob_ismem[slot] = 1 if is_mem else 0
                rob_issued[slot] = 0
                rob_ready[slot] = 0
                rob_misp[slot] = 0
                iq_slots[iq_n] = slot
                iq_n += 1
                rob_count += 1
                rob_ace_total += ace
                iq_ace += ace
                if is_mem:
                    lsq_count += 1
                    lsq_ace += ace
                dispatch_ptr += 1
                dispatched += 1
                c_rename += 1.0
                c_rob += 1.0

        # ---------------- fetch --------------------------------------
        if cycle >= fetch_stall_until:
            fetched = 0
            while (fetched < fetch_width and fetch_ptr < n
                   and fetch_ptr - dispatch_ptr < 2 * fetch_width):
                line = t_pc[fetch_ptr] // il1_line_bytes
                if line != last_fetch_line:
                    addr = t_pc[fetch_ptr]
                    # itlb --------------------------------------------
                    page = addr >> _PAGE_SHIFT
                    tlb_hit = False
                    empty = -1
                    for w in range(itlb_entries):
                        tag = itlb_pages[w]
                        if tag == page:
                            itlb_stamps[w] = itlb_stamp
                            itlb_stamp += 1
                            tlb_hit = True
                            break
                        if tag == -1 and empty < 0:
                            empty = w
                    if tlb_hit:
                        sc[SC_ITLB_HITS] += 1
                    else:
                        if empty < 0:
                            victim = 0
                            best = itlb_stamps[0]
                            for w in range(1, itlb_entries):
                                if itlb_stamps[w] < best:
                                    best = itlb_stamps[w]
                                    victim = w
                            empty = victim
                        itlb_pages[empty] = page
                        itlb_stamps[empty] = itlb_stamp
                        itlb_stamp += 1
                        sc[SC_ITLB_MISSES] += 1
                    # il1 ---------------------------------------------
                    il1_line = addr >> il1_shift
                    base = (il1_line & il1_set_mask) * il1_assoc
                    il1_hit = False
                    empty = -1
                    for w in range(il1_assoc):
                        tag = il1_tags[base + w]
                        if tag == il1_line:
                            il1_stamps[base + w] = il1_stamp
                            il1_stamp += 1
                            il1_hit = True
                            break
                        if tag == -1 and empty < 0:
                            empty = w
                    bubble = 0
                    if il1_hit:
                        sc[SC_IL1_HITS] += 1
                    else:
                        if empty < 0:
                            victim = 0
                            best = il1_stamps[base]
                            for w in range(1, il1_assoc):
                                if il1_stamps[base + w] < best:
                                    best = il1_stamps[base + w]
                                    victim = w
                            empty = victim
                        il1_tags[base + empty] = il1_line
                        il1_stamps[base + empty] = il1_stamp
                        il1_stamp += 1
                        sc[SC_IL1_MISSES] += 1
                        # l2 ------------------------------------------
                        l2_line = addr >> l2_shift
                        l2_base = (l2_line & l2_set_mask) * l2_assoc
                        l2_hit = False
                        empty = -1
                        for w in range(l2_assoc):
                            tag = l2_tags[l2_base + w]
                            if tag == l2_line:
                                l2_stamps[l2_base + w] = l2_stamp
                                l2_stamp += 1
                                l2_hit = True
                                break
                            if tag == -1 and empty < 0:
                                empty = w
                        if l2_hit:
                            sc[SC_L2_HITS] += 1
                            bubble = l2_latency
                        else:
                            if empty < 0:
                                victim = 0
                                best = l2_stamps[l2_base]
                                for w in range(1, l2_assoc):
                                    if l2_stamps[l2_base + w] < best:
                                        best = l2_stamps[l2_base + w]
                                        victim = w
                                empty = victim
                            l2_tags[l2_base + empty] = l2_line
                            l2_stamps[l2_base + empty] = l2_stamp
                            l2_stamp += 1
                            sc[SC_L2_MISSES] += 1
                            bubble = l2_latency + memory_latency
                    if not tlb_hit:
                        bubble += tlb_miss_latency
                    c_fetch_il1 += 1.0
                    last_fetch_line = line
                    if bubble > 0:
                        fetch_stall_until = cycle + bubble
                        break
                is_taken_branch = (t_op[fetch_ptr] == 4
                                   and t_taken[fetch_ptr] == 1)
                fetch_ptr += 1
                fetched += 1
                if is_taken_branch:
                    break  # taken branch ends the fetch block

        # ---------------- AVF residency ------------------------------
        a_iq += iq_ace * bits_iq
        a_rob += rob_ace_total * bits_rob
        a_lsq += lsq_ace * bits_lsq
        # Live architectural registers scale with in-flight window.
        a_regfile += (32 + 0.5 * rob_count) * bits_regfile * 0.45

        # ---------------- DVM sampling -------------------------------
        if dvm_enabled == 1:
            dvm_window_ace += iq_ace
            dvm_window_cycles += 1
            if dvm_window_cycles >= dvm_sample_period:
                online_avf = dvm_window_ace / (dvm_window_cycles * iq_size)
                dvm_samples += 1
                if online_avf > dvm_threshold:
                    wq_ratio = wq_ratio * wq_decrease
                    if wq_ratio < 0.25:
                        wq_ratio = 0.25
                    dvm_triggers += 1
                else:
                    wq_ratio = wq_ratio + wq_increase
                    if wq_ratio > wq_max:
                        wq_ratio = wq_max
                dvm_window_ace = 0.0
                dvm_window_cycles = 0

    sc[SC_CYCLE] = cycle
    sc[SC_GSHARE_HISTORY] = history
    sc[SC_IL1_STAMP] = il1_stamp
    sc[SC_DL1_STAMP] = dl1_stamp
    sc[SC_L2_STAMP] = l2_stamp
    sc[SC_BTB_STAMP] = btb_stamp
    sc[SC_ITLB_STAMP] = itlb_stamp
    sc[SC_DTLB_STAMP] = dtlb_stamp
    sc[SC_DVM_WINDOW_CYCLES] = dvm_window_cycles
    sc[SC_LAST_WAITING] = waiting
    sc[SC_LAST_READY] = ready_count
    sc[SC_DVM_TRIGGERS] = dvm_triggers
    sc[SC_DVM_SAMPLES] = dvm_samples
    fc[FC_DVM_WINDOW_ACE] = dvm_window_ace
    fc[FC_WQ_RATIO] = wq_ratio
    out_counters[CTR_FETCH_IL1] = c_fetch_il1
    out_counters[CTR_RENAME] = c_rename
    out_counters[CTR_ISSUE_QUEUE] = c_issue_queue
    out_counters[CTR_ROB] = c_rob
    out_counters[CTR_REGFILE] = c_regfile
    out_counters[CTR_ALU_INT] = c_alu_int
    out_counters[CTR_ALU_FP] = c_alu_fp
    out_counters[CTR_LSQ] = c_lsq
    out_counters[CTR_DL1] = c_dl1
    out_counters[CTR_L2] = c_l2
    out_counters[CTR_INSTRUCTIONS] = c_instructions
    out_ace[ACE_IQ] = a_iq
    out_ace[ACE_ROB] = a_rob
    out_ace[ACE_LSQ] = a_lsq
    out_ace[ACE_REGFILE] = a_regfile
    out_ints[OI_MISPREDICTS] = mispredicts
    out_ints[OI_THROTTLED] = throttled_cycles
    out_ints[OI_STATUS] = 0
    return


def compiled_step():
    """The njit-compiled :func:`step_interval` (``False`` if no numba)."""
    return compile_njit(step_interval)


def _cache_geometry(size_kb: int, assoc: int, line_bytes: int):
    """``(n_sets, set_mask, line_shift)`` — must mirror
    :class:`repro.uarch.caches.SetAssociativeCache` exactly."""
    n_sets = size_kb * 1024 // line_bytes // assoc
    return n_sets, n_sets - 1, line_bytes.bit_length() - 1


def _fill_from_lru(table: np.ndarray, tags: np.ndarray,
                   stamps: np.ndarray, assoc: int, next_stamp: int) -> int:
    """Load canonical LRU rows into tag/stamp arrays; returns the next
    free stamp.  Oldest entries get the smallest stamps, preserving the
    per-set recency order; all future stamps sort after all loaded
    ones."""
    n_sets = table.shape[0]
    for index in range(n_sets):
        base = index * assoc
        for way in range(assoc):
            tag = int(table[index, way])
            if tag == -1:
                continue
            tags[base + way] = tag
            stamps[base + way] = next_stamp
            next_stamp += 1
    return next_stamp


def _lru_rows(tags: np.ndarray, stamps: np.ndarray, n_sets: int,
              assoc: int) -> np.ndarray:
    """Canonical LRU table (oldest-first rows) from tag/stamp arrays."""
    table = np.full((n_sets, assoc), -1, dtype=np.int64)
    for index in range(n_sets):
        base = index * assoc
        pairs = sorted(
            (int(stamps[base + way]), int(tags[base + way]))
            for way in range(assoc) if tags[base + way] != -1
        )
        for slot, (_, tag) in enumerate(pairs):
            table[index, slot] = tag
    return table


class KernelState:
    """Persistent array state for one :class:`OutOfOrderCore`.

    Built from (and exportable back to) the canonical snapshot format —
    see :meth:`repro.uarch.pipeline.OutOfOrderCore.snapshot_state`.
    Cache-structure contents, hit/miss totals and the gshare scalars
    live *here* while the core is in kernel mode; DVM / cycle /
    interval scalars are copied in and out around every interval by
    :func:`run_interval_on_state` so the core object stays their
    authority.
    """

    def __init__(self, config: MachineConfig, snapshot: Dict[str, np.ndarray]):
        self.config = config
        il1_sets, il1_mask, il1_shift = _cache_geometry(
            config.il1_size_kb, config.il1_assoc, config.il1_line_bytes)
        dl1_sets, dl1_mask, dl1_shift = _cache_geometry(
            config.dl1_size_kb, config.dl1_assoc, config.dl1_line_bytes)
        l2_sets, l2_mask, l2_shift = _cache_geometry(
            config.l2_size_kb, config.l2_assoc, config.l2_line_bytes)
        btb_sets = config.btb_entries // config.btb_assoc
        self._geometry = {
            "il1": (il1_sets, config.il1_assoc),
            "dl1": (dl1_sets, config.dl1_assoc),
            "l2": (l2_sets, config.l2_assoc),
            "btb": (btb_sets, config.btb_assoc),
        }

        def _structure(rows_key, n_sets, assoc):
            tags = np.full(n_sets * assoc, -1, dtype=np.int64)
            stamps = np.zeros(n_sets * assoc, dtype=np.int64)
            next_stamp = _fill_from_lru(
                np.asarray(snapshot[rows_key]), tags, stamps, assoc, 0)
            return tags, stamps, next_stamp

        self.il1_tags, self.il1_stamps, il1_stamp = _structure(
            "il1_lru", il1_sets, config.il1_assoc)
        self.dl1_tags, self.dl1_stamps, dl1_stamp = _structure(
            "dl1_lru", dl1_sets, config.dl1_assoc)
        self.l2_tags, self.l2_stamps, l2_stamp = _structure(
            "l2_lru", l2_sets, config.l2_assoc)
        self.btb_tags, self.btb_stamps, btb_stamp = _structure(
            "btb_lru", btb_sets, config.btb_assoc)

        def _tlb(rows_key, entries):
            pages = np.full(entries, -1, dtype=np.int64)
            stamps = np.zeros(entries, dtype=np.int64)
            next_stamp = 0
            for page in np.asarray(snapshot[rows_key]):
                page = int(page)
                if page == -1:
                    continue
                pages[next_stamp] = page
                stamps[next_stamp] = next_stamp
                next_stamp += 1
            return pages, stamps, next_stamp

        # TLB residents land in slots 0..k-1; slot order is stamp order.
        self.itlb_pages, self.itlb_stamps, itlb_stamp = _tlb(
            "itlb_lru", config.itlb_entries)
        self.dtlb_pages, self.dtlb_stamps, dtlb_stamp = _tlb(
            "dtlb_lru", config.dtlb_entries)

        self.gshare_counters = np.array(snapshot["gshare_counters"],
                                        dtype=np.int8)

        ints = np.asarray(snapshot["ints"], dtype=np.int64)
        from repro.uarch.pipeline import SNAPSHOT_INT_FIELDS

        fields = dict(zip(SNAPSHOT_INT_FIELDS, (int(v) for v in ints)))
        self.sc = np.zeros(N_SC, dtype=np.int64)
        self.sc[SC_IL1_HITS] = fields["il1_hits"]
        self.sc[SC_IL1_MISSES] = fields["il1_misses"]
        self.sc[SC_DL1_HITS] = fields["dl1_hits"]
        self.sc[SC_DL1_MISSES] = fields["dl1_misses"]
        self.sc[SC_L2_HITS] = fields["l2_hits"]
        self.sc[SC_L2_MISSES] = fields["l2_misses"]
        self.sc[SC_ITLB_HITS] = fields["itlb_hits"]
        self.sc[SC_ITLB_MISSES] = fields["itlb_misses"]
        self.sc[SC_DTLB_HITS] = fields["dtlb_hits"]
        self.sc[SC_DTLB_MISSES] = fields["dtlb_misses"]
        self.sc[SC_BTB_HITS] = fields["btb_hits"]
        self.sc[SC_BTB_MISSES] = fields["btb_misses"]
        self.sc[SC_GSHARE_HISTORY] = fields["gshare_history"]
        self.sc[SC_GSHARE_LOOKUPS] = fields["gshare_lookups"]
        self.sc[SC_GSHARE_MISPREDICTS] = fields["gshare_mispredicts"]
        self.sc[SC_IL1_STAMP] = il1_stamp
        self.sc[SC_DL1_STAMP] = dl1_stamp
        self.sc[SC_L2_STAMP] = l2_stamp
        self.sc[SC_BTB_STAMP] = btb_stamp
        self.sc[SC_ITLB_STAMP] = itlb_stamp
        self.sc[SC_DTLB_STAMP] = dtlb_stamp
        self.fc = np.zeros(N_FC, dtype=np.float64)

        self.cfg_i = np.zeros(N_CFG_I, dtype=np.int64)
        self.cfg_f = np.zeros(N_CFG_F, dtype=np.float64)
        ci = self.cfg_i
        ci[CFG_FETCH_WIDTH] = config.fetch_width
        ci[CFG_ROB_SIZE] = config.rob_size
        ci[CFG_IQ_SIZE] = config.iq_size
        ci[CFG_LSQ_SIZE] = config.lsq_size
        ci[CFG_INT_ALU] = config.int_alu
        ci[CFG_FP_ALU] = config.fp_alu
        ci[CFG_MEM_PORTS] = config.mem_ports
        ci[CFG_IL1_LINE_BYTES] = config.il1_line_bytes
        ci[CFG_DL1_LATENCY] = config.dl1_latency
        ci[CFG_L2_LATENCY] = config.l2_latency
        ci[CFG_MEMORY_LATENCY] = config.memory_latency
        ci[CFG_TLB_MISS_LATENCY] = config.tlb_miss_latency
        ci[CFG_PIPELINE_DEPTH] = config.pipeline_depth
        ci[CFG_IL1_SET_MASK] = il1_mask
        ci[CFG_IL1_LINE_SHIFT] = il1_shift
        ci[CFG_IL1_ASSOC] = config.il1_assoc
        ci[CFG_DL1_SET_MASK] = dl1_mask
        ci[CFG_DL1_LINE_SHIFT] = dl1_shift
        ci[CFG_DL1_ASSOC] = config.dl1_assoc
        ci[CFG_L2_SET_MASK] = l2_mask
        ci[CFG_L2_LINE_SHIFT] = l2_shift
        ci[CFG_L2_ASSOC] = config.l2_assoc
        ci[CFG_BTB_N_SETS] = btb_sets
        ci[CFG_BTB_ASSOC] = config.btb_assoc
        ci[CFG_GSHARE_MASK] = config.branch_predictor_entries - 1
        ci[CFG_GSHARE_HISTORY_MASK] = (1 << config.branch_history_bits) - 1
        cf = self.cfg_f
        cf[CFGF_BITS_IQ] = STRUCTURE_BITS["iq"]
        cf[CFGF_BITS_ROB] = STRUCTURE_BITS["rob"]
        cf[CFGF_BITS_LSQ] = STRUCTURE_BITS["lsq"]
        cf[CFGF_BITS_REGFILE] = STRUCTURE_BITS["regfile"]

        # Scratch (empty at every interval boundary: the interval loop
        # runs until everything commits).
        rob_size = config.rob_size
        self.rob_local = np.zeros(rob_size, dtype=np.int64)
        self.rob_op = np.zeros(rob_size, dtype=np.int64)
        self.rob_ace = np.zeros(rob_size, dtype=np.uint8)
        self.rob_ismem = np.zeros(rob_size, dtype=np.uint8)
        self.rob_issued = np.zeros(rob_size, dtype=np.uint8)
        self.rob_ready = np.zeros(rob_size, dtype=np.int64)
        self.rob_misp = np.zeros(rob_size, dtype=np.uint8)
        self.iq_slots = np.zeros(config.iq_size, dtype=np.int64)
        # An outstanding miss pins its load in the LSQ until the miss
        # completes, so lsq_size entries always suffice.
        self.miss_until = np.zeros(config.lsq_size, dtype=np.int64)

    # ------------------------------------------------------------------
    def export_structures(self) -> Dict[str, np.ndarray]:
        """Cache/BTB/TLB/gshare contents in the canonical snapshot form."""
        out = {}
        for name, tags, stamps in (
                ("il1", self.il1_tags, self.il1_stamps),
                ("dl1", self.dl1_tags, self.dl1_stamps),
                ("l2", self.l2_tags, self.l2_stamps),
                ("btb", self.btb_tags, self.btb_stamps)):
            n_sets, assoc = self._geometry[name]
            out[name + "_lru"] = _lru_rows(tags, stamps, n_sets, assoc)
        for name, pages, stamps in (
                ("itlb", self.itlb_pages, self.itlb_stamps),
                ("dtlb", self.dtlb_pages, self.dtlb_stamps)):
            entries = pages.shape[0]
            resident = sorted(
                (int(stamps[slot]), int(pages[slot]))
                for slot in range(entries) if pages[slot] != -1
            )
            table = np.full(entries, -1, dtype=np.int64)
            for slot, (_, page) in enumerate(resident):
                table[slot] = page
            out[name + "_lru"] = table
        out["gshare_counters"] = self.gshare_counters.copy()
        return out

    def export_scalars(self) -> Dict[str, int]:
        """The structure scalars this state is authoritative for."""
        sc = self.sc
        return {
            "il1_hits": int(sc[SC_IL1_HITS]),
            "il1_misses": int(sc[SC_IL1_MISSES]),
            "dl1_hits": int(sc[SC_DL1_HITS]),
            "dl1_misses": int(sc[SC_DL1_MISSES]),
            "l2_hits": int(sc[SC_L2_HITS]),
            "l2_misses": int(sc[SC_L2_MISSES]),
            "itlb_hits": int(sc[SC_ITLB_HITS]),
            "itlb_misses": int(sc[SC_ITLB_MISSES]),
            "dtlb_hits": int(sc[SC_DTLB_HITS]),
            "dtlb_misses": int(sc[SC_DTLB_MISSES]),
            "btb_hits": int(sc[SC_BTB_HITS]),
            "btb_misses": int(sc[SC_BTB_MISSES]),
            "gshare_history": int(sc[SC_GSHARE_HISTORY]),
            "gshare_lookups": int(sc[SC_GSHARE_LOOKUPS]),
            "gshare_mispredicts": int(sc[SC_GSHARE_MISPREDICTS]),
        }


def load_interval_scalars(core, state: KernelState) -> None:
    """Copy the core's interval scalars (cycle, DVM controller state)
    into the packed ``sc``/``fc``/``cfg`` vectors before a step.

    Shared by the scalar (:func:`run_interval_on_state`) and batched
    (:func:`run_interval_on_batch`) drivers so the two paths cannot
    drift: the exact same assignments, in the same order.
    """
    from repro.uarch.pipeline import _MAX_CPI

    cfg_i, cfg_f, sc, fc = state.cfg_i, state.cfg_f, state.sc, state.fc
    dvm = core.dvm
    cfg_i[CFG_DVM_ENABLED] = 0 if dvm is None else 1
    cfg_i[CFG_DVM_SAMPLE_PERIOD] = core._dvm_sample_period
    cfg_i[CFG_MAX_CPI] = _MAX_CPI
    if dvm is not None:
        policy = dvm.policy
        cfg_f[CFGF_DVM_THRESHOLD] = policy.threshold
        cfg_f[CFGF_WQ_INCREASE] = policy.wq_increase
        cfg_f[CFGF_WQ_DECREASE] = policy.wq_decrease
        cfg_f[CFGF_WQ_MAX] = policy.wq_max
        fc[FC_WQ_RATIO] = dvm.wq_ratio
        sc[SC_DVM_TRIGGERS] = dvm.trigger_count
        sc[SC_DVM_SAMPLES] = dvm.sample_count
    sc[SC_CYCLE] = core._cycle
    sc[SC_DVM_WINDOW_CYCLES] = core._dvm_window_cycles
    sc[SC_LAST_WAITING] = core._last_waiting
    sc[SC_LAST_READY] = core._last_ready
    fc[FC_DVM_WINDOW_ACE] = core._dvm_window_ace


def store_interval_scalars(core, state: KernelState, n: int) -> None:
    """Copy stepped ``sc``/``fc`` scalars back onto the core object
    (the inverse of :func:`load_interval_scalars`)."""
    sc, fc = state.sc, state.fc
    core._global_index += n
    core._cycle = int(sc[SC_CYCLE])
    core._last_waiting = int(sc[SC_LAST_WAITING])
    core._last_ready = int(sc[SC_LAST_READY])
    core._dvm_window_ace = float(fc[FC_DVM_WINDOW_ACE])
    core._dvm_window_cycles = int(sc[SC_DVM_WINDOW_CYCLES])
    dvm = core.dvm
    if dvm is not None:
        dvm.wq_ratio = float(fc[FC_WQ_RATIO])
        dvm.trigger_count = int(sc[SC_DVM_TRIGGERS])
        dvm.sample_count = int(sc[SC_DVM_SAMPLES])


def pack_trace(trace):
    """The seven contiguous, kernel-dtyped trace arrays for one interval."""
    return (np.ascontiguousarray(trace.op, dtype=np.int64),
            np.ascontiguousarray(trace.src1_dist, dtype=np.int64),
            np.ascontiguousarray(trace.src2_dist, dtype=np.int64),
            np.ascontiguousarray(trace.address, dtype=np.int64),
            np.ascontiguousarray(trace.pc, dtype=np.int64),
            np.ascontiguousarray(trace.taken, dtype=np.uint8),
            np.ascontiguousarray(trace.ace, dtype=np.uint8))


def run_interval_on_state(core, state: KernelState, trace,
                          compiled: bool = True):
    """Advance ``core`` one interval through the array kernel.

    Copies the interval scalars (cycle, DVM controller state) from the
    core object into the packed state vectors, runs
    :func:`step_interval` (compiled when ``compiled`` and numba is
    importable, silently uncompiled otherwise), and copies them back.
    Returns the same :class:`~repro.uarch.pipeline.IntervalStats` the
    interpreter would.
    """
    from repro.uarch.pipeline import _MAX_CPI, COUNTER_KEYS, IntervalStats

    cfg_i, cfg_f, sc, fc = state.cfg_i, state.cfg_f, state.sc, state.fc
    start_cycle = core._cycle
    load_interval_scalars(core, state)

    t_op, t_src1, t_src2, t_addr, t_pc, t_taken, t_ace = pack_trace(trace)

    out_counters = np.zeros(N_CTR, dtype=np.float64)
    out_ace = np.zeros(N_ACE, dtype=np.float64)
    out_ints = np.zeros(N_OI, dtype=np.int64)

    step = compiled_step() if compiled else None
    if not step:
        step = step_interval
    step(t_op, t_src1, t_src2, t_addr, t_pc, t_taken, t_ace,
         cfg_i, cfg_f,
         state.il1_tags, state.il1_stamps, state.dl1_tags, state.dl1_stamps,
         state.l2_tags, state.l2_stamps, state.btb_tags, state.btb_stamps,
         state.itlb_pages, state.itlb_stamps,
         state.dtlb_pages, state.dtlb_stamps,
         state.gshare_counters,
         state.rob_local, state.rob_op, state.rob_ace, state.rob_ismem,
         state.rob_issued, state.rob_ready, state.rob_misp, state.iq_slots,
         state.miss_until, sc, fc, out_counters, out_ace, out_ints)

    if out_ints[OI_STATUS] != 0:
        raise SimulationError(
            f"interval exceeded {_MAX_CPI} CPI — model deadlock"
        )

    store_interval_scalars(core, state, len(trace))

    stats = IntervalStats(instructions=len(trace))
    stats.cycles = core._cycle - start_cycle
    stats.branch_mispredicts = int(out_ints[OI_MISPREDICTS])
    stats.dvm_throttled_cycles = int(out_ints[OI_THROTTLED])
    stats.counters = {
        key: float(out_counters[index])
        for index, key in enumerate(COUNTER_KEYS)
    }
    stats.ace_bit_cycles = {
        "iq": float(out_ace[ACE_IQ]),
        "rob": float(out_ace[ACE_ROB]),
        "lsq": float(out_ace[ACE_LSQ]),
        "regfile": float(out_ace[ACE_REGFILE]),
    }
    return stats


# ----------------------------------------------------------------------
# Batched stepping: a leading config axis B over every state array
# ----------------------------------------------------------------------

# Column layout of the per-core length matrix ``lens`` passed to
# :func:`step_interval_batch` — per-core structure sizes differ across
# configs, so stacked arrays are padded to the group maximum and every
# kernel call slices each row back to its true extent (the scalar
# kernel derives geometry from slice lengths, e.g. TLB entry counts
# from ``itlb_pages.shape[0]``).
LEN_IL1 = 0
LEN_DL1 = 1
LEN_L2 = 2
LEN_BTB = 3
LEN_ITLB = 4
LEN_DTLB = 5
LEN_GSHARE = 6
LEN_ROB = 7
LEN_IQ = 8
LEN_MISS = 9
N_LEN = 10


def step_interval_batch(t_op, t_src1, t_src2, t_addr, t_pc, t_taken, t_ace,
                        active, lens, cfg_i, cfg_f,
                        il1_tags, il1_stamps, dl1_tags, dl1_stamps,
                        l2_tags, l2_stamps, btb_tags, btb_stamps,
                        itlb_pages, itlb_stamps, dtlb_pages, dtlb_stamps,
                        gshare_counters,
                        rob_local, rob_op, rob_ace, rob_ismem, rob_issued,
                        rob_ready, rob_misp, iq_slots, miss_until,
                        sc, fc, out_counters, out_ace, out_ints):
    """Advance every active core of a group one interval: the batched
    twin of :func:`step_interval` with a leading config axis ``B``.

    All state arrays are stacked ``(B, width)`` matrices (padded to the
    group's widest config; padding is never read because each row is
    sliced to its ``lens`` extent before the scalar body sees it), the
    seven trace arrays are shared read-only across the group, and
    ``active`` masks rows out of a step (ragged checkpoint resumes,
    fresh-core-only warmup).  This plain-``range`` loop is the
    interpreter fallback; the compiled twin in
    :mod:`repro.uarch._pipeline_batch_numba` runs the identical body
    under ``numba.prange``.  Rows are fully independent — each loop
    iteration reads/writes only row ``b`` slices plus the shared
    read-only trace, and :func:`step_interval` allocates its per-call
    scratch internally — so parallel execution is bit-identical to this
    serial loop at any thread count.
    """
    for b in range(active.shape[0]):
        if active[b] == 1:
            step_interval(
                t_op, t_src1, t_src2, t_addr, t_pc, t_taken, t_ace,
                cfg_i[b], cfg_f[b],
                il1_tags[b, :lens[b, LEN_IL1]],
                il1_stamps[b, :lens[b, LEN_IL1]],
                dl1_tags[b, :lens[b, LEN_DL1]],
                dl1_stamps[b, :lens[b, LEN_DL1]],
                l2_tags[b, :lens[b, LEN_L2]],
                l2_stamps[b, :lens[b, LEN_L2]],
                btb_tags[b, :lens[b, LEN_BTB]],
                btb_stamps[b, :lens[b, LEN_BTB]],
                itlb_pages[b, :lens[b, LEN_ITLB]],
                itlb_stamps[b, :lens[b, LEN_ITLB]],
                dtlb_pages[b, :lens[b, LEN_DTLB]],
                dtlb_stamps[b, :lens[b, LEN_DTLB]],
                gshare_counters[b, :lens[b, LEN_GSHARE]],
                rob_local[b, :lens[b, LEN_ROB]],
                rob_op[b, :lens[b, LEN_ROB]],
                rob_ace[b, :lens[b, LEN_ROB]],
                rob_ismem[b, :lens[b, LEN_ROB]],
                rob_issued[b, :lens[b, LEN_ROB]],
                rob_ready[b, :lens[b, LEN_ROB]],
                rob_misp[b, :lens[b, LEN_ROB]],
                iq_slots[b, :lens[b, LEN_IQ]],
                miss_until[b, :lens[b, LEN_MISS]],
                sc[b], fc[b], out_counters[b], out_ace[b], out_ints[b])


#: Lazily-resolved compiled batch stepper (``None`` = not attempted,
#: ``False`` = numba unavailable, else the prange dispatcher).
_BATCH_STEP = None


def compiled_batch_step():
    """The njit-compiled ``prange`` batch stepper (``False`` if no numba)."""
    global _BATCH_STEP
    if _BATCH_STEP is None:
        try:
            from repro.uarch import _pipeline_batch_numba

            _BATCH_STEP = _pipeline_batch_numba.step_batch
        except Exception:
            _BATCH_STEP = False
    return _BATCH_STEP


#: Stacked per-core state fields: (attribute, lens column).  Tag/page
#: arrays pad with -1 (an always-empty way) purely for debuggability —
#: padding is unreachable either way, since every kernel call slices
#: each row to its ``lens`` extent first.
_BATCH_FIELDS = (
    ("il1_tags", LEN_IL1, -1), ("il1_stamps", LEN_IL1, 0),
    ("dl1_tags", LEN_DL1, -1), ("dl1_stamps", LEN_DL1, 0),
    ("l2_tags", LEN_L2, -1), ("l2_stamps", LEN_L2, 0),
    ("btb_tags", LEN_BTB, -1), ("btb_stamps", LEN_BTB, 0),
    ("itlb_pages", LEN_ITLB, -1), ("itlb_stamps", LEN_ITLB, 0),
    ("dtlb_pages", LEN_DTLB, -1), ("dtlb_stamps", LEN_DTLB, 0),
    ("gshare_counters", LEN_GSHARE, 0),
    ("rob_local", LEN_ROB, 0), ("rob_op", LEN_ROB, 0),
    ("rob_ace", LEN_ROB, 0), ("rob_ismem", LEN_ROB, 0),
    ("rob_issued", LEN_ROB, 0), ("rob_ready", LEN_ROB, 0),
    ("rob_misp", LEN_ROB, 0),
    ("iq_slots", LEN_IQ, 0), ("miss_until", LEN_MISS, 0),
    ("sc", None, 0), ("fc", None, 0), ("cfg_i", None, 0),
    ("cfg_f", None, 0),
)


class BatchKernelState:
    """Stacked ``(B, width)`` state for a group of per-core states.

    Construction *adopts* the member :class:`KernelState` objects:
    every per-core array is copied into a row prefix of one stacked
    matrix, and the member's attribute is rebound to that row-prefix
    **view**.  From then on the scalar and batched steppers operate on
    the same memory — a member core can still run a scalar interval,
    export :meth:`KernelState.export_structures` for a checkpoint, or
    round-trip a snapshot, and the batch sees the result (this is how
    per-core checkpoint slices stay in the unchanged ckpt/v2 format).
    Padding beyond a row's true extent is never read: ``lens`` records
    each core's structure sizes and every stepper slices rows back to
    them.
    """

    def __init__(self, states):
        self.states = list(states)
        if not self.states:
            raise SimulationError("batch of zero kernel states")
        n_cores = len(self.states)
        lens = np.zeros((n_cores, N_LEN), dtype=np.int64)
        for b, state in enumerate(self.states):
            lens[b, LEN_IL1] = state.il1_tags.shape[0]
            lens[b, LEN_DL1] = state.dl1_tags.shape[0]
            lens[b, LEN_L2] = state.l2_tags.shape[0]
            lens[b, LEN_BTB] = state.btb_tags.shape[0]
            lens[b, LEN_ITLB] = state.itlb_pages.shape[0]
            lens[b, LEN_DTLB] = state.dtlb_pages.shape[0]
            lens[b, LEN_GSHARE] = state.gshare_counters.shape[0]
            lens[b, LEN_ROB] = state.rob_local.shape[0]
            lens[b, LEN_IQ] = state.iq_slots.shape[0]
            lens[b, LEN_MISS] = state.miss_until.shape[0]
        self.lens = lens
        for attr, _, pad in _BATCH_FIELDS:
            rows = [getattr(state, attr) for state in self.states]
            width = max(row.shape[0] for row in rows)
            stacked = np.full((n_cores, width), pad, dtype=rows[0].dtype)
            for b, row in enumerate(rows):
                stacked[b, :row.shape[0]] = row
                setattr(self.states[b], attr, stacked[b, :row.shape[0]])
            setattr(self, attr, stacked)


def run_interval_on_batch(cores, batch: BatchKernelState, trace, active,
                          compiled: bool = True):
    """Advance every active core one interval in one batched call.

    The batch analogue of :func:`run_interval_on_state`: per-core
    interval scalars are loaded/stored through the same helpers, the
    whole group steps through one :func:`step_interval_batch` call
    (compiled with ``prange`` when ``compiled`` and numba is
    importable, the plain loop otherwise), and the raw per-core outputs
    come back as ``(out_counters, out_ace, out_ints, cycles)`` stacked
    arrays for the caller to post-process with the exact scalar power /
    AVF model calls.  ``active`` is a ``(B,)`` uint8 mask; inactive
    rows are untouched.
    """
    from repro.uarch.jit import apply_jit_threads
    from repro.uarch.pipeline import _MAX_CPI

    states = batch.states
    for b, core in enumerate(cores):
        if active[b]:
            load_interval_scalars(core, states[b])

    t_op, t_src1, t_src2, t_addr, t_pc, t_taken, t_ace = pack_trace(trace)
    n_cores = len(cores)
    out_counters = np.zeros((n_cores, N_CTR), dtype=np.float64)
    out_ace = np.zeros((n_cores, N_ACE), dtype=np.float64)
    out_ints = np.zeros((n_cores, N_OI), dtype=np.int64)
    start_cycles = batch.sc[:, SC_CYCLE].copy()

    step = compiled_batch_step() if compiled else None
    if step:
        apply_jit_threads()
    else:
        step = step_interval_batch
    step(t_op, t_src1, t_src2, t_addr, t_pc, t_taken, t_ace,
         active, batch.lens, batch.cfg_i, batch.cfg_f,
         batch.il1_tags, batch.il1_stamps, batch.dl1_tags, batch.dl1_stamps,
         batch.l2_tags, batch.l2_stamps, batch.btb_tags, batch.btb_stamps,
         batch.itlb_pages, batch.itlb_stamps,
         batch.dtlb_pages, batch.dtlb_stamps,
         batch.gshare_counters,
         batch.rob_local, batch.rob_op, batch.rob_ace, batch.rob_ismem,
         batch.rob_issued, batch.rob_ready, batch.rob_misp, batch.iq_slots,
         batch.miss_until, batch.sc, batch.fc,
         out_counters, out_ace, out_ints)

    n = len(trace)
    for b, core in enumerate(cores):
        if active[b]:
            if out_ints[b, OI_STATUS] != 0:
                raise SimulationError(
                    f"interval exceeded {_MAX_CPI} CPI — model deadlock"
                )
            store_interval_scalars(core, states[b], n)

    cycles = batch.sc[:, SC_CYCLE] - start_cycles
    return out_counters, out_ace, out_ints, cycles
